// Resumable out-of-core audit end to end: a verifier is killed mid-pass-2, leaves its
// sidecar checkpoint journal behind, and a fresh process resumes the same epoch —
// reusing every journaled chunk instead of re-executing it — to a verdict and end state
// bit-identical to an uninterrupted audit.
//
//   run 1: FeedEpochFilesStreamed + checkpoint_path ── killed mid-pass-2 ──► kIoError,
//          journal of completed chunks survives (fsynced per chunk, torn-tail tolerant)
//   run 2: same files + same checkpoint_path ──► ACCEPT, checkpoint_chunks_reused > 0,
//          end state == the in-memory reference audit; the verdict spends the journal
//
// Build & run:  cmake -B build && cmake --build build && ./build/resumable_audit
// OROCHI_BENCH_SCALE scales the request count (CI smoke-runs with a small scale).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "examples/example_util.h"
#include "src/common/io_env.h"
#include "src/core/audit_session.h"
#include "src/core/auditor.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/thread_server.h"
#include "src/stream/stream_audit.h"
#include "src/workload/workloads.h"

using namespace orochi;

using demo::Fail;
using demo::Scale;

namespace {

// Simulates the verifier process dying mid-pass-2: the first `allowed` payload loads
// succeed (their chunks retire and are journaled), then every load fails permanently.
class KillSwitchLoader : public TraceChunkLoader {
 public:
  KillSwitchLoader(const StreamTraceSet* set, uint64_t allowed)
      : real_(set), allowed_(allowed) {}

  Status Load(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    if (loads_.fetch_add(1) >= allowed_) {
      return Status::Error("io: verifier killed at payload load " +
                           std::to_string(allowed_) + " in " +
                           set.file_path(set.loc(index).file));
    }
    return real_.Load(set, index, event);
  }
  void Evict(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    real_.Evict(set, index, event);
  }

 private:
  FileTraceChunkLoader real_;
  std::atomic<uint64_t> loads_{0};
  const uint64_t allowed_;
};

bool RunDemo() {
  const std::string dir = demo::ScratchDir("resumable");
  if (dir.empty()) {
    return Fail("cannot create a scratch directory");
  }

  Result<Workload> workload = demo::MakeCounterWorkload();
  if (!workload.ok()) {
    return Fail(workload.error());
  }
  const Workload& w = workload.value();
  const size_t requests = static_cast<size_t>(1200 * Scale()) + 64;

  // Serve and spill one epoch.
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  {
    ThreadServer server(&core, &collector, /*num_workers=*/4);
    for (size_t i = 0; i < requests; i++) {
      RequestParams params;
      params["key"] = "k" + std::to_string(i % 13);
      params["who"] = "u" + std::to_string(i % 19);
      server.Submit(static_cast<RequestId>(i + 1),
                    (i % 4 == 3) ? "/counter/read" : "/counter/hit", params);
    }
    server.Drain();
  }
  const std::string trace_path = dir + "/trace.bin";
  const std::string reports_path = dir + "/reports.bin";
  if (Status st = collector.Flush(trace_path); !st.ok()) {
    return Fail("flush: " + st.error());
  }
  if (Status st = core.ExportReports(reports_path); !st.ok()) {
    return Fail("export: " + st.error());
  }
  std::printf("served %zu requests -> %s\n", requests, trace_path.c_str());

  AuditOptions options;
  options.max_group_size = 16;
  options.max_resident_bytes = 16 * 1024;
  options.checkpoint_path = dir + "/audit.ckpt";

  // Uninterrupted in-memory reference: what the resumed run must reproduce exactly.
  AuditOptions ref_options;
  ref_options.max_group_size = 16;
  AuditSession ref_session = AuditSession::Open(&w.app, ref_options, w.initial);
  Result<AuditResult> ref = ref_session.FeedEpochFiles(trace_path, reports_path);
  if (!ref.ok() || !ref.value().accepted) {
    return Fail("reference audit: " + (ref.ok() ? ref.value().reason : ref.error()));
  }

  // --- Run 1: the verifier dies mid-pass-2. ---
  StreamTraceSet probe;
  if (Result<uint32_t> r = probe.AppendFile(trace_path); !r.ok()) {
    return Fail(r.error());
  }
  KillSwitchLoader killer(&probe, /*allowed=*/requests / 3);
  StreamAuditHooks hooks;
  hooks.loader = &killer;
  AuditSession first = AuditSession::Open(&w.app, options, w.initial);
  Result<AuditResult> killed = first.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
  if (killed.ok()) {
    return Fail("run 1 should have been killed mid-audit");
  }
  if (ClassifyAuditOutcome(killed) != AuditOutcome::kIoError) {
    return Fail("a mid-audit kill must classify as an I/O error: " + killed.error());
  }
  AuditIoError info = ParseAuditIoError(killed.error());
  std::printf("run 1: killed mid-pass-2 -> I/O error in %s (epoch unconsumed)\n",
              info.file.c_str());
  Result<bool> left = Env::Default()->FileExists(options.checkpoint_path);
  if (!left.ok() || !left.value()) {
    return Fail("checkpoint journal should survive the kill");
  }

  // --- Run 2: a fresh process resumes over the same files and checkpoint. ---
  AuditSession resumed = AuditSession::Open(&w.app, options, w.initial);
  Result<AuditResult> got = resumed.FeedEpochFilesStreamed(trace_path, reports_path);
  if (!got.ok()) {
    return Fail("resume: " + got.error());
  }
  if (!got.value().accepted) {
    return Fail("resume should accept: " + got.value().reason);
  }
  if (got.value().stats.checkpoint_chunks_reused == 0) {
    return Fail("resume re-executed everything (no chunks reused)");
  }
  if (InitialStateFingerprint(got.value().final_state) !=
      InitialStateFingerprint(ref.value().final_state)) {
    return Fail("resumed end state diverges from the uninterrupted audit");
  }
  std::printf("run 2: ACCEPT, %llu chunk tasks replayed from the checkpoint, end state "
              "bit-identical to the uninterrupted audit\n",
              static_cast<unsigned long long>(got.value().stats.checkpoint_chunks_reused));

  Result<bool> spent = Env::Default()->FileExists(options.checkpoint_path);
  if (!spent.ok() || spent.value()) {
    return Fail("the verdict should have spent (removed) the checkpoint");
  }
  std::printf("verdict reached: checkpoint journal removed\n");
  return true;
}

}  // namespace

int main() {
  bool ok = RunDemo();
  std::printf("resumable_audit: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
