// Epoch audits over the wire format: the paper's periodic-audit deployment (§2, §4.5)
// end to end, across a process boundary simulated by files.
//
//   serve epoch 1 ─ Flush/Export ─┐
//   serve epoch 2 ─ Flush/Export ─┼─ spill files ──> fresh AuditSession: feed epochs in
//   serve epoch 3 ─ Flush/Export ─┘                  order, each accepted final state
//                                                    seeding the next epoch's audit
//
// The demo then tampers with epoch 2's spilled trace (a response body the client never
// saw) and shows: epoch 1 accepts, the tampered epoch 2 rejects with a deterministic
// reason, the pristine epoch 2 re-fed from the trusted collector accepts, and epoch 3
// accepts on top of it. Finally it cross-checks that the session's end state is
// bit-identical to one monolithic in-memory audit over the untampered concatenation.
//
// Build & run:  cmake -B build && cmake --build build && ./build/epoch_audit
// OROCHI_BENCH_SCALE scales the request count (CI smoke-runs with a small scale).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "examples/example_util.h"
#include "src/core/audit_session.h"
#include "src/core/auditor.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/tamper.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

using namespace orochi;
using demo::Fail;
using demo::Scale;

namespace {

constexpr int kEpochs = 3;

bool RunDemo() {
  const std::string dir = demo::ScratchDir("epoch_audit");
  if (dir.empty()) {
    return Fail("cannot create a scratch directory");
  }

  ForumConfig config;
  config.num_requests = static_cast<size_t>(900 * Scale());
  if (config.num_requests < kEpochs) {
    config.num_requests = kEpochs;
  }
  Workload w = MakeForumWorkload(config);

  // --- Collector/executor side: serve 3 epochs, spilling each to disk as it closes. ---
  const std::string state0 = dir + "/state0.bin";
  if (Status st = WriteInitialStateFile(state0, w.initial); !st.ok()) {
    return Fail(st.error());
  }
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  std::vector<std::string> trace_paths, reports_paths;
  RequestId rid = 1;
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    size_t begin = w.items.size() * static_cast<size_t>(epoch) / kEpochs;
    size_t end = w.items.size() * static_cast<size_t>(epoch + 1) / kEpochs;
    {
      ThreadServer server(&core, &collector, /*num_workers=*/4);
      for (size_t i = begin; i < end; i++) {
        server.Submit(rid++, w.items[i].script, w.items[i].params);
      }
      server.Drain();
    }
    trace_paths.push_back(dir + "/trace_" + std::to_string(epoch + 1) + ".bin");
    reports_paths.push_back(dir + "/reports_" + std::to_string(epoch + 1) + ".bin");
    if (Status st = collector.Flush(trace_paths.back()); !st.ok()) {
      return Fail(st.error());
    }
    if (Status st = core.ExportReports(reports_paths.back()); !st.ok()) {
      return Fail(st.error());
    }
    std::printf("epoch %d: served %zu requests -> %s\n", epoch + 1, end - begin,
                trace_paths.back().c_str());
  }

  // --- An adversary rewrites a response in epoch 2's spilled trace. ---
  Result<Trace> epoch2 = ReadTraceFile(trace_paths[1]);
  if (!epoch2.ok()) {
    return Fail(epoch2.error());
  }
  RequestId victim = 0;
  for (const TraceEvent& e : epoch2.value().events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      victim = e.rid;
      break;
    }
  }
  if (!TamperResponseBody(&epoch2.value(), victim, "<html>forged response</html>")) {
    return Fail("tamper target rid not found");
  }
  const std::string tampered_path = dir + "/trace_2_tampered.bin";
  if (Status st = WriteTraceFile(tampered_path, epoch2.value()); !st.ok()) {
    return Fail(st.error());
  }

  // --- Verifier side: a fresh session audits the spill files epoch by epoch. ---
  AuditOptions options;
  Result<AuditSession> opened = AuditSession::OpenFromStateFile(&w.app, options, state0);
  if (!opened.ok()) {
    return Fail(opened.error());
  }
  AuditSession session = std::move(opened).value();

  Result<AuditResult> r1 = session.FeedEpochFiles(trace_paths[0], reports_paths[0]);
  if (!r1.ok() || !r1.value().accepted) {
    return Fail("epoch 1 should accept: " + (r1.ok() ? r1.value().reason : r1.error()));
  }
  std::printf("audit epoch 1: ACCEPT (%llu groups)\n",
              static_cast<unsigned long long>(r1.value().stats.num_groups));

  Result<AuditResult> r2bad = session.FeedEpochFiles(tampered_path, reports_paths[1]);
  if (!r2bad.ok()) {
    return Fail(r2bad.error());
  }
  if (r2bad.value().accepted) {
    return Fail("tampered epoch 2 should reject");
  }
  std::printf("audit epoch 2 (tampered): REJECT — %s\n", r2bad.value().reason.c_str());

  // A rejection leaves the session state untouched, so the pristine epoch 2 — re-fetched
  // from the trusted collector's spill — audits against the same state and accepts.
  Result<AuditResult> r2 = session.FeedEpochFiles(trace_paths[1], reports_paths[1]);
  if (!r2.ok() || !r2.value().accepted) {
    return Fail("pristine epoch 2 should accept: " +
                (r2.ok() ? r2.value().reason : r2.error()));
  }
  std::printf("audit epoch 2 (pristine): ACCEPT\n");

  Result<AuditResult> r3 = session.FeedEpochFiles(trace_paths[2], reports_paths[2]);
  if (!r3.ok() || !r3.value().accepted) {
    return Fail("epoch 3 should accept: " + (r3.ok() ? r3.value().reason : r3.error()));
  }
  std::printf("audit epoch 3: ACCEPT (%llu/%llu epochs accepted)\n",
              static_cast<unsigned long long>(session.epochs_accepted()),
              static_cast<unsigned long long>(session.epochs_fed()));

  // --- Cross-check: the epoch chain must equal one monolithic in-memory audit over the
  // untampered concatenation, bit for bit. ---
  Trace all_trace;
  Reports all_reports;
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    Result<Trace> t = ReadTraceFile(trace_paths[static_cast<size_t>(epoch)]);
    Result<Reports> r = ReadReportsFile(reports_paths[static_cast<size_t>(epoch)]);
    if (!t.ok() || !r.ok()) {
      return Fail("re-reading spill files failed");
    }
    all_trace.events.insert(all_trace.events.end(), t.value().events.begin(),
                            t.value().events.end());
    if (Status st = AppendReports(&all_reports, r.value()); !st.ok()) {
      return Fail(st.error());
    }
  }
  Auditor auditor(&w.app, options);
  AuditResult combined = auditor.Audit(all_trace, all_reports, w.initial);
  if (!combined.accepted) {
    return Fail("concatenated audit should accept: " + combined.reason);
  }
  if (InitialStateFingerprint(combined.final_state) !=
      InitialStateFingerprint(session.state())) {
    return Fail("session end state diverges from the concatenated audit's final state");
  }
  std::printf("cross-check: session end state == concatenated audit final state\n");
  return true;
}

}  // namespace

int main() {
  bool ok = RunDemo();
  std::printf("epoch_audit: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
