// Domain example: run the MediaWiki-style workload end to end — concurrent server,
// trace collection, grouped audit — and print the acceleration the verifier obtained,
// plus a demonstration that the verifier's extracted final state matches the server's
// (so consecutive audit periods chain, §4.5).
#include <cstdio>

#include "examples/example_util.h"
#include "src/common/timer.h"
#include "src/core/auditor.h"
#include "src/server/collector.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

using namespace orochi;

int main() {
  WikiConfig config;
  config.num_pages = 60;
  config.num_users = 20;
  config.num_requests = 3000;
  Workload w = MakeWikiWorkload(config);

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  WallTimer serve_timer;
  demo::ServeAll(w, &core, &collector);
  double serve_seconds = serve_timer.Seconds();
  Trace trace = collector.TakeTrace();
  Reports reports = core.TakeReports();

  std::printf("wiki workload: %zu requests served in %.2fs (%.0f req/s, 4 workers)\n",
              trace.NumRequests(), serve_seconds,
              static_cast<double>(trace.NumRequests()) / serve_seconds);

  Auditor auditor(&w.app);
  WallTimer grouped_timer;
  AuditResult grouped = auditor.Audit(trace, reports, w.initial);
  double grouped_seconds = grouped_timer.Seconds();

  WallTimer baseline_timer;
  AuditResult baseline = auditor.AuditSequential(trace, reports, w.initial);
  double baseline_seconds = baseline_timer.Seconds();

  std::printf("grouped (SSCO) audit:   %s in %.3fs\n",
              grouped.accepted ? "ACCEPT" : "REJECT", grouped_seconds);
  std::printf("sequential baseline:    %s in %.3fs\n",
              baseline.accepted ? "ACCEPT" : "REJECT", baseline_seconds);
  if (!grouped.accepted || !baseline.accepted) {
    std::printf("unexpected rejection: %s%s\n", grouped.reason.c_str(),
                baseline.reason.c_str());
    return 1;
  }
  std::printf("verifier speedup: %.1fx\n", baseline_seconds / grouped_seconds);
  const AuditStats& gs = grouped.stats;
  std::printf("grouped audit breakdown: procOpRep %.3fs, db redo %.3fs, reexec %.3fs "
              "(db query %.3fs), other %.3fs\n",
              gs.proc_op_reports_seconds, gs.db_redo_seconds, gs.reexec_seconds,
              gs.db_query_seconds, gs.other_seconds);
  std::printf("grouped instructions: %llu total, %llu multivalent; baseline instructions: "
              "%llu\n",
              static_cast<unsigned long long>(gs.total_instructions),
              static_cast<unsigned long long>(gs.multivalent_instructions),
              static_cast<unsigned long long>(baseline.stats.total_instructions));
  std::printf("control-flow groups: %llu (%llu multi-request); query dedup: %llu of %llu "
              "SELECTs answered from cache\n",
              static_cast<unsigned long long>(grouped.stats.num_groups),
              static_cast<unsigned long long>(grouped.stats.groups_multi),
              static_cast<unsigned long long>(grouped.stats.db_selects_deduped),
              static_cast<unsigned long long>(grouped.stats.db_selects_deduped +
                                              grouped.stats.db_selects_issued));

  // The audit's byproduct: the end-of-period state, which seeds the next audit. It must
  // agree with the server's ground truth.
  InitialState server_state = core.SnapshotState();
  bool db_match = grouped.final_state.db.RowCount("pages") == server_state.db.RowCount("pages");
  bool kv_match = grouped.final_state.kv.size() == server_state.kv.size();
  std::printf("final-state handoff: pages rows %zu vs %zu, kv keys %zu vs %zu -> %s\n",
              grouped.final_state.db.RowCount("pages"), server_state.db.RowCount("pages"),
              grouped.final_state.kv.size(), server_state.kv.size(),
              db_match && kv_match ? "match" : "MISMATCH");
  return db_match && kv_match ? 0 : 1;
}
