// The three scenarios of the paper's Figure 4, reconstructed with scripted interleavings.
//
// Two requests r1 (script f) and r2 (script g) operate on registers A and B:
//   f: write(A,1); read(B) -> x; output(x)      g: write(B,1); read(A) -> y; output(y)
//
//   (a) r1 completes before r2 arrives, yet the executor answers (1, 0) with logs ordered
//       to "justify" it            -> simulate-and-check alone would accept; SSCO REJECTS.
//   (b) r1 and r2 are concurrent and the executor answers (0, 0), impossible under any
//       schedule (a classic store-buffering anomaly)                     -> SSCO REJECTS.
//   (c) r1 and r2 are concurrent and the executor answers (1, 1): legal (both writes
//       before both reads)                                               -> SSCO ACCEPTS.
//
// This is exactly why consistent-ordering verification (§3.5) exists: the operation logs
// and the responses can be mutually consistent yet impossible against the trace.
#include <cstdio>

#include "src/core/auditor.h"
#include "src/server/manual_executor.h"
#include "src/server/tamper.h"

using namespace orochi;

namespace {

Application BuildFgApp() {
  Application app;
  Status f = app.AddScript("/f", R"WS(
reg_write("A", 1);
$x = reg_read("B");
echo intval($x);
)WS");
  Status g = app.AddScript("/g", R"WS(
reg_write("B", 1);
$y = reg_read("A");
echo intval($y);
)WS");
  if (!f.ok() || !g.ok()) {
    std::printf("script compile error\n");
  }
  return app;
}

struct Run {
  Trace trace;
  Reports reports;
};

// Scenario (c), honestly executed: r1 and r2 concurrent, both writes first, then both
// reads. Responses are (1, 1).
Run RunScenarioC(const Application& app, const InitialState& init) {
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.Begin(1, "/f", {});
  exec.Begin(2, "/g", {});
  exec.Step(1);  // write(A,1)
  exec.Step(2);  // write(B,1)
  exec.Step(1);  // read(B) -> 1
  exec.Step(2);  // read(A) -> 1
  exec.Finish(1);
  exec.Finish(2);
  return {collector.TakeTrace(), core.TakeReports()};
}

// Scenario (b): same concurrency, but the executor forges responses (0, 0) and reorders
// each log so the read appears before the other request's write. The logs are internally
// consistent with the bogus responses — but cyclic once program order and log order meet.
Run RunScenarioB(const Application& app, const InitialState& init) {
  Run run = RunScenarioC(app, init);
  TamperResponseBody(&run.trace, 1, "0");
  TamperResponseBody(&run.trace, 2, "0");
  // OL_A: [r2 read, r1 write] claims r2's read preceded r1's write; likewise OL_B.
  for (size_t obj = 0; obj < run.reports.objects.size(); obj++) {
    if (run.reports.objects[obj].kind == ObjectKind::kRegister) {
      SwapLogEntries(&run.reports, obj, 0, 1);
    }
  }
  return run;
}

// Scenario (a): r1 fully precedes r2 in real time (the collector saw r1's response before
// r2's request), but the executor answers (1, 0) — as if r2's write to B landed before
// r1's read of B — and orders the logs accordingly.
Run RunScenarioA(const Application& app, const InitialState& init) {
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.RunToCompletion(1, "/f", {});  // r1: write(A,1); read(B)->0; output 0.
  exec.RunToCompletion(2, "/g", {});  // r2: write(B,1); read(A)->1; output 1.
  Run run = {collector.TakeTrace(), core.TakeReports()};
  // Forge: respond (1, 0) and reorder OL_B so r2's write precedes r1's read.
  TamperResponseBody(&run.trace, 1, "1");
  TamperResponseBody(&run.trace, 2, "0");
  for (size_t obj = 0; obj < run.reports.objects.size(); obj++) {
    if (run.reports.objects[obj].kind == ObjectKind::kRegister &&
        run.reports.objects[obj].name == "B") {
      SwapLogEntries(&run.reports, obj, 0, 1);
    }
  }
  // To keep OL_A consistent with the story, r1's read of A... (r1 never reads A; OL_A is
  // already [r1 write, r2 read], which matches the forged story.)
  return run;
}

const char* Verdict(const AuditResult& r) { return r.accepted ? "ACCEPT" : "REJECT"; }

}  // namespace

int main() {
  Application app = BuildFgApp();
  InitialState init;  // Registers implicitly 0 (read of absent register yields null -> 0).
  Auditor auditor(&app);

  Run a = RunScenarioA(app, init);
  AuditResult ra = auditor.Audit(a.trace, a.reports, init);
  std::printf("scenario (a): responses (1,0), r1 <Tr r2      -> %s   (expected REJECT)\n",
              Verdict(ra));

  Run b = RunScenarioB(app, init);
  AuditResult rb = auditor.Audit(b.trace, b.reports, init);
  std::printf("scenario (b): responses (0,0), concurrent     -> %s   (expected REJECT)\n",
              Verdict(rb));

  Run c = RunScenarioC(app, init);
  AuditResult rc = auditor.Audit(c.trace, c.reports, init);
  std::printf("scenario (c): responses (1,1), concurrent     -> %s   (expected ACCEPT)\n",
              Verdict(rc));

  bool ok = !ra.accepted && !rb.accepted && rc.accepted;
  std::printf("%s\n", ok ? "all three verdicts match the paper" : "MISMATCH with the paper");
  return ok ? 0 : 1;
}
