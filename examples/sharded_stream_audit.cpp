// Sharded, out-of-core epoch audit end to end: the deployment where N collector-fronted
// front ends each spill their slice of an epoch and ONE verifier audits them all without
// ever materializing the epoch's trace in memory.
//
//   front end 1 (shard 1) ─ Flush/Export ─┐
//   front end 2 (shard 2) ─ Flush/Export ─┼─ manifest ──► AuditSession::FeedShardedEpoch:
//   front end 3 (shard 3) ─ Flush/Export ─┘               pass 1 streams a skeleton+index,
//                                                         pass 2 pages group chunks in
//                                                         under OROCHI_AUDIT_BUDGET,
//                                                         pass 3 re-streams the compare
//
// The demo audits the merged epoch under a deliberately tiny budget (set
// OROCHI_AUDIT_BUDGET to override; default here is 16 KiB — far below the spilled trace),
// shows a tampered shard rejecting with a deterministic reason while the pristine re-feed
// accepts, and cross-checks that the streamed sharded verdict and end state are
// bit-identical to one fully in-memory audit over the merged epoch.
//
// Build & run:  cmake -B build && cmake --build build && ./build/sharded_stream_audit
// OROCHI_BENCH_SCALE scales the request count (CI smoke-runs with a small scale).
// OROCHI_FAULT_SEED routes every spill write and audit read through a fault-injecting
// environment seeded with that value, firing only absorbable faults (transient read
// errors + short reads): the demo must behave IDENTICALLY — retries and read loops hide
// them — which is exactly what the CI fault matrix asserts.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "examples/example_util.h"
#include "src/common/io_env.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/tamper.h"
#include "src/server/thread_server.h"
#include "src/stream/stream_audit.h"
#include "src/workload/workloads.h"

using namespace orochi;
using demo::DemoFaultEnv;
using demo::Fail;
using demo::Scale;

namespace {

constexpr uint32_t kShards = 3;

// One front end's slice of the epoch: disjoint key/user space and a disjoint rid range,
// served on its own executor behind its own shard-stamped collector.
struct FrontEnd {
  std::string trace_path;
  std::string reports_path;
};

// Serves one shard and spills it. A failed Flush/ExportReports is a hard error for the
// front end — the trace/reports stay in memory for a retry, and shipping a partial
// epoch to the verifier is exactly what the atomic spill path exists to prevent.
bool ServeShard(const Workload& w, uint32_t shard_id, size_t requests,
                const std::string& dir, Env* env, FrontEnd* out) {
  ServerCore core(&w.app, w.initial,
                  ServerOptions{.record_reports = true, .io_env = env});
  Collector collector(shard_id, env);
  demo::ServeCounterShardSlice(&core, &collector, shard_id, /*epoch=*/1, requests);
  out->trace_path = dir + "/trace_shard" + std::to_string(shard_id) + ".bin";
  out->reports_path = dir + "/reports_shard" + std::to_string(shard_id) + ".bin";
  if (Status st = collector.Flush(out->trace_path); !st.ok()) {
    return Fail("shard " + std::to_string(shard_id) + " flush: " + st.error());
  }
  if (Status st = core.ExportReports(out->reports_path); !st.ok()) {
    return Fail("shard " + std::to_string(shard_id) + " export: " + st.error());
  }
  return true;
}

bool RunDemo() {
  const std::string dir = demo::ScratchDir("sharded_stream_audit");
  if (dir.empty()) {
    return Fail("cannot create a scratch directory");
  }

  // The sharded deployment's contract: every front end starts from the same agreed
  // initial state and serves a disjoint slice of the traffic.
  Result<Workload> workload = demo::MakeCounterWorkload();
  if (!workload.ok()) {
    return Fail(workload.error());
  }
  const Workload& w = workload.value();
  const size_t per_shard = static_cast<size_t>(600 * Scale()) + 8;

  Env* fault_env = DemoFaultEnv();
  if (fault_env != nullptr) {
    std::printf("fault injection: on (OROCHI_FAULT_SEED=%s, absorbable faults only)\n",
                std::getenv("OROCHI_FAULT_SEED"));
  }

  // --- Front-end side: three shards serve and spill, and a manifest names the pairs. ---
  ShardManifest manifest;
  manifest.epoch = 1;
  std::vector<FrontEnd> front_ends;
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    FrontEnd fe;
    if (!ServeShard(w, shard, per_shard, dir, fault_env, &fe)) {
      return false;
    }
    front_ends.push_back(fe);
    manifest.shards.push_back(
        {shard, "trace_shard" + std::to_string(shard) + ".bin",
         "reports_shard" + std::to_string(shard) + ".bin"});
    std::printf("shard %u: served %zu requests -> %s\n", shard, per_shard,
                front_ends.back().trace_path.c_str());
  }
  const std::string manifest_path = dir + "/epoch_1.manifest";
  if (Status st = WriteShardManifestFile(manifest_path, manifest); !st.ok()) {
    return Fail(st.error());
  }

  // --- Verifier side: stream the sharded epoch under a tiny memory budget. ---
  AuditOptions options;
  // Small chunks so the budget forces real eviction churn: a chunk is charged for its
  // request payloads AND the op-log entry contents its checks compare against, so chunks
  // must stay comfortably under the budget to avoid the oversized-chunk admission path.
  options.max_group_size = 16;
  options.io_env = fault_env;  // nullptr = posix; every verifier read retries transients.
  if (std::getenv("OROCHI_AUDIT_BUDGET") == nullptr) {
    options.max_resident_bytes = 16 * 1024;
  }
  Result<uint64_t> resolved_budget = ResolveAuditBudget(options);
  if (!resolved_budget.ok()) {
    return Fail(resolved_budget.error());
  }
  ChunkBudget budget(resolved_budget.value());
  StreamAuditHooks hooks;
  hooks.budget = &budget;

  uint64_t spilled_bytes = 0;
  uint64_t spilled_log_bytes = 0;
  {
    StreamTraceSet probe;
    StreamReportsSet reports_probe;
    for (const FrontEnd& fe : front_ends) {
      Result<uint32_t> r = probe.AppendFile(fe.trace_path, fault_env);
      if (!r.ok()) {
        return Fail(r.error());
      }
      if (Status st = reports_probe.AppendFile(fe.reports_path, fault_env); !st.ok()) {
        return Fail(st.error());
      }
    }
    spilled_bytes = probe.total_request_payload_bytes();
    spilled_log_bytes = reports_probe.total_log_payload_bytes();
  }
  std::printf(
      "epoch on disk: %llu request-payload bytes + %llu op-log bytes; resident budget: "
      "%llu bytes (covers both)\n",
      static_cast<unsigned long long>(spilled_bytes),
      static_cast<unsigned long long>(spilled_log_bytes),
      static_cast<unsigned long long>(budget.max_bytes()));

  AuditSession session = AuditSession::Open(&w.app, options, w.initial);
  Result<AuditResult> r1 = session.FeedShardedEpoch(manifest_path, &hooks);
  if (!r1.ok()) {
    return Fail(r1.error());
  }
  if (!r1.value().accepted) {
    return Fail("sharded epoch should accept: " + r1.value().reason);
  }
  std::printf(
      "sharded audit: ACCEPT (%llu groups; peak resident trace+reports bytes %llu <= %llu)\n",
      static_cast<unsigned long long>(r1.value().stats.num_groups),
      static_cast<unsigned long long>(budget.peak_bytes()),
      static_cast<unsigned long long>(budget.max_bytes()));
  if (budget.max_bytes() > 0 && budget.peak_bytes() > budget.max_bytes()) {
    return Fail("budget was not honored");
  }
  if (budget.peak_bytes() >= spilled_bytes + spilled_log_bytes) {
    return Fail("streaming never evicted anything (peak == whole epoch)");
  }

  // --- An adversary rewrites a response inside shard 2's spilled trace. ---
  Result<Trace> shard2 = ReadTraceFile(front_ends[1].trace_path);
  if (!shard2.ok()) {
    return Fail(shard2.error());
  }
  RequestId victim = 0;
  for (const TraceEvent& e : shard2.value().events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      victim = e.rid;
      break;
    }
  }
  if (!TamperResponseBody(&shard2.value(), victim, "<html>forged response</html>")) {
    return Fail("tamper target rid not found");
  }
  const std::string pristine = dir + "/trace_shard2_pristine.bin";
  std::string mv = "cp " + front_ends[1].trace_path + " " + pristine;
  if (std::system(mv.c_str()) != 0) {
    return Fail("cannot back up shard 2");
  }
  // The adversary preserves the shard stamp — a missing stamp would be caught as a
  // manifest mismatch before the audit even ran.
  if (Status st = WriteTraceFile(front_ends[1].trace_path, shard2.value(), 2); !st.ok()) {
    return Fail(st.error());
  }

  AuditSession session2 = AuditSession::Open(&w.app, options, w.initial);
  Result<AuditResult> r2 = session2.FeedShardedEpoch(manifest_path, &hooks);
  if (!r2.ok()) {
    return Fail(r2.error());
  }
  if (r2.value().accepted) {
    return Fail("tampered shard 2 should reject the epoch");
  }
  std::printf("sharded audit (shard 2 tampered): REJECT — %s\n", r2.value().reason.c_str());

  // Rejection left the session chain untouched; restoring the pristine shard re-audits
  // the same epoch and accepts.
  std::string restore = "cp " + pristine + " " + front_ends[1].trace_path;
  if (std::system(restore.c_str()) != 0) {
    return Fail("cannot restore shard 2");
  }
  Result<AuditResult> r3 = session2.FeedShardedEpoch(manifest_path, &hooks);
  if (!r3.ok() || !r3.value().accepted) {
    return Fail("pristine re-feed should accept: " +
                (r3.ok() ? r3.value().reason : r3.error()));
  }
  std::printf("sharded audit (pristine re-feed): ACCEPT\n");

  // --- Cross-check: streamed + sharded == one in-memory audit of the merged epoch. ---
  Trace merged_trace;
  Reports merged_reports;
  for (const FrontEnd& fe : front_ends) {
    Result<Trace> t = ReadTraceFile(fe.trace_path);
    Result<Reports> rep = ReadReportsFile(fe.reports_path);
    if (!t.ok() || !rep.ok()) {
      return Fail("re-reading spill files failed");
    }
    merged_trace.events.insert(merged_trace.events.end(), t.value().events.begin(),
                               t.value().events.end());
    if (Status st = AppendReports(&merged_reports, rep.value()); !st.ok()) {
      return Fail(st.error());
    }
  }
  AuditSession in_memory = AuditSession::Open(&w.app, options, w.initial);
  AuditResult combined = in_memory.FeedEpoch(merged_trace, merged_reports);
  if (!combined.accepted) {
    return Fail("in-memory merged audit should accept: " + combined.reason);
  }
  if (InitialStateFingerprint(combined.final_state) !=
      InitialStateFingerprint(session2.state())) {
    return Fail("streamed sharded end state diverges from the in-memory merged audit");
  }
  std::printf("cross-check: streamed sharded end state == in-memory merged audit state\n");
  if (fault_env != nullptr) {
    std::printf("fault injection: %llu absorbable faults fired and were hidden by "
                "retries/short-read loops\n",
                static_cast<unsigned long long>(DemoFaultEnv()->faults_injected()));
  }
  return true;
}

}  // namespace

int main() {
  bool ok = RunDemo();
  std::printf("sharded_stream_audit: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
