// Live audit service end to end: the paper's periodic-audit deployment with the offline
// spill-file handoff replaced by networked streaming ingestion (src/service/).
//
//   front end 1 ─ CollectorClient ──┐ framed records, acked, bounded in flight
//   front end 2 ─ CollectorClient ──┼──► orochi-auditd: spool ► seal ► FeedShardedEpoch
//   front end 3 ─ CollectorClient ──┘        (continuous, epoch after epoch)
//
// The demo proves the service's two load-bearing claims on real sockets:
//   1. epoch 1: three concurrent shard clients stream; one of them is killed mid-epoch
//      (a scripted one-shot disconnect) and reconnects, resuming from the acked counts.
//      The sealed spool files must be BYTE-identical to the spill files the collectors
//      would have written locally.
//   2. epoch 2: all three clients run through a seeded probabilistic fault schedule
//      (reads and writes randomly disconnect, plus another scripted kill) and the epoch
//      must still seal and accept — network faults are retryable I/O, never tamper.
// Finally the service's verdicts + end states are checked bit-identical to a direct
// AuditSession::FeedShardedEpoch over the equivalent files, at two thread counts.
//
// Build & run:  cmake -B build && cmake --build build && ./build/live_shard_audit
// OROCHI_BENCH_SCALE scales the request count (CI smoke-runs with a small scale).
// OROCHI_FAULT_SEED reseeds epoch 2's network fault schedule.
// OROCHI_STATS_ADDRESS additionally stands up the observability endpoint; the demo then
// scrapes /metrics, /epochs, and /shards itself and fails unless the audit's footprint
// (ingest counters, pass-2 phase time, accepted epochs, sealed shards) is visible.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "examples/example_util.h"
#include "src/core/audit_session.h"
#include "src/net/fault_transport.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/service/audit_service.h"
#include "src/service/collector_client.h"
#include "src/workload/workloads.h"

using namespace orochi;
using demo::Fail;
using demo::Scale;

namespace {

constexpr uint32_t kShards = 3;

// One front end: a persistent executor + shard-stamped collector that live across
// epochs, so epoch 2's traffic continues from epoch 1's server state — exactly the
// chained-state contract the continuous audit verifies.
struct FrontEnd {
  std::unique_ptr<ServerCore> core;
  std::unique_ptr<Collector> collector;
  Reports reports;  // The epoch's executor reports, held between serve and stream.
};

// One HTTP/1.0 GET against the stats endpoint; returns the response body on a 200.
Result<std::string> HttpGet(const std::string& address, const std::string& path) {
  Result<std::unique_ptr<Connection>> conn = Transport::Default()->Connect(address);
  if (!conn.ok()) {
    return Result<std::string>::Error(conn.error());
  }
  if (Status st = conn.value()->WriteAll("GET " + path + " HTTP/1.0\r\n\r\n"); !st.ok()) {
    return Result<std::string>::Error(st.error());
  }
  std::string response;
  char buf[4096];
  while (true) {
    Result<size_t> n = conn.value()->ReadSome(buf, sizeof(buf));
    if (!n.ok()) {
      return Result<std::string>::Error(n.error());
    }
    if (n.value() == 0) {
      break;
    }
    response.append(buf, n.value());
  }
  const size_t body = response.find("\r\n\r\n");
  if (response.find(" 200 OK") == std::string::npos || body == std::string::npos) {
    return Result<std::string>::Error("GET " + path + " did not return 200: " +
                                      response.substr(0, response.find('\r')));
  }
  return response.substr(body + 4);
}

// Value of one `name value` series in a Prometheus text exposition; 0 when absent.
uint64_t SeriesValue(const std::string& text, const std::string& name) {
  const size_t pos = text.find("\n" + name + " ");
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(text.c_str() + pos + name.size() + 2, nullptr, 10);
}

Result<std::string> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Result<std::string>::Error("cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

// Serves epoch `epoch`'s slice on every front end and writes the reference spill pair
// each collector WOULD have flushed locally (the byte-parity + direct-audit baseline).
bool ServeAndSpillEpoch(std::vector<FrontEnd>* fes, uint64_t epoch, size_t per_shard,
                        const std::string& dir, std::vector<ShardEpochFiles>* direct) {
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    FrontEnd& fe = (*fes)[shard - 1];
    demo::ServeCounterShardSlice(fe.core.get(), fe.collector.get(), shard, epoch,
                                 per_shard);
    fe.reports = fe.core->TakeReports();
    const std::string stem =
        dir + "/direct_e" + std::to_string(epoch) + "_s" + std::to_string(shard);
    ShardEpochFiles files{stem + ".trace", stem + ".reports"};
    if (Status st = WriteTraceFile(files.trace_path, fe.collector->trace(), shard);
        !st.ok()) {
      return Fail(st.error());
    }
    if (Status st = WriteReportsFile(files.reports_path, fe.reports); !st.ok()) {
      return Fail(st.error());
    }
    direct->push_back(std::move(files));
  }
  return true;
}

// Streams one epoch from every front end concurrently — the deployment's steady state.
// `transports[s-1]` lets individual shards dial through a fault-injecting path.
bool StreamEpoch(const std::string& address, std::vector<FrontEnd>* fes, uint64_t epoch,
                 const std::vector<Transport*>& transports, ClientStats* stats_out) {
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kShards, Status::Ok());
  std::vector<ClientStats> stats(kShards);
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    threads.emplace_back([&, shard]() {
      CollectorClient client(address, transports[shard - 1], /*max_reconnects=*/32);
      statuses[shard - 1] =
          client.StreamEpoch(epoch, (*fes)[shard - 1].collector.get(),
                             (*fes)[shard - 1].reports);
      stats[shard - 1] = client.stats();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    if (!statuses[shard - 1].ok()) {
      return Fail("shard " + std::to_string(shard) + " epoch " + std::to_string(epoch) +
                  ": " + statuses[shard - 1].error());
    }
    stats_out->records_sent += stats[shard - 1].records_sent;
    stats_out->bytes_sent += stats[shard - 1].bytes_sent;
    stats_out->reconnects += stats[shard - 1].reconnects;
    stats_out->records_resumed += stats[shard - 1].records_resumed;
  }
  return true;
}

bool RunDemo() {
  const std::string dir = demo::ScratchDir("live_shard_audit");
  const std::string spool = demo::ScratchDir("live_shard_audit/spool");
  if (dir.empty() || spool.empty()) {
    return Fail("cannot create a scratch directory");
  }

  Result<Workload> workload = demo::MakeCounterWorkload();
  if (!workload.ok()) {
    return Fail(workload.error());
  }
  const Workload& w = workload.value();
  const size_t per_shard = static_cast<size_t>(400 * Scale()) + 8;

  // --- Verifier side: one long-running service, auditing epochs as they seal. ---
  AuditOptions audit_options;
  audit_options.max_group_size = 16;
  ServiceOptions base;
  base.shards_per_epoch = kShards;
  base.spool_dir = spool;
  Result<ServiceOptions> resolved = ResolveServiceOptions(base);
  if (!resolved.ok()) {
    return Fail(resolved.error());
  }
  AuditService service(&w.app, audit_options, w.initial, resolved.value());
  if (Status st = service.Start(); !st.ok()) {
    return Fail(st.error());
  }
  std::printf("audit service listening on %s (spool: %s)\n", service.address().c_str(),
              spool.c_str());

  std::vector<FrontEnd> fes;
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    FrontEnd fe;
    fe.core = std::make_unique<ServerCore>(&w.app, w.initial,
                                           ServerOptions{.record_reports = true});
    fe.collector = std::make_unique<Collector>(shard);
    fes.push_back(std::move(fe));
  }

  // --- Epoch 1: three concurrent clients; shard 2's process is killed mid-epoch. ---
  std::vector<ShardEpochFiles> direct_e1;
  if (!ServeAndSpillEpoch(&fes, /*epoch=*/1, per_shard, dir, &direct_e1)) {
    return false;
  }
  NetFaultOptions kill;
  kill.disconnect_after_writes = 20;  // Hello + ~19 records land, then the wire dies.
  FaultInjectingTransport kill_transport(nullptr, kill);
  ClientStats e1_stats;
  if (!StreamEpoch(service.address(), &fes, 1,
                   {nullptr, &kill_transport, nullptr}, &e1_stats)) {
    return false;
  }
  if (kill_transport.disconnects() < 1) {
    return Fail("the scripted kill never fired");
  }
  if (e1_stats.reconnects < 1 || e1_stats.records_resumed == 0) {
    return Fail("shard 2 should have reconnected and resumed from the acked counts");
  }
  Result<AuditResult> v1 = service.WaitEpochVerdict(1);
  if (!v1.ok()) {
    return Fail("epoch 1 verdict: " + v1.error());
  }
  if (!v1.value().accepted) {
    return Fail("epoch 1 should accept: " + v1.value().reason);
  }
  std::printf("epoch 1: ACCEPT after a mid-epoch kill (%llu reconnects, %llu records "
              "resumed instead of re-sent)\n",
              static_cast<unsigned long long>(e1_stats.reconnects),
              static_cast<unsigned long long>(e1_stats.records_resumed));

  // The service's sealed spools must be byte-identical to the local spill files.
  for (uint32_t shard = 1; shard <= kShards; shard++) {
    const std::string stem = spool + "/epoch_1_shard_" + std::to_string(shard);
    Result<std::string> spool_trace = Slurp(stem + ".trace");
    Result<std::string> spool_reports = Slurp(stem + ".reports");
    Result<std::string> direct_trace = Slurp(direct_e1[shard - 1].trace_path);
    Result<std::string> direct_reports = Slurp(direct_e1[shard - 1].reports_path);
    if (!spool_trace.ok() || !spool_reports.ok() || !direct_trace.ok() ||
        !direct_reports.ok()) {
      return Fail("reading spool/direct files for shard " + std::to_string(shard));
    }
    if (spool_trace.value() != direct_trace.value() ||
        spool_reports.value() != direct_reports.value()) {
      return Fail("shard " + std::to_string(shard) +
                  " spool diverges from the local spill bytes");
    }
  }
  std::printf("spool parity: all %u sealed spool pairs byte-identical to local spills\n",
              kShards);

  // --- Epoch 2: every client dials through a seeded probabilistic fault schedule. ---
  std::vector<ShardEpochFiles> direct_e2;
  if (!ServeAndSpillEpoch(&fes, /*epoch=*/2, per_shard, dir, &direct_e2)) {
    return false;
  }
  NetFaultOptions fo;
  fo.seed = 0x5eedull;
  if (const char* seed = std::getenv("OROCHI_FAULT_SEED"); seed != nullptr && *seed != '\0') {
    // Strict parse (decimal or 0x-hex), same contract as DemoFaultEnv: a malformed seed
    // must not silently dial a different fault schedule.
    Result<uint64_t> parsed = ParseSeed(seed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "config: OROCHI_FAULT_SEED='%s' is not a valid seed (%s)\n",
                   seed, parsed.error().c_str());
      std::exit(2);
    }
    fo.seed = parsed.value();
  }
  fo.p_disconnect_read = 0.01;
  fo.p_disconnect_write = 0.01;
  fo.disconnect_after_writes = 40;  // At least one fault fires even at tiny scales.
  FaultInjectingTransport faulty(nullptr, fo);
  ClientStats e2_stats;
  if (!StreamEpoch(service.address(), &fes, 2, {&faulty, &faulty, &faulty}, &e2_stats)) {
    return false;
  }
  Result<AuditResult> v2 = service.WaitEpochVerdict(2);
  if (!v2.ok()) {
    return Fail("epoch 2 verdict: " + v2.error());
  }
  if (!v2.value().accepted) {
    return Fail("epoch 2 should accept despite network faults: " + v2.value().reason);
  }
  if (faulty.faults_injected() < 1) {
    return Fail("the epoch 2 fault schedule never fired");
  }
  std::printf("epoch 2: ACCEPT under %llu injected network faults (%llu reconnects) — "
              "disconnects are retried, never tamper evidence\n",
              static_cast<unsigned long long>(faulty.faults_injected()),
              static_cast<unsigned long long>(e2_stats.reconnects));

  // --- Observability: with OROCHI_STATS_ADDRESS set, scrape the live endpoints and
  // demand the run's footprint is visible in them (the CI smoke runs this way). ---
  if (!service.stats_address().empty()) {
    Result<std::string> metrics = HttpGet(service.stats_address(), "/metrics");
    if (!metrics.ok()) {
      return Fail("scraping /metrics: " + metrics.error());
    }
    const uint64_t spooled =
        SeriesValue(metrics.value(), "orochi_service_records_spooled_total");
    const uint64_t pass2_micros =
        SeriesValue(metrics.value(), "orochi_phase_pass2_execute_micros_total");
    const uint64_t reattaches =
        SeriesValue(metrics.value(), "orochi_service_shard_reattaches_total");
    if (spooled == 0 || pass2_micros == 0) {
      return Fail("/metrics shows no ingest or audit activity (records_spooled=" +
                  std::to_string(spooled) + ", pass2_micros=" +
                  std::to_string(pass2_micros) + ")");
    }
    if (reattaches == 0) {
      return Fail("/metrics never counted the scripted kill's reattach");
    }
    Result<std::string> epochs = HttpGet(service.stats_address(), "/epochs");
    if (!epochs.ok()) {
      return Fail("scraping /epochs: " + epochs.error());
    }
    if (epochs.value().find("\"state\": \"accepted\"") == std::string::npos) {
      return Fail("/epochs lists no accepted epoch: " + epochs.value());
    }
    Result<std::string> shards = HttpGet(service.stats_address(), "/shards");
    if (!shards.ok()) {
      return Fail("scraping /shards: " + shards.error());
    }
    if (shards.value().find("\"sealed\": true") == std::string::npos) {
      return Fail("/shards lists no sealed shard: " + shards.value());
    }
    std::printf("stats scrape (%s): %llu records spooled, %llu reattaches, pass-2 "
                "executed for %llu us; /epochs + /shards agree\n",
                service.stats_address().c_str(),
                static_cast<unsigned long long>(spooled),
                static_cast<unsigned long long>(reattaches),
                static_cast<unsigned long long>(pass2_micros));
  }

  ServiceStats stats = service.stats();
  service.Stop();
  std::printf("service: %llu records spooled (%llu deduped on resume), %llu/%llu epochs "
              "accepted, %llu shards sealed, %llu quarantined\n",
              static_cast<unsigned long long>(stats.records_spooled),
              static_cast<unsigned long long>(stats.records_deduped),
              static_cast<unsigned long long>(stats.epochs_accepted),
              static_cast<unsigned long long>(stats.epochs_audited),
              static_cast<unsigned long long>(stats.shards_sealed),
              static_cast<unsigned long long>(stats.shards_quarantined));

  // --- Cross-check: the live verdicts equal a direct sharded audit of the same bytes,
  // at two verifier thread counts. ---
  for (size_t threads : {size_t{1}, size_t{4}}) {
    AuditOptions options;
    options.max_group_size = 16;
    options.num_threads = threads;
    AuditSession session = AuditSession::Open(&w.app, options, w.initial);
    Result<AuditResult> d1 = session.FeedShardedEpoch(direct_e1);
    if (!d1.ok() || !d1.value().accepted) {
      return Fail("direct epoch 1 should accept: " +
                  (d1.ok() ? d1.value().reason : d1.error()));
    }
    Result<AuditResult> d2 = session.FeedShardedEpoch(direct_e2);
    if (!d2.ok() || !d2.value().accepted) {
      return Fail("direct epoch 2 should accept: " +
                  (d2.ok() ? d2.value().reason : d2.error()));
    }
    if (InitialStateFingerprint(d1.value().final_state) !=
            InitialStateFingerprint(v1.value().final_state) ||
        InitialStateFingerprint(d2.value().final_state) !=
            InitialStateFingerprint(v2.value().final_state)) {
      return Fail("live end state diverges from the direct audit at num_threads=" +
                  std::to_string(threads));
    }
    std::printf("cross-check (num_threads=%zu): live verdicts + end states == direct "
                "FeedShardedEpoch\n",
                threads);
  }
  return true;
}

}  // namespace

int main() {
  bool ok = RunDemo();
  std::printf("live_shard_audit: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
