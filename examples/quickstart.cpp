// Quickstart: deploy a tiny app on the (untrusted) server, serve a handful of requests,
// collect the trace + reports, and audit. Then tamper with one response and watch the
// verifier reject.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "examples/example_util.h"
#include "src/core/auditor.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/tamper.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

using namespace orochi;

int main() {
  // 1+2. The principal's application — a per-key visit counter (wscript, compiled on
  //      load) — and the state both sides agree on at the start of the audit period.
  Result<Workload> workload = demo::MakeCounterWorkload();
  if (!workload.ok()) {
    std::printf("setup failed: %s\n", workload.error().c_str());
    return 1;
  }
  const Application& app = workload.value().app;
  const InitialState& initial = workload.value().initial;

  // 3. The executor (untrusted) + the collector (trusted middlebox).
  ServerCore core(&app, initial, ServerOptions{.record_reports = true});
  Collector collector;
  {
    ThreadServer server(&core, &collector, /*num_workers=*/4);
    RequestId rid = 1;
    for (int i = 0; i < 24; i++) {
      RequestParams params;
      params["key"] = (i % 2 == 0) ? "home" : "about";
      params["who"] = "client" + std::to_string(i % 3);
      server.Submit(rid++, "/counter/hit", std::move(params));
    }
    for (int i = 0; i < 6; i++) {
      RequestParams params;
      params["key"] = (i % 2 == 0) ? "home" : "about";
      server.Submit(rid++, "/counter/read", std::move(params));
    }
    server.Drain();
  }
  Trace trace = collector.TakeTrace();
  Reports reports = core.TakeReports();
  std::printf("served %zu requests; trace %zu bytes, reports %zu bytes\n",
              trace.NumRequests(), trace.WireBytes(), reports.WireBytes());

  // 4. The audit (SSCO): grouped SIMD-on-demand re-execution + simulate-and-check +
  //    consistent ordering verification.
  Auditor auditor(&app);
  AuditResult result = auditor.Audit(trace, reports, initial);
  std::printf("audit verdict: %s\n", result.accepted ? "ACCEPT" : "REJECT");
  std::printf("  control-flow groups: %llu (%llu with >1 request)\n",
              static_cast<unsigned long long>(result.stats.num_groups),
              static_cast<unsigned long long>(result.stats.groups_multi));
  std::printf("  instructions re-executed: %llu (%.1f%% univalent)\n",
              static_cast<unsigned long long>(result.stats.total_instructions),
              100.0 * (1.0 - static_cast<double>(result.stats.multivalent_instructions) /
                                 static_cast<double>(result.stats.total_instructions)));
  if (!result.accepted) {
    std::printf("  reason: %s\n", result.reason.c_str());
    return 1;
  }

  // 5. A misbehaving executor: flip one response the clients actually saw.
  TamperResponseBody(&trace, /*rid=*/5, "<html><body>counter 'home' is now 9999</body></html>");
  AuditResult tampered = auditor.Audit(trace, reports, initial);
  std::printf("audit of tampered trace: %s (%s)\n", tampered.accepted ? "ACCEPT" : "REJECT",
              tampered.reason.c_str());
  return tampered.accepted ? 1 : 0;
}
