// Shared plumbing for the examples, so each demo's source is its scenario rather than
// boilerplate: the OROCHI_BENCH_SCALE knob, scratch directories, failure reporting, the
// OROCHI_FAULT_SEED fault-injection environment, the tiny counter workload every
// infrastructure demo audits, and the serve-traffic-through-a-concurrent-server loops.
#ifndef EXAMPLES_EXAMPLE_UTIL_H_
#define EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/io_env.h"
#include "src/common/strings.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

namespace orochi {
namespace demo {

// OROCHI_BENCH_SCALE scales request counts (CI smoke-runs with a small scale). A
// malformed value is a config error, not a silent 1.0 — same contract as the audit knobs.
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("OROCHI_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    Result<double> v = ParseScale(env);
    if (!v.ok()) {
      std::fprintf(stderr, "config: OROCHI_BENCH_SCALE='%s' is not a valid scale (%s)\n",
                   env, v.error().c_str());
      std::exit(2);
    }
    return v.value();
  }();
  return scale;
}

// TMPDIR/orochi_<name>, created; empty string when creation failed.
inline std::string ScratchDir(const std::string& name) {
  const char* env = std::getenv("TMPDIR");
  std::string dir = std::string(env != nullptr ? env : "/tmp") + "/orochi_" + name;
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    return std::string();
  }
  return dir;
}

inline bool Fail(const std::string& what) {
  std::printf("FAILED: %s\n", what.c_str());
  return false;
}

// OROCHI_FAULT_SEED, when set, wraps a demo's file I/O in a FaultInjectingEnv firing only
// absorbable faults (transient read errors + short reads) — the demo must behave
// identically, which is what the CI fault matrix asserts. nullptr = plain posix I/O.
// Seeds parse strictly (decimal or 0x-hex); a malformed seed is a config error, not a
// silent seed-0 schedule.
inline FaultInjectingEnv* DemoFaultEnv() {
  static FaultInjectingEnv* env = []() -> FaultInjectingEnv* {
    const char* seed = std::getenv("OROCHI_FAULT_SEED");
    if (seed == nullptr || *seed == '\0') {
      return nullptr;
    }
    Result<uint64_t> parsed = ParseSeed(seed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "config: OROCHI_FAULT_SEED='%s' is not a valid seed (%s)\n",
                   seed, parsed.error().c_str());
      std::exit(2);
    }
    FaultOptions fo;
    fo.seed = parsed.value();
    fo.p_read_transient = 0.02;
    fo.p_short_read = 0.10;
    return new FaultInjectingEnv(nullptr, fo);
  }();
  return env;
}

// The tiny per-key visit counter backed by all three object kinds, with the hits table
// the /counter scripts write — the workload every infrastructure demo audits.
inline Result<Workload> MakeCounterWorkload() {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  if (Result<StmtResult> r =
          w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
      !r.ok()) {
    return Result<Workload>::Error(r.error());
  }
  return w;
}

// Serves every item of `w` through a concurrent ThreadServer and drains.
inline void ServeAll(const Workload& w, ServerCore* core, Collector* collector,
                     int workers = 4) {
  ThreadServer server(core, collector, workers);
  RequestId rid = 1;
  for (const WorkItem& item : w.items) {
    server.Submit(rid++, item.script, item.params);
  }
  server.Drain();
}

// One front end's deterministic slice of counter traffic for the sharded demos: disjoint
// key/user space and a disjoint rid range per (shard, epoch), recorded into `collector`.
inline void ServeCounterShardSlice(ServerCore* core, Collector* collector,
                                   uint32_t shard_id, uint64_t epoch, size_t requests,
                                   int workers = 4) {
  ThreadServer server(core, collector, workers);
  RequestId rid = 1 + 100000 * shard_id + 1000000 * (epoch - 1);
  for (size_t i = 0; i < requests; i++) {
    RequestParams params;
    params["key"] = "s" + std::to_string(shard_id) + "_k" + std::to_string(i % 11);
    params["who"] = "s" + std::to_string(shard_id) + "_u" + std::to_string(i % 17);
    server.Submit(rid++, (i % 4 == 3) ? "/counter/read" : "/counter/hit", params);
  }
  server.Drain();
}

}  // namespace demo
}  // namespace orochi

#endif  // EXAMPLES_EXAMPLE_UTIL_H_
