// Domain example: the forum (phpBB-style) workload under a gauntlet of misbehaving
// executors. Every tamper models a real attack from the paper's threat model — lying about
// responses, about the operation order, about op counts, about non-determinism — and each
// must flip the verdict to REJECT while the honest run ACCEPTs.
#include <cstdio>

#include <functional>
#include <string>
#include <vector>

#include "examples/example_util.h"
#include "src/core/auditor.h"
#include "src/server/collector.h"
#include "src/server/tamper.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

using namespace orochi;

namespace {

struct Scenario {
  std::string name;
  std::function<bool(Trace*, Reports*)> apply;  // Returns false if inapplicable.
};

}  // namespace

int main() {
  ForumConfig config;
  config.num_topics = 5;
  config.num_users = 12;
  config.num_requests = 800;
  Workload w = MakeForumWorkload(config);

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  demo::ServeAll(w, &core, &collector);
  Trace honest_trace = collector.TakeTrace();
  Reports honest_reports = core.TakeReports();

  Auditor auditor(&w.app);
  AuditResult honest = auditor.Audit(honest_trace, honest_reports, w.initial);
  std::printf("honest run: %s\n", honest.accepted ? "ACCEPT" : "REJECT");
  if (!honest.accepted) {
    std::printf("  %s\n", honest.reason.c_str());
    return 1;
  }

  // Find a db-log index and a register-log index for log-level tampers.
  int db_obj = honest_reports.FindObject(ObjectKind::kDb, "");
  size_t db_len = db_obj >= 0 ? honest_reports.op_logs[static_cast<size_t>(db_obj)].size() : 0;

  std::vector<Scenario> scenarios = {
      {"forged response body",
       [](Trace* t, Reports*) { return TamperResponseBody(t, 3, "<html>hacked</html>"); }},
      {"responses swapped between two requests",
       [](Trace* t, Reports*) { return SwapResponseBodies(t, 2, 9); }},
      {"db log entries reordered",
       [&](Trace*, Reports* r) {
         return db_len >= 2 && SwapLogEntries(r, static_cast<size_t>(db_obj), 0, db_len / 2);
       }},
      {"db log entry dropped",
       [&](Trace*, Reports* r) {
         return db_len >= 1 && DropLogEntry(r, static_cast<size_t>(db_obj), db_len / 3);
       }},
      {"op count understated",
       [](Trace*, Reports* r) {
         for (auto& [rid, m] : r->op_counts) {
           if (m > 0) {
             return TamperOpCount(r, rid, m - 1);
           }
         }
         return false;
       }},
      {"op count overstated",
       [](Trace*, Reports* r) {
         for (auto& [rid, m] : r->op_counts) {
           if (m > 0) {
             return TamperOpCount(r, rid, m + 1);
           }
         }
         return false;
       }},
      {"request moved to a wrong control-flow group",
       [](Trace*, Reports* r) {
         if (r->groups.size() < 2) {
           return false;
         }
         auto first = r->groups.begin();
         auto second = std::next(first);
         return MoveRequestToGroup(r, first->second[0], second->first);
       }},
      {"recorded time() value rewound",
       [](Trace*, Reports* r) {
         for (auto& [rid, records] : r->nondet) {
           for (size_t i = 0; i < records.size(); i++) {
             if (records[i].name == "time") {
               return TamperNondet(r, rid, i, Value::Int(1));
             }
           }
         }
         return false;
       }},
  };

  int failures = 0;
  for (const Scenario& scenario : scenarios) {
    Trace trace = honest_trace;
    Reports reports = honest_reports;
    if (!scenario.apply(&trace, &reports)) {
      std::printf("%-45s -> (not applicable to this run)\n", scenario.name.c_str());
      continue;
    }
    AuditResult result = auditor.Audit(trace, reports, w.initial);
    bool ok = !result.accepted;
    if (!ok) {
      failures++;
    }
    std::printf("%-45s -> %s%s\n", scenario.name.c_str(),
                result.accepted ? "ACCEPT" : "REJECT", ok ? "" : "   <-- MISSED ATTACK");
  }
  std::printf("%s\n", failures == 0 ? "all tampers detected" : "some tampers were missed");
  return failures == 0 ? 0 : 1;
}
