// Versioned database tests: Warp-style interval visibility (§4.5), the redo-pass
// timestamp discipline, modification tracking for query dedup, and final-state extraction.
#include <gtest/gtest.h>

#include "src/sql/sql_parser.h"
#include "src/sql/versioned_database.h"

namespace orochi {
namespace {

void MustApply(VersionedDatabase* db, const std::string& sql, uint64_t ts) {
  Result<StmtResult> r = db->ApplyWriteText(sql, ts);
  ASSERT_TRUE(r.ok()) << sql << ": " << (r.ok() ? "" : r.error());
}

int64_t CountAt(const VersionedDatabase& db, const std::string& table, uint64_t ts) {
  Result<StmtResult> r = db.SelectText("SELECT count(*) AS n FROM " + table, ts);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return r.ok() ? r.value().rows.rows[0][0].as_int() : -1;
}

TEST(VersionedDb, InsertVisibleOnlyFromItsTimestamp) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 10);
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", 20);
  MustApply(&db, "INSERT INTO t (a) VALUES (2)", 30);
  EXPECT_EQ(CountAt(db, "t", 15), 0);
  EXPECT_EQ(CountAt(db, "t", 20), 1);
  EXPECT_EQ(CountAt(db, "t", 25), 1);
  EXPECT_EQ(CountAt(db, "t", 30), 2);
  EXPECT_EQ(CountAt(db, "t", 1000), 2);
}

TEST(VersionedDb, UpdateCreatesNewVersionOldStaysVisible) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT, b TEXT)", 1);
  MustApply(&db, "INSERT INTO t (a, b) VALUES (1, 'old')", 10);
  MustApply(&db, "UPDATE t SET b = 'new' WHERE a = 1", 20);
  Result<StmtResult> before = db.SelectText("SELECT b FROM t", 15);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().rows.rows[0][0].as_text(), "old");
  Result<StmtResult> after = db.SelectText("SELECT b FROM t", 20);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().rows.rows[0][0].as_text(), "new");
  // Two versions exist physically.
  EXPECT_EQ(db.VersionedRowCount("t"), 2u);
}

TEST(VersionedDb, DeleteClosesInterval) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 1);
  MustApply(&db, "INSERT INTO t (a) VALUES (7)", 10);
  MustApply(&db, "DELETE FROM t WHERE a = 7", 20);
  EXPECT_EQ(CountAt(db, "t", 19), 1);
  EXPECT_EQ(CountAt(db, "t", 20), 0);
  EXPECT_EQ(CountAt(db, "t", 999), 0);
}

TEST(VersionedDb, ReadAtTsSeesWritesAtSameTs) {
  // The redo stamps query q of txn s at ts = s*MAXQ + q; a read at ts must see the write
  // at ts' <= ts (start_ts <= ts inclusive).
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", VersionedDatabase::MakeTimestamp(1, 1));
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", VersionedDatabase::MakeTimestamp(2, 1));
  // Within transaction 2, query 2 (a read) sees query 1's insert.
  EXPECT_EQ(CountAt(db, "t", VersionedDatabase::MakeTimestamp(2, 2)), 1);
  // But a read in transaction 1 (earlier) does not.
  EXPECT_EQ(CountAt(db, "t", VersionedDatabase::MakeTimestamp(1, 2)), 0);
}

TEST(VersionedDb, TableModifiedBetweenTracksWindows) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 5);
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", 10);
  MustApply(&db, "UPDATE t SET a = 2", 30);
  // (from, to] semantics.
  EXPECT_FALSE(db.TableModifiedBetween("t", 10, 29));
  EXPECT_TRUE(db.TableModifiedBetween("t", 10, 30));
  EXPECT_TRUE(db.TableModifiedBetween("t", 9, 10));
  EXPECT_FALSE(db.TableModifiedBetween("t", 30, 1000));
  EXPECT_FALSE(db.TableModifiedBetween("t", 30, 30));
  // Unknown tables are conservatively modified.
  EXPECT_TRUE(db.TableModifiedBetween("ghost", 0, 1));
}

TEST(VersionedDb, NoopWriteDoesNotMarkModification) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 5);
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", 10);
  MustApply(&db, "UPDATE t SET a = 9 WHERE a = 777", 20);  // Matches nothing.
  EXPECT_FALSE(db.TableModifiedBetween("t", 10, 25));
}

TEST(VersionedDb, DryRunEvaluatesWithoutMutating) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 5);
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", 10);
  Result<SqlStatement> stmt = ParseSql("UPDATE t SET a = a + 1");
  ASSERT_TRUE(stmt.ok());
  Result<StmtResult> dry = db.ApplyWrite(stmt.value(), 20, /*commit=*/false);
  ASSERT_TRUE(dry.ok());
  EXPECT_EQ(dry.value().affected, 1);
  // Nothing changed.
  Result<StmtResult> r = db.SelectText("SELECT a FROM t", 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.rows[0][0].as_int(), 1);
  EXPECT_FALSE(db.TableModifiedBetween("t", 10, 100));
}

TEST(VersionedDb, DryRunStillReportsErrors) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 5);
  Result<SqlStatement> stmt = ParseSql("UPDATE t SET ghost = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(db.ApplyWrite(stmt.value(), 10, /*commit=*/false).ok());
}

TEST(VersionedDb, LatestStateDropsHistory) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 1);
  MustApply(&db, "INSERT INTO t (a) VALUES (1)", 10);
  MustApply(&db, "UPDATE t SET a = 2", 20);
  MustApply(&db, "INSERT INTO t (a) VALUES (3)", 30);
  MustApply(&db, "DELETE FROM t WHERE a = 3", 40);
  Database latest = db.LatestState();
  EXPECT_EQ(latest.RowCount("t"), 1u);
  Result<StmtResult> r = latest.ExecuteText("SELECT a FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.rows[0][0].as_int(), 2);
}

TEST(VersionedDb, SelectRejectsWrites) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (a INT)", 1);
  EXPECT_FALSE(db.SelectText("DELETE FROM t", 10).ok());
  Result<SqlStatement> sel = ParseSql("SELECT a FROM t");
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(db.ApplyWrite(sel.value(), 10).ok());
}

TEST(VersionedDb, VersionedFootprintExceedsLatest) {
  VersionedDatabase db;
  MustApply(&db, "CREATE TABLE t (s TEXT)", 1);
  MustApply(&db, "INSERT INTO t (s) VALUES ('row')", 10);
  for (uint64_t ts = 20; ts < 120; ts += 10) {
    MustApply(&db, "UPDATE t SET s = 'row" + std::to_string(ts) + "'", ts);
  }
  // 1 live row, 11 versions: the "temp DB overhead" of Figure 8.
  EXPECT_EQ(db.LatestState().RowCount("t"), 1u);
  EXPECT_EQ(db.VersionedRowCount("t"), 11u);
}

}  // namespace
}  // namespace orochi
