// Deterministic wire-format corruption fuzzer: a seeded byte-flip + truncation sweep
// over every spill-file kind the verifier consumes — trace, reports (including the
// seekable op-log sections the out-of-core index point-reads), shard manifest, and state
// snapshot. The invariant under attack is the reader/auditor contract at the trust
// boundary:
//
//   1. never crash — every mutation must come back as a clean error Result or a REJECT;
//   2. never falsely accept — an audit that still ACCEPTs a mutated epoch must produce
//      the pristine final_state, i.e. the mutation was semantically invisible (a flipped
//      opaque group tag is the canonical example: grouping is untrusted advice);
//   3. the in-memory and streamed paths must classify every mutation identically —
//      same error, same verdict, same reason, same final state — so a validator that
//      drifts between the resident reader and the streaming index shows up here.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/crc32c.h"
#include "src/common/rng.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/stream_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// Little-endian field accessors for forging exact bytes of a record payload in place.
uint32_t GetU32At(const std::string& b, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(b[off + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void PutU32At(std::string* b, size_t off, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    (*b)[off + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint64_t GetU64At(const std::string& b, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(b[off + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

void PutU64At(std::string* b, size_t off, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    (*b)[off + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Payload locations of every v3 segmented op-log record in a reports file, in file order.
struct SegRecLoc {
  size_t payload;  // Offset of the payload (just past the 13-byte frame).
  size_t len;      // Payload length.
};

std::vector<SegRecLoc> FindSegmentRecords(const std::string& bytes) {
  std::vector<SegRecLoc> out;
  size_t pos = wire::kEnvelopeHeaderBytes;
  while (pos + wire::kRecordFrameBytesV2 <= bytes.size()) {
    uint8_t type = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!wire::ParseRecordFrameV2(bytes.data() + pos, bytes.size() - pos, &type, &len,
                                  &crc)) {
      break;
    }
    if (type == wire::kEndRecord) {
      break;
    }
    if (type == wire::kReportsRecOpLogSegment) {
      out.push_back({pos + wire::kRecordFrameBytesV2, static_cast<size_t>(len)});
    }
    pos += wire::kRecordFrameBytesV2 + static_cast<size_t>(len);
  }
  return out;
}

// Re-stamps the frame CRC of the record whose payload begins at `payload_off`, so a
// forged payload passes the wire layer and reaches the segment validator itself.
void RestampRecordCrc(std::string* bytes, size_t payload_off, size_t len) {
  uint32_t crc = Crc32c(bytes->data() + payload_off, len);
  for (int i = 0; i < 4; i++) {
    (*bytes)[payload_off - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

// Flips one payload byte of a random v2 record and re-stamps that record's CRC, so the
// file passes every wire-level check and the corruption reaches the decoders and the
// audit itself — the adversarial case CRCs cannot catch (a tamperer can recompute them).
// Returns the pristine bytes unchanged if the file has no non-empty records.
std::string MutatePayloadCrcFixed(const std::string& pristine, Rng* rng,
                                  std::string* label) {
  std::string bytes = pristine;
  struct Rec {
    size_t frame;  // Offset of the 13-byte frame.
    size_t len;    // Payload length.
  };
  std::vector<Rec> records;
  size_t pos = wire::kEnvelopeHeaderBytes;
  while (pos + wire::kRecordFrameBytesV2 <= bytes.size()) {
    uint8_t type = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
    if (!wire::ParseRecordFrameV2(bytes.data() + pos, bytes.size() - pos, &type, &len,
                                  &crc)) {
      break;
    }
    if (type == wire::kEndRecord) {
      break;
    }
    if (len > 0) {
      records.push_back({pos, static_cast<size_t>(len)});
    }
    pos += wire::kRecordFrameBytesV2 + static_cast<size_t>(len);
  }
  if (records.empty()) {
    *label = "crcfix-noop";
    return bytes;
  }
  const Rec& rec = records[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(records.size()) - 1))];
  const size_t payload = rec.frame + wire::kRecordFrameBytesV2;
  size_t off = payload + static_cast<size_t>(
                             rng->UniformInt(0, static_cast<int64_t>(rec.len) - 1));
  uint8_t mask = static_cast<uint8_t>(rng->UniformInt(1, 255));
  bytes[off] = static_cast<char>(static_cast<uint8_t>(bytes[off]) ^ mask);
  uint32_t crc = Crc32c(bytes.data() + payload, rec.len);
  for (int i = 0; i < 4; i++) {
    bytes[rec.frame + 9 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  *label = "crcfix-flip@" + std::to_string(off) + "^" + std::to_string(mask);
  return bytes;
}

// One mutation: flip a random byte (XOR with a nonzero mask, so the file always
// changes), truncate at a random length, or flip a payload byte with the record CRC
// re-stamped (so the corruption survives the wire layer and hits the audit).
std::string Mutate(const std::string& pristine, Rng* rng, std::string* label) {
  if (rng->Chance(0.34)) {
    return MutatePayloadCrcFixed(pristine, rng, label);
  }
  std::string bytes = pristine;
  if (rng->Chance(0.25) && bytes.size() > 1) {
    size_t len = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    bytes.resize(len);
    *label = "truncate@" + std::to_string(len);
  } else {
    size_t off = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    uint8_t mask = static_cast<uint8_t>(rng->UniformInt(1, 255));
    bytes[off] = static_cast<char>(static_cast<uint8_t>(bytes[off]) ^ mask);
    *label = "flip@" + std::to_string(off) + "^" + std::to_string(mask);
  }
  return bytes;
}

// Outcome of one audit attempt, flattened for cross-path comparison.
struct Outcome {
  bool file_error = false;
  std::string error;
  bool accepted = false;
  std::string reason;
  std::string fingerprint;  // Empty unless accepted.

  bool operator==(const Outcome& o) const {
    return file_error == o.file_error && error == o.error && accepted == o.accepted &&
           reason == o.reason && fingerprint == o.fingerprint;
  }
};

Outcome FromFeed(const Result<AuditResult>& r) {
  Outcome out;
  if (!r.ok()) {
    out.file_error = true;
    out.error = r.error();
    return out;
  }
  out.accepted = r.value().accepted;
  out.reason = r.value().reason;
  if (out.accepted) {
    out.fingerprint = InitialStateFingerprint(r.value().final_state);
  }
  return out;
}

struct FuzzFixture {
  Workload w;
  InitialState epoch2_initial;     // The state epoch 1's accepted audit handed off.
  std::string state_path;          // Snapshot of epoch2_initial (the state spill file).
  std::string trace_path;          // Epoch 2 trace (shard-stamped for the manifest sweep).
  std::string reports_path;        // Epoch 2 reports.
  std::string manifest_path;       // Single-shard manifest naming the epoch-2 pair.
  std::string initial_state_fp;    // Fingerprint of epoch2_initial.
  Outcome reference;               // The pristine epoch-2 verdict (accepted).
};

AuditOptions FuzzOptions() {
  AuditOptions options;
  options.num_threads = 2;
  options.max_group_size = 8;
  options.max_resident_bytes = 512;  // Tiny: the sweep exercises paging everywhere.
  return options;
}

// Serves two epochs of the counter workload on one continuing server (epoch 1 seeds a
// rich state: registers, kv counters, db rows), audits epoch 1, snapshots its final
// state, and spills epoch 2 — the epoch every mutation sweep below audits. The counter
// scripts echo every input and read every object kind, so mutations have almost nowhere
// semantically-invisible to hide (opaque group tags being the deliberate exception).
FuzzFixture BuildFixture() {
  FuzzFixture fx;
  fx.w.app = BuildCounterApp();
  EXPECT_TRUE(
      fx.w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)").ok());

  const std::string dir = ::testing::TempDir();
  std::string trace1 = dir + "/fuzz_e1_trace.bin";
  std::string reports1 = dir + "/fuzz_e1_reports.bin";
  fx.trace_path = dir + "/fuzz_e2_trace.bin";
  fx.reports_path = dir + "/fuzz_e2_reports.bin";

  ServerCore core(&fx.w.app, fx.w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  RequestId rid = 1;
  for (int epoch = 0; epoch < 2; epoch++) {
    {
      ThreadServer server(&core, &collector, /*num_workers=*/4);
      for (size_t i = 0; i < 36; i++) {
        RequestParams params;
        params["key"] = "k" + std::to_string(i % 5);
        params["who"] = "w" + std::to_string(i % 7);
        server.Submit(rid++, (i % 4 == 3) ? "/counter/read" : "/counter/hit", params);
      }
      server.Drain();
    }
    if (epoch == 0) {
      EXPECT_TRUE(collector.Flush(trace1).ok());
      EXPECT_TRUE(core.ExportReports(reports1).ok());
    } else {
      // The manifest sweep checks stamped-id validation, so stamp the epoch-2 trace.
      Trace t = collector.TakeTrace();
      EXPECT_TRUE(WriteTraceFile(fx.trace_path, t, /*shard_id=*/1).ok());
      EXPECT_TRUE(core.ExportReports(fx.reports_path).ok());
    }
  }

  AuditSession session = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
  Result<AuditResult> e1 = session.FeedEpochFilesStreamed(trace1, reports1);
  EXPECT_TRUE(e1.ok() && e1.value().accepted)
      << (e1.ok() ? e1.value().reason : e1.error());
  fx.epoch2_initial = session.state();
  fx.initial_state_fp = InitialStateFingerprint(fx.epoch2_initial);
  fx.state_path = dir + "/fuzz_state1.bin";
  EXPECT_TRUE(session.SaveState(fx.state_path).ok());

  ShardManifest manifest;
  manifest.epoch = 2;
  manifest.shards.push_back({1, "fuzz_e2_trace.bin", "fuzz_e2_reports.bin"});
  fx.manifest_path = dir + "/fuzz_e2.manifest";
  EXPECT_TRUE(WriteShardManifestFile(fx.manifest_path, manifest).ok());

  Result<AuditResult> e2 = session.FeedEpochFilesStreamed(fx.trace_path, fx.reports_path);
  fx.reference = FromFeed(e2);
  EXPECT_TRUE(fx.reference.accepted) << fx.reference.reason << fx.reference.error;
  return fx;
}

// Shared sweep bookkeeping: every mutation must land in {error, reject,
// semantically-invisible accept}; the caller-specific body classifies one mutation.
struct SweepTally {
  size_t errors = 0;
  size_t rejects = 0;
  size_t benign_accepts = 0;
};

void CheckOutcomeAgainstReference(const Outcome& got, const Outcome& reference,
                                  const std::string& what, SweepTally* tally) {
  if (got.file_error) {
    tally->errors++;
    return;
  }
  if (!got.accepted) {
    EXPECT_FALSE(got.reason.empty()) << what;
    tally->rejects++;
    return;
  }
  // An accepted mutation must be semantically invisible: bit-identical final state.
  EXPECT_EQ(got.fingerprint, reference.fingerprint)
      << what << ": mutated epoch ACCEPTed with a different final state";
  tally->benign_accepts++;
}

TEST(WireFuzz, TraceAndReportsMutationsNeverCrashAndNeverFalselyAccept) {
  FuzzFixture fx = BuildFixture();
  const std::string pristine_trace = ReadAll(fx.trace_path);
  const std::string pristine_reports = ReadAll(fx.reports_path);
  const std::string dir = ::testing::TempDir();

  struct Kind {
    const char* name;
    const std::string* pristine;
    bool mutate_trace;
  };
  const Kind kinds[] = {{"trace", &pristine_trace, true},
                        {"reports", &pristine_reports, false}};
  const uint64_t base_seed = TestBaseSeed(0x5EED0000);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  for (const Kind& kind : kinds) {
    Rng rng(base_seed + (kind.mutate_trace ? 1 : 2));
    SweepTally tally;
    for (int i = 0; i < 120; i++) {
      std::string label;
      std::string mutated = Mutate(*kind.pristine, &rng, &label);
      std::string mutated_path = dir + "/fuzz_mut_" + kind.name + ".bin";
      WriteAll(mutated_path, mutated);
      const std::string trace = kind.mutate_trace ? mutated_path : fx.trace_path;
      const std::string reports = kind.mutate_trace ? fx.reports_path : mutated_path;
      const std::string what = std::string(kind.name) + " " + label;

      AuditSession streamed =
          AuditSession::Open(&fx.w.app, FuzzOptions(), fx.epoch2_initial);
      Outcome got = FromFeed(streamed.FeedEpochFilesStreamed(trace, reports));
      CheckOutcomeAgainstReference(got, fx.reference, what + " (streamed)", &tally);

      // The in-memory reader must classify the mutation identically, byte for byte —
      // the two paths share one validator, and this sweep keeps them honest.
      AuditSession in_memory =
          AuditSession::Open(&fx.w.app, FuzzOptions(), fx.epoch2_initial);
      Outcome mem = FromFeed(in_memory.FeedEpochFiles(trace, reports));
      EXPECT_TRUE(mem == got) << what << ": streamed {" << got.error << "|" << got.reason
                              << "} vs in-memory {" << mem.error << "|" << mem.reason
                              << "}";
    }
    // The sweep must have bitten: wire-level rejects AND audit-level rejects both occur.
    EXPECT_GT(tally.errors, 10u) << kind.name;
    EXPECT_GT(tally.rejects, 0u) << kind.name;
  }
}

TEST(WireFuzz, ManifestMutationsNeverCrashAndNeverFalselyAccept) {
  FuzzFixture fx = BuildFixture();
  const std::string pristine = ReadAll(fx.manifest_path);
  const std::string mutated_path = ::testing::TempDir() + "/fuzz_mut.manifest";
  const uint64_t base_seed = TestBaseSeed(0x5EED0000);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Rng rng(base_seed + 3);
  SweepTally tally;
  for (int i = 0; i < 120; i++) {
    std::string label;
    WriteAll(mutated_path, Mutate(pristine, &rng, &label));
    AuditSession session =
        AuditSession::Open(&fx.w.app, FuzzOptions(), fx.epoch2_initial);
    Outcome got = FromFeed(session.FeedShardedEpoch(mutated_path));
    CheckOutcomeAgainstReference(got, fx.reference, "manifest " + label, &tally);
  }
  // Most manifest bytes are structural (paths, ids, frames): flips overwhelmingly error.
  EXPECT_GT(tally.errors, 60u);
}

TEST(WireFuzz, StateSnapshotMutationsNeverCrashAndLoadDefensively) {
  FuzzFixture fx = BuildFixture();
  const std::string pristine = ReadAll(fx.state_path);
  const std::string mutated_path = ::testing::TempDir() + "/fuzz_mut_state.bin";
  const uint64_t base_seed = TestBaseSeed(0x5EED0000);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Rng rng(base_seed + 4);
  size_t read_errors = 0;
  size_t loaded = 0;
  for (int i = 0; i < 120; i++) {
    std::string label;
    WriteAll(mutated_path, Mutate(pristine, &rng, &label));
    Result<AuditSession> opened =
        AuditSession::OpenFromStateFile(&fx.w.app, FuzzOptions(), mutated_path);
    if (!opened.ok()) {
      read_errors++;
      continue;
    }
    loaded++;
    // A state file is the verifier's own artifact, so a decodable mutation is a valid
    // (different) starting state, not an attack the audit must reject. Two guarantees
    // still hold: auditing from it never crashes, and if the loaded state is
    // bit-identical to the pristine snapshot the verdict must be too.
    Result<AuditResult> fed =
        opened.value().FeedEpochFilesStreamed(fx.trace_path, fx.reports_path);
    Outcome got = FromFeed(fed);
    if (InitialStateFingerprint(opened.value().state()) == fx.initial_state_fp) {
      EXPECT_TRUE(got == fx.reference) << "state " << label;
    } else if (got.accepted) {
      // The epoch replayed cleanly from a different state: its outputs cannot have
      // depended on anything the mutation changed, so the end state must differ from
      // the pristine one in exactly the mutated (unread) values — never equal-by-luck
      // with a different history.
      EXPECT_NE(got.fingerprint, std::string()) << "state " << label;
    }
  }
  EXPECT_GT(read_errors, 40u);
  EXPECT_GT(loaded + read_errors, 0u);
}

// One-hot-object fixture for the v3 segment sweeps: every request hits the same counter
// key with a long user string, so the shared `hits` db object's op-log (every statement
// carries the ~800-byte user) crosses wire::kMaxOpLogSegmentBytes and the spill file
// carries kReportsRecOpLogSegment records.
struct SegmentedFixture {
  Workload w;
  std::string trace_path;
  std::string reports_path;
  Outcome reference;  // The pristine verdict (accepted).
};

SegmentedFixture BuildSegmentedFixture() {
  SegmentedFixture fx;
  fx.w.app = BuildCounterApp();
  EXPECT_TRUE(
      fx.w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)").ok());
  const std::string dir = ::testing::TempDir();
  fx.trace_path = dir + "/seg_trace.bin";
  fx.reports_path = dir + "/seg_reports.bin";

  ServerCore core(&fx.w.app, fx.w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  {
    ThreadServer server(&core, &collector, /*num_workers=*/4);
    const std::string pad(800, 'x');
    RequestId rid = 1;
    for (size_t i = 0; i < 240; i++) {
      RequestParams params;
      params["key"] = "hot";
      params["who"] = "u" + std::to_string(i % 7) + pad;
      server.Submit(rid++, (i % 4 == 3) ? "/counter/read" : "/counter/hit", params);
    }
    server.Drain();
  }
  EXPECT_TRUE(collector.Flush(fx.trace_path).ok());
  EXPECT_TRUE(core.ExportReports(fx.reports_path).ok());

  AuditSession session = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
  fx.reference = FromFeed(session.FeedEpochFilesStreamed(fx.trace_path, fx.reports_path));
  EXPECT_TRUE(fx.reference.accepted) << fx.reference.reason << fx.reference.error;
  return fx;
}

// Forges exact segment-prefix fields — duplicate segment_seq, out-of-order segment_seq,
// overlapping entry range, redirected object id — with the record CRC re-stamped, so each
// forgery passes every wire-level check and the segment validator itself must catch it.
// Both readers must reject (never crash, never falsely accept) and classify identically.
TEST(WireFuzz, SegmentedOpLogPrefixForgeriesRejectIdenticallyOnBothPaths) {
  SegmentedFixture fx = BuildSegmentedFixture();
  const std::string pristine = ReadAll(fx.reports_path);
  std::vector<SegRecLoc> segs = FindSegmentRecords(pristine);
  ASSERT_GE(segs.size(), 2u) << "fixture must spill at least two v3 segments";
  // Prefix layout (relative to the payload): u32 object @0, u32 segment_seq @4,
  // u64 first_seqnum @8, u64 count @16. All forgeries edit the SECOND segment, so the
  // validator has per-object sequencing state to check against.
  const size_t p0 = segs[0].payload;
  const size_t p1 = segs[1].payload;

  struct Forgery {
    const char* name;
    std::function<void(std::string*)> apply;
  };
  const std::vector<Forgery> forgeries = {
      {"duplicate segment_seq",
       [&](std::string* b) { PutU32At(b, p1 + 4, GetU32At(*b, p0 + 4)); }},
      {"out-of-order segment_seq",
       [&](std::string* b) { PutU32At(b, p1 + 4, GetU32At(*b, p1 + 4) + 1); }},
      {"overlapping entry range",
       [&](std::string* b) { PutU64At(b, p1 + 8, GetU64At(*b, p1 + 8) - 1); }},
      {"wrong object (existing)",
       [&](std::string* b) {
         uint32_t object = GetU32At(*b, p1);
         PutU32At(b, p1, object == 0 ? 1 : 0);
       }},
      {"wrong object (unknown)",
       [&](std::string* b) { PutU32At(b, p1, 0xfffffffeu); }},
  };

  const std::string mutated_path = ::testing::TempDir() + "/seg_forged_reports.bin";
  for (const Forgery& forgery : forgeries) {
    std::string bytes = pristine;
    forgery.apply(&bytes);
    RestampRecordCrc(&bytes, segs[1].payload, segs[1].len);
    WriteAll(mutated_path, bytes);

    AuditSession streamed = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
    Outcome got = FromFeed(streamed.FeedEpochFilesStreamed(fx.trace_path, mutated_path));
    EXPECT_FALSE(got.accepted) << forgery.name;
    EXPECT_TRUE(got.file_error) << forgery.name
                                << ": a forged segment prefix must fail the read";
    EXPECT_FALSE(got.error.empty()) << forgery.name;

    AuditSession in_memory = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
    Outcome mem = FromFeed(in_memory.FeedEpochFiles(fx.trace_path, mutated_path));
    EXPECT_TRUE(mem == got) << forgery.name << ": streamed {" << got.error << "} vs "
                            << "in-memory {" << mem.error << "}";
  }
}

// The generic mutation sweep pointed at a reports file that actually contains v3
// segments, so random flips/truncations/CRC-fixed flips land inside segment records and
// their prefixes too. Same contract as the main sweep: never crash, never falsely
// accept, and the streamed and in-memory readers classify every mutation identically.
TEST(WireFuzz, SegmentedReportsMutationsNeverCrashAndNeverFalselyAccept) {
  SegmentedFixture fx = BuildSegmentedFixture();
  const std::string pristine = ReadAll(fx.reports_path);
  ASSERT_GE(FindSegmentRecords(pristine).size(), 2u);
  const std::string mutated_path = ::testing::TempDir() + "/seg_mut_reports.bin";
  const uint64_t base_seed = TestBaseSeed(0x5EED0000);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Rng rng(base_seed + 5);
  SweepTally tally;
  for (int i = 0; i < 48; i++) {
    std::string label;
    WriteAll(mutated_path, Mutate(pristine, &rng, &label));
    const std::string what = "segmented-reports " + label;

    AuditSession streamed = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
    Outcome got = FromFeed(streamed.FeedEpochFilesStreamed(fx.trace_path, mutated_path));
    CheckOutcomeAgainstReference(got, fx.reference, what + " (streamed)", &tally);

    AuditSession in_memory = AuditSession::Open(&fx.w.app, FuzzOptions(), fx.w.initial);
    Outcome mem = FromFeed(in_memory.FeedEpochFiles(fx.trace_path, mutated_path));
    EXPECT_TRUE(mem == got) << what << ": streamed {" << got.error << "|" << got.reason
                            << "} vs in-memory {" << mem.error << "|" << mem.reason
                            << "}";
  }
  EXPECT_GT(tally.errors, 5u);
}

}  // namespace
}  // namespace orochi
