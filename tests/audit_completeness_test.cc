// Completeness (Theorem 10) and schedule-related properties (Lemma 5): every trace +
// reports produced by the well-behaved server must be accepted — by the grouped audit, the
// sequential baseline, and OOO re-execution under arbitrary well-formed schedules — and
// all must agree. The audit's extracted final state must match the server's ground truth.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/auditor.h"
#include "src/core/ooo_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Workload RandomCounterWorkload(uint64_t seed, size_t n) {
  Rng rng(seed);
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = rng.Chance(0.3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(rng.UniformInt(0, 3));
    item.params["who"] = "w" + std::to_string(rng.UniformInt(0, 4));
    w.items.push_back(std::move(item));
  }
  return w;
}

class CompletenessProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompletenessProperty, WellBehavedRunsAlwaysAccepted) {
  uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  Workload w = RandomCounterWorkload(seed, 40);
  ServedWorkload served = ServeWorkload(w, /*num_workers=*/3);

  Auditor auditor(&w.app);
  AuditResult grouped = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(grouped.accepted) << grouped.reason;
  AuditResult seq = auditor.AuditSequential(served.trace, served.reports, served.initial);
  EXPECT_TRUE(seq.accepted) << seq.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompletenessProperty, ::testing::Range(0, 10));

// Lemma 5 (schedule indifference): OOO audits under different well-formed schedules give
// the same verdict — ACCEPT for honest runs.
class ScheduleIndifference : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleIndifference, RandomSchedulesAllAccept) {
  uint64_t seed = 7000 + static_cast<uint64_t>(GetParam());
  Workload w = RandomCounterWorkload(seed, 25);
  ServedWorkload served = ServeWorkload(w);
  Result<ProcessedReports> processed = ProcessOpReports(served.trace, served.reports);
  ASSERT_TRUE(processed.ok()) << processed.error();

  const auto& op_counts = processed.value().op_counts;
  OpSchedule schedules[] = {
      SequentialSchedule(served.trace, op_counts),
      TopologicalSchedule(processed.value()),
      RandomWellFormedSchedule(served.trace, op_counts, seed * 3 + 1),
      RandomWellFormedSchedule(served.trace, op_counts, seed * 3 + 2),
  };
  for (const OpSchedule& schedule : schedules) {
    AuditResult r = OOOAudit(&w.app, served.trace, served.reports, served.initial, schedule);
    EXPECT_TRUE(r.accepted) << r.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleIndifference, ::testing::Range(0, 6));

// Lemma 5's other half: on a tampered run, every schedule rejects.
TEST(ScheduleIndifference, TamperedRunRejectedUnderAllSchedules) {
  Workload w = RandomCounterWorkload(123, 20);
  ServedWorkload served = ServeWorkload(w);
  // Tamper a response.
  for (TraceEvent& e : served.trace.events) {
    if (e.kind == TraceEvent::Kind::kResponse) {
      e.body += "x";
      break;
    }
  }
  Result<ProcessedReports> processed = ProcessOpReports(served.trace, served.reports);
  ASSERT_TRUE(processed.ok());
  const auto& op_counts = processed.value().op_counts;
  for (uint64_t s : {1ull, 2ull, 3ull}) {
    OpSchedule schedule = RandomWellFormedSchedule(served.trace, op_counts, s);
    AuditResult r = OOOAudit(&w.app, served.trace, served.reports, served.initial, schedule);
    EXPECT_FALSE(r.accepted);
  }
}

TEST(FinalState, MatchesServerGroundTruth) {
  Workload w = RandomCounterWorkload(55, 60);
  ServedWorkload served = ServeWorkload(w);
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  ASSERT_TRUE(r.accepted) << r.reason;

  // KV contents match exactly.
  EXPECT_EQ(r.final_state.kv.size(), served.final_state.kv.size());
  for (const auto& [key, v] : served.final_state.kv) {
    auto it = r.final_state.kv.find(key);
    ASSERT_NE(it, r.final_state.kv.end()) << key;
    EXPECT_TRUE(Value::DeepEquals(it->second, v)) << key;
  }
  // Registers match.
  for (const auto& [name, v] : served.final_state.registers) {
    auto it = r.final_state.registers.find(name);
    ASSERT_NE(it, r.final_state.registers.end()) << name;
    EXPECT_TRUE(Value::DeepEquals(it->second, v)) << name;
  }
  // Database row counts match (full row equality is covered by the next-period audit).
  EXPECT_EQ(r.final_state.db.RowCount("hits"), served.final_state.db.RowCount("hits"));
}

TEST(FinalState, ChainsIntoNextAuditPeriod) {
  // Period 1 runs and is audited; its extracted final state boots period 2's audit (§4.5).
  Workload w1 = RandomCounterWorkload(77, 30);
  ServedWorkload served1 = ServeWorkload(w1);
  Auditor auditor(&w1.app);
  AuditResult r1 = auditor.Audit(served1.trace, served1.reports, served1.initial);
  ASSERT_TRUE(r1.accepted) << r1.reason;

  // Period 2: server continues from its own state; verifier boots from r1.final_state.
  Workload w2 = RandomCounterWorkload(78, 30);
  w2.initial = served1.final_state;
  ServedWorkload served2 = ServeWorkload(w2);
  AuditResult r2 = auditor.Audit(served2.trace, served2.reports, r1.final_state);
  EXPECT_TRUE(r2.accepted) << r2.reason;
}

TEST(Idempotence, DuplicatedGroupMembershipStillAccepted) {
  // "The verifier can filter out duplicates, but it does not have to, since re-execution
  // is idempotent" (§3.1).
  Workload w = RandomCounterWorkload(99, 20);
  ServedWorkload served = ServeWorkload(w);
  // Duplicate one rid inside its own group.
  auto& [tag, rids] = *served.reports.groups.begin();
  (void)tag;
  rids.push_back(rids[0]);
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(UnknownEndpoint, AuditedDeterministically) {
  Workload w;
  w.name = "missing";
  w.app = BuildCounterApp();
  Result<StmtResult> cr =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(cr.ok());
  w.items.push_back({"/no/such/page", {}});
  w.items.push_back({"/counter/hit", {{"key", "k"}, {"who", "w"}}});
  ServedWorkload served = ServeWorkload(w);
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(UnknownEndpoint, ClaimedOpsOnMissingScriptRejected) {
  Workload w;
  w.name = "missing";
  w.app = BuildCounterApp();
  w.items.push_back({"/no/such/page", {}});
  ServedWorkload served = ServeWorkload(w);
  // Forge: claim the missing-script request performed an operation.
  served.reports.op_counts[1] = 1;
  served.reports.objects.push_back({ObjectKind::kRegister, "X"});
  served.reports.op_logs.emplace_back();
  served.reports.op_logs.back().push_back(
      {1, 1, StateOpType::kRegisterWrite, MakeRegisterWriteContents(Value::Int(5))});
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

TEST(GroupChunking, SmallMaxGroupSizeStillAccepts) {
  Workload w = RandomCounterWorkload(31, 40);
  ServedWorkload served = ServeWorkload(w);
  AuditOptions opts;
  opts.max_group_size = 3;  // Force heavy chunking.
  Auditor auditor(&w.app, opts);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(DedupToggle, BothConfigurationsAgree) {
  Workload w = RandomCounterWorkload(41, 40);
  ServedWorkload served = ServeWorkload(w);
  AuditOptions on;
  on.enable_query_dedup = true;
  AuditOptions off;
  off.enable_query_dedup = false;
  AuditResult with_dedup = Auditor(&w.app, on).Audit(served.trace, served.reports, served.initial);
  AuditResult without =
      Auditor(&w.app, off).Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(with_dedup.accepted) << with_dedup.reason;
  EXPECT_TRUE(without.accepted) << without.reason;
}

// Workload-level completeness across all three paper applications at small scale, with a
// concurrency sweep.
class AppCompleteness : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AppCompleteness, AllAppsAccept) {
  int app_index = std::get<0>(GetParam());
  int workers = std::get<1>(GetParam());
  Workload w;
  if (app_index == 0) {
    WikiConfig c;
    c.num_pages = 10;
    c.num_users = 5;
    c.num_requests = 120;
    w = MakeWikiWorkload(c);
  } else if (app_index == 1) {
    ForumConfig c;
    c.num_topics = 3;
    c.num_users = 6;
    c.num_requests = 120;
    w = MakeForumWorkload(c);
  } else {
    ConfConfig c;
    c.num_papers = 6;
    c.num_reviewers = 4;
    c.reviews_target = 8;
    c.review_length = 100;
    c.views_per_reviewer = 8;
    w = MakeConfWorkload(c);
  }
  ServedWorkload served = ServeWorkload(w, workers);
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(AppsAndWorkers, AppCompleteness,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace orochi
