// Epoch-chained AuditSession semantics: accepted epochs seed the next epoch's initial
// state exactly as §4.5's steady state prescribes, a rejected epoch leaves the session
// state untouched, the chain's result is bit-identical to one monolithic audit over the
// concatenated epochs, and rejection of a tampered epoch is deterministic across worker
// thread counts — the session inherits the parallel audit's determinism guarantee.
#include "src/core/audit_session.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/objects/wire_format.h"
#include "src/server/tamper.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

constexpr int kEpochs = 3;

struct Epoch {
  Trace trace;
  Reports reports;
};

struct EpochRun {
  InitialState initial;
  std::vector<Epoch> epochs;
};

Workload SmallCounterWorkload(size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 3);
    item.params["who"] = "w" + std::to_string(i % 5);
    w.items.push_back(std::move(item));
  }
  return w;
}

// Serves the workload on one long-lived server, closing an epoch (TakeTrace/TakeReports)
// every items.size()/kEpochs requests — the continuous-collector, periodic-audit split.
EpochRun ServeInEpochs(const Workload& w) {
  EpochRun run;
  run.initial = w.initial;
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector;
  RequestId rid = 1;
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    size_t begin = w.items.size() * static_cast<size_t>(epoch) / kEpochs;
    size_t end = w.items.size() * static_cast<size_t>(epoch + 1) / kEpochs;
    {
      ThreadServer server(&core, &collector, /*num_workers=*/4);
      for (size_t i = begin; i < end; i++) {
        server.Submit(rid++, w.items[i].script, w.items[i].params);
      }
      server.Drain();
    }
    run.epochs.push_back({collector.TakeTrace(), core.TakeReports()});
  }
  return run;
}

AuditOptions SessionOptions(size_t threads) {
  AuditOptions options;
  options.num_threads = threads;
  // Small chunks force several tasks per group so multi-thread runs genuinely interleave.
  options.max_group_size = 64;
  return options;
}

// One monolithic audit over the concatenation of epochs [0, upto).
AuditResult ConcatenatedAudit(const Workload& w, const EpochRun& run, size_t upto) {
  Trace all_trace;
  Reports all_reports;
  for (size_t i = 0; i < upto; i++) {
    all_trace.events.insert(all_trace.events.end(), run.epochs[i].trace.events.begin(),
                            run.epochs[i].trace.events.end());
    EXPECT_TRUE(AppendReports(&all_reports, run.epochs[i].reports).ok());
  }
  Auditor auditor(&w.app, SessionOptions(1));
  return auditor.Audit(all_trace, all_reports, run.initial);
}

TEST(AuditSession, ThreeEpochChainMatchesConcatenatedAuditAtEveryPrefix) {
  Workload w = SmallCounterWorkload(150);
  EpochRun run = ServeInEpochs(w);
  ASSERT_EQ(run.epochs.size(), static_cast<size_t>(kEpochs));

  AuditSession session = AuditSession::Open(&w.app, SessionOptions(1), run.initial);
  for (int epoch = 0; epoch < kEpochs; epoch++) {
    AuditResult r = session.FeedEpoch(run.epochs[static_cast<size_t>(epoch)].trace,
                                      run.epochs[static_cast<size_t>(epoch)].reports);
    ASSERT_TRUE(r.accepted) << "epoch " << epoch + 1 << ": " << r.reason;
    // The chained state after N epochs must equal what one audit over the concatenated
    // prefix computes — the steady-state handoff is exact, not approximate.
    AuditResult combined = ConcatenatedAudit(w, run, static_cast<size_t>(epoch) + 1);
    ASSERT_TRUE(combined.accepted) << combined.reason;
    EXPECT_EQ(InitialStateFingerprint(session.state()),
              InitialStateFingerprint(combined.final_state))
        << "prefix of " << epoch + 1 << " epochs";
    EXPECT_EQ(InitialStateFingerprint(r.final_state),
              InitialStateFingerprint(combined.final_state));
  }
  EXPECT_EQ(session.epochs_fed(), static_cast<uint64_t>(kEpochs));
  EXPECT_EQ(session.epochs_accepted(), static_cast<uint64_t>(kEpochs));
}

TEST(AuditSession, TamperedEpochRejectsDeterministicallyAcrossThreadCounts) {
  Workload w = SmallCounterWorkload(150);
  EpochRun run = ServeInEpochs(w);

  Epoch tampered = run.epochs[1];
  RequestId victim = 0;
  for (const TraceEvent& e : tampered.trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      victim = e.rid;
      break;
    }
  }
  ASSERT_TRUE(TamperResponseBody(&tampered.trace, victim, "forged"));

  std::string base_reason;
  std::string base_final_fp;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AuditSession session = AuditSession::Open(&w.app, SessionOptions(threads), run.initial);
    AuditResult r1 = session.FeedEpoch(run.epochs[0].trace, run.epochs[0].reports);
    ASSERT_TRUE(r1.accepted) << r1.reason;
    std::string after_epoch1 = InitialStateFingerprint(session.state());

    AuditResult r2bad = session.FeedEpoch(tampered.trace, tampered.reports);
    EXPECT_FALSE(r2bad.accepted) << threads << " threads";
    // A rejected epoch must not advance the chain.
    EXPECT_EQ(InitialStateFingerprint(session.state()), after_epoch1);
    EXPECT_EQ(session.epochs_accepted(), 1u);

    // The pristine copy of the same epoch audits against the unchanged state; the chain
    // then completes normally.
    AuditResult r2 = session.FeedEpoch(run.epochs[1].trace, run.epochs[1].reports);
    ASSERT_TRUE(r2.accepted) << r2.reason;
    AuditResult r3 = session.FeedEpoch(run.epochs[2].trace, run.epochs[2].reports);
    ASSERT_TRUE(r3.accepted) << r3.reason;

    if (threads == 1) {
      base_reason = r2bad.reason;
      base_final_fp = InitialStateFingerprint(session.state());
      EXPECT_FALSE(base_reason.empty());
    } else {
      EXPECT_EQ(r2bad.reason, base_reason) << threads << " threads";
      EXPECT_EQ(InitialStateFingerprint(session.state()), base_final_fp)
          << threads << " threads";
    }
  }
}

TEST(AuditSession, FileRoundTripMatchesInMemoryChain) {
  Workload w = SmallCounterWorkload(90);
  EpochRun run = ServeInEpochs(w);

  // In-memory chain as the reference.
  AuditSession reference = AuditSession::Open(&w.app, SessionOptions(2), run.initial);
  for (const Epoch& e : run.epochs) {
    ASSERT_TRUE(reference.FeedEpoch(e.trace, e.reports).accepted);
  }

  // Spill everything, then audit the files in a session opened from the state file.
  std::string dir = ::testing::TempDir();
  std::string state_path = dir + "/session_state0.bin";
  ASSERT_TRUE(WriteInitialStateFile(state_path, run.initial).ok());
  Result<AuditSession> opened =
      AuditSession::OpenFromStateFile(&w.app, SessionOptions(2), state_path);
  ASSERT_TRUE(opened.ok()) << opened.error();
  AuditSession session = std::move(opened).value();
  for (size_t i = 0; i < run.epochs.size(); i++) {
    std::string trace_path = dir + "/session_trace_" + std::to_string(i) + ".bin";
    std::string reports_path = dir + "/session_reports_" + std::to_string(i) + ".bin";
    ASSERT_TRUE(WriteTraceFile(trace_path, run.epochs[i].trace).ok());
    ASSERT_TRUE(WriteReportsFile(reports_path, run.epochs[i].reports).ok());
    Result<AuditResult> r = session.FeedEpochFiles(trace_path, reports_path);
    ASSERT_TRUE(r.ok()) << r.error();
    ASSERT_TRUE(r.value().accepted) << r.value().reason;
  }
  EXPECT_EQ(InitialStateFingerprint(session.state()),
            InitialStateFingerprint(reference.state()));

  // SaveState → reload resumes the chain with the identical state.
  std::string end_state_path = dir + "/session_state_end.bin";
  ASSERT_TRUE(session.SaveState(end_state_path).ok());
  Result<InitialState> reloaded = ReadInitialStateFile(end_state_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  EXPECT_EQ(InitialStateFingerprint(reloaded.value()),
            InitialStateFingerprint(session.state()));
}

TEST(AuditSession, FeedEpochFilesReportsFileErrorsDistinctFromRejection) {
  Workload w = SmallCounterWorkload(30);
  EpochRun run = ServeInEpochs(w);
  AuditSession session = AuditSession::Open(&w.app, SessionOptions(1), run.initial);
  Result<AuditResult> r =
      session.FeedEpochFiles(::testing::TempDir() + "/no_such_trace.bin",
                             ::testing::TempDir() + "/no_such_reports.bin");
  EXPECT_FALSE(r.ok());
  // A file error consumes no epoch.
  EXPECT_EQ(session.epochs_fed(), 0u);
}

TEST(AuditSession, AuditorAuditIsAOneEpochSession) {
  Workload w = SmallCounterWorkload(60);
  ServedWorkload served = ServeWorkload(w);
  Auditor auditor(&w.app, SessionOptions(2));
  AuditResult via_auditor = auditor.Audit(served.trace, served.reports, served.initial);
  AuditSession session = AuditSession::Open(&w.app, SessionOptions(2), served.initial);
  AuditResult via_session = session.FeedEpoch(served.trace, served.reports);
  ASSERT_TRUE(via_auditor.accepted) << via_auditor.reason;
  ASSERT_TRUE(via_session.accepted) << via_session.reason;
  EXPECT_EQ(InitialStateFingerprint(via_auditor.final_state),
            InitialStateFingerprint(via_session.final_state));
}

}  // namespace
}  // namespace orochi
