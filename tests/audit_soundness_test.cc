// Soundness: every class of executor misbehaviour must flip the verdict to REJECT. The
// parameterized gauntlet mirrors the threat analysis of paper §3.4 plus OROCHI's report
// types (§4.6), and the Figure 4 scenarios are reconstructed exactly.
#include <gtest/gtest.h>

#include <functional>

#include "src/core/auditor.h"
#include "src/server/manual_executor.h"
#include "src/server/tamper.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Workload CounterWorkload(size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 2);
    item.params["who"] = "w" + std::to_string(i % 3);
    w.items.push_back(std::move(item));
  }
  return w;
}

struct TamperCase {
  const char* name;
  std::function<bool(Trace*, Reports*)> apply;
  // Groupings are an acceleration hint the sequential baseline never reads; tampers that
  // touch only the groupings report are invisible (and harmless) to it.
  bool group_only = false;
};

class SoundnessGauntlet : public ::testing::TestWithParam<TamperCase> {};

TEST_P(SoundnessGauntlet, TamperIsRejected) {
  Workload w = CounterWorkload(30);
  ServedWorkload served = ServeWorkload(w);
  Auditor auditor(&w.app);
  ASSERT_TRUE(auditor.Audit(served.trace, served.reports, served.initial).accepted);

  ASSERT_TRUE(GetParam().apply(&served.trace, &served.reports))
      << "tamper not applicable — adjust the workload";
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_FALSE(result.accepted) << "missed attack: " << GetParam().name;

  // The sequential baseline audit must catch everything except grouping-only tampers
  // (it never consults the groupings report).
  AuditResult seq = auditor.AuditSequential(served.trace, served.reports, served.initial);
  if (GetParam().group_only) {
    EXPECT_TRUE(seq.accepted) << seq.reason;
  } else {
    EXPECT_FALSE(seq.accepted) << "baseline missed attack: " << GetParam().name;
  }
}

int KvObj(const Reports& r) { return r.FindObject(ObjectKind::kKv, ""); }
int DbObj(const Reports& r) { return r.FindObject(ObjectKind::kDb, ""); }

INSTANTIATE_TEST_SUITE_P(
    Tampers, SoundnessGauntlet,
    ::testing::Values(
        TamperCase{"forged response",
                   [](Trace* t, Reports*) {
                     return TamperResponseBody(t, 2, "<html><body>lies</body></html>");
                   }},
        TamperCase{"swapped responses",
                   [](Trace* t, Reports*) { return SwapResponseBodies(t, 1, 5); }},
        TamperCase{"kv log reordered",
                   [](Trace*, Reports* r) {
                     int kv = KvObj(*r);
                     return kv >= 0 && r->op_logs[static_cast<size_t>(kv)].size() >= 4 &&
                            SwapLogEntries(r, static_cast<size_t>(kv), 0, 2);
                   }},
        TamperCase{"kv log entry dropped",
                   [](Trace*, Reports* r) {
                     int kv = KvObj(*r);
                     return kv >= 0 && DropLogEntry(r, static_cast<size_t>(kv), 1);
                   }},
        TamperCase{"db log entry dropped",
                   [](Trace*, Reports* r) {
                     int db = DbObj(*r);
                     return db >= 0 && DropLogEntry(r, static_cast<size_t>(db), 0);
                   }},
        TamperCase{"spurious op inserted",
                   [](Trace*, Reports* r) {
                     int kv = KvObj(*r);
                     // A second op for a request that issued M ops already.
                     return kv >= 0 && InsertSpuriousOp(r, static_cast<size_t>(kv), 0, 1, 99);
                   }},
        TamperCase{"kv write value forged",
                   [](Trace*, Reports* r) {
                     int kv = KvObj(*r);
                     if (kv < 0) {
                       return false;
                     }
                     auto& log = r->op_logs[static_cast<size_t>(kv)];
                     for (size_t i = 0; i < log.size(); i++) {
                       if (log[i].type == StateOpType::kKvSet) {
                         return TamperLogContents(
                             r, static_cast<size_t>(kv), i,
                             MakeKvSetContents("count:k0", Value::Int(424242)));
                       }
                     }
                     return false;
                   }},
        TamperCase{"db statement forged",
                   [](Trace*, Reports* r) {
                     int db = DbObj(*r);
                     return db >= 0 &&
                            TamperLogContents(
                                r, static_cast<size_t>(db), 0,
                                MakeDbContents({"DELETE FROM hits"}, false, true));
                   }},
        TamperCase{"db success flag flipped to failure",
                   [](Trace*, Reports* r) {
                     int db = DbObj(*r);
                     if (db < 0) {
                       return false;
                     }
                     const OpRecord& op = r->op_logs[static_cast<size_t>(db)][0];
                     Result<DbContents> dc = ParseDbContents(op.contents);
                     if (!dc.ok()) {
                       return false;
                     }
                     return TamperLogContents(
                         r, static_cast<size_t>(db), 0,
                         MakeDbContents(dc.value().sql, dc.value().is_txn, false));
                   }},
        TamperCase{"op count understated",
                   [](Trace*, Reports* r) {
                     for (auto& [rid, m] : r->op_counts) {
                       if (m > 1) {
                         return TamperOpCount(r, rid, m - 1);
                       }
                     }
                     return false;
                   }},
        TamperCase{"op count overstated",
                   [](Trace*, Reports* r) {
                     for (auto& [rid, m] : r->op_counts) {
                       if (m > 0) {
                         return TamperOpCount(r, rid, m + 1);
                       }
                     }
                     return false;
                   }},
        TamperCase{"request moved to wrong group",
                   [](Trace*, Reports* r) {
                     if (r->groups.size() < 2) {
                       return false;
                     }
                     auto first = r->groups.begin();
                     auto second = std::next(first);
                     return MoveRequestToGroup(r, first->second[0], second->first);
                   },
                   /*group_only=*/true},
        TamperCase{"request hidden from groupings",
                   [](Trace*, Reports* r) {
                     // Move to a fresh bogus group tag would still re-execute; instead
                     // erase the rid from every group (incomplete map, §3.1).
                     for (auto& [tag, rids] : r->groups) {
                       (void)tag;
                       if (!rids.empty()) {
                         rids.erase(rids.begin());
                         return true;
                       }
                     }
                     return false;
                   },
                   /*group_only=*/true},
        TamperCase{"group names untraced rid",
                   [](Trace*, Reports* r) {
                     r->groups.begin()->second.push_back(424242);
                     return true;
                   },
                   /*group_only=*/true}),
    [](const ::testing::TestParamInfo<TamperCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// --- Figure 4, reconstructed exactly with scripted interleavings ---

Application FigureFourApp() {
  Application app;
  Status f = app.AddScript("/f", "reg_write(\"A\", 1); $x = reg_read(\"B\"); echo intval($x);");
  Status g = app.AddScript("/g", "reg_write(\"B\", 1); $y = reg_read(\"A\"); echo intval($y);");
  EXPECT_TRUE(f.ok() && g.ok());
  return app;
}

struct FigureFourRun {
  Trace trace;
  Reports reports;
};

FigureFourRun RunConcurrentWritesFirst(const Application& app) {
  InitialState init;
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.Begin(1, "/f", {});
  exec.Begin(2, "/g", {});
  exec.Step(1);
  exec.Step(2);
  exec.Step(1);
  exec.Step(2);
  exec.Finish(1);
  exec.Finish(2);
  return {collector.TakeTrace(), core.TakeReports()};
}

TEST(FigureFour, ScenarioA_SequentialWithForgedOrder_Rejected) {
  Application app = FigureFourApp();
  InitialState init;
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.RunToCompletion(1, "/f", {});
  exec.RunToCompletion(2, "/g", {});
  Trace trace = collector.TakeTrace();
  Reports reports = core.TakeReports();
  // Forge responses (1, 0) and reorder OL_B to "justify" them.
  TamperResponseBody(&trace, 1, "1");
  TamperResponseBody(&trace, 2, "0");
  for (size_t obj = 0; obj < reports.objects.size(); obj++) {
    if (reports.objects[obj].kind == ObjectKind::kRegister && reports.objects[obj].name == "B") {
      SwapLogEntries(&reports, obj, 0, 1);
    }
  }
  Auditor auditor(&app);
  EXPECT_FALSE(auditor.Audit(trace, reports, init).accepted);
}

TEST(FigureFour, ScenarioB_ImpossibleZeroZero_Rejected) {
  Application app = FigureFourApp();
  InitialState init;
  FigureFourRun run = RunConcurrentWritesFirst(app);
  TamperResponseBody(&run.trace, 1, "0");
  TamperResponseBody(&run.trace, 2, "0");
  for (size_t obj = 0; obj < run.reports.objects.size(); obj++) {
    if (run.reports.objects[obj].kind == ObjectKind::kRegister) {
      SwapLogEntries(&run.reports, obj, 0, 1);
    }
  }
  Auditor auditor(&app);
  EXPECT_FALSE(auditor.Audit(run.trace, run.reports, init).accepted);
}

TEST(FigureFour, ScenarioC_LegalOneOne_Accepted) {
  Application app = FigureFourApp();
  InitialState init;
  FigureFourRun run = RunConcurrentWritesFirst(app);
  Auditor auditor(&app);
  AuditResult r = auditor.Audit(run.trace, run.reports, init);
  EXPECT_TRUE(r.accepted) << r.reason;
}

// --- Nondeterminism report validation (§4.6) ---

Workload NondetWorkload() {
  Workload w;
  w.name = "nd";
  Status st = w.app.AddScript("/nd", R"WS(
$t1 = time();
$t2 = time();
$r = rand(10, 20);
echo $t1 . "," . $t2 . "," . $r;
)WS");
  EXPECT_TRUE(st.ok());
  for (int i = 0; i < 4; i++) {
    w.items.push_back({"/nd", {}});
  }
  return w;
}

TEST(NondetValidation, HonestRunAccepted) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(NondetValidation, TimeRewindRejected) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  // Second time() in some request goes backwards.
  for (auto& [rid, records] : served.reports.nondet) {
    (void)rid;
    ASSERT_GE(records.size(), 2u);
    records[1].value = Value::Int(1).Serialize();
    break;
  }
  // Keep the trace consistent with the tampered report? No — a consistent executor could
  // not have produced a rewinding clock, so the audit must reject regardless of outputs.
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

TEST(NondetValidation, RandOutOfRangeRejected) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  for (auto& [rid, records] : served.reports.nondet) {
    (void)rid;
    records[2].value = Value::Int(999).Serialize();  // rand(10,20) cannot return 999.
    break;
  }
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

TEST(NondetValidation, ExtraRecordedValueRejected) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  served.reports.nondet.begin()->second.push_back({"time", Value::Int(1e9).Serialize()});
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

TEST(NondetValidation, MissingRecordRejected) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  served.reports.nondet.begin()->second.pop_back();
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

TEST(NondetValidation, WrongBuiltinNameRejected) {
  Workload w = NondetWorkload();
  ServedWorkload served = ServeWorkload(w);
  served.reports.nondet.begin()->second[0].name = "microtime";
  Auditor auditor(&w.app);
  EXPECT_FALSE(auditor.Audit(served.trace, served.reports, served.initial).accepted);
}

}  // namespace
}  // namespace orochi
