// Fault-tolerance of the audit pipeline under a deterministic injected-fault I/O
// environment (src/common/io_env.h). Three properties are on trial:
//
//   1. Taxonomy soundness (200-schedule sweep): whatever faults fire, the audit never
//      crashes, never falsely accepts (an accept always reproduces the server's true
//      final state), and never misreports an injected I/O fault as server tampering.
//      Schedules with only absorbable faults (transient errors, short reads) must accept.
//   2. Atomic spills (kill-point sweep): crash the writer after every possible write-side
//      operation; a reader of the spill path always sees the previous complete file or
//      the new complete file, never a torn prefix.
//   3. Resumable audits: an audit killed in ANY phase with a checkpoint journal resumes
//      to a bit-identical verdict/reason/final_state at every thread count and budget,
//      and actually reuses journaled progress instead of redoing it — pass-2 chunk tasks
//      (kill mid-pass-2), Prepare scan watermarks (kill mid-Prepare), and the pass-3
//      compare watermark (kill mid-compare).
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/io_env.h"
#include "src/core/audit_session.h"
#include "src/core/auditor.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/stream/stream_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Workload CounterWorkload(size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 5);
    item.params["who"] = "w" + std::to_string(i % 7);
    w.items.push_back(std::move(item));
  }
  return w;
}

// --- 1. The 200-schedule fault sweep ---

TEST(FaultInjection, SweepNeverFalselyAcceptsOrMisreportsFaults) {
  const uint64_t base_seed = TestBaseSeed(0xFA017);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Workload w = CounterWorkload(48);
  ServedWorkload served = ServeWorkload(w);
  const std::string truth = InitialStateFingerprint(served.final_state);
  const std::string trace_path = ::testing::TempDir() + "/fi_sweep_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_sweep_reports.bin";

  constexpr int kSchedules = 200;
  int accepted = 0;
  int io_errors = 0;
  int write_failures = 0;
  uint64_t faults_fired = 0;
  for (int s = 0; s < kSchedules; s++) {
    FaultOptions fo;
    fo.seed = base_seed + static_cast<uint64_t>(s);
    // Absorbable faults in every schedule: retries and short-read loops must hide them.
    fo.p_read_transient = 0.02;
    fo.p_short_read = 0.10;
    const bool absorbable_only = (s % 3 == 0);
    if (!absorbable_only) {
      fo.p_read_error = 0.002;
      fo.p_append_error = 0.004;
      fo.p_sync_error = 0.004;
      fo.p_rename_error = 0.004;
    }
    FaultInjectingEnv env(nullptr, fo);

    Status wt = WriteTraceFile(trace_path, served.trace, /*shard_id=*/0, &env);
    Status wr = wt.ok() ? WriteReportsFile(reports_path, served.reports, &env) : wt;
    if (!wt.ok() || !wr.ok()) {
      // A failed spill is an error at write time — and an atomic one: the audit below
      // must not even see a file from this schedule, so skip to the next.
      EXPECT_FALSE(absorbable_only) << "schedule " << s << ": " << wt.error() << wr.error();
      write_failures++;
      faults_fired += env.faults_injected();
      continue;
    }

    AuditOptions opts;
    opts.num_threads = 2;
    opts.max_group_size = 8;
    opts.max_resident_bytes = 2048;
    opts.io_env = &env;
    AuditSession session = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> r = session.FeedEpochFilesStreamed(trace_path, reports_path);
    faults_fired += env.faults_injected();
    switch (ClassifyAuditOutcome(r)) {
      case AuditOutcome::kAccepted:
        accepted++;
        // No falsely-accepted epoch: an accept must reproduce the true final state.
        EXPECT_EQ(InitialStateFingerprint(r.value().final_state), truth)
            << "schedule " << s;
        break;
      case AuditOutcome::kIoError: {
        EXPECT_FALSE(absorbable_only)
            << "schedule " << s << " surfaced an absorbable fault: " << r.error();
        io_errors++;
        AuditIoError info = ParseAuditIoError(r.error());
        EXPECT_FALSE(info.detail.empty());
        break;
      }
      case AuditOutcome::kRejected:
        ADD_FAILURE() << "schedule " << s
                      << " misreported an injected I/O fault as tampering: "
                      << r.value().reason;
        break;
      case AuditOutcome::kConfigError:
        ADD_FAILURE() << "schedule " << s << " misclassified as config error: " << r.error();
        break;
    }
  }
  // The sweep must genuinely exercise both sides of the taxonomy.
  EXPECT_GE(accepted, kSchedules / 3) << "absorbable-only schedules must all accept";
  EXPECT_GT(io_errors + write_failures, 0);
  EXPECT_GT(faults_fired, 0u);
}

// --- 2. Kill-point sweeps: atomic spill visibility ---

TEST(FaultInjection, TraceSpillKillPointSweepNeverExposesPartialFile) {
  ServedWorkload a = ServeWorkload(CounterWorkload(10));
  ServedWorkload b = ServeWorkload(CounterWorkload(20));
  const std::string path = ::testing::TempDir() + "/fi_kill_trace.bin";

  // Learn the write-op count N of spilling version B, then crash after 0..N-1 ops.
  FaultInjectingEnv counting(nullptr, FaultOptions{});
  ASSERT_TRUE(WriteTraceFile(path, b.trace, /*shard_id=*/0, &counting).ok());
  const uint64_t n_ops = counting.write_ops();
  ASSERT_GT(n_ops, 2u);

  for (uint64_t k = 0; k < n_ops; k++) {
    ASSERT_TRUE(WriteTraceFile(path, a.trace).ok());  // Previous complete epoch.
    FaultOptions fo;
    fo.crash_after_writes = k;
    FaultInjectingEnv env(nullptr, fo);
    Status crashed = WriteTraceFile(path, b.trace, /*shard_id=*/0, &env);
    // A reader (fault-free) must see a COMPLETE file: version A or version B, nothing
    // in between — AppendFile validates the envelope, every CRC, and the footer.
    StreamTraceSet set;
    Result<uint32_t> shard = set.AppendFile(path);
    ASSERT_TRUE(shard.ok()) << "crash point " << k << ": " << shard.error();
    EXPECT_TRUE(set.num_events() == a.trace.events.size() ||
                set.num_events() == b.trace.events.size())
        << "crash point " << k << " exposed a partial spill (" << set.num_events()
        << " events)";
    if (crashed.ok()) {
      EXPECT_EQ(set.num_events(), b.trace.events.size()) << "crash point " << k;
    }
  }
}

TEST(FaultInjection, StateFileKillPointSweepNeverExposesPartialFile) {
  ServedWorkload a = ServeWorkload(CounterWorkload(10));
  ServedWorkload b = ServeWorkload(CounterWorkload(20));
  const std::string fp_a = InitialStateFingerprint(a.final_state);
  const std::string fp_b = InitialStateFingerprint(b.final_state);
  ASSERT_NE(fp_a, fp_b);
  const std::string path = ::testing::TempDir() + "/fi_kill_state.bin";

  FaultInjectingEnv counting(nullptr, FaultOptions{});
  ASSERT_TRUE(WriteInitialStateFile(path, b.final_state, &counting).ok());
  const uint64_t n_ops = counting.write_ops();
  ASSERT_GT(n_ops, 2u);

  for (uint64_t k = 0; k < n_ops; k++) {
    ASSERT_TRUE(WriteInitialStateFile(path, a.final_state).ok());
    FaultOptions fo;
    fo.crash_after_writes = k;
    FaultInjectingEnv env(nullptr, fo);
    (void)WriteInitialStateFile(path, b.final_state, &env);
    Result<InitialState> read = ReadInitialStateFile(path);
    ASSERT_TRUE(read.ok()) << "crash point " << k << ": " << read.error();
    const std::string fp = InitialStateFingerprint(read.value());
    EXPECT_TRUE(fp == fp_a || fp == fp_b) << "crash point " << k;
  }
}

// --- 3. Checkpointed resume: bit-identical to an uninterrupted audit ---

// Trace loader that simulates a process killed mid-pass-2: the first `allowed` payload
// loads succeed, then every load fails permanently. Tasks already paged in retire (and
// journal); the failing task surfaces a gate failure, i.e. an I/O error, never a verdict.
class KillSwitchLoader : public TraceChunkLoader {
 public:
  KillSwitchLoader(const StreamTraceSet* set, uint64_t allowed)
      : real_(set), allowed_(allowed) {}

  Status Load(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    if (loads_.fetch_add(1) >= allowed_) {
      return Status::Error("io: injected mid-audit kill at payload load " +
                           std::to_string(allowed_) + " in " +
                           set.file_path(set.loc(index).file));
    }
    return real_.Load(set, index, event);
  }
  void Evict(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    real_.Evict(set, index, event);
  }

 private:
  FileTraceChunkLoader real_;
  std::atomic<uint64_t> loads_{0};
  const uint64_t allowed_;
};

TEST(FaultInjection, ResumeAfterMidAuditKillIsBitIdentical) {
  Workload w = CounterWorkload(160);
  ServedWorkload served = ServeWorkload(w);
  const std::string trace_path = ::testing::TempDir() + "/fi_resume_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_resume_reports.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  // Uninterrupted in-memory reference: the verdict every resumed run must reproduce.
  AuditOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.max_group_size = 8;
  AuditSession ref_session = AuditSession::Open(&w.app, ref_opts, served.initial);
  Result<AuditResult> ref = ref_session.FeedEpochFiles(trace_path, reports_path);
  ASSERT_TRUE(ref.ok()) << ref.error();
  ASSERT_TRUE(ref.value().accepted) << ref.value().reason;
  const std::string ref_fp = InitialStateFingerprint(ref.value().final_state);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t budget : {size_t{64}, size_t{4096}, size_t{0}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " budget=" + std::to_string(budget));
      const std::string checkpoint = ::testing::TempDir() + "/fi_resume_" +
                                     std::to_string(threads) + "_" +
                                     std::to_string(budget) + ".ckpt";
      AuditOptions opts;
      opts.num_threads = threads;
      opts.max_group_size = 8;
      opts.max_resident_bytes = budget;
      opts.checkpoint_path = checkpoint;

      // Run 1: killed mid-pass-2 after 80 payload loads (~10 of 20 chunk tasks).
      StreamTraceSet probe;
      ASSERT_TRUE(probe.AppendFile(trace_path).ok());
      KillSwitchLoader killer(&probe, /*allowed=*/80);
      StreamAuditHooks hooks;
      hooks.loader = &killer;
      AuditSession first = AuditSession::Open(&w.app, opts, served.initial);
      Result<AuditResult> killed =
          first.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
      ASSERT_FALSE(killed.ok());
      EXPECT_EQ(ClassifyAuditOutcome(killed), AuditOutcome::kIoError) << killed.error();
      // The kill left the checkpoint behind for the resume.
      Result<bool> left = Env::Default()->FileExists(checkpoint);
      ASSERT_TRUE(left.ok() && left.value());

      // Run 2: clean resume over the same files and checkpoint.
      AuditSession resumed = AuditSession::Open(&w.app, opts, served.initial);
      Result<AuditResult> got = resumed.FeedEpochFilesStreamed(trace_path, reports_path);
      ASSERT_TRUE(got.ok()) << got.error();
      EXPECT_TRUE(got.value().accepted) << got.value().reason;
      EXPECT_EQ(got.value().reason, ref.value().reason);
      EXPECT_EQ(InitialStateFingerprint(got.value().final_state), ref_fp);
      // The resume genuinely reused journaled chunks instead of re-executing them.
      EXPECT_GT(got.value().stats.checkpoint_chunks_reused, 0u);
      // A verdict spends the checkpoint.
      Result<bool> spent = Env::Default()->FileExists(checkpoint);
      EXPECT_TRUE(spent.ok() && !spent.value());
    }
  }
}

// Reports-side twin of KillSwitchLoader: the first `allowed` op-log content loads
// succeed, then every load fails permanently — which is how a process death lands inside
// Prepare, whose versioned-store builds page spilled op-log segments through this loader.
class KillSwitchReportsLoader : public ReportsChunkLoader {
 public:
  KillSwitchReportsLoader(const StreamReportsSet* set, uint64_t allowed)
      : real_(set), allowed_(allowed) {}

  Status Load(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
              uint64_t count) override {
    if (loads_.fetch_add(1) >= allowed_) {
      return Status::Error("io: injected mid-prepare kill at op-log load " +
                           std::to_string(allowed_));
    }
    return real_.Load(set, object, first_seqnum, count);
  }
  void Evict(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
             uint64_t count) override {
    real_.Evict(set, object, first_seqnum, count);
  }

 private:
  FileReportsChunkLoader real_;
  std::atomic<uint64_t> loads_{0};
  const uint64_t allowed_;
};

TEST(FaultInjection, ResumeAfterMidPrepareKillIsBitIdentical) {
  Workload w = CounterWorkload(160);
  ServedWorkload served = ServeWorkload(w);
  const std::string trace_path = ::testing::TempDir() + "/fi_prep_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_prep_reports.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  AuditOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.max_group_size = 8;
  AuditSession ref_session = AuditSession::Open(&w.app, ref_opts, served.initial);
  Result<AuditResult> ref = ref_session.FeedEpochFiles(trace_path, reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted)
      << (ref.ok() ? ref.value().reason : ref.error());
  const std::string ref_fp = InitialStateFingerprint(ref.value().final_state);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string checkpoint =
        ::testing::TempDir() + "/fi_prep_" + std::to_string(threads) + ".ckpt";
    AuditOptions opts;
    opts.num_threads = threads;
    opts.max_group_size = 8;
    opts.max_resident_bytes = 4096;
    opts.checkpoint_path = checkpoint;

    // Run 1: killed mid-Prepare after 8 op-log segment loads — some per-object forward
    // scans have retired (and journaled their watermarks), the rest never ran.
    StreamReportsSet probe;
    ASSERT_TRUE(probe.AppendFile(reports_path).ok());
    KillSwitchReportsLoader killer(&probe, /*allowed=*/8);
    StreamAuditHooks hooks;
    hooks.reports_loader = &killer;
    AuditSession first = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> killed =
        first.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(ClassifyAuditOutcome(killed), AuditOutcome::kIoError) << killed.error();
    Result<bool> left = Env::Default()->FileExists(checkpoint);
    ASSERT_TRUE(left.ok() && left.value());

    // Run 2: clean resume. The stores are in-memory, so Prepare re-scans every object —
    // but the journaled watermarks must be recognized (the fingerprint still matches)
    // and the verdict must be bit-identical to the uninterrupted reference.
    AuditSession resumed = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> got = resumed.FeedEpochFilesStreamed(trace_path, reports_path);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(got.value().reason, ref.value().reason);
    EXPECT_EQ(InitialStateFingerprint(got.value().final_state), ref_fp);
    EXPECT_GT(got.value().stats.prepare_watermarks_reused, 0u);
    Result<bool> spent = Env::Default()->FileExists(checkpoint);
    EXPECT_TRUE(spent.ok() && !spent.value());
  }
}

TEST(FaultInjection, ResumeAfterMidCompareKillIsBitIdentical) {
  Workload w = CounterWorkload(160);
  ServedWorkload served = ServeWorkload(w);
  const std::string trace_path = ::testing::TempDir() + "/fi_cmp_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_cmp_reports.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  AuditOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.max_group_size = 8;
  AuditSession ref_session = AuditSession::Open(&w.app, ref_opts, served.initial);
  Result<AuditResult> ref = ref_session.FeedEpochFiles(trace_path, reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted)
      << (ref.ok() ? ref.value().reason : ref.error());
  const std::string ref_fp = InitialStateFingerprint(ref.value().final_state);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string checkpoint =
        ::testing::TempDir() + "/fi_cmp_" + std::to_string(threads) + ".ckpt";
    AuditOptions opts;
    opts.num_threads = threads;
    opts.max_group_size = 8;
    opts.max_resident_bytes = 4096;
    opts.checkpoint_path = checkpoint;
    // Read-ahead off: this test's kill point is load-count arithmetic, and a revoked
    // prefetched chunk is legitimately loaded twice. Kill/resume parity WITH read-ahead
    // is covered by FaultInjection.ResumeWithPrefetchOnIsBitIdentical.
    opts.prefetch_depth = 0;

    // Run 1: killed mid-pass-3. Pass 2 loads each of the 160 request payloads exactly
    // once; allowing 200 loads retires all of pass 2 (journaling every chunk) and dies
    // at the 40th response body of the compare pass — past the 32-response compare
    // watermark the journal recorded.
    StreamTraceSet probe;
    ASSERT_TRUE(probe.AppendFile(trace_path).ok());
    KillSwitchLoader killer(&probe, /*allowed=*/200);
    StreamAuditHooks hooks;
    hooks.loader = &killer;
    AuditSession first = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> killed =
        first.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(ClassifyAuditOutcome(killed), AuditOutcome::kIoError) << killed.error();
    Result<bool> left = Env::Default()->FileExists(checkpoint);
    ASSERT_TRUE(left.ok() && left.value());

    // Run 2: clean resume — every pass-2 chunk replays from the journal, the compare
    // pass skips the responses below the watermark (sound: the fingerprint binds every
    // response payload's CRC, and a surviving journal means no verdict was reached, so
    // every compared response matched), and the verdict is bit-identical.
    AuditSession resumed = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> got = resumed.FeedEpochFilesStreamed(trace_path, reports_path);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(got.value().reason, ref.value().reason);
    EXPECT_EQ(InitialStateFingerprint(got.value().final_state), ref_fp);
    EXPECT_GT(got.value().stats.checkpoint_chunks_reused, 0u);
    EXPECT_GT(got.value().stats.compare_records_resumed, 0u);
    Result<bool> spent = Env::Default()->FileExists(checkpoint);
    EXPECT_TRUE(spent.ok() && !spent.value());
  }
}

// PR-10 twin of the mid-pass-2 kill test, with the read-ahead pipeline ON. The kill-point
// arithmetic is looser here — a revoked prefetched chunk is legitimately loaded twice, so
// 120 allowed loads of the 160 payloads only guarantees "killed somewhere inside pass 2
// with at least one chunk retired" — but that is exactly the property under test: a crash
// while the prefetcher holds in-flight and ready-but-unclaimed chunks must leave a
// checkpoint that a prefetch-enabled resume replays to a bit-identical verdict.
TEST(FaultInjection, ResumeWithPrefetchOnIsBitIdentical) {
  Workload w = CounterWorkload(160);
  ServedWorkload served = ServeWorkload(w);
  const std::string trace_path = ::testing::TempDir() + "/fi_pf_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_pf_reports.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  AuditOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.max_group_size = 8;
  AuditSession ref_session = AuditSession::Open(&w.app, ref_opts, served.initial);
  Result<AuditResult> ref = ref_session.FeedEpochFiles(trace_path, reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted)
      << (ref.ok() ? ref.value().reason : ref.error());
  const std::string ref_fp = InitialStateFingerprint(ref.value().final_state);

  for (size_t threads : {size_t{1}, size_t{2}}) {
    for (size_t budget : {size_t{64}, size_t{4096}, size_t{0}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " budget=" + std::to_string(budget));
      const std::string checkpoint = ::testing::TempDir() + "/fi_pf_" +
                                     std::to_string(threads) + "_" +
                                     std::to_string(budget) + ".ckpt";
      AuditOptions opts;
      opts.num_threads = threads;
      opts.max_group_size = 8;
      opts.max_resident_bytes = budget;
      opts.checkpoint_path = checkpoint;
      opts.prefetch_depth = 4;

      // Run 1: killed inside pass 2 — completion needs every payload loaded at least
      // once, so 120 < 160 always dies early, prefetched double-loads only sooner.
      StreamTraceSet probe;
      ASSERT_TRUE(probe.AppendFile(trace_path).ok());
      KillSwitchLoader killer(&probe, /*allowed=*/120);
      StreamAuditHooks hooks;
      hooks.loader = &killer;
      AuditSession first = AuditSession::Open(&w.app, opts, served.initial);
      Result<AuditResult> killed =
          first.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
      ASSERT_FALSE(killed.ok());
      EXPECT_EQ(ClassifyAuditOutcome(killed), AuditOutcome::kIoError) << killed.error();
      Result<bool> left = Env::Default()->FileExists(checkpoint);
      ASSERT_TRUE(left.ok() && left.value());

      // Run 2: clean resume, read-ahead still on. Journaled chunks replay without
      // touching the gate (the walk cedes them), the rest flow through the live
      // pipeline, and the verdict is bit-identical to the uninterrupted reference.
      PrefetchStats stats;
      StreamAuditHooks resume_hooks;
      resume_hooks.prefetch_stats = &stats;
      AuditSession resumed = AuditSession::Open(&w.app, opts, served.initial);
      Result<AuditResult> got =
          resumed.FeedEpochFilesStreamed(trace_path, reports_path, &resume_hooks);
      ASSERT_TRUE(got.ok()) << got.error();
      EXPECT_TRUE(got.value().accepted) << got.value().reason;
      EXPECT_EQ(got.value().reason, ref.value().reason);
      EXPECT_EQ(InitialStateFingerprint(got.value().final_state), ref_fp);
      EXPECT_GT(got.value().stats.checkpoint_chunks_reused, 0u);
      // The kill landed before pass 2 finished, so the resume had live chunks to run —
      // and ran them through the pipeline (every gate acquire is a hit or a miss).
      EXPECT_GT(stats.hits + stats.misses, 0u);
      Result<bool> spent = Env::Default()->FileExists(checkpoint);
      EXPECT_TRUE(spent.ok() && !spent.value());
    }
  }
}

// Seeded-EIO sweep with the read-ahead pipeline forced on: injected read faults now also
// land on the prefetch thread's preads. The taxonomy must hold regardless of which
// thread's read draws the fault — absorbable faults stay invisible, hard faults surface
// as I/O errors attributed to a file (never as tampering), and an accept still
// reproduces the true final state.
TEST(FaultInjection, SeededEioDuringPrefetchKeepsTheOutcomeTaxonomy) {
  const uint64_t base_seed = TestBaseSeed(0xFA10);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Workload w = CounterWorkload(64);
  ServedWorkload served = ServeWorkload(w);
  const std::string truth = InitialStateFingerprint(served.final_state);
  const std::string trace_path = ::testing::TempDir() + "/fi_pf_sweep_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_pf_sweep_reports.bin";
  // Spill once with the default env: every schedule below audits the same clean files.
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  constexpr int kSchedules = 90;
  int accepted = 0;
  int io_errors = 0;
  uint64_t faults_fired = 0;
  for (int s = 0; s < kSchedules; s++) {
    FaultOptions fo;
    fo.seed = base_seed + static_cast<uint64_t>(s);
    fo.p_read_transient = 0.02;
    fo.p_short_read = 0.10;
    const bool absorbable_only = (s % 3 == 0);
    if (!absorbable_only) {
      fo.p_read_error = 0.004;
    }
    FaultInjectingEnv env(nullptr, fo);

    AuditOptions opts;
    opts.num_threads = 2;
    opts.max_group_size = 8;
    opts.max_resident_bytes = 2048;
    opts.prefetch_depth = 3;
    opts.io_env = &env;
    AuditSession session = AuditSession::Open(&w.app, opts, served.initial);
    Result<AuditResult> r = session.FeedEpochFilesStreamed(trace_path, reports_path);
    faults_fired += env.faults_injected();
    switch (ClassifyAuditOutcome(r)) {
      case AuditOutcome::kAccepted:
        accepted++;
        EXPECT_EQ(InitialStateFingerprint(r.value().final_state), truth)
            << "schedule " << s;
        break;
      case AuditOutcome::kIoError: {
        EXPECT_FALSE(absorbable_only)
            << "schedule " << s << " surfaced an absorbable fault: " << r.error();
        io_errors++;
        AuditIoError info = ParseAuditIoError(r.error());
        EXPECT_FALSE(info.detail.empty());
        // A failed audit consumes nothing: the epoch can be retried.
        EXPECT_EQ(session.epochs_fed(), 0u);
        break;
      }
      case AuditOutcome::kRejected:
        ADD_FAILURE() << "schedule " << s
                      << " misreported an injected I/O fault as tampering: "
                      << r.value().reason;
        break;
      case AuditOutcome::kConfigError:
        ADD_FAILURE() << "schedule " << s << " misclassified as config error: "
                      << r.error();
        break;
    }
  }
  EXPECT_GE(accepted, kSchedules / 3) << "absorbable-only schedules must all accept";
  EXPECT_GT(io_errors, 0);
  EXPECT_GT(faults_fired, 0u);
}

TEST(FaultInjection, StaleCheckpointFromDifferentEpochIsIgnored) {
  Workload w = CounterWorkload(60);
  ServedWorkload served = ServeWorkload(w);
  ServedWorkload other = ServeWorkload(CounterWorkload(40));
  const std::string trace_path = ::testing::TempDir() + "/fi_stale_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/fi_stale_reports.bin";
  const std::string other_trace = ::testing::TempDir() + "/fi_stale_trace2.bin";
  const std::string other_reports = ::testing::TempDir() + "/fi_stale_reports2.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());
  ASSERT_TRUE(WriteTraceFile(other_trace, other.trace).ok());
  ASSERT_TRUE(WriteReportsFile(other_reports, other.reports).ok());
  const std::string checkpoint = ::testing::TempDir() + "/fi_stale.ckpt";

  AuditOptions opts;
  opts.num_threads = 2;
  opts.max_group_size = 8;
  opts.checkpoint_path = checkpoint;

  // Kill an audit of the OTHER epoch so its checkpoint survives at the same path.
  {
    StreamTraceSet probe;
    ASSERT_TRUE(probe.AppendFile(other_trace).ok());
    KillSwitchLoader killer(&probe, /*allowed=*/16);
    StreamAuditHooks hooks;
    hooks.loader = &killer;
    AuditSession session = AuditSession::Open(&w.app, opts, other.initial);
    Result<AuditResult> killed =
        session.FeedEpochFilesStreamed(other_trace, other_reports, &hooks);
    ASSERT_FALSE(killed.ok());
    Result<bool> left = Env::Default()->FileExists(checkpoint);
    ASSERT_TRUE(left.ok() && left.value());
  }

  // Auditing THIS epoch against the stale checkpoint must ignore it (fingerprint
  // mismatch): nothing reused, verdict identical to the ground truth.
  AuditSession session = AuditSession::Open(&w.app, opts, served.initial);
  Result<AuditResult> got = session.FeedEpochFilesStreamed(trace_path, reports_path);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_TRUE(got.value().accepted) << got.value().reason;
  EXPECT_EQ(got.value().stats.checkpoint_chunks_reused, 0u);
  EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
            InitialStateFingerprint(served.final_state));
}

// --- Error propagation out of the server-side spill paths (satellite coverage) ---

TEST(FaultInjection, FlushAndExportPropagateWriteFailuresAndKeepData) {
  Workload w = CounterWorkload(12);
  ServedWorkload served = ServeWorkload(w);

  FaultOptions fo;
  fo.p_append_error = 1.0;  // Every append fails (ENOSPC from the first byte).
  FaultInjectingEnv env(nullptr, fo);

  Collector collector(/*shard_id=*/3, &env);
  for (const TraceEvent& e : served.trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      collector.RecordRequest(e.rid, e.script, e.params);
    } else {
      collector.RecordResponse(e.rid, e.body);
    }
  }
  const std::string trace_path = ::testing::TempDir() + "/fi_flush_trace.bin";
  Status flush = collector.Flush(trace_path);
  EXPECT_FALSE(flush.ok());
  // The failed flush loses no recorded traffic: the trace is still there to retry.
  EXPECT_EQ(collector.TakeTrace().events.size(), served.trace.events.size());

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true, .io_env = &env});
  const std::string reports_path = ::testing::TempDir() + "/fi_export_reports.bin";
  EXPECT_FALSE(core.ExportReports(reports_path).ok());

  EXPECT_FALSE(
      WriteInitialStateFile(::testing::TempDir() + "/fi_state.bin", served.initial, &env)
          .ok());
}

TEST(FaultInjection, OutcomeTaxonomyParsing) {
  AuditIoError e = ParseAuditIoError(
      "wire: crc mismatch in record 3 (type 2) at offset 123 in /tmp/epoch_trace.bin");
  EXPECT_EQ(e.file, "/tmp/epoch_trace.bin");
  EXPECT_EQ(e.offset, 123u);
  EXPECT_FALSE(e.detail.empty());

  Result<AuditResult> config = Result<AuditResult>::Error(
      "config: OROCHI_AUDIT_THREADS='x' is not a valid thread count");
  EXPECT_EQ(ClassifyAuditOutcome(config), AuditOutcome::kConfigError);
  Result<AuditResult> io =
      Result<AuditResult>::Error("io: unexpected end of file at offset 9 in /tmp/t.bin");
  EXPECT_EQ(ClassifyAuditOutcome(io), AuditOutcome::kIoError);
  AuditResult rejected;
  rejected.reason = "output: rid 4 response does not match re-execution";
  EXPECT_EQ(ClassifyAuditOutcome(Result<AuditResult>(rejected)), AuditOutcome::kRejected);
}

}  // namespace
}  // namespace orochi
