// Workload generator sanity: the apps compile, the generators honor their configured
// shapes (mix fractions, Zipf skew, SIGCOMM-derived parameters), and runs are
// deterministic per seed.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

TEST(Apps, AllCompile) {
  EXPECT_EQ(BuildWikiApp().ScriptNames().size(), 3u);
  EXPECT_EQ(BuildForumApp().ScriptNames().size(), 4u);
  EXPECT_EQ(BuildConfApp().ScriptNames().size(), 4u);
  EXPECT_EQ(BuildCounterApp().ScriptNames().size(), 2u);
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; i++) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(Zipf, LowBetaIsFlatter) {
  Rng rng1(7);
  Rng rng2(7);
  ZipfSampler steep(100, 1.2);
  ZipfSampler flat(100, 0.3);
  int steep_top = 0;
  int flat_top = 0;
  for (int i = 0; i < 10000; i++) {
    steep_top += steep.Sample(rng1) == 0 ? 1 : 0;
    flat_top += flat.Sample(rng2) == 0 ? 1 : 0;
  }
  EXPECT_GT(steep_top, flat_top);
}

TEST(WikiWorkload, HonorsMixAndSeedsPages) {
  WikiConfig c;
  c.num_pages = 25;
  c.num_requests = 2000;
  c.edit_fraction = 0.10;
  c.list_fraction = 0.05;
  Workload w = MakeWikiWorkload(c);
  EXPECT_EQ(w.items.size(), 2000u);
  EXPECT_EQ(w.initial.db.RowCount("pages"), 25u);
  size_t edits = 0;
  size_t lists = 0;
  for (const WorkItem& item : w.items) {
    edits += item.script == "/wiki/edit" ? 1 : 0;
    lists += item.script == "/wiki/list" ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(edits) / 2000.0, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(lists) / 2000.0, 0.05, 0.02);
}

TEST(WikiWorkload, DeterministicPerSeed) {
  WikiConfig c;
  c.num_pages = 10;
  c.num_requests = 100;
  Workload a = MakeWikiWorkload(c);
  Workload b = MakeWikiWorkload(c);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); i++) {
    EXPECT_EQ(a.items[i].script, b.items[i].script);
    EXPECT_EQ(a.items[i].params, b.items[i].params);
  }
}

TEST(ForumWorkload, GuestsDominateViews) {
  ForumConfig c;
  c.num_topics = 4;
  c.num_requests = 4000;
  Workload w = MakeForumWorkload(c);
  size_t guest_views = 0;
  size_t registered_views = 0;
  for (const WorkItem& item : w.items) {
    if (item.script != "/forum/topic") {
      continue;
    }
    if (item.params.count("user") > 0) {
      registered_views++;
    } else {
      guest_views++;
    }
  }
  // 1:40 registered:guest (paper §5).
  EXPECT_GT(guest_views, registered_views * 20);
  EXPECT_GT(registered_views, 0u);
}

TEST(ForumWorkload, TopicsHaveDistinctSeedLengths) {
  ForumConfig c;
  c.num_topics = 5;
  c.num_requests = 10;
  Workload w = MakeForumWorkload(c);
  // posts per topic differ: 8, 11, 14, 17, 20.
  Result<StmtResult> r = w.initial.db.ExecuteText(
      "SELECT count(*) AS n FROM posts WHERE topic_id = 0");
  ASSERT_TRUE(r.ok());
  int64_t t0 = r.value().rows.rows[0][0].as_int();
  r = w.initial.db.ExecuteText("SELECT count(*) AS n FROM posts WHERE topic_id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(t0, r.value().rows.rows[0][0].as_int());
}

TEST(ConfWorkload, PaperParameters) {
  ConfConfig c;  // Defaults mirror §5: 269 papers, 58 reviewers, 820 reviews.
  c.views_per_reviewer = 5;  // Shrink the view phase for test speed.
  Workload w = MakeConfWorkload(c);
  size_t submits = 0;
  size_t reviews = 0;
  for (const WorkItem& item : w.items) {
    submits += item.script == "/conf/submit" ? 1 : 0;
    reviews += item.script == "/conf/review" ? 1 : 0;
  }
  // Every paper has at least one submission and at most max_updates.
  EXPECT_GE(submits, c.num_papers);
  EXPECT_LE(submits, c.num_papers * c.max_updates_per_paper);
  // Two versions per review, ~820 reviews targeted (the generator caps at 3 reviews per
  // paper, so the last papers may fall short of the target).
  EXPECT_LE(reviews, 2 * c.reviews_target);
  EXPECT_GE(reviews, 2 * c.reviews_target * 9 / 10);
}

TEST(ConfWorkload, SubmissionsClusterEarly) {
  ConfConfig c;
  c.num_papers = 30;
  c.views_per_reviewer = 20;
  Workload w = MakeConfWorkload(c);
  // The first submission of each paper must appear in the submit-heavy prefix: check that
  // most submits land in the first half of the timeline.
  size_t submits_total = 0;
  size_t submits_first_half = 0;
  for (size_t i = 0; i < w.items.size(); i++) {
    if (w.items[i].script == "/conf/submit") {
      submits_total++;
      if (i < w.items.size() / 2) {
        submits_first_half++;
      }
    }
  }
  EXPECT_GT(submits_first_half * 10, submits_total * 8);  // >80% early.
}

TEST(ConfWorkload, ReviewLengthHonored) {
  ConfConfig c;
  c.num_papers = 5;
  c.reviews_target = 5;
  c.review_length = 500;
  c.views_per_reviewer = 1;
  Workload w = MakeConfWorkload(c);
  for (const WorkItem& item : w.items) {
    if (item.script == "/conf/review") {
      EXPECT_GE(item.params.at("body").size(), 500u);
      EXPECT_LT(item.params.at("body").size(), 600u);
    }
  }
}

}  // namespace
}  // namespace orochi
