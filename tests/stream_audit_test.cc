// Out-of-core streaming audit (src/stream/): the streamed path must be bit-identical to
// the in-memory FeedEpochFiles path — accept/reject, rejection reason, and final_state —
// at 1/2/8 worker threads, while a counting chunk loader proves the configured memory
// budget actually bounded the resident trace payloads. Sharded ingestion rides the same
// engine: a single shard degenerates to FeedEpochFiles, shards merge deterministically,
// and rid overlap across shards is a deterministic merge error.
#include "src/stream/stream_audit.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/audit_session.h"
#include "src/core/auditor.h"
#include "src/objects/wire_format.h"
#include "src/obs/metrics.h"
#include "src/server/tamper.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

// Record-level shape of a reports spill file: the largest single record payload (the
// pass-1 transient residency ceiling) and how many v3 op-log segment records it carries.
struct ReportsFileShape {
  uint64_t largest_payload = 0;
  size_t segment_records = 0;
};

ReportsFileShape ScanReportsFile(const std::string& path) {
  ReportsFileShape shape;
  ReportsRecordReader reader;
  EXPECT_TRUE(reader.Open(path).ok());
  uint8_t type = 0;
  std::string payload;
  while (true) {
    Result<bool> next = reader.Next(&type, &payload);
    EXPECT_TRUE(next.ok()) << next.error();
    if (!next.ok() || !next.value()) {
      break;
    }
    shape.largest_payload = std::max<uint64_t>(shape.largest_payload, payload.size());
    if (type == wire::kReportsRecOpLogSegment) {
      shape.segment_records++;
    }
  }
  return shape;
}

// One tally shared by the trace- and reports-side counting loaders: a single ChunkBudget
// admits trace payloads and op-log contents together, so the peak that the budget
// assertion must bound is the COMBINED resident byte count across both loaders.
struct ResidencyTally {
  std::mutex mu;
  uint64_t resident = 0;
  uint64_t peak = 0;

  void Add(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu);
    resident += bytes;
    peak = std::max(peak, resident);
  }
  void Sub(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu);
    resident -= bytes;
  }
};

// Wraps the real loader, mirroring the budget's view of residency: bytes go resident per
// chunk (OnChunkResident fires after the ChunkBudget admits the chunk) and drop per chunk
// as tasks retire. peak_bytes() is the number the budget assertion runs against.
class CountingChunkLoader : public TraceChunkLoader {
 public:
  explicit CountingChunkLoader(const StreamTraceSet* set, ResidencyTally* tally = nullptr)
      : real_(set), tally_(tally) {}

  Status Load(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      loads_++;
    }
    return real_.Load(set, index, event);
  }
  void Evict(const StreamTraceSet& set, size_t index, TraceEvent* event) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      evicts_++;
    }
    real_.Evict(set, index, event);
  }
  void OnChunkResident(uint64_t bytes) override {
    if (tally_ != nullptr) {
      tally_->Add(bytes);
    }
    std::lock_guard<std::mutex> lock(mu_);
    resident_bytes_ += bytes;
    active_chunks_++;
    peak_bytes_ = std::max(peak_bytes_, resident_bytes_);
    peak_chunks_ = std::max(peak_chunks_, active_chunks_);
    largest_chunk_bytes_ = std::max(largest_chunk_bytes_, bytes);
  }
  void OnChunkEvicted(uint64_t bytes) override {
    if (tally_ != nullptr) {
      tally_->Sub(bytes);
    }
    std::lock_guard<std::mutex> lock(mu_);
    resident_bytes_ -= bytes;
    active_chunks_--;
  }

  uint64_t loads() const { return loads_; }
  uint64_t evicts() const { return evicts_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }
  uint64_t peak_chunks() const { return peak_chunks_; }
  uint64_t largest_chunk_bytes() const { return largest_chunk_bytes_; }

 private:
  FileTraceChunkLoader real_;
  ResidencyTally* tally_;
  mutable std::mutex mu_;
  uint64_t loads_ = 0;
  uint64_t evicts_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  uint64_t active_chunks_ = 0;
  uint64_t peak_chunks_ = 0;
  uint64_t largest_chunk_bytes_ = 0;
};

// The reports-side twin: wraps the real op-log loader, feeding the shared tally so the
// combined trace+reports peak is observable, and tracking loads/evicts/peak on its own.
class CountingReportsLoader : public ReportsChunkLoader {
 public:
  CountingReportsLoader(const StreamReportsSet* set, ResidencyTally* tally)
      : real_(set), tally_(tally) {}

  Status Load(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
              uint64_t count) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry_loads_ += count;
    }
    return real_.Load(set, object, first_seqnum, count);
  }
  void Evict(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
             uint64_t count) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry_evicts_ += count;
    }
    real_.Evict(set, object, first_seqnum, count);
  }
  void OnChunkResident(uint64_t bytes) override {
    tally_->Add(bytes);
    std::lock_guard<std::mutex> lock(mu_);
    resident_bytes_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, resident_bytes_);
  }
  void OnChunkEvicted(uint64_t bytes) override {
    tally_->Sub(bytes);
    std::lock_guard<std::mutex> lock(mu_);
    resident_bytes_ -= bytes;
  }

  uint64_t entry_loads() const { return entry_loads_; }
  uint64_t entry_evicts() const { return entry_evicts_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  FileReportsChunkLoader real_;
  ResidencyTally* tally_;
  mutable std::mutex mu_;
  uint64_t entry_loads_ = 0;
  uint64_t entry_evicts_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
};

Workload CounterWorkload(size_t n, const std::string& key_prefix = "") {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = key_prefix + "k" + std::to_string(i % 5);
    item.params["who"] = key_prefix + "w" + std::to_string(i % 7);
    w.items.push_back(std::move(item));
  }
  return w;
}

struct SpilledEpoch {
  Workload w;
  InitialState initial;
  std::string trace_path;
  std::string reports_path;
};

SpilledEpoch SpillCounterEpoch(const std::string& tag, size_t n) {
  SpilledEpoch out;
  out.w = CounterWorkload(n);
  ServedWorkload served = ServeWorkload(out.w);
  out.initial = served.initial;
  out.trace_path = ::testing::TempDir() + "/stream_" + tag + "_trace.bin";
  out.reports_path = ::testing::TempDir() + "/stream_" + tag + "_reports.bin";
  EXPECT_TRUE(WriteTraceFile(out.trace_path, served.trace).ok());
  EXPECT_TRUE(WriteReportsFile(out.reports_path, served.reports).ok());
  return out;
}

AuditOptions StreamOptions(size_t threads, size_t budget) {
  AuditOptions options;
  options.num_threads = threads;
  options.max_group_size = 16;  // Small chunks: many tasks page in and out per group.
  options.max_resident_bytes = budget;
  return options;
}

constexpr size_t kBudget = 4096;

TEST(StreamAudit, StreamedMatchesInMemoryAcrossThreadCounts) {
  SpilledEpoch e = SpillCounterEpoch("match", 240);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AuditSession in_memory =
        AuditSession::Open(&e.w.app, StreamOptions(threads, 0), e.initial);
    Result<AuditResult> ref = in_memory.FeedEpochFiles(e.trace_path, e.reports_path);
    ASSERT_TRUE(ref.ok()) << ref.error();
    ASSERT_TRUE(ref.value().accepted) << ref.value().reason;

    AuditSession streamed =
        AuditSession::Open(&e.w.app, StreamOptions(threads, kBudget), e.initial);
    StreamTraceSet probe;
    ASSERT_TRUE(probe.AppendFile(e.trace_path).ok());
    // The budget must genuinely bind: the epoch's request payloads exceed it several
    // times over, so acceptance under the assertion below proves paging + eviction ran.
    ASSERT_GT(probe.total_request_payload_bytes(), 3 * kBudget);

    CountingChunkLoader loader(&probe);
    StreamAuditHooks hooks;
    hooks.loader = &loader;
    Result<AuditResult> got =
        streamed.FeedEpochFilesStreamed(e.trace_path, e.reports_path, &hooks);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
              InitialStateFingerprint(ref.value().final_state))
        << threads << " threads";
    EXPECT_EQ(InitialStateFingerprint(streamed.state()),
              InitialStateFingerprint(in_memory.state()));

    // The counting loader proves the budget held: peak resident trace bytes never passed
    // it, everything loaded was evicted, and nothing is resident after the audit.
    EXPECT_GT(loader.loads(), 0u);
    EXPECT_EQ(loader.loads(), loader.evicts());
    EXPECT_EQ(loader.resident_bytes(), 0u);
    EXPECT_LE(loader.largest_chunk_bytes(), kBudget) << "test workload mis-sized";
    EXPECT_LE(loader.peak_bytes(), kBudget) << threads << " threads";
  }
}

// The tentpole guarantee: ONE budget bounds the combined resident trace payloads AND
// op-log contents. The counting loader pair shares a tally, so the assertion below is on
// the true cross-loader peak — while the streamed verdict and final_state stay
// bit-identical to the in-memory path at every thread count.
TEST(StreamAudit, TracePlusReportsBytesShareOneBudgetAcrossThreadCounts) {
  SpilledEpoch e = SpillCounterEpoch("both_sides", 240);
  StreamReportsSet reports_probe;
  ASSERT_TRUE(reports_probe.AppendFile(e.reports_path).ok());
  // The reports side must genuinely bind too: the epoch's op-log bytes exceed the budget
  // several times over, so acceptance under the assertions below proves the versioned
  // -store builds and the chunk gate really paged log contents in and out.
  ASSERT_GT(reports_probe.total_log_payload_bytes(), 3 * kBudget);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AuditSession in_memory =
        AuditSession::Open(&e.w.app, StreamOptions(threads, 0), e.initial);
    Result<AuditResult> ref = in_memory.FeedEpochFiles(e.trace_path, e.reports_path);
    ASSERT_TRUE(ref.ok()) << ref.error();
    ASSERT_TRUE(ref.value().accepted) << ref.value().reason;

    AuditSession streamed =
        AuditSession::Open(&e.w.app, StreamOptions(threads, kBudget), e.initial);
    StreamTraceSet trace_probe;
    ASSERT_TRUE(trace_probe.AppendFile(e.trace_path).ok());
    ResidencyTally tally;
    CountingChunkLoader trace_loader(&trace_probe, &tally);
    CountingReportsLoader reports_loader(&reports_probe, &tally);
    ChunkBudget budget(kBudget);
    StreamAuditHooks hooks;
    hooks.loader = &trace_loader;
    hooks.reports_loader = &reports_loader;
    hooks.budget = &budget;
    Result<AuditResult> got =
        streamed.FeedEpochFilesStreamed(e.trace_path, e.reports_path, &hooks);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
              InitialStateFingerprint(ref.value().final_state))
        << threads << " threads";

    // Both sides paged; everything loaded was evicted; nothing is resident after the
    // audit; and the COMBINED peak never passed the single budget.
    EXPECT_GT(trace_loader.loads(), 0u);
    EXPECT_GT(reports_loader.entry_loads(), 0u);
    EXPECT_EQ(trace_loader.loads(), trace_loader.evicts());
    EXPECT_EQ(reports_loader.entry_loads(), reports_loader.entry_evicts());
    EXPECT_EQ(tally.resident, 0u);
    EXPECT_LE(tally.peak, kBudget) << threads << " threads";
    EXPECT_LE(budget.peak_bytes(), kBudget) << threads << " threads";
    // The loader hooks fire after Acquire and before Release, so the tally's view is
    // always a lower bound on the budget's own high-water mark (equality is not
    // guaranteed under concurrency — another worker can release between a peer's
    // admission and its OnChunkResident).
    EXPECT_LE(tally.peak, budget.peak_bytes()) << threads << " threads";

    // Pass 1 holds whole record payloads transiently while indexing — residency the
    // chunk budget cannot see. It is still bounded: at most one record, and no record
    // may exceed the v3 segment cap, so a writer regression that spills an over-cap
    // monolithic record (or an indexing regression that materializes more than one
    // record) fails right here, against max(budget, largest actual record).
    const ReportsFileShape shape = ScanReportsFile(e.reports_path);
    EXPECT_LE(shape.largest_payload, wire::kMaxOpLogSegmentBytes);
    const uint64_t transient = got.value().stats.pass1_transient_peak_bytes;
    EXPECT_GT(transient, 0u);
    EXPECT_EQ(transient, reports_probe.pass1_transient_peak_bytes());
    EXPECT_LE(transient, std::max<uint64_t>(kBudget, shape.largest_payload))
        << threads << " threads";
  }
}

// The PR-9 acceptance scenario: ONE hot object whose op-log exceeds the v3 segment cap
// several times over (every request hits the same counter key with an ~800-byte user, so
// the shared hits-table object's log dwarfs wire::kMaxOpLogSegmentBytes). The writer must
// split that log across segment records, pass-1 transient residency must be bounded by
// one *segment* rather than the whole log, and an audit under OROCHI_AUDIT_BUDGET=65536
// must keep the combined resident bytes at or below max(budget, largest single segment)
// while staying bit-identical to the in-memory path.
TEST(StreamAudit, HotObjectSegmentedSpillAuditsWithinOneSegmentTransient) {
  Workload w;
  w.name = "hot_counter";
  w.app = BuildCounterApp();
  ASSERT_TRUE(
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)").ok());
  const std::string pad(800, 'x');
  for (size_t i = 0; i < 240; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "hot";
    item.params["who"] = "u" + std::to_string(i % 7) + pad;
    w.items.push_back(std::move(item));
  }
  ServedWorkload served = ServeWorkload(w);
  const std::string trace_path = ::testing::TempDir() + "/stream_hot_trace.bin";
  const std::string reports_path = ::testing::TempDir() + "/stream_hot_reports.bin";
  ASSERT_TRUE(WriteTraceFile(trace_path, served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(reports_path, served.reports).ok());

  // The spill really is segmented, and no record — segment or otherwise — passes the cap.
  const ReportsFileShape shape = ScanReportsFile(reports_path);
  ASSERT_GE(shape.segment_records, 2u) << "hot object did not cross the segment cap";
  ASSERT_LE(shape.largest_payload, wire::kMaxOpLogSegmentBytes);

  // Pass 1 over the segmented file transiently holds one segment, never the whole log.
  StreamReportsSet reports_probe;
  ASSERT_TRUE(reports_probe.AppendFile(reports_path).ok());
  ASSERT_GT(reports_probe.total_log_payload_bytes(), wire::kMaxOpLogSegmentBytes);
  EXPECT_EQ(reports_probe.pass1_transient_peak_bytes(), shape.largest_payload);

  // Audit with the budget resolved from the environment, exactly as deployed.
  constexpr uint64_t kHotBudget = 65536;
  ASSERT_EQ(setenv("OROCHI_AUDIT_BUDGET", "65536", 1), 0);
  AuditOptions options;
  options.num_threads = 2;
  options.max_group_size = 16;  // max_resident_bytes stays 0: the env variable decides.

  AuditSession in_memory = AuditSession::Open(&w.app, options, served.initial);
  Result<AuditResult> ref = in_memory.FeedEpochFiles(trace_path, reports_path);
  ASSERT_TRUE(ref.ok()) << ref.error();
  ASSERT_TRUE(ref.value().accepted) << ref.value().reason;

  AuditSession streamed = AuditSession::Open(&w.app, options, served.initial);
  StreamTraceSet trace_probe;
  ASSERT_TRUE(trace_probe.AppendFile(trace_path).ok());
  ResidencyTally tally;
  CountingChunkLoader trace_loader(&trace_probe, &tally);
  CountingReportsLoader reports_loader(&reports_probe, &tally);
  StreamAuditHooks hooks;
  hooks.loader = &trace_loader;
  hooks.reports_loader = &reports_loader;
  Result<AuditResult> got =
      streamed.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
  ASSERT_EQ(unsetenv("OROCHI_AUDIT_BUDGET"), 0);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_TRUE(got.value().accepted) << got.value().reason;
  EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
            InitialStateFingerprint(ref.value().final_state));

  // The acceptance bound, on every phase's residency: budget-governed bytes and the
  // pass-1 transient both stay within max(budget, largest single segment).
  const uint64_t bound = std::max<uint64_t>(kHotBudget, shape.largest_payload);
  EXPECT_LE(tally.peak, bound);
  EXPECT_EQ(tally.resident, 0u);
  EXPECT_LE(got.value().stats.pass1_transient_peak_bytes, bound);
  EXPECT_EQ(got.value().stats.pass1_transient_peak_bytes,
            reports_probe.pass1_transient_peak_bytes());

  // The transient peak is also exported as a gauge for operators; SetMax is monotone, so
  // the registry's value is at least this audit's peak.
  EXPECT_GE(obs::MetricsRegistry::Default()
                ->GetGauge("orochi_pass1_transient_peak_bytes",
                           "largest record payload transiently resident during pass-1 "
                           "reports indexing")
                ->Value(),
            static_cast<int64_t>(got.value().stats.pass1_transient_peak_bytes));
}

TEST(StreamAudit, OpLogPointReadsReproduceContentsExactly) {
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "sess"});
  r.objects.push_back({ObjectKind::kKv, ""});
  r.op_logs.resize(2);
  OpRecord reg;
  reg.rid = 7;
  reg.opnum = 1;
  reg.type = StateOpType::kRegisterWrite;
  reg.contents = MakeRegisterWriteContents(Value::Str(std::string("v\0binary\xff", 9)));
  r.op_logs[0].push_back(reg);
  OpRecord set_op;
  set_op.rid = 7;
  set_op.opnum = 2;
  set_op.type = StateOpType::kKvSet;
  set_op.contents = MakeKvSetContents("k", Value::Int(42));
  OpRecord get_op;
  get_op.rid = 8;
  get_op.opnum = 1;
  get_op.type = StateOpType::kKvGet;
  get_op.contents = "k";
  r.op_logs[1].push_back(set_op);
  r.op_logs[1].push_back(get_op);
  r.groups[1] = {7, 8};
  r.op_counts[7] = 2;
  r.op_counts[8] = 1;
  r.nondet[7].push_back({"time", Value::Int(99).Serialize()});
  std::string path = ::testing::TempDir() + "/stream_oplog_point_reads.bin";
  ASSERT_TRUE(WriteReportsFile(path, r).ok());

  StreamReportsSet set;
  ASSERT_TRUE(set.AppendFile(path).ok());
  // The skeleton kept every structural field — and shed exactly the contents.
  ASSERT_EQ(set.skeleton().objects.size(), 2u);
  ASSERT_EQ(set.skeleton().op_logs[1].size(), 2u);
  EXPECT_EQ(set.skeleton().op_logs[0][0].rid, 7u);
  EXPECT_EQ(set.skeleton().op_logs[1][1].type, StateOpType::kKvGet);
  EXPECT_TRUE(set.skeleton().op_logs[0][0].contents.empty());
  EXPECT_TRUE(set.skeleton().op_logs[1][0].contents.empty());
  EXPECT_EQ(set.skeleton().groups, r.groups);
  EXPECT_EQ(set.skeleton().op_counts.at(7), 2u);
  EXPECT_EQ(set.skeleton().nondet.at(7).size(), 1u);
  EXPECT_GT(set.total_log_payload_bytes(), 0u);

  FileReportsChunkLoader loader(&set);
  ASSERT_TRUE(loader.Load(&set, 0, 1, 1).ok());
  ASSERT_TRUE(loader.Load(&set, 1, 1, 2).ok());
  EXPECT_EQ(set.skeleton().op_logs[0][0].contents, reg.contents);
  EXPECT_EQ(set.skeleton().op_logs[1][0].contents, set_op.contents);
  EXPECT_EQ(set.skeleton().op_logs[1][1].contents, get_op.contents);
  loader.Evict(&set, 0, 1, 1);
  loader.Evict(&set, 1, 1, 2);
  EXPECT_TRUE(set.skeleton().op_logs[0][0].contents.empty());
  EXPECT_TRUE(set.skeleton().op_logs[1][1].contents.empty());

  // A forward-scan segment sweep sees the same contents the resident reader decodes.
  ChunkBudget budget(0);
  SegmentedOpLogScanner scanner(&set, &loader, &budget);
  std::vector<std::string> seen;
  ASSERT_TRUE(scanner
                  .Scan(1,
                        [&](const OpRecord& op, uint64_t seqnum) {
                          EXPECT_EQ(seqnum, seen.size() + 1);
                          seen.push_back(op.contents);
                          return Status::Ok();
                        })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], set_op.contents);
  EXPECT_EQ(seen[1], get_op.contents);
  EXPECT_FALSE(scanner.io_failed());
}

TEST(StreamAudit, TamperedEpochRejectsIdenticallyInBothPathsAcrossThreads) {
  SpilledEpoch e = SpillCounterEpoch("tamper", 150);
  Result<Trace> trace = ReadTraceFile(e.trace_path);
  ASSERT_TRUE(trace.ok());
  RequestId victim = 0;
  for (const TraceEvent& ev : trace.value().events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      victim = ev.rid;
      break;
    }
  }
  ASSERT_TRUE(TamperResponseBody(&trace.value(), victim, "forged"));
  std::string tampered_path = ::testing::TempDir() + "/stream_tampered_trace.bin";
  ASSERT_TRUE(WriteTraceFile(tampered_path, trace.value()).ok());

  std::string base_reason;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AuditSession in_memory =
        AuditSession::Open(&e.w.app, StreamOptions(threads, 0), e.initial);
    Result<AuditResult> ref = in_memory.FeedEpochFiles(tampered_path, e.reports_path);
    ASSERT_TRUE(ref.ok()) << ref.error();
    ASSERT_FALSE(ref.value().accepted);

    AuditSession streamed =
        AuditSession::Open(&e.w.app, StreamOptions(threads, kBudget), e.initial);
    Result<AuditResult> got = streamed.FeedEpochFilesStreamed(tampered_path, e.reports_path);
    ASSERT_TRUE(got.ok()) << got.error();
    ASSERT_FALSE(got.value().accepted);

    // One reason, across both paths and every thread count.
    EXPECT_EQ(got.value().reason, ref.value().reason) << threads << " threads";
    if (base_reason.empty()) {
      base_reason = got.value().reason;
      EXPECT_FALSE(base_reason.empty());
    } else {
      EXPECT_EQ(got.value().reason, base_reason) << threads << " threads";
    }
    // A rejected epoch advances neither session.
    EXPECT_EQ(streamed.epochs_accepted(), 0u);
    EXPECT_EQ(InitialStateFingerprint(streamed.state()),
              InitialStateFingerprint(e.initial));
  }
}

TEST(StreamAudit, BudgetSmallerThanLargestChunkLoadsOneChunkAtATime) {
  SpilledEpoch e = SpillCounterEpoch("tiny_budget", 120);
  // 64 bytes is below any single chunk's payload, so every chunk takes the oversized-chunk
  // path: admitted only while nothing else is resident — never two chunks at once.
  AuditSession streamed = AuditSession::Open(&e.w.app, StreamOptions(4, 64), e.initial);
  StreamTraceSet probe;
  ASSERT_TRUE(probe.AppendFile(e.trace_path).ok());
  CountingChunkLoader loader(&probe);
  StreamAuditHooks hooks;
  hooks.loader = &loader;
  Result<AuditResult> got =
      streamed.FeedEpochFilesStreamed(e.trace_path, e.reports_path, &hooks);
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_TRUE(got.value().accepted) << got.value().reason;
  EXPECT_GT(loader.largest_chunk_bytes(), 64u) << "budget not actually undersized";
  EXPECT_EQ(loader.peak_chunks(), 1u);
  EXPECT_EQ(loader.peak_bytes(), loader.largest_chunk_bytes());

  AuditSession in_memory = AuditSession::Open(&e.w.app, StreamOptions(1, 0), e.initial);
  Result<AuditResult> ref = in_memory.FeedEpochFiles(e.trace_path, e.reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted);
  EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
            InitialStateFingerprint(ref.value().final_state));
}

TEST(StreamAudit, FileErrorsMatchInMemoryPathAndConsumeNoEpoch) {
  Workload w = CounterWorkload(10);
  std::string missing = ::testing::TempDir() + "/stream_no_such_file.bin";
  AuditSession in_memory = AuditSession::Open(&w.app, StreamOptions(1, 0), w.initial);
  AuditSession streamed = AuditSession::Open(&w.app, StreamOptions(1, 0), w.initial);
  Result<AuditResult> ref = in_memory.FeedEpochFiles(missing, missing);
  Result<AuditResult> got = streamed.FeedEpochFilesStreamed(missing, missing);
  ASSERT_FALSE(ref.ok());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error(), ref.error());
  EXPECT_EQ(streamed.epochs_fed(), 0u);
}

// --- Sharded ingestion ---

struct ShardSpill {
  std::string trace_path;
  std::string reports_path;
};

// One front end: serves `items` (rids starting at base_rid) on its own ServerCore and a
// shard-stamped Collector, then spills the pair.
ShardSpill ServeShard(const Workload& w, const std::vector<WorkItem>& items,
                      uint32_t shard_id, RequestId base_rid, const std::string& tag) {
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  Collector collector(shard_id);
  {
    ThreadServer server(&core, &collector, /*num_workers=*/4);
    RequestId rid = base_rid;
    for (const WorkItem& item : items) {
      server.Submit(rid++, item.script, item.params);
    }
    server.Drain();
  }
  ShardSpill out;
  out.trace_path = ::testing::TempDir() + "/shard_" + tag + "_trace.bin";
  out.reports_path = ::testing::TempDir() + "/shard_" + tag + "_reports.bin";
  EXPECT_TRUE(collector.Flush(out.trace_path).ok());
  EXPECT_TRUE(core.ExportReports(out.reports_path).ok());
  return out;
}

TEST(ShardedAudit, SingleShardDegeneratesToFeedEpochFiles) {
  SpilledEpoch e = SpillCounterEpoch("one_shard", 90);
  AuditSession via_files = AuditSession::Open(&e.w.app, StreamOptions(2, 0), e.initial);
  Result<AuditResult> ref = via_files.FeedEpochFiles(e.trace_path, e.reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted) << ref.error();

  AuditSession via_shards =
      AuditSession::Open(&e.w.app, StreamOptions(2, kBudget), e.initial);
  Result<AuditResult> got =
      via_shards.FeedShardedEpoch(std::vector<ShardEpochFiles>{{e.trace_path, e.reports_path}});
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_TRUE(got.value().accepted) << got.value().reason;
  EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
            InitialStateFingerprint(ref.value().final_state));
  EXPECT_EQ(via_shards.epochs_fed(), 1u);
  EXPECT_EQ(via_shards.epochs_accepted(), 1u);
}

TEST(ShardedAudit, MultiShardMatchesInMemoryMergedAuditAcrossThreads) {
  // Three front ends over disjoint key/user spaces and disjoint rid ranges, all starting
  // from the same initial state — the sharded deployment's contract.
  Workload base = CounterWorkload(0);
  std::vector<ShardSpill> spills;
  std::vector<uint32_t> ids = {3, 1, 2};  // Stamped out of order on purpose.
  for (size_t s = 0; s < 3; s++) {
    Workload shard_w = CounterWorkload(60, "s" + std::to_string(ids[s]) + "_");
    spills.push_back(ServeShard(base, shard_w.items, ids[s],
                                /*base_rid=*/1 + 1000 * ids[s],
                                "multi_" + std::to_string(ids[s])));
  }
  std::vector<ShardEpochFiles> shard_files;
  for (const ShardSpill& s : spills) {
    shard_files.push_back({s.trace_path, s.reports_path});
  }

  // The reference: materialize the merged epoch (ascending shard id — the documented
  // deterministic merge order) and audit it fully in memory.
  std::vector<size_t> by_id = {1, 2, 0};  // Positions of ids 1, 2, 3 in `spills`.
  Trace merged_trace;
  Reports merged_reports;
  for (size_t pos : by_id) {
    Result<Trace> t = ReadTraceFile(spills[pos].trace_path);
    Result<Reports> r = ReadReportsFile(spills[pos].reports_path);
    ASSERT_TRUE(t.ok() && r.ok());
    merged_trace.events.insert(merged_trace.events.end(), t.value().events.begin(),
                               t.value().events.end());
    ASSERT_TRUE(AppendReports(&merged_reports, r.value()).ok());
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    AuditSession in_memory =
        AuditSession::Open(&base.app, StreamOptions(threads, 0), base.initial);
    AuditResult ref = in_memory.FeedEpoch(merged_trace, merged_reports);
    ASSERT_TRUE(ref.accepted) << ref.reason;

    AuditSession sharded =
        AuditSession::Open(&base.app, StreamOptions(threads, kBudget), base.initial);
    Result<AuditResult> got = sharded.FeedShardedEpoch(shard_files);
    ASSERT_TRUE(got.ok()) << got.error();
    ASSERT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
              InitialStateFingerprint(ref.final_state))
        << threads << " threads";
  }
}

TEST(ShardedAudit, EmptyShardMergesCleanly) {
  SpilledEpoch e = SpillCounterEpoch("with_empty", 45);
  // Re-stamp the served shard as shard 1; shard 2 saw no traffic this epoch.
  Result<Trace> t = ReadTraceFile(e.trace_path);
  ASSERT_TRUE(t.ok());
  std::string shard1_trace = ::testing::TempDir() + "/shard_empty_t1.bin";
  ASSERT_TRUE(WriteTraceFile(shard1_trace, t.value(), /*shard_id=*/1).ok());
  ShardSpill empty = ServeShard(e.w, {}, /*shard_id=*/2, /*base_rid=*/5000, "empty2");

  AuditSession sharded = AuditSession::Open(&e.w.app, StreamOptions(2, 0), e.initial);
  Result<AuditResult> got = sharded.FeedShardedEpoch(std::vector<ShardEpochFiles>{
      {shard1_trace, e.reports_path}, {empty.trace_path, empty.reports_path}});
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_TRUE(got.value().accepted) << got.value().reason;

  AuditSession alone = AuditSession::Open(&e.w.app, StreamOptions(2, 0), e.initial);
  Result<AuditResult> ref = alone.FeedEpochFiles(e.trace_path, e.reports_path);
  ASSERT_TRUE(ref.ok() && ref.value().accepted);
  EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
            InitialStateFingerprint(ref.value().final_state));
}

TEST(ShardedAudit, DuplicateRidAcrossShardsIsADeterministicMergeError) {
  Workload w = CounterWorkload(0);
  Workload w1 = CounterWorkload(30, "a_");
  Workload w2 = CounterWorkload(30, "b_");
  // Both shards hand out rids 1..30: disjoint traffic sliced wrong.
  ShardSpill s1 = ServeShard(w, w1.items, 1, /*base_rid=*/1, "dup1");
  ShardSpill s2 = ServeShard(w, w2.items, 2, /*base_rid=*/1, "dup2");

  std::string first_error;
  // Deterministic: same error whichever order the caller lists the shards in (merge
  // order is by stamped shard id, not argument order), and stable across repeats.
  for (const auto& order : {std::vector<ShardSpill>{s1, s2}, std::vector<ShardSpill>{s2, s1}}) {
    AuditSession session = AuditSession::Open(&w.app, StreamOptions(2, 0), w.initial);
    std::vector<ShardEpochFiles> files;
    for (const ShardSpill& s : order) {
      files.push_back({s.trace_path, s.reports_path});
    }
    Result<AuditResult> got = session.FeedShardedEpoch(files);
    ASSERT_FALSE(got.ok());
    EXPECT_NE(got.error().find("appears in more than one shard"), std::string::npos)
        << got.error();
    if (first_error.empty()) {
      first_error = got.error();
    } else {
      EXPECT_EQ(got.error(), first_error);
    }
    EXPECT_EQ(session.epochs_fed(), 0u);  // A merge error consumes no epoch.
  }
}

TEST(ShardedAudit, ManifestDrivesTheMergeAndChecksStampedIds) {
  Workload base = CounterWorkload(0);
  std::vector<ShardSpill> spills;
  for (uint32_t id : {1u, 2u, 3u}) {
    Workload shard_w = CounterWorkload(40, "m" + std::to_string(id) + "_");
    spills.push_back(
        ServeShard(base, shard_w.items, id, 1 + 1000 * id, "man_" + std::to_string(id)));
  }
  ShardManifest manifest;
  manifest.epoch = 7;
  for (uint32_t id : {1u, 2u, 3u}) {
    const ShardSpill& s = spills[id - 1];
    // Relative paths resolve against the manifest's directory.
    manifest.shards.push_back({id, s.trace_path.substr(s.trace_path.rfind('/') + 1),
                               s.reports_path.substr(s.reports_path.rfind('/') + 1)});
  }
  std::string manifest_path = ::testing::TempDir() + "/shard_manifest.bin";
  ASSERT_TRUE(WriteShardManifestFile(manifest_path, manifest).ok());

  AuditSession session = AuditSession::Open(&base.app, StreamOptions(2, kBudget), base.initial);
  Result<AuditResult> got = session.FeedShardedEpoch(manifest_path);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_TRUE(got.value().accepted) << got.value().reason;

  // A manifest that misattributes a stamped shard is rejected before any audit work.
  manifest.shards[0].shard_id = 9;
  std::string bad_path = ::testing::TempDir() + "/shard_manifest_bad.bin";
  ASSERT_TRUE(WriteShardManifestFile(bad_path, manifest).ok());
  AuditSession session2 = AuditSession::Open(&base.app, StreamOptions(2, 0), base.initial);
  Result<AuditResult> bad = session2.FeedShardedEpoch(bad_path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("stamped shard"), std::string::npos) << bad.error();
}

TEST(StreamAudit, PointReadsReproducePayloadsExactly) {
  Trace t;
  TraceEvent req;
  req.kind = TraceEvent::Kind::kRequest;
  req.rid = 42;
  req.script = "/counter/hit";
  req.params = {{"key", "k"}, {"who", std::string("w\0x\xff", 4)}};
  t.events.push_back(req);
  TraceEvent resp;
  resp.kind = TraceEvent::Kind::kResponse;
  resp.rid = 42;
  resp.body = std::string("body\0with\xff" "binary", 16);
  t.events.push_back(resp);
  std::string path = ::testing::TempDir() + "/stream_point_reads.bin";
  ASSERT_TRUE(WriteTraceFile(path, t, /*shard_id=*/4).ok());

  StreamTraceSet set;
  Result<uint32_t> shard = set.AppendFile(path);
  ASSERT_TRUE(shard.ok()) << shard.error();
  EXPECT_EQ(shard.value(), 4u);
  ASSERT_EQ(set.num_events(), 2u);
  // The skeleton kept structure, not payloads.
  EXPECT_EQ(set.skeleton().events[0].script, "/counter/hit");
  EXPECT_TRUE(set.skeleton().events[0].params.empty());
  EXPECT_TRUE(set.skeleton().events[1].body.empty());

  FileTraceChunkLoader loader(&set);
  Trace* skeleton = set.mutable_skeleton();
  ASSERT_TRUE(loader.Load(set, 0, &skeleton->events[0]).ok());
  ASSERT_TRUE(loader.Load(set, 1, &skeleton->events[1]).ok());
  EXPECT_EQ(skeleton->events[0].params, req.params);
  EXPECT_EQ(skeleton->events[1].body, resp.body);
  loader.Evict(set, 0, &skeleton->events[0]);
  loader.Evict(set, 1, &skeleton->events[1]);
  EXPECT_TRUE(skeleton->events[0].params.empty());
  EXPECT_TRUE(skeleton->events[1].body.empty());
}

TEST(StreamAudit, BudgetResolutionPrefersOptionsOverEnv) {
  AuditOptions options;
  options.max_resident_bytes = 12345;
  Result<uint64_t> b = ResolveAuditBudget(options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 12345u);
  options.max_resident_bytes = 0;
  ASSERT_EQ(setenv("OROCHI_AUDIT_BUDGET", "777", 1), 0);
  b = ResolveAuditBudget(options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 777u);
  ASSERT_EQ(unsetenv("OROCHI_AUDIT_BUDGET"), 0);
  b = ResolveAuditBudget(options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 0u);
}

// A set but malformed OROCHI_AUDIT_BUDGET / OROCHI_AUDIT_THREADS used to silently fall
// back (atoll) — unbounded memory or a surprise thread count. Both are hard errors now.
TEST(EnvConfig, MalformedBudgetEnvIsAHardErrorNotASilentFallback) {
  AuditOptions options;  // max_resident_bytes = 0 ⇒ the env variable decides.
  for (const char* bad : {"12abc", "abc", "-1", "+5", " 8", "8 ", "", "99999999999999999999"}) {
    ASSERT_EQ(setenv("OROCHI_AUDIT_BUDGET", bad, 1), 0);
    Result<uint64_t> b = ResolveAuditBudget(options);
    ASSERT_FALSE(b.ok()) << "'" << bad << "' should not parse";
    EXPECT_NE(b.error().find("OROCHI_AUDIT_BUDGET"), std::string::npos) << b.error();
  }

  // A streamed feed surfaces the config error as a hard error Result, before any file is
  // read and without consuming an epoch.
  ASSERT_EQ(setenv("OROCHI_AUDIT_BUDGET", "4k", 1), 0);
  SpilledEpoch e = SpillCounterEpoch("env_budget", 20);
  AuditOptions session_options;
  session_options.num_threads = 1;
  AuditSession session = AuditSession::Open(&e.w.app, session_options, e.initial);
  Result<AuditResult> r = session.FeedEpochFilesStreamed(e.trace_path, e.reports_path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("OROCHI_AUDIT_BUDGET"), std::string::npos) << r.error();
  EXPECT_EQ(session.epochs_fed(), 0u);

  // Options still shadow the environment entirely, even a malformed one.
  session_options.max_resident_bytes = kBudget;
  AuditSession shadowed = AuditSession::Open(&e.w.app, session_options, e.initial);
  Result<AuditResult> ok = shadowed.FeedEpochFilesStreamed(e.trace_path, e.reports_path);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_TRUE(ok.value().accepted);
  ASSERT_EQ(unsetenv("OROCHI_AUDIT_BUDGET"), 0);
}

// The PR-10 acceptance sweep: read-ahead depth is a pure performance axis. At every
// (depth × threads × budget) point the verdict and final_state must be bit-identical to
// the in-memory reference, everything loaded must be evicted, and the combined resident
// bytes must stay under the budget's own high-water mark — prefetched bytes are charged
// to the same ChunkBudget before they are read, so turning the pipeline on cannot raise
// the ceiling.
TEST(StreamAudit, PrefetchDepthAxisIsBitIdenticalAndBudgetBounded) {
  SpilledEpoch e = SpillCounterEpoch("prefetch_axis", 240);
  uint64_t total_hits = 0;
  for (size_t depth : {size_t{0}, size_t{1}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t budget_max : {size_t{64}, kBudget, size_t{0}}) {
        SCOPED_TRACE("depth=" + std::to_string(depth) + " threads=" +
                     std::to_string(threads) + " budget=" + std::to_string(budget_max));
        AuditSession in_memory =
            AuditSession::Open(&e.w.app, StreamOptions(threads, 0), e.initial);
        Result<AuditResult> ref = in_memory.FeedEpochFiles(e.trace_path, e.reports_path);
        ASSERT_TRUE(ref.ok()) << ref.error();
        ASSERT_TRUE(ref.value().accepted) << ref.value().reason;

        AuditOptions opts = StreamOptions(threads, budget_max);
        opts.prefetch_depth = depth;
        AuditSession streamed = AuditSession::Open(&e.w.app, opts, e.initial);
        StreamTraceSet trace_probe;
        ASSERT_TRUE(trace_probe.AppendFile(e.trace_path).ok());
        StreamReportsSet reports_probe;
        ASSERT_TRUE(reports_probe.AppendFile(e.reports_path).ok());
        ResidencyTally tally;
        CountingChunkLoader trace_loader(&trace_probe, &tally);
        CountingReportsLoader reports_loader(&reports_probe, &tally);
        ChunkBudget budget(budget_max);
        PrefetchStats stats;
        StreamAuditHooks hooks;
        hooks.loader = &trace_loader;
        hooks.reports_loader = &reports_loader;
        hooks.budget = &budget;
        hooks.prefetch_stats = &stats;
        Result<AuditResult> got =
            streamed.FeedEpochFilesStreamed(e.trace_path, e.reports_path, &hooks);
        ASSERT_TRUE(got.ok()) << got.error();
        EXPECT_TRUE(got.value().accepted) << got.value().reason;
        EXPECT_EQ(InitialStateFingerprint(got.value().final_state),
                  InitialStateFingerprint(ref.value().final_state));

        // Residency discipline is depth-independent: loads match evicts, nothing stays
        // resident, and the tally never exceeds what the budget itself admitted.
        EXPECT_GT(trace_loader.loads(), 0u);
        EXPECT_EQ(trace_loader.loads(), trace_loader.evicts());
        EXPECT_EQ(reports_loader.entry_loads(), reports_loader.entry_evicts());
        EXPECT_EQ(tally.resident, 0u);
        EXPECT_LE(tally.peak, budget.peak_bytes());
        if (budget_max >= kBudget) {
          EXPECT_LE(budget.peak_bytes(), budget_max);
        }

        if (depth == 0) {
          // Depth 0 means the pipeline never existed: all-zero counters, including the
          // misses a live pipeline would count for worker-side loads.
          EXPECT_EQ(stats.issued, 0u);
          EXPECT_EQ(stats.hits, 0u);
          EXPECT_EQ(stats.misses, 0u);
          EXPECT_EQ(stats.revoked, 0u);
          EXPECT_EQ(stats.bytes, 0u);
        } else {
          // Every pool-task gate acquire resolves to a hit or a miss — the pipeline was
          // consulted for each one even when the walk never got ahead.
          EXPECT_GT(stats.hits + stats.misses, 0u);
          EXPECT_GE(stats.issued, stats.hits);
          EXPECT_GE(stats.issued, stats.revoked);
          total_hits += stats.hits;
        }
      }
    }
  }
  // Scheduling decides which individual acquires hit, but across the whole sweep the
  // walk must genuinely get ahead of the workers somewhere.
  EXPECT_GT(total_hits, 0u);
}

// Same contract as the budget/threads knobs: a set but malformed OROCHI_PREFETCH_DEPTH
// is a hard config error before any file is read, never a silent fallback to some depth.
TEST(EnvConfig, MalformedPrefetchDepthEnvIsAHardErrorNotASilentFallback) {
  AuditOptions options;  // prefetch_depth = kPrefetchDepthAuto ⇒ the env variable decides.
  for (const char* bad : {"2x", "abc", "-1", "+5", " 2", "2 ", "", "99999999999999999999"}) {
    ASSERT_EQ(setenv("OROCHI_PREFETCH_DEPTH", bad, 1), 0);
    Result<size_t> d = ResolvePrefetchDepth(options);
    ASSERT_FALSE(d.ok()) << "'" << bad << "' should not parse";
    EXPECT_NE(d.error().find("OROCHI_PREFETCH_DEPTH"), std::string::npos) << d.error();
  }

  // Well-formed values resolve exactly; 0 is a real value (pipeline off), not auto.
  ASSERT_EQ(setenv("OROCHI_PREFETCH_DEPTH", "0", 1), 0);
  Result<size_t> off = ResolvePrefetchDepth(options);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 0u);
  ASSERT_EQ(setenv("OROCHI_PREFETCH_DEPTH", "7", 1), 0);
  Result<size_t> seven = ResolvePrefetchDepth(options);
  ASSERT_TRUE(seven.ok());
  EXPECT_EQ(seven.value(), 7u);
  ASSERT_EQ(unsetenv("OROCHI_PREFETCH_DEPTH"), 0);
  Result<size_t> unset = ResolvePrefetchDepth(options);
  ASSERT_TRUE(unset.ok());
  EXPECT_EQ(unset.value(), kDefaultPrefetchDepth);

  // A streamed feed surfaces the config error as a hard error Result, classified as
  // config (not I/O), without consuming an epoch.
  ASSERT_EQ(setenv("OROCHI_PREFETCH_DEPTH", "2x", 1), 0);
  SpilledEpoch e = SpillCounterEpoch("env_prefetch", 20);
  AuditOptions session_options;
  session_options.num_threads = 1;
  AuditSession session = AuditSession::Open(&e.w.app, session_options, e.initial);
  Result<AuditResult> r = session.FeedEpochFilesStreamed(e.trace_path, e.reports_path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("OROCHI_PREFETCH_DEPTH"), std::string::npos) << r.error();
  EXPECT_EQ(ClassifyAuditOutcome(r), AuditOutcome::kConfigError);
  EXPECT_EQ(session.epochs_fed(), 0u);

  // Explicit options shadow the environment entirely, even a malformed one.
  session_options.prefetch_depth = 0;
  AuditSession shadowed = AuditSession::Open(&e.w.app, session_options, e.initial);
  Result<AuditResult> ok = shadowed.FeedEpochFilesStreamed(e.trace_path, e.reports_path);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_TRUE(ok.value().accepted);
  ASSERT_EQ(unsetenv("OROCHI_PREFETCH_DEPTH"), 0);
}

TEST(EnvConfig, MalformedThreadsEnvIsAHardErrorNotASilentFallback) {
  AuditOptions options;  // num_threads = 0 ⇒ the env variable decides.
  for (const char* bad : {"two", "2x", "-2", " 2", ""}) {
    ASSERT_EQ(setenv("OROCHI_AUDIT_THREADS", bad, 1), 0);
    Result<size_t> t = ResolveAuditThreads(options);
    ASSERT_FALSE(t.ok()) << "'" << bad << "' should not parse";
    EXPECT_NE(t.error().find("OROCHI_AUDIT_THREADS"), std::string::npos) << t.error();
  }
  // An explicit 0 means auto, like AuditOptions::num_threads == 0.
  ASSERT_EQ(setenv("OROCHI_AUDIT_THREADS", "0", 1), 0);
  Result<size_t> zero = ResolveAuditThreads(options);
  ASSERT_TRUE(zero.ok());
  EXPECT_GE(zero.value(), 1u);

  ASSERT_EQ(setenv("OROCHI_AUDIT_THREADS", "8x", 1), 0);
  SpilledEpoch e = SpillCounterEpoch("env_threads", 20);
  // File-based feeds: a hard error Result before any file is read, no epoch consumed.
  AuditSession session = AuditSession::Open(&e.w.app, options, e.initial);
  Result<AuditResult> r = session.FeedEpochFiles(e.trace_path, e.reports_path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("OROCHI_AUDIT_THREADS"), std::string::npos) << r.error();
  Result<AuditResult> rs = session.FeedEpochFilesStreamed(e.trace_path, e.reports_path);
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.error().find("OROCHI_AUDIT_THREADS"), std::string::npos) << rs.error();
  EXPECT_EQ(session.epochs_fed(), 0u);

  // FeedEpoch has no error channel: the config error reports as a rejection whose reason
  // names the variable, and the epoch is not consumed.
  Result<Trace> trace = ReadTraceFile(e.trace_path);
  Result<Reports> reports = ReadReportsFile(e.reports_path);
  ASSERT_TRUE(trace.ok() && reports.ok());
  AuditResult fed = session.FeedEpoch(trace.value(), reports.value());
  EXPECT_FALSE(fed.accepted);
  EXPECT_NE(fed.reason.find("OROCHI_AUDIT_THREADS"), std::string::npos) << fed.reason;
  EXPECT_EQ(session.epochs_fed(), 0u);

  // Explicit options shadow the environment entirely.
  AuditOptions pinned;
  pinned.num_threads = 2;
  AuditSession shadowed = AuditSession::Open(&e.w.app, pinned, e.initial);
  Result<AuditResult> ok = shadowed.FeedEpochFiles(e.trace_path, e.reports_path);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_TRUE(ok.value().accepted);
  ASSERT_EQ(unsetenv("OROCHI_AUDIT_THREADS"), 0);
}

}  // namespace
}  // namespace orochi
