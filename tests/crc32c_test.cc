// Pins the runtime-dispatched CRC32C to the RFC 3720 golden vectors and holds every
// backend (slice-by-8 software, SSE4.2/ARMv8 hardware when the host has it, and whatever
// the dispatcher picked) to bit-identical outputs across lengths, alignments, and chain
// splits. Wire format v2+ records, net frames, and checkpoint sidecars all share this one
// definition, so a backend divergence here would read as corruption everywhere.
#include "src/common/crc32c.h"

#include <cstring>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace orochi {
namespace {

using crc32c_internal::ExtendHardware;
using crc32c_internal::ExtendSoftware;
using crc32c_internal::HardwareAvailable;

// Every implementation under test, so a vector failure names the backend.
struct Backend {
  const char* name;
  uint32_t (*extend)(uint32_t, const char*, size_t);
};

std::vector<Backend> Backends() {
  std::vector<Backend> out = {{"software", &ExtendSoftware}, {"dispatched", &Crc32cExtend}};
  if (HardwareAvailable()) {
    out.push_back({"hardware", &ExtendHardware});
  }
  return out;
}

uint32_t OneShot(const Backend& b, const std::string& s) {
  return b.extend(0, s.data(), s.size());
}

// RFC 3720 §B.4 test vectors (the iSCSI CRC32C appendix), plus the classic check value
// for "123456789".
TEST(Crc32c, Rfc3720GoldenVectors) {
  const std::string zeros(32, '\0');
  const std::string ones(32, '\xff');
  std::string incrementing;
  std::string decrementing;
  for (int i = 0; i < 32; i++) {
    incrementing.push_back(static_cast<char>(i));
    decrementing.push_back(static_cast<char>(31 - i));
  }
  static const unsigned char kScsiRead10[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  const std::string scsi_read(reinterpret_cast<const char*>(kScsiRead10),
                              sizeof(kScsiRead10));
  for (const Backend& b : Backends()) {
    SCOPED_TRACE(b.name);
    EXPECT_EQ(OneShot(b, zeros), 0x8a9136aau);
    EXPECT_EQ(OneShot(b, ones), 0x62a8ab43u);
    EXPECT_EQ(OneShot(b, incrementing), 0x46dd794eu);
    EXPECT_EQ(OneShot(b, decrementing), 0x113fdb5cu);
    EXPECT_EQ(OneShot(b, scsi_read), 0xd9963a56u);
    EXPECT_EQ(OneShot(b, "123456789"), 0xe3069283u);
    EXPECT_EQ(OneShot(b, ""), 0u);
  }
}

// The dispatched implementation (whatever backend it picked) must match the portable
// reference bit-for-bit across lengths that exercise the 8-byte kernel, its head/tail
// byte loops, and unaligned starts.
TEST(Crc32c, BackendsAgreeAcrossLengthsAndAlignments) {
  std::mt19937_64 rng(20260807u);
  std::string buf(4096 + 64, '\0');
  for (char& c : buf) {
    c = static_cast<char>(rng());
  }
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8}}) {
    for (size_t len :
         {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{15}, size_t{16},
          size_t{63}, size_t{64}, size_t{255}, size_t{1024}, size_t{4096}}) {
      const char* p = buf.data() + offset;
      const uint32_t ref = ExtendSoftware(0, p, len);
      EXPECT_EQ(Crc32cExtend(0, p, len), ref) << "offset=" << offset << " len=" << len;
      if (HardwareAvailable()) {
        EXPECT_EQ(ExtendHardware(0, p, len), ref)
            << "offset=" << offset << " len=" << len;
      }
    }
  }
}

// Chaining invariant every record writer relies on: Crc32c(a+b) == Extend(Crc32c(a), b),
// for every backend and every split point.
TEST(Crc32c, ExtendChainsAcrossArbitrarySplits) {
  std::mt19937_64 rng(1u);
  std::string data(257, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng());
  }
  for (const Backend& b : Backends()) {
    SCOPED_TRACE(b.name);
    const uint32_t whole = OneShot(b, data);
    for (size_t split : {size_t{0}, size_t{1}, size_t{8}, size_t{100}, data.size()}) {
      const uint32_t head = b.extend(0, data.data(), split);
      const uint32_t chained = b.extend(head, data.data() + split, data.size() - split);
      EXPECT_EQ(chained, whole) << "split=" << split;
    }
  }
}

TEST(Crc32c, BackendNameMatchesDispatch) {
  const std::string name = Crc32cBackendName();
  if (HardwareAvailable()) {
    EXPECT_TRUE(name == "sse4.2" || name == "armv8-crc") << name;
  } else {
    EXPECT_EQ(name, "software");
  }
}

}  // namespace
}  // namespace orochi
