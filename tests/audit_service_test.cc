// The live audit service end to end, against the properties the offline pipeline already
// guarantees:
//
//   1. Parity: streaming N concurrent shards through sockets and letting the service
//      seal + audit must produce a verdict, reason, and final state bit-identical to
//      AuditSession::FeedShardedEpoch over the equivalent spill files — across epochs
//      (chained states) and at more than one verifier thread count; the sealed spool
//      files themselves are byte-identical to the local spills.
//   2. Reconnect-with-resume: a collector killed mid-epoch reconnects, resumes from the
//      acked counts, and none of the above changes.
//   3. Taxonomy under a seeded fault sweep: whatever disconnects and short writes the
//      schedule fires, the pipeline never crashes, an accept always matches the direct
//      audit's truth, and every client-visible failure is retryable I/O — never tamper.
//   4. Tamper still rejects through the socket path, with the direct audit's reason; a
//      shard lying about its end-of-epoch totals is quarantined, never audited.
//   5. Observability: the registry counters mirror the per-client stats exactly, and a
//      seeded fault schedule shows up in them 1:1 — reconnects equal the scripted
//      disconnects, transient-read retries equal the faults the injected Env fired.
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/io_env.h"
#include "src/core/audit_session.h"
#include "src/net/fault_transport.h"
#include "src/net/frame.h"
#include "src/net/transport.h"
#include "src/objects/wire_format.h"
#include "src/obs/metrics.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/tamper.h"
#include "src/server/thread_server.h"
#include "src/service/audit_service.h"
#include "src/service/collector_client.h"
#include "src/workload/workloads.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Result<Workload> CounterWorkload() {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  if (Result<StmtResult> r =
          w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
      !r.ok()) {
    return Result<Workload>::Error(r.error());
  }
  return w;
}

// One served shard slice, kept restreamable: `trace` is the collector's recording and
// can be Restore()d into a fresh Collector any number of times.
struct ShardSlice {
  uint32_t shard_id = 0;
  Trace trace;
  Reports reports;
};

ShardSlice ServeSlice(uint32_t shard_id, uint64_t epoch,
                      size_t requests, ServerCore* core) {
  ShardSlice slice;
  slice.shard_id = shard_id;
  Collector collector(shard_id);
  {
    ThreadServer server(core, &collector, /*num_workers=*/3);
    RequestId rid = 1 + 100000 * shard_id + 1000000 * (epoch - 1);
    for (size_t i = 0; i < requests; i++) {
      RequestParams params;
      params["key"] = "s" + std::to_string(shard_id) + "_k" + std::to_string(i % 7);
      params["who"] = "s" + std::to_string(shard_id) + "_u" + std::to_string(i % 5);
      server.Submit(rid++, (i % 4 == 3) ? "/counter/read" : "/counter/hit", params);
    }
    server.Drain();
  }
  slice.trace = collector.TakeTrace();
  slice.reports = core->TakeReports();
  return slice;
}

// Spills the slice the way the collector would locally — the byte-parity and
// direct-audit baseline.
ShardEpochFiles SpillSlice(const ShardSlice& slice, const std::string& stem) {
  ShardEpochFiles files{stem + ".trace", stem + ".reports"};
  EXPECT_TRUE(WriteTraceFile(files.trace_path, slice.trace, slice.shard_id).ok());
  EXPECT_TRUE(WriteReportsFile(files.reports_path, slice.reports).ok());
  return files;
}

// Streams the slice to the service as `epoch`; a fresh Collector is loaded with a copy
// of the recording so the slice survives for re-streaming in sweep iterations.
Status StreamSlice(const std::string& address, const ShardSlice& slice, uint64_t epoch,
                   Transport* transport, int max_reconnects, ClientStats* stats = nullptr) {
  Collector collector(slice.shard_id);
  collector.Restore(Trace(slice.trace));
  CollectorClient client(address, transport, max_reconnects);
  Status st = client.StreamEpoch(epoch, &collector, slice.reports);
  if (stats != nullptr) {
    *stats = client.stats();
  }
  return st;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

ServiceOptions TestServiceOptions(const std::string& spool_dir, uint32_t shards) {
  ServiceOptions options;
  options.listen_address = "tcp:127.0.0.1:0";
  options.shards_per_epoch = shards;
  options.spool_dir = spool_dir;
  // Small enough that backpressure + acks actually cycle in a small test.
  options.max_in_flight_bytes = 8 * 1024;
  options.ack_interval_records = 16;
  return options;
}

std::string MakeSpoolDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/orochi_svc_" + name;
  EXPECT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()), 0);
  return dir;
}

// --- 1 + 2. Parity across chained epochs, thread counts, and a mid-epoch kill ---

TEST(AuditService, ChainedEpochParityWithReconnectAtTwoThreadCounts) {
  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("parity");

  // Two front ends, two epochs each, persistent executors (epoch 2 continues epoch 1's
  // server state — what the chained audit verifies).
  std::vector<std::unique_ptr<ServerCore>> cores;
  for (int i = 0; i < 2; i++) {
    cores.push_back(std::make_unique<ServerCore>(&w.app, w.initial,
                                                 ServerOptions{.record_reports = true}));
  }
  std::vector<std::vector<ShardSlice>> slices(2);     // [epoch-1][shard-1]
  std::vector<std::vector<ShardEpochFiles>> direct(2);
  for (uint64_t epoch = 1; epoch <= 2; epoch++) {
    for (uint32_t shard = 1; shard <= 2; shard++) {
      ShardSlice slice =
          ServeSlice(shard, epoch, /*requests=*/40 + 8 * shard, cores[shard - 1].get());
      direct[epoch - 1].push_back(SpillSlice(
          slice, spool + "/direct_e" + std::to_string(epoch) + "_s" + std::to_string(shard)));
      slices[epoch - 1].push_back(std::move(slice));
    }
  }

  AuditOptions audit_options;
  audit_options.max_group_size = 8;
  AuditService service(&w.app, audit_options, w.initial, TestServiceOptions(spool, 2));
  ASSERT_TRUE(service.Start().ok());

  // Epoch 1: both shards stream concurrently; shard 2's process dies mid-epoch (a
  // scripted one-shot kill) and must reconnect + resume.
  NetFaultOptions kill;
  kill.disconnect_after_writes = 10;
  FaultInjectingTransport kill_transport(nullptr, kill);
  {
    ClientStats s1, s2;
    std::thread t1([&]() {
      EXPECT_TRUE(StreamSlice(service.address(), slices[0][0], 1, nullptr, 8, &s1).ok());
    });
    std::thread t2([&]() {
      EXPECT_TRUE(
          StreamSlice(service.address(), slices[0][1], 1, &kill_transport, 8, &s2).ok());
    });
    t1.join();
    t2.join();
    EXPECT_EQ(kill_transport.disconnects(), 1u);
    EXPECT_GE(s2.reconnects, 1u);
    EXPECT_GT(s2.records_resumed, 0u) << "resume should skip the acked records";
  }
  // Epoch 2: clean.
  for (uint32_t shard = 1; shard <= 2; shard++) {
    ASSERT_TRUE(StreamSlice(service.address(), slices[1][shard - 1], 2, nullptr, 8).ok());
  }

  Result<AuditResult> v1 = service.WaitEpochVerdict(1);
  Result<AuditResult> v2 = service.WaitEpochVerdict(2);
  ASSERT_TRUE(v1.ok()) << v1.error();
  ASSERT_TRUE(v2.ok()) << v2.error();
  EXPECT_TRUE(v1.value().accepted) << v1.value().reason;
  EXPECT_TRUE(v2.value().accepted) << v2.value().reason;
  ServiceStats stats = service.stats();
  service.Stop();
  EXPECT_EQ(stats.shards_sealed, 4u);
  EXPECT_EQ(stats.epochs_accepted, 2u);

  // The sealed spools are the spill files, byte for byte.
  for (uint64_t epoch = 1; epoch <= 2; epoch++) {
    for (uint32_t shard = 1; shard <= 2; shard++) {
      const std::string stem = spool + "/epoch_" + std::to_string(epoch) + "_shard_" +
                               std::to_string(shard);
      EXPECT_EQ(Slurp(stem + ".trace"), Slurp(direct[epoch - 1][shard - 1].trace_path))
          << "epoch " << epoch << " shard " << shard;
      EXPECT_EQ(Slurp(stem + ".reports"), Slurp(direct[epoch - 1][shard - 1].reports_path))
          << "epoch " << epoch << " shard " << shard;
    }
  }

  // The live verdicts equal a direct chained session over the spill files, at two
  // verifier thread counts.
  for (size_t threads : {size_t{1}, size_t{3}}) {
    AuditOptions options;
    options.max_group_size = 8;
    options.num_threads = threads;
    AuditSession session = AuditSession::Open(&w.app, options, w.initial);
    Result<AuditResult> d1 = session.FeedShardedEpoch(direct[0]);
    Result<AuditResult> d2 = session.FeedShardedEpoch(direct[1]);
    ASSERT_TRUE(d1.ok() && d2.ok());
    EXPECT_EQ(d1.value().accepted, v1.value().accepted);
    EXPECT_EQ(d1.value().reason, v1.value().reason);
    EXPECT_EQ(d2.value().accepted, v2.value().accepted);
    EXPECT_EQ(d2.value().reason, v2.value().reason);
    EXPECT_EQ(InitialStateFingerprint(d1.value().final_state),
              InitialStateFingerprint(v1.value().final_state))
        << "num_threads=" << threads;
    EXPECT_EQ(InitialStateFingerprint(d2.value().final_state),
              InitialStateFingerprint(v2.value().final_state))
        << "num_threads=" << threads;
  }
}

// --- 3. The seeded fault sweep ---

TEST(AuditService, FaultSweepNeverCrashesNeverFalselyAccepts) {
  const uint64_t base_seed = TestBaseSeed(0x11E7);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("sweep");

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  ShardSlice slice = ServeSlice(/*shard_id=*/1, /*epoch=*/1, /*requests=*/24, &core);
  ShardEpochFiles files = SpillSlice(slice, spool + "/direct");
  AuditOptions audit_options;
  audit_options.max_group_size = 8;
  AuditSession direct = AuditSession::Open(&w.app, audit_options, w.initial);
  Result<AuditResult> truth = direct.FeedShardedEpoch({files});
  ASSERT_TRUE(truth.ok() && truth.value().accepted);
  const std::string truth_print = InitialStateFingerprint(truth.value().final_state);

  constexpr int kSchedules = 24;
  int accepted = 0;
  int transient_failures = 0;
  uint64_t faults_fired = 0;
  for (int s = 0; s < kSchedules; s++) {
    NetFaultOptions fo;
    fo.seed = base_seed + static_cast<uint64_t>(s);
    fo.p_disconnect_read = 0.03;
    fo.p_disconnect_write = 0.03;
    fo.p_short_write = 0.01;
    FaultInjectingTransport faulty(nullptr, fo);

    AuditService service(&w.app, audit_options, w.initial, TestServiceOptions(spool, 1));
    ASSERT_TRUE(service.Start().ok());
    Status st = StreamSlice(service.address(), slice, /*epoch=*/1, &faulty,
                            /*max_reconnects=*/64);
    faults_fired += faulty.faults_injected();
    if (st.ok()) {
      // The epoch sealed: the verdict must be the direct audit's truth, exactly.
      Result<AuditResult> verdict = service.WaitEpochVerdict(1);
      ASSERT_TRUE(verdict.ok()) << "schedule " << s << ": " << verdict.error();
      ASSERT_TRUE(verdict.value().accepted)
          << "schedule " << s << " falsely rejected honest traffic under injected "
          << "network faults: " << verdict.value().reason;
      ASSERT_EQ(InitialStateFingerprint(verdict.value().final_state), truth_print)
          << "schedule " << s << " accepted a state diverging from the truth";
      accepted++;
    } else {
      // Reconnects exhausted: the failure must classify as retryable I/O — a network
      // flap is never reported as tamper evidence.
      EXPECT_TRUE(IsTransientIoError(st.error()))
          << "schedule " << s << " misclassified an injected fault: " << st.error();
      transient_failures++;
    }
    service.Stop();
  }
  EXPECT_GT(faults_fired, 0u) << "the sweep never exercised a fault";
  EXPECT_GT(accepted, 0) << "no schedule survived to a verdict; sweep proves nothing";
  EXPECT_EQ(accepted + transient_failures, kSchedules);
}

// --- 4. Tamper and lies through the socket path ---

TEST(AuditService, TamperedStreamRejectsWithTheDirectAuditsReason) {
  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("tamper");

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  ShardSlice slice = ServeSlice(/*shard_id=*/1, /*epoch=*/1, /*requests=*/32, &core);
  // The untrusted side forges a response body before the stream leaves the machine.
  RequestId victim = 0;
  for (const TraceEvent& e : slice.trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      victim = e.rid;
      break;
    }
  }
  ASSERT_TRUE(TamperResponseBody(&slice.trace, victim, "<html>forged</html>"));
  ShardEpochFiles files = SpillSlice(slice, spool + "/direct");

  AuditOptions audit_options;
  audit_options.max_group_size = 8;
  AuditSession direct = AuditSession::Open(&w.app, audit_options, w.initial);
  Result<AuditResult> truth = direct.FeedShardedEpoch({files});
  ASSERT_TRUE(truth.ok());
  ASSERT_FALSE(truth.value().accepted);

  AuditService service(&w.app, audit_options, w.initial, TestServiceOptions(spool, 1));
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(StreamSlice(service.address(), slice, 1, nullptr, 8).ok())
      << "tampered content still streams and seals; rejection is the audit's job";
  Result<AuditResult> verdict = service.WaitEpochVerdict(1);
  service.Stop();
  ASSERT_TRUE(verdict.ok()) << verdict.error();
  EXPECT_FALSE(verdict.value().accepted);
  EXPECT_EQ(verdict.value().reason, truth.value().reason);
}

TEST(AuditService, ShardLyingAboutTotalsIsQuarantinedNeverAudited) {
  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("quarantine");

  AuditOptions audit_options;
  AuditService service(&w.app, audit_options, w.initial, TestServiceOptions(spool, 1));
  ASSERT_TRUE(service.Start().ok());

  // A hand-rolled client: handshake, spool one real record, then claim five.
  Result<std::unique_ptr<Connection>> conn =
      Transport::Default()->Connect(service.address());
  ASSERT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
  net::FrameWriter writer(conn.value().get());
  net::FrameReader reader(conn.value().get());
  ASSERT_TRUE(
      writer.Send(net::kFrameHello, net::EncodeHello({wire::kFormatVersion, 1, 1})).ok());
  uint8_t type = 0;
  std::string payload;
  Result<bool> got = reader.Next(&type, &payload);
  ASSERT_TRUE(got.ok() && got.value());
  ASSERT_EQ(type, net::kFrameHelloAck);

  TraceEvent event;
  event.kind = TraceEvent::Kind::kRequest;
  event.rid = 1;
  event.script = "/counter/read";
  net::RecordFrame rec;
  rec.index = 0;
  EncodeTraceEventRecord(event, &rec.record_type, &rec.payload);
  ASSERT_TRUE(writer.Send(net::kFrameTraceRecord, net::EncodeRecord(rec)).ok());
  ASSERT_TRUE(
      writer.Send(net::kFrameEndEpoch, net::EncodeEndEpoch({/*trace=*/5, 0})).ok());

  // The service answers with the quarantine, not a seal.
  bool saw_error = false;
  for (;;) {
    Result<bool> next = reader.Next(&type, &payload);
    if (!next.ok() || !next.value()) {
      break;
    }
    if (type == net::kFrameError) {
      Result<net::ErrorFrame> err = net::DecodeError(payload);
      ASSERT_TRUE(err.ok());
      EXPECT_NE(err.value().message.find("quarantined"), std::string::npos)
          << err.value().message;
      saw_error = true;
    }
    ASSERT_NE(type, net::kFrameEpochSealed) << "a lying shard must never seal";
  }
  EXPECT_TRUE(saw_error);

  Result<AuditResult> verdict = service.WaitEpochVerdict(1);
  ASSERT_FALSE(verdict.ok()) << "a quarantined epoch must not produce a verdict";
  EXPECT_NE(verdict.error().find("quarantined"), std::string::npos) << verdict.error();
  ServiceStats stats = service.stats();
  service.Stop();
  EXPECT_EQ(stats.shards_quarantined, 1u);
  EXPECT_EQ(stats.epochs_audited, 0u);
}

// A frame corrupted on the wire is counted, reported as ErrorCode::kCorruption, and the
// record is never spooled — re-sending after the resume handshake still seals to the
// exact spill bytes.
TEST(AuditService, CorruptFrameIsReportedAndNeverSpooled) {
  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("corrupt");

  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  ShardSlice slice = ServeSlice(/*shard_id=*/1, /*epoch=*/1, /*requests=*/16, &core);
  ShardEpochFiles files = SpillSlice(slice, spool + "/direct");

  AuditOptions audit_options;
  audit_options.max_group_size = 8;
  AuditService service(&w.app, audit_options, w.initial, TestServiceOptions(spool, 1));
  ASSERT_TRUE(service.Start().ok());

  {  // Attempt 1: hand-deliver a record frame whose payload byte flipped in flight.
    Result<std::unique_ptr<Connection>> conn =
        Transport::Default()->Connect(service.address());
    ASSERT_TRUE(conn.ok());
    net::FrameWriter writer(conn.value().get());
    net::FrameReader reader(conn.value().get());
    ASSERT_TRUE(
        writer.Send(net::kFrameHello, net::EncodeHello({wire::kFormatVersion, 1, 1})).ok());
    uint8_t type = 0;
    std::string payload;
    Result<bool> got = reader.Next(&type, &payload);
    ASSERT_TRUE(got.ok() && got.value());
    ASSERT_EQ(type, net::kFrameHelloAck);

    net::RecordFrame rec;
    rec.index = 0;
    EncodeTraceEventRecord(slice.trace.events[0], &rec.record_type, &rec.payload);
    std::string frame;
    wire::AppendRecordFrame(&frame, net::kFrameTraceRecord, net::EncodeRecord(rec));
    frame.back() ^= 0x40;
    ASSERT_TRUE(conn.value()->WriteAll(frame).ok());
    got = reader.Next(&type, &payload);
    ASSERT_TRUE(got.ok() && got.value());
    ASSERT_EQ(type, net::kFrameError);
    Result<net::ErrorFrame> err = net::DecodeError(payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().code, net::ErrorCode::kCorruption);
  }
  EXPECT_EQ(service.stats().corrupt_frames, 1u);
  EXPECT_EQ(service.stats().records_spooled, 0u) << "the corrupt record must not spool";

  // Attempt 2: the real client resumes (from record 0 — nothing was accepted) and the
  // sealed spool is still byte-identical to the local spill.
  ASSERT_TRUE(StreamSlice(service.address(), slice, 1, nullptr, 8).ok());
  Result<AuditResult> verdict = service.WaitEpochVerdict(1);
  service.Stop();
  ASSERT_TRUE(verdict.ok()) << verdict.error();
  EXPECT_TRUE(verdict.value().accepted) << verdict.value().reason;
  EXPECT_EQ(Slurp(spool + "/epoch_1_shard_1.trace"), Slurp(files.trace_path));
}

// --- 5. Observability counters vs the injected schedule ---

// The registry mirrors (orochi_client_*, orochi_io_*) are bumped at the same sites as
// the mutex-guarded per-client stats, so across a seeded sweep the deltas must agree
// exactly — and the fault schedule itself must be visible in them: one reconnect per
// scripted disconnect, one transient-retry per fault the injected Env fired.
TEST(AuditService, ObservabilityCountersMatchTheInjectedSchedule) {
  const uint64_t base_seed = TestBaseSeed(0x0B5);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  const uint64_t reconnects0 = reg->GetCounter("orochi_client_reconnects_total", "")->Value();
  const uint64_t resumed0 =
      reg->GetCounter("orochi_client_records_resumed_total", "")->Value();
  const uint64_t acks0 = reg->GetCounter("orochi_client_acks_received_total", "")->Value();
  const uint64_t retries0 =
      reg->GetCounter("orochi_io_read_transient_retries_total", "")->Value();
  const uint64_t recovered0 = reg->GetCounter("orochi_io_reads_recovered_total", "")->Value();

  Result<Workload> workload = CounterWorkload();
  ASSERT_TRUE(workload.ok());
  const Workload& w = workload.value();
  const std::string spool = MakeSpoolDir("obs_sweep");
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = true});
  ShardSlice slice = ServeSlice(/*shard_id=*/1, /*epoch=*/1, /*requests=*/32, &core);

  // The service's spool I/O (writes during ingest, reads during the audit) goes through
  // a fault-injecting Env that fires only retryable read errors — every one of them must
  // be absorbed by the retry loop and counted.
  FaultOptions io_fo;
  io_fo.seed = base_seed;
  io_fo.p_read_transient = 0.05;
  FaultInjectingEnv fenv(nullptr, io_fo);
  AuditOptions audit_options;
  audit_options.max_group_size = 8;
  audit_options.io_env = &fenv;
  ServiceOptions soptions = TestServiceOptions(spool, 1);
  soptions.env = &fenv;

  constexpr int kSchedules = 6;
  uint64_t client_reconnects = 0;
  uint64_t client_resumed = 0;
  uint64_t client_acks = 0;
  uint64_t scripted_disconnects = 0;
  for (int s = 0; s < kSchedules; s++) {
    // A one-shot kill at a different point each schedule: the client must reconnect
    // exactly once per disconnect the transport actually fired.
    NetFaultOptions fo;
    fo.disconnect_after_writes = 4 + 7 * s;
    FaultInjectingTransport faulty(nullptr, fo);

    AuditService service(&w.app, audit_options, w.initial, soptions);
    ASSERT_TRUE(service.Start().ok());
    ClientStats cs;
    ASSERT_TRUE(
        StreamSlice(service.address(), slice, /*epoch=*/1, &faulty, 8, &cs).ok());
    Result<AuditResult> verdict = service.WaitEpochVerdict(1);
    ASSERT_TRUE(verdict.ok()) << "schedule " << s << ": " << verdict.error();
    EXPECT_TRUE(verdict.value().accepted) << verdict.value().reason;
    service.Stop();

    EXPECT_EQ(faulty.disconnects(), 1u) << "schedule " << s;
    EXPECT_EQ(cs.reconnects, faulty.disconnects()) << "schedule " << s;
    client_reconnects += cs.reconnects;
    client_resumed += cs.records_resumed;
    client_acks += cs.acks_received;
    scripted_disconnects += faulty.disconnects();
  }

  // Registry mirrors agree with the summed per-client stats, exactly.
  EXPECT_EQ(reg->GetCounter("orochi_client_reconnects_total", "")->Value() - reconnects0,
            client_reconnects);
  EXPECT_EQ(reg->GetCounter("orochi_client_records_resumed_total", "")->Value() - resumed0,
            client_resumed);
  EXPECT_EQ(reg->GetCounter("orochi_client_acks_received_total", "")->Value() - acks0,
            client_acks);
  // ...and the schedule is legible in them: one reconnect per scripted kill.
  EXPECT_EQ(client_reconnects, scripted_disconnects);

  // Every transient read fault the Env injected was retried (none escalated — all six
  // epochs accepted above proves no read ran out of attempts) and counted exactly once.
  const uint64_t retries =
      reg->GetCounter("orochi_io_read_transient_retries_total", "")->Value() - retries0;
  const uint64_t recovered =
      reg->GetCounter("orochi_io_reads_recovered_total", "")->Value() - recovered0;
  EXPECT_EQ(retries, fenv.faults_injected());
  EXPECT_GT(fenv.faults_injected(), 0u) << "the sweep never exercised an I/O fault";
  EXPECT_GT(recovered, 0u);
  EXPECT_LE(recovered, retries);
}

}  // namespace
}  // namespace orochi
