// Randomized differential property test: for generated workloads — pristine and
// adversarially tampered — every audit engine must agree. FeedEpoch (in-memory),
// FeedEpochFilesStreamed (out-of-core, trace payloads + op-log contents paged under a
// budget), and FeedShardedEpoch (merge-join ingestion) are cross-checked on verdict,
// rejection reason, and final_state across {1, 2, 8} worker threads × {tiny, default,
// unlimited} memory budgets. Any divergence — a tamper caught by one path but not
// another, a reason that depends on scheduling, a final state that depends on paging —
// is a bug by construction (the engines share one planner/executor), and this test is
// the net that catches it.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/server/tamper.h"
#include "src/stream/stream_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};
// Tiny forces the oversized-chunk one-at-a-time path, default forces steady paging
// churn, 0 never blocks — three very different schedules that must not change anything.
constexpr size_t kBudgets[] = {64, 4096, 0};

AuditOptions Options(size_t threads, size_t budget) {
  AuditOptions options;
  options.num_threads = threads;
  options.max_group_size = 16;  // Small chunks: many page-in/evict cycles per group.
  options.max_resident_bytes = budget;
  return options;
}

Workload RandomCounterWorkload(Rng* rng, size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = rng->Chance(0.3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(rng->UniformInt(0, 6));
    item.params["who"] = "w" + std::to_string(rng->UniformInt(0, 9));
    w.items.push_back(std::move(item));
  }
  return w;
}

Workload RandomForumWorkload(Rng* rng, size_t n) {
  ForumConfig config;
  config.num_topics = 4;
  config.seed_posts_per_topic = 3;
  config.num_users = 9;
  config.num_requests = n;
  config.reply_fraction = 0.15;
  config.login_fraction = 0.10;
  config.seed = static_cast<uint64_t>(rng->UniformInt(1, 1 << 20));
  return MakeForumWorkload(config);
}

std::vector<RequestId> TracedRids(const Trace& trace) {
  std::vector<RequestId> rids;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      rids.push_back(e.rid);
    }
  }
  return rids;
}

// Applies one randomly chosen adversarial mutation from the tamper library. Returns
// false only if no mutation found a target in 20 attempts (practically never for the
// generated workloads). The mutation need not be *caught* — a request moved between
// groups of the same script is legitimate advice — the property under test is that every
// engine renders the same judgment on it.
bool ApplyRandomTamper(Rng* rng, Trace* trace, Reports* reports, std::string* label) {
  std::vector<RequestId> rids = TracedRids(*trace);
  if (rids.empty()) {
    return false;
  }
  auto rand_rid = [&] {
    return rids[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(rids.size()) - 1))];
  };
  auto rand_log = [&](size_t min_len, size_t* object) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < reports->op_logs.size(); i++) {
      if (reports->op_logs[i].size() >= min_len) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      return false;
    }
    *object = candidates[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    return true;
  };
  for (int attempt = 0; attempt < 20; attempt++) {
    size_t object = 0;
    switch (rng->UniformInt(0, 6)) {
      case 0:
        if (TamperResponseBody(trace, rand_rid(), "<forged response>")) {
          *label = "forged response body";
          return true;
        }
        break;
      case 1:
        if (rids.size() >= 2 && SwapResponseBodies(trace, rids.front(), rids.back())) {
          *label = "swapped response bodies";
          return true;
        }
        break;
      case 2:
        if (rand_log(1, &object)) {
          size_t idx = static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(reports->op_logs[object].size()) - 1));
          if (DropLogEntry(reports, object, idx)) {
            *label = "dropped log entry";
            return true;
          }
        }
        break;
      case 3:
        if (rand_log(1, &object)) {
          size_t idx = static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(reports->op_logs[object].size()) - 1));
          if (TamperLogContents(reports, object, idx, "corrupted-op-contents")) {
            *label = "forged log contents";
            return true;
          }
        }
        break;
      case 4: {
        RequestId rid = rand_rid();
        auto it = reports->op_counts.find(rid);
        uint32_t count = it == reports->op_counts.end() ? 0 : it->second;
        if (TamperOpCount(reports, rid, count + 1)) {
          *label = "misstated op count";
          return true;
        }
        break;
      }
      case 5:
        if (MoveRequestToGroup(reports, rand_rid(), 0xDEAD)) {
          *label = "moved request between groups";
          return true;
        }
        break;
      case 6:
        if (rand_log(2, &object)) {
          size_t n = reports->op_logs[object].size();
          size_t i = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 2));
          if (SwapLogEntries(reports, object, i, i + 1)) {
            *label = "swapped log entries";
            return true;
          }
        }
        break;
    }
  }
  return false;
}

struct Verdict {
  bool accepted = false;
  std::string reason;
  std::string fingerprint;  // Empty unless accepted.
};

Verdict FromResult(const AuditResult& r) {
  Verdict v;
  v.accepted = r.accepted;
  v.reason = r.reason;
  if (r.accepted) {
    v.fingerprint = InitialStateFingerprint(r.final_state);
  }
  return v;
}

void ExpectSameVerdict(const Verdict& got, const Verdict& ref, const std::string& what) {
  EXPECT_EQ(got.accepted, ref.accepted) << what << ": " << got.reason << " vs " << ref.reason;
  EXPECT_EQ(got.reason, ref.reason) << what;
  EXPECT_EQ(got.fingerprint, ref.fingerprint) << what;
}

TEST(DifferentialAudit, GeneratedWorkloadsAgreeAcrossEnginesThreadsAndBudgets) {
  const uint64_t base_seed = TestBaseSeed(0);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  size_t case_id = 0;
  size_t tampered_cases = 0;
  for (uint64_t offset : {11u, 22u, 33u, 44u}) {
    const uint64_t seed = base_seed + offset;
    Rng rng(seed);
    Workload w = seed % 2 == 0
                     ? RandomForumWorkload(&rng, 40 + static_cast<size_t>(rng.UniformInt(0, 20)))
                     : RandomCounterWorkload(&rng, 50 + static_cast<size_t>(rng.UniformInt(0, 30)));
    ServedWorkload served = ServeWorkload(w);

    struct Variant {
      std::string label;
      Trace trace;
      Reports reports;
    };
    std::vector<Variant> variants;
    variants.push_back({"pristine", served.trace, served.reports});
    for (int t = 0; t < 3; t++) {
      Variant v{"?", served.trace, served.reports};
      if (ApplyRandomTamper(&rng, &v.trace, &v.reports, &v.label)) {
        tampered_cases++;
        variants.push_back(std::move(v));
      }
    }

    for (const Variant& variant : variants) {
      case_id++;
      const std::string tag =
          "seed " + std::to_string(seed) + " case " + std::to_string(case_id) + " (" +
          variant.label + ")";
      const std::string trace_path =
          ::testing::TempDir() + "/diff_" + std::to_string(case_id) + "_trace.bin";
      const std::string reports_path =
          ::testing::TempDir() + "/diff_" + std::to_string(case_id) + "_reports.bin";
      ASSERT_TRUE(WriteTraceFile(trace_path, variant.trace).ok());
      ASSERT_TRUE(WriteReportsFile(reports_path, variant.reports).ok());

      AuditSession ref_session = AuditSession::Open(&w.app, Options(1, 0), served.initial);
      Verdict ref = FromResult(ref_session.FeedEpoch(variant.trace, variant.reports));

      for (size_t threads : kThreadCounts) {
        AuditSession mem =
            AuditSession::Open(&w.app, Options(threads, 0), served.initial);
        ExpectSameVerdict(FromResult(mem.FeedEpoch(variant.trace, variant.reports)), ref,
                          tag + " in-memory @" + std::to_string(threads) + "t");
        for (size_t budget : kBudgets) {
          const std::string combo = tag + " @" + std::to_string(threads) + "t/" +
                                    std::to_string(budget) + "b";
          AuditSession streamed =
              AuditSession::Open(&w.app, Options(threads, budget), served.initial);
          Result<AuditResult> got =
              streamed.FeedEpochFilesStreamed(trace_path, reports_path);
          ASSERT_TRUE(got.ok()) << combo << ": " << got.error();
          ExpectSameVerdict(FromResult(got.value()), ref, combo + " streamed");

          AuditSession sharded =
              AuditSession::Open(&w.app, Options(threads, budget), served.initial);
          Result<AuditResult> via_shards = sharded.FeedShardedEpoch(
              std::vector<ShardEpochFiles>{{trace_path, reports_path}});
          ASSERT_TRUE(via_shards.ok()) << combo << ": " << via_shards.error();
          ExpectSameVerdict(FromResult(via_shards.value()), ref, combo + " sharded");
        }
      }
    }
  }
  // The sweep must have exercised real adversaries, not just pristine epochs.
  EXPECT_GE(tampered_cases, 8u);
}

// Sharded ingestion differential: N randomly generated shard slices (disjoint rids and
// key spaces) audited via FeedShardedEpoch must match one in-memory audit of the
// materialized merged epoch — pristine and with a tampered shard — across thread counts
// and budgets.
TEST(DifferentialAudit, RandomShardedEpochsMatchTheMergedInMemoryAudit) {
  const uint64_t base_seed = TestBaseSeed(0);
  SCOPED_TRACE(SeedTraceMessage(base_seed));
  Rng rng(base_seed + 99);
  Workload base;
  base.app = BuildCounterApp();
  ASSERT_TRUE(
      base.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)").ok());

  struct ShardSpill {
    std::string trace_path;
    std::string reports_path;
  };
  std::vector<ShardSpill> spills;
  for (uint32_t shard = 1; shard <= 3; shard++) {
    ServerCore core(&base.app, base.initial, ServerOptions{.record_reports = true});
    Collector collector(shard);
    {
      ThreadServer server(&core, &collector, /*num_workers=*/4);
      RequestId rid = 1 + 1000 * shard;
      size_t n = 25 + static_cast<size_t>(rng.UniformInt(0, 15));
      for (size_t i = 0; i < n; i++) {
        RequestParams params;
        params["key"] = "s" + std::to_string(shard) + "_k" +
                        std::to_string(rng.UniformInt(0, 4));
        params["who"] = "s" + std::to_string(shard) + "_w" +
                        std::to_string(rng.UniformInt(0, 6));
        server.Submit(rid++, rng.Chance(0.25) ? "/counter/read" : "/counter/hit", params);
      }
      server.Drain();
    }
    ShardSpill spill;
    spill.trace_path =
        ::testing::TempDir() + "/diff_shard" + std::to_string(shard) + "_trace.bin";
    spill.reports_path =
        ::testing::TempDir() + "/diff_shard" + std::to_string(shard) + "_reports.bin";
    ASSERT_TRUE(collector.Flush(spill.trace_path).ok());
    ASSERT_TRUE(core.ExportReports(spill.reports_path).ok());
    spills.push_back(std::move(spill));
  }

  // A tampered variant: forge a response inside shard 2's spilled trace.
  std::vector<ShardSpill> tampered = spills;
  {
    Result<Trace> t = ReadTraceFile(spills[1].trace_path);
    ASSERT_TRUE(t.ok());
    std::vector<RequestId> rids = TracedRids(t.value());
    ASSERT_FALSE(rids.empty());
    ASSERT_TRUE(TamperResponseBody(&t.value(), rids[rids.size() / 2], "<forged>"));
    tampered[1].trace_path = ::testing::TempDir() + "/diff_shard2_tampered_trace.bin";
    ASSERT_TRUE(WriteTraceFile(tampered[1].trace_path, t.value(), /*shard_id=*/2).ok());
  }

  for (const auto& [label, shard_set] :
       {std::pair<std::string, std::vector<ShardSpill>>{"pristine", spills},
        std::pair<std::string, std::vector<ShardSpill>>{"tampered", tampered}}) {
    // Reference: materialize the merged epoch (ascending shard id) and audit in memory.
    Trace merged_trace;
    Reports merged_reports;
    for (const ShardSpill& s : shard_set) {
      Result<Trace> t = ReadTraceFile(s.trace_path);
      Result<Reports> r = ReadReportsFile(s.reports_path);
      ASSERT_TRUE(t.ok() && r.ok());
      merged_trace.events.insert(merged_trace.events.end(), t.value().events.begin(),
                                 t.value().events.end());
      ASSERT_TRUE(AppendReports(&merged_reports, r.value()).ok());
    }
    AuditSession ref_session = AuditSession::Open(&base.app, Options(1, 0), base.initial);
    Verdict ref = FromResult(ref_session.FeedEpoch(merged_trace, merged_reports));
    EXPECT_EQ(ref.accepted, label == std::string("pristine")) << ref.reason;

    std::vector<ShardEpochFiles> files;
    for (const ShardSpill& s : shard_set) {
      files.push_back({s.trace_path, s.reports_path});
    }
    for (size_t threads : kThreadCounts) {
      for (size_t budget : kBudgets) {
        AuditSession sharded =
            AuditSession::Open(&base.app, Options(threads, budget), base.initial);
        Result<AuditResult> got = sharded.FeedShardedEpoch(files);
        ASSERT_TRUE(got.ok()) << got.error();
        ExpectSameVerdict(FromResult(got.value()), ref,
                          label + " @" + std::to_string(threads) + "t/" +
                              std::to_string(budget) + "b");
      }
    }
  }
}

}  // namespace
}  // namespace orochi
