// The observability subsystem: sharded counters/gauges/histograms must stay exact under
// concurrent updates (run under TSan in CI), expositions must be deterministic and match
// the documented formats byte for byte, phase tracing must attribute spans to the right
// phase, and the StatsServer must answer well-formed GETs and survive malformed ones.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/stats_server.h"
#include "src/obs/trace.h"

namespace orochi {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; i++) {
        c.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndRatchet) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(5);
  EXPECT_EQ(g.Value(), 7);  // Ratchet never lowers.
  g.SetMax(42);
  EXPECT_EQ(g.Value(), 42);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; i++) {
        g.Add(2);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(g.Value(), int64_t{2} * kThreads * kPerThread);
}

TEST(HistogramTest, BucketsAreLeAndSumIsExact) {
  Histogram h({0.001, 0.01, 0.1});
  h.Observe(0.001);  // le="0.001" (bounds are inclusive upper bounds).
  h.Observe(0.005);
  h.Observe(0.05);
  h.Observe(5.0);  // +Inf.
  Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  // Sums accumulate in integer micro-units, so this is exact, not approximate.
  EXPECT_DOUBLE_EQ(snap.sum, 5.056);
}

TEST(HistogramTest, ConcurrentObservesAreExact) {
  Histogram h({1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; i++) {
        h.Observe(0.5);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.buckets[0], static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 * kThreads * kPerThread);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a_total", "help");
  EXPECT_EQ(registry.GetCounter("a_total", "different help"), a);
  Gauge* g = registry.GetGauge("g", "help");
  EXPECT_EQ(registry.GetGauge("g", "help"), g);
  Histogram* h = registry.GetHistogram("h", "help", {1, 2});
  EXPECT_EQ(registry.GetHistogram("h", "help", {9, 9, 9}), h);  // Bounds fixed at birth.
}

TEST(RegistryTest, TypeMisuseReturnsDummyNotCrash) {
  MetricsRegistry registry;
  Counter* real = registry.GetCounter("series", "help");
  real->Inc();
  Gauge* dummy = registry.GetGauge("series", "help");  // Same name, wrong type.
  dummy->Set(99);                                      // Absorbed, never exposed.
  EXPECT_EQ(real->Value(), 1u);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("series 1\n"), std::string::npos);
  EXPECT_EQ(text.find("99"), std::string::npos);
}

TEST(RegistryTest, TextExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "a counter")->Inc(3);
  registry.GetGauge("g_bytes", "a gauge")->Set(-2);
  Histogram* h = registry.GetHistogram("h_seconds", "a histogram", {1, 2});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(5);
  const char* expected =
      "# HELP a_total a counter\n"
      "# TYPE a_total counter\n"
      "a_total 3\n"
      "# HELP g_bytes a gauge\n"
      "# TYPE g_bytes gauge\n"
      "g_bytes -2\n"
      "# HELP h_seconds a histogram\n"
      "# TYPE h_seconds histogram\n"
      "h_seconds_bucket{le=\"1\"} 1\n"
      "h_seconds_bucket{le=\"2\"} 2\n"
      "h_seconds_bucket{le=\"+Inf\"} 3\n"
      "h_seconds_sum 7\n"
      "h_seconds_count 3\n";
  EXPECT_EQ(registry.TextExposition(), expected);
  // Deterministic: a quiescent registry renders identically every time.
  EXPECT_EQ(registry.TextExposition(), expected);
}

TEST(RegistryTest, JsonExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "a counter")->Inc(3);
  registry.GetGauge("g_bytes", "a gauge")->Set(-2);
  Histogram* h = registry.GetHistogram("h_seconds", "a histogram", {1, 2});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(5);
  EXPECT_EQ(registry.JsonExposition(),
            "{\"counters\": {\"a_total\": 3}, \"gauges\": {\"g_bytes\": -2}, "
            "\"histograms\": {\"h_seconds\": {\"bounds\": [1, 2], "
            "\"buckets\": [1, 1, 1], \"count\": 3, \"sum\": 7}}}");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(PhaseTracerTest, RecordsAttributeToTheRightPhase) {
  PhaseTracer tracer;  // Private, unmirrored.
  tracer.Record(Phase::kPrepare, 0, 0.25);
  tracer.Record(Phase::kPass2Execute, 0, 0.5);
  tracer.Record(Phase::kPass2Execute, 0, 0.5);
  PhaseBreakdown totals = tracer.totals();
  EXPECT_NEAR(totals.seconds[static_cast<int>(Phase::kPrepare)], 0.25, 1e-9);
  EXPECT_EQ(totals.spans[static_cast<int>(Phase::kPrepare)], 1u);
  EXPECT_NEAR(totals.seconds[static_cast<int>(Phase::kPass2Execute)], 1.0, 1e-9);
  EXPECT_EQ(totals.spans[static_cast<int>(Phase::kPass2Execute)], 2u);
  EXPECT_NEAR(totals.total_seconds(), 1.25, 1e-9);

  // DiffSince isolates one epoch's contribution.
  PhaseBreakdown mark = tracer.totals();
  tracer.Record(Phase::kPass3Compare, 0, 0.125);
  PhaseBreakdown diff = tracer.totals().DiffSince(mark);
  EXPECT_NEAR(diff.seconds[static_cast<int>(Phase::kPass3Compare)], 0.125, 1e-9);
  EXPECT_EQ(diff.spans[static_cast<int>(Phase::kPass3Compare)], 1u);
  EXPECT_EQ(diff.spans[static_cast<int>(Phase::kPrepare)], 0u);
}

TEST(PhaseTracerTest, MirrorsIntoRegistryCounters) {
  MetricsRegistry registry;
  PhaseTracer tracer(&registry);
  tracer.Record(Phase::kShardMerge, 0, 0.002);
  EXPECT_EQ(registry.GetCounter("orochi_phase_shard_merge_spans_total", "")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("orochi_phase_shard_merge_micros_total", "")->Value(),
            2000u);
}

TEST(PhaseTracerTest, TraceSpanTimesItsScope) {
  PhaseTracer tracer;
  {
    TraceSpan span(&tracer, Phase::kPass1Skeleton);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  PhaseBreakdown totals = tracer.totals();
  EXPECT_EQ(totals.spans[static_cast<int>(Phase::kPass1Skeleton)], 1u);
  EXPECT_GT(totals.seconds[static_cast<int>(Phase::kPass1Skeleton)], 0.001);
}

TEST(PhaseTracerTest, ChromeTraceFlushWritesEvents) {
  const std::string path = ::testing::TempDir() + "/orochi_obs_trace.json";
  PhaseTracer tracer;
  tracer.EnableChromeTrace(path);
  tracer.Record(Phase::kPrepare, 1.0, 0.5);
  tracer.Record(Phase::kPass3Compare, 2.0, 0.25);
  Status st = tracer.FlushChromeTrace();
  ASSERT_TRUE(st.ok()) << st.error();
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(&contents[0], 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\": \"prepare\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\": \"pass3_compare\""), std::string::npos);
  EXPECT_NE(contents.find("\"ts\": 1000000"), std::string::npos);
  EXPECT_NE(contents.find("\"dur\": 500000"), std::string::npos);
}

// --- StatsServer over a Unix socket ---

std::string HttpGet(const std::string& address, const std::string& request) {
  Result<std::unique_ptr<Connection>> conn = Transport::Default()->Connect(address);
  EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
  if (!conn.ok()) {
    return "";
  }
  EXPECT_TRUE(conn.value()->WriteAll(request).ok());
  std::string response;
  char buf[4096];
  while (true) {
    Result<size_t> n = conn.value()->ReadSome(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) {
      break;
    }
    response.append(buf, n.value());
  }
  return response;
}

TEST(StatsServerTest, RoundTripOverUnixSocket) {
  const std::string sock = ::testing::TempDir() + "/orochi_obs_stats.sock";
  StatsServer server;
  server.Handle("/metrics", "text/plain", [] { return std::string("series 42\n"); });
  server.Handle("/epochs", "application/json", [] { return std::string("{\"epochs\": []}"); });
  Status st = server.Start("unix:" + sock);
  ASSERT_TRUE(st.ok()) << st.error();

  std::string response = HttpGet(server.address(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 10"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nseries 42\n"), std::string::npos);

  // Query strings route to the same handler.
  response = HttpGet(server.address(), "GET /epochs?cachebust=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"epochs\": []}"), std::string::npos);

  server.Stop();
}

TEST(StatsServerTest, MalformedAndUnknownRequests) {
  const std::string sock = ::testing::TempDir() + "/orochi_obs_stats2.sock";
  StatsServer server;
  server.Handle("/metrics", "text/plain", [] { return std::string("x\n"); });
  ASSERT_TRUE(server.Start("unix:" + sock).ok());

  EXPECT_NE(HttpGet(server.address(), "GET /nope HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.address(), "POST /metrics HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.address(), "complete garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.address(), "\r\n\r\n").find("400"), std::string::npos);
  // A peer that connects and immediately hangs up must not wedge the server.
  {
    Result<std::unique_ptr<Connection>> conn =
        Transport::Default()->Connect(server.address());
    ASSERT_TRUE(conn.ok());
    conn.value()->Shutdown();
  }
  EXPECT_NE(HttpGet(server.address(), "GET /metrics HTTP/1.0\r\n\r\n").find("200"),
            std::string::npos);
  server.Stop();
}

TEST(StatsServerTest, StartFailsOnBadAddress) {
  StatsServer server;
  EXPECT_FALSE(server.Start("not-an-address").ok());
}

}  // namespace
}  // namespace obs
}  // namespace orochi
