// Server substrate tests: stores, recording, the collector's ordering guarantees, manual
// interleavings, and concurrent stress.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/auditor.h"
#include "src/server/manual_executor.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

TEST(RegisterStore, ReadAbsentIsNull) {
  RegisterStore regs;
  EXPECT_TRUE(regs.Read("nope").is_null());
  regs.Write("a", Value::Int(1));
  EXPECT_EQ(regs.Read("a").as_int(), 1);
}

TEST(KvStore, NullSetDeletes) {
  KvStore kv;
  kv.Set("k", Value::Int(1));
  EXPECT_EQ(kv.Get("k").as_int(), 1);
  kv.Set("k", Value::Null());
  EXPECT_TRUE(kv.Get("k").is_null());
  EXPECT_EQ(kv.Snapshot().size(), 0u);
}

TEST(VersionedKv, ReadsLatestWriteBeforeSeq) {
  VersionedKv kv;
  kv.AddSet("k", 5, Value::Int(50));
  kv.AddSet("k", 9, Value::Int(90));
  EXPECT_TRUE(kv.Get("k", 5).is_null());   // Strictly-before semantics.
  EXPECT_EQ(kv.Get("k", 6).as_int(), 50);
  EXPECT_EQ(kv.Get("k", 9).as_int(), 50);
  EXPECT_EQ(kv.Get("k", 10).as_int(), 90);
  EXPECT_TRUE(kv.Get("other", 10).is_null());
}

TEST(VersionedKv, InitialSnapshotActsAsSeqZero) {
  VersionedKv kv;
  kv.LoadInitial({{"k", Value::Str("boot")}});
  EXPECT_EQ(kv.Get("k", 1).as_string(), "boot");
  kv.AddSet("k", 3, Value::Str("new"));
  EXPECT_EQ(kv.Get("k", 3).as_string(), "boot");
  EXPECT_EQ(kv.Get("k", 4).as_string(), "new");
}

TEST(VersionedKv, LatestSnapshotElidesNullWrites) {
  VersionedKv kv;
  kv.AddSet("dead", 1, Value::Int(1));
  kv.AddSet("dead", 2, Value::Null());
  kv.AddSet("live", 3, Value::Int(3));
  auto snap = kv.LatestSnapshot();
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.at("live").as_int(), 3);
}

TEST(ServerCore, RecordingOffProducesNoReports) {
  Application app = BuildCounterApp();
  InitialState init;
  Result<StmtResult> r = init.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(r.ok());
  ServerCore core(&app, init, ServerOptions{.record_reports = false});
  core.HandleRequest(1, "/counter/hit", {{"key", "a"}, {"who", "w"}});
  EXPECT_TRUE(core.reports().objects.empty());
  EXPECT_TRUE(core.reports().groups.empty());
}

TEST(ServerCore, RecordingOnAndOffProduceIdenticalResponses) {
  Application app = BuildCounterApp();
  InitialState init;
  Result<StmtResult> r = init.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(r.ok());
  ServerCore on(&app, init, ServerOptions{.record_reports = true});
  ServerCore off(&app, init, ServerOptions{.record_reports = false});
  for (int i = 0; i < 10; i++) {
    RequestParams params{{"key", "k"}, {"who", "w" + std::to_string(i % 2)}};
    // Nondet values may differ between the two cores (separate counters), but the counter
    // app output does not depend on them.
    EXPECT_EQ(on.HandleRequest(static_cast<RequestId>(i + 1), "/counter/hit", params),
              off.HandleRequest(static_cast<RequestId>(i + 1), "/counter/hit", params));
  }
}

TEST(ServerCore, UnknownScriptGetsDeterministicResponse) {
  Application app = BuildCounterApp();
  InitialState init;
  ServerCore core(&app, init);
  EXPECT_EQ(core.HandleRequest(1, "/ghost", {}), kNoSuchScriptBody);
  EXPECT_EQ(core.reports().op_counts.at(1), 0u);
}

TEST(ServerCore, OpLogSequencesMatchPerObjectOrder) {
  Application app = BuildCounterApp();
  InitialState init;
  Result<StmtResult> r = init.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(r.ok());
  ServerCore core(&app, init);
  for (RequestId rid = 1; rid <= 5; rid++) {
    core.HandleRequest(rid, "/counter/hit", {{"key", "same"}, {"who", "w"}});
  }
  // The KV log alternates get/set per request, in increasing counter order.
  int kv = core.reports().FindObject(ObjectKind::kKv, "");
  ASSERT_GE(kv, 0);
  const auto& log = core.reports().op_logs[static_cast<size_t>(kv)];
  ASSERT_EQ(log.size(), 10u);  // 5 x (get + set).
  for (size_t i = 0; i + 1 < log.size(); i += 2) {
    EXPECT_EQ(log[i].type, StateOpType::kKvGet);
    EXPECT_EQ(log[i + 1].type, StateOpType::kKvSet);
    EXPECT_EQ(log[i].rid, log[i + 1].rid);
  }
}

TEST(Collector, RecordsSubmissionOrder) {
  Collector collector;
  collector.RecordRequest(1, "/a", {});
  collector.RecordRequest(2, "/b", {});
  collector.RecordResponse(2, "x");
  collector.RecordResponse(1, "y");
  const Trace& t = collector.trace();
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.events[0].rid, 1u);
  EXPECT_EQ(t.events[2].rid, 2u);
  EXPECT_EQ(t.events[2].kind, TraceEvent::Kind::kResponse);
  EXPECT_TRUE(CheckTraceBalanced(t).ok());
}

TEST(ManualExecutor, StepCountsMatchOps) {
  Application app;
  Status st = app.AddScript("/three", R"WS(
reg_write("a", 1);
reg_write("b", 2);
$x = reg_read("a");
echo intval($x);
)WS");
  ASSERT_TRUE(st.ok());
  InitialState init;
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.Begin(1, "/three", {});
  EXPECT_TRUE(exec.Step(1));   // write a
  EXPECT_TRUE(exec.Step(1));   // write b
  EXPECT_TRUE(exec.Step(1));   // read a
  EXPECT_FALSE(exec.Step(1));  // Runs to end: no more ops.
  exec.Finish(1);
  EXPECT_EQ(collector.trace().events.back().body, "1");
  EXPECT_EQ(core.reports().op_counts.at(1), 3u);
}

TEST(ManualExecutor, InterleavingsAreAuditable) {
  // Two increment-read-modify-write requests on one register, interleaved so both read 0:
  // a lost update. A well-behaved executor may produce this (the ops are separate), and
  // the audit must accept it.
  Application app;
  Status st = app.AddScript("/incr", R"WS(
$v = intval(reg_read("ctr"));
reg_write("ctr", $v + 1);
echo $v + 1;
)WS");
  ASSERT_TRUE(st.ok());
  InitialState init;
  ServerCore core(&app, init);
  Collector collector;
  ManualExecutor exec(&app, &core, &collector);
  exec.Begin(1, "/incr", {});
  exec.Begin(2, "/incr", {});
  exec.Step(1);  // r1 reads 0.
  exec.Step(2);  // r2 reads 0 (lost update interleaving).
  exec.Step(1);  // r1 writes 1.
  exec.Step(2);  // r2 writes 1.
  exec.Finish(1);
  exec.Finish(2);
  // Both respond "1": legal under this schedule.
  Trace trace = collector.TakeTrace();
  Reports reports = core.TakeReports();
  Auditor auditor(&app);
  AuditResult r = auditor.Audit(trace, reports, init);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(ThreadServer, ConcurrentStressProducesAuditableRun) {
  Workload w;
  w.name = "stress";
  w.app = BuildCounterApp();
  Result<StmtResult> cr =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(cr.ok());
  for (int i = 0; i < 300; i++) {
    WorkItem item;
    item.script = (i % 3 == 2) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 5);
    item.params["who"] = "w" + std::to_string(i % 11);
    w.items.push_back(std::move(item));
  }
  ServedWorkload served = ServeWorkload(w, /*num_workers=*/8);
  ASSERT_TRUE(CheckTraceBalanced(served.trace).ok());
  Auditor auditor(&w.app);
  AuditResult r = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(Reports, SizeAccountingDistinguishesBaseline) {
  Workload w;
  w.name = "sz";
  w.app = BuildCounterApp();
  Result<StmtResult> cr =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  ASSERT_TRUE(cr.ok());
  for (int i = 0; i < 20; i++) {
    w.items.push_back({"/counter/hit", {{"key", "k"}, {"who", "w"}}});
  }
  ServedWorkload served = ServeWorkload(w);
  size_t full = served.reports.WireBytes(false);
  size_t nondet_only = served.reports.WireBytes(true);
  EXPECT_GT(full, nondet_only);
  EXPECT_GT(served.trace.WireBytes(), 0u);
}

}  // namespace
}  // namespace orochi
