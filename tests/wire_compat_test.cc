// Mixed-version back-compat gate: golden spool files checked in at an OLDER wire format
// version must keep auditing bit-identically under the current binary. The golden pair
// under tests/data/ was written by a v2 build (before the v3 segmented-op-log bump);
// auditing it here proves a verifier upgrade never strands already-spilled epochs.
//
// Regenerating the goldens (only needed when a *golden-breaking* change is intended):
//   OROCHI_REGEN_GOLDEN=1 ./wire_compat_test
// serves the fixture workload fresh, spills it at the build's current kFormatVersion,
// and rewrites the expected-verdict file — so a regenerated golden documents the version
// it was written at, and this test keeps pinning it from then on.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/stream_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

const char* DataDir() { return OROCHI_TEST_DATA_DIR; }

std::string TracePath() { return std::string(DataDir()) + "/v2_counter_trace.bin"; }
std::string ReportsPath() { return std::string(DataDir()) + "/v2_counter_reports.bin"; }
std::string ExpectedPath() { return std::string(DataDir()) + "/v2_counter_expected.txt"; }

// Deterministic fixture: same app + initial state every run, so the golden files (served
// once at regen time) audit against a freshly built context in any later build.
Workload GoldenWorkload() {
  constexpr size_t kRequests = 64;
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < kRequests; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 5);
    item.params["who"] = "w" + std::to_string(i % 7);
    w.items.push_back(std::move(item));
  }
  return w;
}

// Expected-verdict sidecar: line 1 = format version the goldens were written at,
// line 2 = FNV-1a hash of the accepted final state's InitialStateFingerprint (the
// fingerprint itself is a multi-line canonical dump, so the sidecar stores its hash).
struct GoldenExpectation {
  uint32_t version = 0;
  uint64_t final_state_hash = 0;
};

bool ReadExpectation(GoldenExpectation* out) {
  std::ifstream in(ExpectedPath());
  if (!in) {
    return false;
  }
  uint64_t v = 0;
  if (!(in >> v >> out->final_state_hash)) {
    return false;
  }
  out->version = static_cast<uint32_t>(v);
  return true;
}

uint32_t FileFormatVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char header[wire::kEnvelopeHeaderBytes] = {};
  if (!in.read(header, sizeof(header))) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(header[8 + i])) << (8 * i);
  }
  return v;
}

void MaybeRegenerateGoldens() {
  if (std::getenv("OROCHI_REGEN_GOLDEN") == nullptr) {
    return;
  }
  Workload w = GoldenWorkload();
  ServedWorkload served = ServeWorkload(w);
  ASSERT_TRUE(WriteTraceFile(TracePath(), served.trace).ok());
  ASSERT_TRUE(WriteReportsFile(ReportsPath(), served.reports).ok());
  AuditOptions opts;
  opts.num_threads = 1;
  opts.max_group_size = 8;
  AuditSession session = AuditSession::Open(&w.app, opts, served.initial);
  Result<AuditResult> got = session.FeedEpochFiles(TracePath(), ReportsPath());
  ASSERT_TRUE(got.ok()) << got.error();
  ASSERT_TRUE(got.value().accepted) << got.value().reason;
  std::ofstream out(ExpectedPath(), std::ios::trunc);
  out << wire::kFormatVersion << "\n"
      << FnvHash(InitialStateFingerprint(got.value().final_state)) << "\n";
  ASSERT_TRUE(out.good());
  std::fprintf(stderr, "regenerated goldens at wire v%u under %s\n", wire::kFormatVersion,
               DataDir());
}

TEST(WireCompat, GoldenSpoolFilesCarryAnAcceptedOlderVersion) {
  MaybeRegenerateGoldens();
  GoldenExpectation expected;
  ASSERT_TRUE(ReadExpectation(&expected))
      << "missing goldens under " << DataDir()
      << " — run OROCHI_REGEN_GOLDEN=1 ./wire_compat_test";
  EXPECT_EQ(FileFormatVersion(TracePath()), expected.version);
  EXPECT_EQ(FileFormatVersion(ReportsPath()), expected.version);
  // The gate is only meaningful while the goldens are OLDER than (or equal to) what the
  // binary writes, and still inside the accepted window.
  EXPECT_GE(expected.version, wire::kMinFormatVersion);
  EXPECT_LE(expected.version, wire::kFormatVersion);
}

// The actual back-compat gate: the old-version spool pair must audit to the exact
// verdict recorded when it was written — streamed and in-memory, several thread counts.
TEST(WireCompat, OlderSpoolAuditsBitIdenticallyUnderCurrentBinary) {
  MaybeRegenerateGoldens();
  GoldenExpectation expected;
  ASSERT_TRUE(ReadExpectation(&expected))
      << "missing goldens under " << DataDir()
      << " — run OROCHI_REGEN_GOLDEN=1 ./wire_compat_test";
  Workload w = GoldenWorkload();
  for (size_t threads : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    AuditOptions opts;
    opts.num_threads = threads;
    opts.max_group_size = 8;
    opts.max_resident_bytes = 4096;
    AuditSession streamed = AuditSession::Open(&w.app, opts, w.initial);
    Result<AuditResult> got = streamed.FeedEpochFilesStreamed(TracePath(), ReportsPath());
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_TRUE(got.value().accepted) << got.value().reason;
    EXPECT_EQ(FnvHash(InitialStateFingerprint(got.value().final_state)),
              expected.final_state_hash);

    AuditSession in_memory = AuditSession::Open(&w.app, opts, w.initial);
    Result<AuditResult> mem = in_memory.FeedEpochFiles(TracePath(), ReportsPath());
    ASSERT_TRUE(mem.ok()) << mem.error();
    EXPECT_TRUE(mem.value().accepted) << mem.value().reason;
    EXPECT_EQ(FnvHash(InitialStateFingerprint(mem.value().final_state)),
              expected.final_state_hash);
  }
}

}  // namespace
}  // namespace orochi
