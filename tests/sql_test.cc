// SQL substrate tests: parser, plain engine, transactions.
#include <gtest/gtest.h>

#include "src/sql/database.h"
#include "src/sql/sql_parser.h"

namespace orochi {
namespace {

StmtResult MustExec(Database* db, const std::string& sql) {
  Result<StmtResult> r = db->ExecuteText(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << (r.ok() ? "" : r.error());
  return r.ok() ? std::move(r).value() : StmtResult{};
}

Database MakeUsersDb() {
  Database db;
  MustExec(&db, "CREATE TABLE users (id INT, name TEXT, age INT, score FLOAT)");
  MustExec(&db, "INSERT INTO users (id, name, age, score) VALUES "
                "(1, 'alice', 30, 9.5), (2, 'bob', 25, 7.25), (3, 'carol', 35, 8.0), "
                "(4, 'dave', 25, 6.5)");
  return db;
}

// --- Parser ---

TEST(SqlParser, ParsesSelectWithEverything) {
  Result<SqlStatement> r = ParseSql(
      "SELECT id, name AS who FROM users WHERE age >= 25 AND NOT (id = 2) "
      "ORDER BY age DESC, id ASC LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.error();
  const SqlStatement& s = r.value();
  EXPECT_EQ(s.kind, SqlStmtKind::kSelect);
  EXPECT_EQ(s.table, "users");
  ASSERT_EQ(s.select_items.size(), 2u);
  EXPECT_EQ(s.select_items[1].alias, "who");
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 10);
}

TEST(SqlParser, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSql("select * from t where x = 1").ok());
  EXPECT_TRUE(ParseSql("SeLeCt * FrOm t").ok());
}

TEST(SqlParser, QuotedStringsEscapeDoubledQuote) {
  Result<SqlStatement> r = ParseSql("INSERT INTO t (s) VALUES ('it''s')");
  ASSERT_TRUE(r.ok());
  // The literal in the first row/column should be "it's".
  const SqlExpr& e = *r.value().insert_rows[0][0];
  EXPECT_EQ(e.literal.as_text(), "it's");
}

class SqlParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlParserRejects, Rejects) { EXPECT_FALSE(ParseSql(GetParam()).ok()); }

INSTANTIATE_TEST_SUITE_P(
    BadSql, SqlParserRejects,
    ::testing::Values("", "SELECT", "SELECT FROM t", "SELECT * FROM", "FROB x",
                      "INSERT INTO t VALUES (1)", "INSERT INTO t (a) VALUES (1,2)",
                      "UPDATE t", "DELETE t", "CREATE TABLE t (x BLOB)",
                      "SELECT * FROM t WHERE", "SELECT * FROM t LIMIT x",
                      "SELECT * FROM t trailing garbage", "SELECT count( FROM t",
                      "SELECT * FROM t WHERE 'unterminated"));

// --- Engine ---

TEST(Database, SelectWhereFilters) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "SELECT name FROM users WHERE age = 25 ORDER BY id");
  ASSERT_EQ(r.rows.rows.size(), 2u);
  EXPECT_EQ(r.rows.rows[0][0].as_text(), "bob");
  EXPECT_EQ(r.rows.rows[1][0].as_text(), "dave");
}

TEST(Database, SelectStarProjectsSchemaOrder) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "SELECT * FROM users LIMIT 1");
  ASSERT_EQ(r.rows.columns.size(), 4u);
  EXPECT_EQ(r.rows.columns[0], "id");
  EXPECT_EQ(r.rows.columns[3], "score");
}

TEST(Database, OrderByMultipleKeys) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "SELECT id FROM users ORDER BY age ASC, id DESC");
  ASSERT_EQ(r.rows.rows.size(), 4u);
  EXPECT_EQ(r.rows.rows[0][0].as_int(), 4);  // age 25, higher id first.
  EXPECT_EQ(r.rows.rows[1][0].as_int(), 2);
  EXPECT_EQ(r.rows.rows[3][0].as_int(), 3);  // age 35 last.
}

TEST(Database, LimitTruncates) {
  Database db = MakeUsersDb();
  EXPECT_EQ(MustExec(&db, "SELECT id FROM users LIMIT 2").rows.rows.size(), 2u);
  EXPECT_EQ(MustExec(&db, "SELECT id FROM users LIMIT 0").rows.rows.size(), 0u);
}

TEST(Database, Aggregates) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(
      &db, "SELECT count(*) AS n, sum(age) AS total, max(score) AS hi, min(age) AS lo "
           "FROM users");
  ASSERT_EQ(r.rows.rows.size(), 1u);
  EXPECT_EQ(r.rows.rows[0][0].as_int(), 4);
  EXPECT_EQ(r.rows.rows[0][1].as_int(), 115);
  EXPECT_DOUBLE_EQ(r.rows.rows[0][2].as_float(), 9.5);
  EXPECT_EQ(r.rows.rows[0][3].as_int(), 25);
}

TEST(Database, AggregateOverEmptySet) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "SELECT count(*) AS n, max(age) AS m FROM users WHERE id > 99");
  EXPECT_EQ(r.rows.rows[0][0].as_int(), 0);
  EXPECT_TRUE(r.rows.rows[0][1].is_null());
}

TEST(Database, MixingAggregatesAndColumnsFails) {
  Database db = MakeUsersDb();
  EXPECT_FALSE(db.ExecuteText("SELECT id, count(*) FROM users").ok());
}

TEST(Database, UpdateWithExpression) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "UPDATE users SET age = age + 1, score = score * 2 "
                               "WHERE name = 'bob'");
  EXPECT_EQ(r.affected, 1);
  StmtResult check = MustExec(&db, "SELECT age, score FROM users WHERE name = 'bob'");
  EXPECT_EQ(check.rows.rows[0][0].as_int(), 26);
  EXPECT_DOUBLE_EQ(check.rows.rows[0][1].as_float(), 14.5);
}

TEST(Database, UpdateSeesPreUpdateRow) {
  Database db;
  MustExec(&db, "CREATE TABLE t (a INT, b INT)");
  MustExec(&db, "INSERT INTO t (a, b) VALUES (1, 10)");
  MustExec(&db, "UPDATE t SET a = b, b = a");  // Swap, not overwrite.
  StmtResult r = MustExec(&db, "SELECT a, b FROM t");
  EXPECT_EQ(r.rows.rows[0][0].as_int(), 10);
  EXPECT_EQ(r.rows.rows[0][1].as_int(), 1);
}

TEST(Database, DeleteRemovesMatching) {
  Database db = MakeUsersDb();
  StmtResult r = MustExec(&db, "DELETE FROM users WHERE age = 25");
  EXPECT_EQ(r.affected, 2);
  EXPECT_EQ(db.RowCount("users"), 2u);
}

TEST(Database, InsertCoercesColumnTypes) {
  Database db;
  MustExec(&db, "CREATE TABLE t (i INT, f FLOAT, s TEXT)");
  MustExec(&db, "INSERT INTO t (i, f, s) VALUES ('42', 3, 99)");
  StmtResult r = MustExec(&db, "SELECT * FROM t");
  EXPECT_TRUE(r.rows.rows[0][0].is_int());
  EXPECT_EQ(r.rows.rows[0][0].as_int(), 42);
  EXPECT_TRUE(r.rows.rows[0][1].is_float());
  EXPECT_TRUE(r.rows.rows[0][2].is_text());
  EXPECT_EQ(r.rows.rows[0][2].as_text(), "99");
}

TEST(Database, MissingInsertColumnsAreNull) {
  Database db;
  MustExec(&db, "CREATE TABLE t (a INT, b INT)");
  MustExec(&db, "INSERT INTO t (a) VALUES (1)");
  StmtResult r = MustExec(&db, "SELECT b FROM t");
  EXPECT_TRUE(r.rows.rows[0][0].is_null());
}

TEST(Database, ErrorsOnUnknownTableAndColumn) {
  Database db = MakeUsersDb();
  EXPECT_FALSE(db.ExecuteText("SELECT * FROM ghosts").ok());
  EXPECT_FALSE(db.ExecuteText("SELECT ghost FROM users").ok());
  EXPECT_FALSE(db.ExecuteText("UPDATE users SET ghost = 1").ok());
  EXPECT_FALSE(db.ExecuteText("CREATE TABLE users (x INT)").ok());  // Already exists.
}

TEST(Database, NullComparisonsNeverMatchValues) {
  Database db;
  MustExec(&db, "CREATE TABLE t (a INT)");
  MustExec(&db, "INSERT INTO t (a) VALUES (NULL), (1)");
  EXPECT_EQ(MustExec(&db, "SELECT a FROM t WHERE a = 1").rows.rows.size(), 1u);
  EXPECT_EQ(MustExec(&db, "SELECT a FROM t WHERE a = NULL").rows.rows.size(), 1u);
}

// --- Transactions ---

TEST(Database, TransactionCommitsAllStatements) {
  Database db = MakeUsersDb();
  Database::TxnResult r = db.ExecuteTransaction(
      {"UPDATE users SET age = age + 1 WHERE id = 1",
       "INSERT INTO users (id, name, age, score) VALUES (5, 'eve', 20, 5.0)",
       "SELECT count(*) AS n FROM users"});
  ASSERT_TRUE(r.committed) << r.error;
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_EQ(r.results[2].rows.rows[0][0].as_int(), 5);
}

TEST(Database, TransactionAbortRollsBackEverything) {
  Database db = MakeUsersDb();
  Database::TxnResult r = db.ExecuteTransaction(
      {"UPDATE users SET age = 99 WHERE id = 1",
       "INSERT INTO users (id, bogus) VALUES (6, 1)"});  // Unknown column aborts.
  EXPECT_FALSE(r.committed);
  StmtResult check = MustExec(&db, "SELECT age FROM users WHERE id = 1");
  EXPECT_EQ(check.rows.rows[0][0].as_int(), 30);  // Rolled back.
  EXPECT_EQ(db.RowCount("users"), 4u);
}

TEST(Database, TransactionRollsBackCreatedTables) {
  Database db;
  Database::TxnResult r = db.ExecuteTransaction(
      {"CREATE TABLE fresh (x INT)", "INSERT INTO fresh (y) VALUES (1)"});
  EXPECT_FALSE(r.committed);
  EXPECT_FALSE(db.HasTable("fresh"));
}

TEST(Database, TransactionParseErrorAbortsBeforeExecution) {
  Database db = MakeUsersDb();
  Database::TxnResult r =
      db.ExecuteTransaction({"UPDATE users SET age = 0", "NOT SQL AT ALL"});
  EXPECT_FALSE(r.committed);
  StmtResult check = MustExec(&db, "SELECT age FROM users WHERE id = 1");
  EXPECT_EQ(check.rows.rows[0][0].as_int(), 30);
}

TEST(Database, ApproximateBytesGrowsWithData) {
  Database db;
  MustExec(&db, "CREATE TABLE t (s TEXT)");
  size_t before = db.ApproximateBytes();
  MustExec(&db, "INSERT INTO t (s) VALUES ('" + std::string(1000, 'x') + "')");
  EXPECT_GT(db.ApproximateBytes(), before + 900);
}

}  // namespace
}  // namespace orochi
