// Core verifier mechanics: the event graph, CreateTimePrecedenceGraph (Figure 6)
// properties against a brute-force oracle, ProcessOpReports (Figure 5) reject paths, and
// object-model encodings.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/core/process_reports.h"
#include "src/objects/object_model.h"

namespace orochi {
namespace {

// --- EventGraph ---

TEST(EventGraph, NodesAndEdges) {
  EventGraph g;
  g.AddRequest(1, 2);
  g.AddRequest(2, 0);
  EXPECT_EQ(g.NumNodes(), 6u);  // (1,0),(1,1),(1,2),(1,inf),(2,0),(2,inf).
  g.AddEdge(g.ArrivalNode(1), g.OpNode(1, 1));
  g.AddEdge(g.OpNode(1, 1), g.OpNode(1, 2));
  g.AddEdge(g.OpNode(1, 2), g.DepartureNode(1));
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(g.DepartureNode(1), g.ArrivalNode(1));
  EXPECT_TRUE(g.HasCycle());
}

TEST(EventGraph, LabelRoundTrip) {
  EventGraph g;
  g.AddRequest(42, 3);
  EXPECT_EQ(g.Label(g.ArrivalNode(42)).opnum, 0u);
  EXPECT_EQ(g.Label(g.OpNode(42, 2)).rid, 42u);
  EXPECT_EQ(g.Label(g.OpNode(42, 2)).opnum, 2u);
  EXPECT_EQ(g.Label(g.DepartureNode(42)).opnum, EventGraph::kInfinityOp);
}

TEST(EventGraph, TopologicalOrderRespectsEdges) {
  EventGraph g;
  g.AddRequest(1, 1);
  g.AddRequest(2, 1);
  g.AddEdge(g.DepartureNode(1), g.ArrivalNode(2));
  g.AddEdge(g.ArrivalNode(1), g.OpNode(1, 1));
  g.AddEdge(g.OpNode(1, 1), g.DepartureNode(1));
  g.AddEdge(g.ArrivalNode(2), g.OpNode(2, 1));
  g.AddEdge(g.OpNode(2, 1), g.DepartureNode(2));
  std::vector<uint32_t> topo = g.TopologicalOrder();
  std::vector<size_t> pos(g.NumNodes());
  for (size_t i = 0; i < topo.size(); i++) {
    pos[topo[i]] = i;
  }
  for (uint32_t n = 0; n < g.NumNodes(); n++) {
    for (uint32_t m : g.OutEdges(n)) {
      EXPECT_LT(pos[n], pos[m]);
    }
  }
}

// --- CreateTimePrecedenceGraph ---

Trace MakeRandomTrace(size_t n, size_t concurrency, uint64_t seed) {
  Rng rng(seed);
  Trace t;
  std::vector<RequestId> open;
  RequestId next = 1;
  while (next <= n || !open.empty()) {
    bool can_open = next <= n;
    if (!can_open || open.size() >= concurrency || (!open.empty() && rng.Chance(0.45))) {
      size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      TraceEvent e;
      e.kind = TraceEvent::Kind::kResponse;
      e.rid = open[pick];
      t.events.push_back(std::move(e));
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      TraceEvent e;
      e.kind = TraceEvent::Kind::kRequest;
      e.rid = next;
      e.script = "/s";
      t.events.push_back(std::move(e));
      open.push_back(next++);
    }
  }
  return t;
}

// Brute-force oracle for r1 <Tr r2: response of r1 appears before request of r2.
bool OraclePrecedes(const Trace& t, RequestId r1, RequestId r2) {
  size_t resp1 = SIZE_MAX;
  size_t req2 = SIZE_MAX;
  for (size_t i = 0; i < t.events.size(); i++) {
    if (t.events[i].kind == TraceEvent::Kind::kResponse && t.events[i].rid == r1) {
      resp1 = i;
    }
    if (t.events[i].kind == TraceEvent::Kind::kRequest && t.events[i].rid == r2) {
      req2 = i;
    }
  }
  return resp1 != SIZE_MAX && req2 != SIZE_MAX && resp1 < req2;
}

// Lemma 2: r1 <Tr r2 <=> directed path in GTr, over random traces.
class TimePrecedenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TimePrecedenceProperty, MatchesOracle) {
  size_t concurrency = 1 + static_cast<size_t>(GetParam()) % 7;
  Trace t = MakeRandomTrace(24, concurrency, 1000 + static_cast<uint64_t>(GetParam()));
  TimePrecedenceGraph g = CreateTimePrecedenceGraph(t);
  for (RequestId a = 1; a <= 24; a++) {
    for (RequestId b = 1; b <= 24; b++) {
      if (a == b) {
        continue;
      }
      EXPECT_EQ(g.HasPath(a, b), OraclePrecedes(t, a, b))
          << "a=" << a << " b=" << b << " conc=" << concurrency;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, TimePrecedenceProperty, ::testing::Range(0, 12));

// Lemma 12: the frontier algorithm emits the minimum edge set — removing any single edge
// must lose some precedence pair.
class TimePrecedenceMinimality : public ::testing::TestWithParam<int> {};

TEST_P(TimePrecedenceMinimality, EveryEdgeIsNecessary) {
  Trace t = MakeRandomTrace(14, 4, 2000 + static_cast<uint64_t>(GetParam()));
  TimePrecedenceGraph g = CreateTimePrecedenceGraph(t);
  for (const auto& [rid, parents] : g.parents) {
    for (RequestId parent : parents) {
      // Drop edge (parent -> rid) and check that parent no longer reaches rid.
      TimePrecedenceGraph without = g;
      auto& p = without.parents[rid];
      p.erase(std::find(p.begin(), p.end(), parent));
      EXPECT_FALSE(without.HasPath(parent, rid))
          << "edge " << parent << "->" << rid << " is redundant";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, TimePrecedenceMinimality, ::testing::Range(0, 8));

TEST(TimePrecedence, SequentialTraceIsAChain) {
  Trace t;
  for (RequestId r = 1; r <= 5; r++) {
    TraceEvent req{TraceEvent::Kind::kRequest, r, "/s", {}, ""};
    TraceEvent resp{TraceEvent::Kind::kResponse, r, "", {}, ""};
    t.events.push_back(req);
    t.events.push_back(resp);
  }
  TimePrecedenceGraph g = CreateTimePrecedenceGraph(t);
  EXPECT_EQ(g.num_edges, 4u);  // Minimal chain: r1->r2->...->r5.
  EXPECT_TRUE(g.HasPath(1, 5));
}

TEST(TimePrecedence, FullyConcurrentTraceHasNoEdges) {
  Trace t;
  for (RequestId r = 1; r <= 5; r++) {
    TraceEvent req{TraceEvent::Kind::kRequest, r, "/s", {}, ""};
    t.events.push_back(req);
  }
  for (RequestId r = 1; r <= 5; r++) {
    TraceEvent resp{TraceEvent::Kind::kResponse, r, "", {}, ""};
    t.events.push_back(resp);
  }
  TimePrecedenceGraph g = CreateTimePrecedenceGraph(t);
  EXPECT_EQ(g.num_edges, 0u);
}

// --- Trace balance ---

TEST(TraceBalance, AcceptsBalanced) {
  Trace t = MakeRandomTrace(10, 3, 7);
  EXPECT_TRUE(CheckTraceBalanced(t).ok());
}

TEST(TraceBalance, RejectsDuplicateRid) {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  EXPECT_FALSE(CheckTraceBalanced(t).ok());
}

TEST(TraceBalance, RejectsResponseBeforeRequest) {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  EXPECT_FALSE(CheckTraceBalanced(t).ok());
}

TEST(TraceBalance, RejectsMissingResponse) {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  EXPECT_FALSE(CheckTraceBalanced(t).ok());
}

TEST(TraceBalance, RejectsDoubleResponse) {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  EXPECT_FALSE(CheckTraceBalanced(t).ok());
}

// --- ProcessOpReports reject paths (Figure 5's checks) ---

Trace TwoRequestTrace() {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "ok", {}, ""});
  t.events.push_back({TraceEvent::Kind::kRequest, 2, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 2, "ok", {}, ""});
  return t;
}

Reports OneRegisterReports() {
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "A"});
  r.op_logs.emplace_back();
  r.op_logs[0].push_back({1, 1, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Int(1))});
  r.op_logs[0].push_back({2, 1, StateOpType::kRegisterRead, ""});
  r.op_counts[1] = 1;
  r.op_counts[2] = 1;
  return r;
}

TEST(ProcessReports, AcceptsConsistentReports) {
  Result<ProcessedReports> p = ProcessOpReports(TwoRequestTrace(), OneRegisterReports());
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_TRUE(p.value().op_map.Find(1, 1).valid());
  EXPECT_TRUE(p.value().op_map.Find(2, 1).valid());
  EXPECT_EQ(p.value().op_map.TotalOps(), 2u);
}

TEST(ProcessReports, RejectsLogEntryForUntracedRid) {
  Reports r = OneRegisterReports();
  r.op_logs[0][0].rid = 99;
  EXPECT_FALSE(ProcessOpReports(TwoRequestTrace(), r).ok());
}

TEST(ProcessReports, RejectsOpnumZero) {
  Reports r = OneRegisterReports();
  r.op_logs[0][0].opnum = 0;
  EXPECT_FALSE(ProcessOpReports(TwoRequestTrace(), r).ok());
}

TEST(ProcessReports, RejectsOpnumBeyondM) {
  Reports r = OneRegisterReports();
  r.op_logs[0][0].opnum = 5;
  EXPECT_FALSE(ProcessOpReports(TwoRequestTrace(), r).ok());
}

TEST(ProcessReports, RejectsDuplicateClaim) {
  Reports r = OneRegisterReports();
  r.op_logs[0][1].rid = 1;  // Both entries now claim (1, 1).
  EXPECT_FALSE(ProcessOpReports(TwoRequestTrace(), r).ok());
}

TEST(ProcessReports, RejectsUnclaimedOp) {
  Reports r = OneRegisterReports();
  r.op_counts[1] = 2;  // Claims 2 ops but the log has only one for rid 1.
  EXPECT_FALSE(ProcessOpReports(TwoRequestTrace(), r).ok());
}

TEST(ProcessReports, RejectsIntraRequestOpnumDecrease) {
  Trace t = TwoRequestTrace();
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "A"});
  r.op_logs.emplace_back();
  r.op_logs[0].push_back({1, 2, StateOpType::kRegisterRead, ""});
  r.op_logs[0].push_back({1, 1, StateOpType::kRegisterRead, ""});
  r.op_counts[1] = 2;
  r.op_counts[2] = 0;
  EXPECT_FALSE(ProcessOpReports(t, r).ok());
}

TEST(ProcessReports, RejectsCycleFromTimePrecedenceViolation) {
  // r1 finished before r2 arrived, but the log claims r2's op preceded r1's.
  Trace t = TwoRequestTrace();  // Sequential: r1 <Tr r2.
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "A"});
  r.op_logs.emplace_back();
  r.op_logs[0].push_back({2, 1, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Int(1))});
  r.op_logs[0].push_back({1, 1, StateOpType::kRegisterRead, ""});
  r.op_counts[1] = 1;
  r.op_counts[2] = 1;
  EXPECT_FALSE(ProcessOpReports(t, r).ok());
}

TEST(ProcessReports, AcceptsInterleavedLogsForConcurrentRequests) {
  // Concurrent requests may interleave ops in a log.
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kRequest, 2, "/s", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 2, "", {}, ""});
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "A"});
  r.op_logs.emplace_back();
  r.op_logs[0].push_back({2, 1, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Int(1))});
  r.op_logs[0].push_back({1, 1, StateOpType::kRegisterRead, ""});
  r.op_counts[1] = 1;
  r.op_counts[2] = 1;
  EXPECT_TRUE(ProcessOpReports(t, r).ok());
}

// Figure 4(b) as a pure consistent-ordering case: the store-buffering cycle.
TEST(ProcessReports, RejectsStoreBufferingCycle) {
  Trace t;
  t.events.push_back({TraceEvent::Kind::kRequest, 1, "/f", {}, ""});
  t.events.push_back({TraceEvent::Kind::kRequest, 2, "/g", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 1, "0", {}, ""});
  t.events.push_back({TraceEvent::Kind::kResponse, 2, "0", {}, ""});
  Reports r;
  r.objects.push_back({ObjectKind::kRegister, "A"});
  r.objects.push_back({ObjectKind::kRegister, "B"});
  r.op_logs.resize(2);
  // OL_A: r2's read before r1's write; OL_B: r1's read before r2's write.
  r.op_logs[0].push_back({2, 2, StateOpType::kRegisterRead, ""});
  r.op_logs[0].push_back({1, 1, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Int(1))});
  r.op_logs[1].push_back({1, 2, StateOpType::kRegisterRead, ""});
  r.op_logs[1].push_back({2, 1, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Int(1))});
  r.op_counts[1] = 2;
  r.op_counts[2] = 2;
  EXPECT_FALSE(ProcessOpReports(t, r).ok());
}

// --- Object-model encodings ---

TEST(ObjectModel, KvSetContentsRoundTrip) {
  Value v = Value::Array();
  v.MutableArray().Append(Value::Int(42));
  std::string bytes = MakeKvSetContents("the-key", v);
  Result<KvSetContents> back = ParseKvSetContents(bytes);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().key, "the-key");
  EXPECT_TRUE(Value::DeepEquals(back.value().value, v));
}

TEST(ObjectModel, DbContentsRoundTrip) {
  std::string bytes = MakeDbContents({"SELECT 1 FROM t", "UPDATE t SET a = 'x''y'"}, true,
                                     false);
  Result<DbContents> back = ParseDbContents(bytes);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().sql.size(), 2u);
  EXPECT_TRUE(back.value().is_txn);
  EXPECT_FALSE(back.value().success);
}

class DbContentsRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(DbContentsRejects, Rejects) { EXPECT_FALSE(ParseDbContents(GetParam()).ok()); }

INSTANTIATE_TEST_SUITE_P(Malformed, DbContentsRejects,
                         ::testing::Values("", "N;", "A:2:{I:0;N;I:1;N;}",
                                           "A:3:{I:0;N;I:1;B:1;I:2;B:1;}",
                                           "A:3:{I:0;A:0:{}I:1;B:1;I:2;B:1;}"));

TEST(ObjectModel, KvSetRejectsMalformed) {
  EXPECT_FALSE(ParseKvSetContents("garbage").ok());
  EXPECT_FALSE(ParseKvSetContents("A:1:{I:0;S:1:k;}").ok());
}

}  // namespace
}  // namespace orochi
