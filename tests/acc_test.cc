// SIMD-on-demand (acc interpreter) tests: group execution must be observationally
// identical to running each request through the scalar interpreter (the property the
// paper's Theorem 10 difference-(ii) argument relies on), collapse must deduplicate, and
// divergence must be detected.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/lang/acc_interpreter.h"
#include "src/lang/compiler.h"
#include "src/lang/interpreter.h"

namespace orochi {
namespace {

// Drives a scalar interpreter with null state results and a fixed nondet counter.
std::string RunScalar(const Program& prog, const RequestParams& params) {
  Interpreter interp(&prog, &params);
  int64_t clock = 7;
  while (true) {
    StepResult step = interp.Run();
    if (step.kind == StepResult::Kind::kFinished) {
      return interp.output();
    }
    if (step.kind == StepResult::Kind::kError) {
      return "<trap>" + interp.output();
    }
    if (step.kind == StepResult::Kind::kStateOp) {
      interp.ProvideValue(Value::Int(clock));  // Deterministic stand-in result.
      continue;
    }
    interp.ProvideValue(Value::Int(clock++));
  }
}

struct AccRun {
  std::vector<std::string> outputs;
  uint64_t total = 0;
  uint64_t multivalent = 0;
  AccStepResult::Kind final_kind;
};

AccRun RunAcc(const Program& prog, const std::vector<RequestParams>& params) {
  std::vector<const RequestParams*> ptrs;
  for (const RequestParams& p : params) {
    ptrs.push_back(&p);
  }
  AccInterpreter acc(&prog, ptrs);
  int64_t clock = 7;
  AccRun out;
  while (true) {
    AccStepResult step = acc.Run();
    out.final_kind = step.kind;
    switch (step.kind) {
      case AccStepResult::Kind::kFinished:
      case AccStepResult::Kind::kError:
      case AccStepResult::Kind::kDiverged:
      case AccStepResult::Kind::kFallback:
        out.outputs = acc.outputs();
        out.total = acc.total_instructions();
        out.multivalent = acc.multivalent_instructions();
        return out;
      case AccStepResult::Kind::kStateOp: {
        std::vector<Value> results(params.size(), Value::Int(clock));
        acc.ProvideValues(std::move(results));
        break;
      }
      case AccStepResult::Kind::kNondet: {
        std::vector<Value> results(params.size(), Value::Int(clock));
        clock++;
        acc.ProvideValues(std::move(results));
        break;
      }
    }
  }
}

Program Compile(const std::string& src) {
  Result<Program> prog = CompileSource(src, "/acc");
  EXPECT_TRUE(prog.ok()) << prog.error();
  return std::move(prog).value();
}

TEST(Acc, PaperSection43Example) {
  // The paper's acc-PHP walkthrough: x+y sums differ, max collapses, so the parity code
  // runs univalently (§4.3).
  Program prog = Compile(R"WS(
$sum = intval(input("x")) + intval(input("y"));
$larger = max($sum, intval(input("z")));
$odd = ($larger % 2) ? "True" : "False";
echo $odd;
)WS");
  std::vector<RequestParams> params = {{{"x", "1"}, {"y", "3"}, {"z", "10"}},
                                       {{"x", "2"}, {"y", "4"}, {"z", "10"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], "False");
  EXPECT_EQ(run.outputs[1], "False");
  // After max() collapses to 10, the ternary and echo execute univalently.
  EXPECT_GT(run.multivalent, 0u);
  EXPECT_LT(run.multivalent, run.total / 2);
}

TEST(Acc, IdenticalInputsAreFullyUnivalent) {
  Program prog = Compile(R"WS(
$a = intval(input("a"));
$b = $a * 3 + 1;
echo $b . "-" . strlen(input("a"));
)WS");
  std::vector<RequestParams> params(6, RequestParams{{"a", "41"}});
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  for (const std::string& out : run.outputs) {
    EXPECT_EQ(out, "124-2");
  }
  EXPECT_EQ(run.multivalent, 0u);
}

TEST(Acc, DivergentBranchIsDetected) {
  Program prog = Compile(R"WS(
if (intval(input("x")) > 0) { echo "p"; } else { echo "n"; }
)WS");
  std::vector<RequestParams> params = {{{"x", "1"}}, {{"x", "-1"}}};
  AccRun run = RunAcc(prog, params);
  EXPECT_EQ(run.final_kind, AccStepResult::Kind::kDiverged);
}

TEST(Acc, DivergentIterationCountIsDetected) {
  Program prog = Compile(R"WS(
$parts = explode(",", input("csv"));
foreach ($parts as $p) { echo $p . ";"; }
)WS");
  std::vector<RequestParams> params = {{{"csv", "a,b"}}, {{"csv", "a,b,c"}}};
  AccRun run = RunAcc(prog, params);
  EXPECT_EQ(run.final_kind, AccStepResult::Kind::kDiverged);
}

TEST(Acc, ForeachWithDifferentKeysExecutesComponentwise) {
  // Same iteration count, different keys/values: must run multivalently, not diverge.
  Program prog = Compile(R"WS(
$parts = explode(",", input("csv"));
foreach ($parts as $i => $p) { echo $i . ":" . $p . ";"; }
)WS");
  std::vector<RequestParams> params = {{{"csv", "a,b"}}, {{"csv", "x,y"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], "0:a;1:b;");
  EXPECT_EQ(run.outputs[1], "0:x;1:y;");
}

TEST(Acc, ComponentTrapFallsBack) {
  // "abc" + 1 traps for the second request only: lockstep cannot represent it.
  Program prog = Compile(R"WS(
$x = input("x") + 1;
echo $x;
)WS");
  std::vector<RequestParams> params = {{{"x", "5"}}, {{"x", "abc"}}};
  AccRun run = RunAcc(prog, params);
  EXPECT_EQ(run.final_kind, AccStepResult::Kind::kFallback);
}

TEST(Acc, UniformTrapIsError) {
  Program prog = Compile("echo 1 / intval(input(\"z\"));");
  std::vector<RequestParams> params = {{{"z", "0"}}, {{"z", "0"}}};
  AccRun run = RunAcc(prog, params);
  EXPECT_EQ(run.final_kind, AccStepResult::Kind::kError);
}

TEST(Acc, ScalarExpansionOnArraySet) {
  // Univalue array + multivalue key forces per-request expansion (§4.3). Note: no
  // branching on the divergent lookup — that would be (correct) control-flow divergence.
  Program prog = Compile(R"WS(
$a = array("base" => 1);
$a[input("k")] = 2;
echo count($a) . ":" . intval(isset($a["extra"])) . ":" . $a[input("k")];
)WS");
  std::vector<RequestParams> params = {{{"k", "extra"}}, {{"k", "other"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], "2:1:2");
  EXPECT_EQ(run.outputs[1], "2:0:2");
}

TEST(Acc, MultiValueCellInUnivalueArray) {
  // Storing a multivalue into a univalue container must keep the container univalue (the
  // dedup-friendly case) and still project correctly on read.
  Program prog = Compile(R"WS(
$a = array();
$a["v"] = input("v");
$a["c"] = "const";
echo $a["v"] . $a["c"];
)WS");
  std::vector<RequestParams> params = {{{"v", "1"}}, {{"v", "2"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], "1const");
  EXPECT_EQ(run.outputs[1], "2const");
}

TEST(Acc, BuiltinSplitOnMultiArgs) {
  Program prog = Compile("echo strtoupper(input(\"s\")) . \"!\";");
  std::vector<RequestParams> params = {{{"s", "ab"}}, {{"s", "cd"}}, {{"s", "ab"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], "AB!");
  EXPECT_EQ(run.outputs[1], "CD!");
  EXPECT_EQ(run.outputs[2], "AB!");
}

TEST(Acc, ReconvergenceCollapsesBackToUnivalent) {
  // Values differ mid-flight but re-converge; the tail must run univalently.
  Program prog = Compile(R"WS(
$x = intval(input("x"));
$y = $x * 0;
$tail = "";
for ($i = 0; $i < 50; $i++) { $tail = $tail . $y; }
echo $tail;
)WS");
  std::vector<RequestParams> params = {{{"x", "3"}}, {{"x", "4"}}};
  AccRun run = RunAcc(prog, params);
  ASSERT_EQ(run.final_kind, AccStepResult::Kind::kFinished);
  EXPECT_EQ(run.outputs[0], run.outputs[1]);
  // The 50-iteration tail runs univalently: multivalent count stays small.
  EXPECT_LT(run.multivalent, 10u);
}

// Property: acc group execution == per-request scalar execution, across scripts x random
// input sets (with state/nondet fed identically).
class AccEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AccEquivalence, MatchesScalarExecution) {
  static const char* kScripts[] = {
      // Mixed arithmetic, branches on a shared flag, array building.
      R"WS(
$n = intval(input("n"));
$mode = input("mode");
$acc = array();
for ($i = 0; $i < 6; $i++) {
  $acc[] = $i * $n;
}
if ($mode == "sum") {
  $t = 0;
  foreach ($acc as $v) { $t += $v; }
  echo "sum=" . $t;
} else {
  echo "list=" . implode("/", $acc);
}
)WS",
      // String processing.
      R"WS(
$words = explode(" ", input("text"));
$out = array();
foreach ($words as $w) {
  $out[] = strtoupper(substr($w, 0, 2)) . strlen($w);
}
echo implode("-", $out);
)WS",
      // Function calls and nested arrays.
      R"WS(
function classify($v) {
  if ($v % 3 == 0) { return "fizz"; }
  return "n" . ($v % 3);
}
$x = intval(input("x"));
$r = array();
$r["a"]["b"] = classify($x * 3);
$r["a"]["c"] = classify(6);
echo $r["a"]["b"] . "," . $r["a"]["c"];
)WS",
  };
  Rng rng(1234 + static_cast<uint64_t>(GetParam()));
  for (const char* src : kScripts) {
    Program prog = Compile(src);
    // Build a group with the same control flow: vary only magnitudes, not branches.
    std::vector<RequestParams> params;
    std::string mode = rng.Chance(0.5) ? "sum" : "list";
    for (int j = 0; j < 5; j++) {
      RequestParams p;
      p["n"] = std::to_string(rng.UniformInt(1, 9));
      p["mode"] = mode;
      p["text"] = "alpha beta gamma";  // Same token count keeps control flow shared.
      p["x"] = std::to_string(rng.UniformInt(1, 5));
      params.push_back(std::move(p));
    }
    AccRun group = RunAcc(prog, params);
    ASSERT_EQ(group.final_kind, AccStepResult::Kind::kFinished);
    for (size_t j = 0; j < params.size(); j++) {
      EXPECT_EQ(group.outputs[j], RunScalar(prog, params[j]))
          << "script mismatch at member " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccEquivalence, ::testing::Range(0, 10));

}  // namespace
}  // namespace orochi
