// Parallel-audit determinism: the SSCO audit must be a pure function of
// (trace, reports, initial state) — the worker-thread count may change wall-clock time but
// never the verdict, the rejection reason, the final state, or the work-volume stats.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/auditor.h"
#include "src/server/tamper.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Workload SmallCounterWorkload(size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    item.script = (i % 4 == 3) ? "/counter/read" : "/counter/hit";
    item.params["key"] = "k" + std::to_string(i % 3);
    item.params["who"] = "w" + std::to_string(i % 5);
    w.items.push_back(std::move(item));
  }
  return w;
}

AuditResult AuditAt(const Workload& w, const ServedWorkload& served, size_t threads) {
  AuditOptions options;
  options.num_threads = threads;
  // Small chunks force several tasks per group so multi-thread runs genuinely interleave.
  options.max_group_size = 64;
  Auditor auditor(&w.app, options);
  return auditor.Audit(served.trace, served.reports, served.initial);
}

void ExpectSameVerdictAcrossThreadCounts(const Workload& w, const ServedWorkload& served,
                                         bool expect_accept) {
  AuditResult base = AuditAt(w, served, 1);
  EXPECT_EQ(base.accepted, expect_accept) << w.name << ": " << base.reason;
  std::string base_fp = base.accepted ? InitialStateFingerprint(base.final_state) : "";
  for (size_t threads : {size_t{2}, size_t{8}}) {
    AuditResult r = AuditAt(w, served, threads);
    EXPECT_EQ(r.accepted, base.accepted) << w.name << " at " << threads << " threads";
    EXPECT_EQ(r.reason, base.reason) << w.name << " at " << threads << " threads";
    if (base.accepted) {
      EXPECT_EQ(InitialStateFingerprint(r.final_state), base_fp)
          << w.name << ": final_state diverged at " << threads << " threads";
      // Work-volume stats must not depend on scheduling. Dedup-cache hits may convert to
      // issued SELECTs under concurrency (two workers racing on the same window), so only
      // the sum is invariant.
      EXPECT_EQ(r.stats.total_instructions, base.stats.total_instructions) << w.name;
      EXPECT_EQ(r.stats.multivalent_instructions, base.stats.multivalent_instructions)
          << w.name;
      EXPECT_EQ(r.stats.ops_checked, base.stats.ops_checked) << w.name;
      EXPECT_EQ(r.stats.num_groups, base.stats.num_groups) << w.name;
      EXPECT_EQ(r.stats.groups_multi, base.stats.groups_multi) << w.name;
      EXPECT_EQ(r.stats.fallback_groups, base.stats.fallback_groups) << w.name;
      EXPECT_EQ(r.stats.db_selects_issued + r.stats.db_selects_deduped,
                base.stats.db_selects_issued + base.stats.db_selects_deduped)
          << w.name;
      // group_stats merge in group-walk order, so the sequences line up exactly.
      ASSERT_EQ(r.stats.group_stats.size(), base.stats.group_stats.size()) << w.name;
      for (size_t i = 0; i < r.stats.group_stats.size(); i++) {
        EXPECT_EQ(r.stats.group_stats[i].script, base.stats.group_stats[i].script);
        EXPECT_EQ(r.stats.group_stats[i].n, base.stats.group_stats[i].n);
        EXPECT_EQ(r.stats.group_stats[i].length, base.stats.group_stats[i].length);
      }
    }
  }
}

TEST(ParallelAudit, CounterAcceptedIdenticallyAcrossThreadCounts) {
  Workload w = SmallCounterWorkload(200);
  ServedWorkload served = ServeWorkload(w);
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/true);
}

TEST(ParallelAudit, WikiAcceptedIdenticallyAcrossThreadCounts) {
  WikiConfig config;
  config.num_pages = 20;
  config.num_users = 10;
  config.num_requests = 600;
  Workload w = MakeWikiWorkload(config);
  ServedWorkload served = ServeWorkload(w);
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/true);
}

TEST(ParallelAudit, ForumAcceptedIdenticallyAcrossThreadCounts) {
  ForumConfig config;
  config.num_topics = 4;
  config.num_users = 12;
  config.num_requests = 600;
  Workload w = MakeForumWorkload(config);
  ServedWorkload served = ServeWorkload(w);
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/true);
}

TEST(ParallelAudit, ConfAcceptedIdenticallyAcrossThreadCounts) {
  ConfConfig config;
  config.num_papers = 12;
  config.num_reviewers = 6;
  config.reviews_target = 30;
  config.review_length = 200;
  config.max_updates_per_paper = 4;
  config.views_per_reviewer = 20;
  Workload w = MakeConfWorkload(config);
  ServedWorkload served = ServeWorkload(w);
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/true);
}

TEST(ParallelAudit, TamperedForumRejectedWithSameReasonAcrossThreadCounts) {
  ForumConfig config;
  config.num_topics = 4;
  config.num_users = 12;
  config.num_requests = 400;
  Workload w = MakeForumWorkload(config);
  ServedWorkload served = ServeWorkload(w);
  ASSERT_TRUE(TamperResponseBody(&served.trace, 7, "<html>forged</html>"));
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/false);
}

TEST(ParallelAudit, TamperedLogRejectedWithSameReasonAcrossThreadCounts) {
  Workload w = SmallCounterWorkload(120);
  ServedWorkload served = ServeWorkload(w);
  int kv_object = served.reports.FindObject(ObjectKind::kKv, "");
  ASSERT_GE(kv_object, 0);
  size_t log_size = served.reports.op_logs[static_cast<size_t>(kv_object)].size();
  ASSERT_GE(log_size, 2u);
  ASSERT_TRUE(SwapLogEntries(&served.reports, static_cast<size_t>(kv_object), 0, 1));
  ExpectSameVerdictAcrossThreadCounts(w, served, /*expect_accept=*/false);
}

// A rid listed in two control-flow groups is adversarial input: re-execution is
// idempotent, so the audit must still accept — at every thread count (such chunks are
// serialized internally to keep per-rid state single-writer).
TEST(ParallelAudit, DuplicateRidAcrossGroupsStaysDeterministic) {
  Workload w = SmallCounterWorkload(100);
  ServedWorkload served = ServeWorkload(w);
  ASSERT_FALSE(served.reports.groups.empty());
  uint64_t first_tag = served.reports.groups.begin()->first;
  RequestId dup = served.reports.groups.begin()->second.front();
  uint64_t fresh_tag = served.reports.groups.rbegin()->first + 1;
  served.reports.groups[fresh_tag].push_back(dup);
  AuditResult base = AuditAt(w, served, 1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    AuditResult r = AuditAt(w, served, threads);
    EXPECT_EQ(r.accepted, base.accepted) << "threads=" << threads;
    EXPECT_EQ(r.reason, base.reason) << "threads=" << threads;
  }
  (void)first_tag;
}

}  // namespace
}  // namespace orochi
