// End-to-end integration: serve a workload on the concurrent recording server, then audit
// it. Completeness says the grouped (SSCO), sequential (baseline), and OOO audits must all
// accept a well-behaved run; soundness spot-checks live in audit_soundness_test.cc.
#include <gtest/gtest.h>

#include "src/core/auditor.h"
#include "src/core/ooo_audit.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

Workload SmallCounterWorkload(size_t n) {
  Workload w;
  w.name = "counter";
  w.app = BuildCounterApp();
  Result<StmtResult> r =
      w.initial.db.ExecuteText("CREATE TABLE hits (key TEXT, who TEXT, n INT)");
  EXPECT_TRUE(r.ok());
  for (size_t i = 0; i < n; i++) {
    WorkItem item;
    if (i % 5 == 4) {
      item.script = "/counter/read";
      item.params["key"] = "k" + std::to_string(i % 3);
    } else {
      item.script = "/counter/hit";
      item.params["key"] = "k" + std::to_string(i % 3);
      item.params["who"] = "user" + std::to_string(i % 7);
    }
    w.items.push_back(std::move(item));
  }
  return w;
}

TEST(Integration, CounterWorkloadGroupedAuditAccepts) {
  Workload w = SmallCounterWorkload(60);
  ServedWorkload served = ServeWorkload(w);
  ASSERT_EQ(served.trace.NumRequests(), 60u);

  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(result.accepted) << result.reason;
}

TEST(Integration, CounterWorkloadSequentialAuditAccepts) {
  Workload w = SmallCounterWorkload(40);
  ServedWorkload served = ServeWorkload(w);

  Auditor auditor(&w.app);
  AuditResult result = auditor.AuditSequential(served.trace, served.reports, served.initial);
  EXPECT_TRUE(result.accepted) << result.reason;
}

TEST(Integration, CounterWorkloadOooTopologicalAuditAccepts) {
  Workload w = SmallCounterWorkload(30);
  ServedWorkload served = ServeWorkload(w);

  Result<ProcessedReports> processed = ProcessOpReports(served.trace, served.reports);
  ASSERT_TRUE(processed.ok()) << processed.error();
  OpSchedule schedule = TopologicalSchedule(processed.value());
  AuditResult result =
      OOOAudit(&w.app, served.trace, served.reports, served.initial, schedule);
  EXPECT_TRUE(result.accepted) << result.reason;
}

TEST(Integration, TamperedResponseRejected) {
  Workload w = SmallCounterWorkload(25);
  ServedWorkload served = ServeWorkload(w);
  // Corrupt one response body.
  for (TraceEvent& e : served.trace.events) {
    if (e.kind == TraceEvent::Kind::kResponse && e.rid == 7) {
      e.body += "<!-- injected -->";
    }
  }
  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_FALSE(result.accepted);
}

TEST(Integration, WikiWorkloadAuditAccepts) {
  WikiConfig config;
  config.num_pages = 20;
  config.num_users = 8;
  config.num_requests = 300;
  Workload w = MakeWikiWorkload(config);
  ServedWorkload served = ServeWorkload(w);

  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_GT(result.stats.groups_multi, 0u);
}

TEST(Integration, ForumWorkloadAuditAccepts) {
  ForumConfig config;
  config.num_topics = 4;
  config.num_users = 10;
  config.num_requests = 300;
  Workload w = MakeForumWorkload(config);
  ServedWorkload served = ServeWorkload(w);

  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(result.accepted) << result.reason;
}

TEST(Integration, ConfWorkloadAuditAccepts) {
  ConfConfig config;
  config.num_papers = 12;
  config.num_reviewers = 5;
  config.reviews_target = 20;
  config.review_length = 200;
  config.views_per_reviewer = 10;
  Workload w = MakeConfWorkload(config);
  ServedWorkload served = ServeWorkload(w);

  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(served.trace, served.reports, served.initial);
  EXPECT_TRUE(result.accepted) << result.reason;
}

}  // namespace
}  // namespace orochi
