// Shared helpers for the test suite: run a workload through the recording server and hand
// back everything an audit needs.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

namespace orochi {

struct ServedWorkload {
  Trace trace;
  Reports reports;
  InitialState initial;   // The state the audit bootstraps from.
  InitialState final_state;  // The server's state after the run (ground truth).
};

// Serves every item of the workload on `num_workers` threads with recording enabled and
// returns the collected trace + reports.
inline ServedWorkload ServeWorkload(const Workload& workload, int num_workers = 4) {
  ServedWorkload out;
  out.initial = workload.initial;
  ServerCore core(&workload.app, workload.initial, ServerOptions{.record_reports = true});
  Collector collector;
  {
    ThreadServer server(&core, &collector, num_workers);
    RequestId next_rid = 1;
    for (const WorkItem& item : workload.items) {
      server.Submit(next_rid++, item.script, item.params);
    }
    server.Drain();
  }
  out.trace = collector.TakeTrace();
  out.reports = core.TakeReports();
  out.final_state = core.SnapshotState();
  return out;
}

// Base seed for randomized sweeps: OROCHI_TEST_SEED when set (decimal or 0x-hex), else
// `default_seed`. Sweeps derive their per-phase seeds from this base by fixed offsets, so
// exporting the value a failure printed reruns the exact same schedule. A malformed seed
// is a config error — silently reverting to the default would rerun the wrong schedule.
inline uint64_t TestBaseSeed(uint64_t default_seed) {
  const char* env = std::getenv("OROCHI_TEST_SEED");
  if (env == nullptr || *env == '\0') {
    return default_seed;
  }
  Result<uint64_t> parsed = ParseSeed(env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "config: OROCHI_TEST_SEED='%s' is not a valid seed (%s)\n", env,
                 parsed.error().c_str());
    std::exit(2);
  }
  return parsed.value();
}

// gtest SCOPED_TRACE message naming the base seed, so any failing assertion in a seeded
// sweep prints the exact rerun command.
inline std::string SeedTraceMessage(uint64_t base_seed) {
  return "rerun with OROCHI_TEST_SEED=" + std::to_string(base_seed);
}

}  // namespace orochi

#endif  // TESTS_TEST_UTIL_H_
