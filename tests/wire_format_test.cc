// Wire-format round-trips (Read(Write(x)) == x for traces, reports, and state
// snapshots), exact-size accounting, and defensive rejection of corrupt or truncated
// files — spill files cross a trust boundary, so the readers must never crash.
#include "src/objects/wire_format.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/lang/value.h"
#include "src/server/collector.h"

namespace orochi {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/wire_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

Trace SampleTrace() {
  Trace t;
  TraceEvent req;
  req.kind = TraceEvent::Kind::kRequest;
  req.rid = 7;
  req.script = "/forum/view";
  req.params = {{"topic", "3"}, {"user", "alice"}, {"empty", ""}};
  t.events.push_back(req);
  TraceEvent resp;
  resp.kind = TraceEvent::Kind::kResponse;
  resp.rid = 7;
  resp.body = std::string("<html>\0binary\xff</html>", 22);
  t.events.push_back(resp);
  TraceEvent req2;
  req2.kind = TraceEvent::Kind::kRequest;
  req2.rid = 8;
  req2.script = "/forum/index";
  t.events.push_back(req2);
  TraceEvent resp2;
  resp2.kind = TraceEvent::Kind::kResponse;
  resp2.rid = 8;
  t.events.push_back(resp2);
  return t;
}

Reports SampleReports() {
  Reports r;
  r.objects.push_back({ObjectKind::kKv, ""});
  r.objects.push_back({ObjectKind::kDb, ""});
  r.objects.push_back({ObjectKind::kRegister, "sess:alice"});
  r.op_logs.resize(3);
  r.op_logs[0].push_back({7, 1, StateOpType::kKvGet, "key1"});
  r.op_logs[0].push_back({8, 1, StateOpType::kKvSet,
                          MakeKvSetContents("key1", Value::Int(42))});
  r.op_logs[1].push_back({7, 2, StateOpType::kDbOp,
                          MakeDbContents({"SELECT * FROM posts"}, false, true)});
  r.op_logs[2].push_back({8, 2, StateOpType::kRegisterWrite,
                          MakeRegisterWriteContents(Value::Str("hi"))});
  r.groups[11] = {7};
  r.groups[12] = {8};
  r.groups[13] = {};  // Empty group must survive the round-trip.
  r.op_counts[7] = 2;
  r.op_counts[8] = 2;
  r.nondet[7] = {{"time", Value::Int(1500000000).Serialize()},
                 {"rand", Value::Int(4).Serialize()}};
  r.nondet[8] = {};  // Empty nondet list for a rid must survive too.
  return r;
}

InitialState SampleState() {
  InitialState s;
  s.registers["sess:alice"] = Value::Str("logged-in");
  s.registers["sess:bob"] = Value::Null();
  s.kv["cache:index"] = Value::Int(-17);
  s.kv["cache:pi"] = Value::Float(3.25);
  Value arr = Value::Array();
  arr.MutableArray().Append(Value::Str("x"));
  arr.MutableArray().Set(ArrayKey(std::string("k")), Value::Bool(true));
  s.kv["cache:arr"] = arr;
  EXPECT_TRUE(
      s.db.ExecuteText("CREATE TABLE posts (id INT, score FLOAT, body TEXT)").ok());
  EXPECT_TRUE(
      s.db.ExecuteText("INSERT INTO posts (id, score, body) VALUES (1, 0.5, 'hello')").ok());
  EXPECT_TRUE(s.db.ExecuteText("CREATE TABLE empty_t (a INT)").ok());
  return s;
}

bool TraceEq(const Trace& a, const Trace& b) {
  if (a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); i++) {
    const TraceEvent& x = a.events[i];
    const TraceEvent& y = b.events[i];
    if (x.kind != y.kind || x.rid != y.rid || x.script != y.script ||
        x.params != y.params || x.body != y.body) {
      return false;
    }
  }
  return true;
}

TEST(WireTrace, RoundTripAndExactSize) {
  Trace t = SampleTrace();
  std::string path = TempPath("trace_rt.bin");
  ASSERT_TRUE(WriteTraceFile(path, t).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), t.WireBytes());

  Result<Trace> back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(TraceEq(t, back.value()));
}

TEST(WireTrace, EmptyTraceRoundTrips) {
  std::string path = TempPath("trace_empty.bin");
  ASSERT_TRUE(WriteTraceFile(path, Trace{}).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), Trace{}.WireBytes());
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(back.value().events.empty());
}

TEST(WireTrace, StreamingReaderMatchesBulkReader) {
  Trace t = SampleTrace();
  std::string path = TempPath("trace_stream.bin");
  ASSERT_TRUE(WriteTraceFile(path, t).ok());
  TraceReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Trace streamed;
  while (true) {
    TraceEvent e;
    Result<bool> more = reader.Next(&e);
    ASSERT_TRUE(more.ok()) << more.error();
    if (!more.value()) {
      break;
    }
    streamed.events.push_back(std::move(e));
  }
  EXPECT_TRUE(TraceEq(t, streamed));
  // A clean end stays a clean end: probing again is not an error.
  TraceEvent e;
  Result<bool> again = reader.Next(&e);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_FALSE(again.value());
}

TEST(WireReports, RoundTripAndExactSize) {
  Reports r = SampleReports();
  std::string path = TempPath("reports_rt.bin");
  ASSERT_TRUE(WriteReportsFile(path, r).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), r.WireBytes());

  Result<Reports> back = ReadReportsFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  const Reports& b = back.value();
  ASSERT_EQ(b.objects.size(), r.objects.size());
  for (size_t i = 0; i < r.objects.size(); i++) {
    EXPECT_TRUE(b.objects[i] == r.objects[i]) << i;
  }
  ASSERT_EQ(b.op_logs.size(), r.op_logs.size());
  for (size_t i = 0; i < r.op_logs.size(); i++) {
    ASSERT_EQ(b.op_logs[i].size(), r.op_logs[i].size()) << i;
    for (size_t j = 0; j < r.op_logs[i].size(); j++) {
      EXPECT_EQ(b.op_logs[i][j].rid, r.op_logs[i][j].rid);
      EXPECT_EQ(b.op_logs[i][j].opnum, r.op_logs[i][j].opnum);
      EXPECT_EQ(b.op_logs[i][j].type, r.op_logs[i][j].type);
      EXPECT_EQ(b.op_logs[i][j].contents, r.op_logs[i][j].contents);
    }
  }
  EXPECT_EQ(b.groups, r.groups);
  EXPECT_EQ(b.op_counts, r.op_counts);
  ASSERT_EQ(b.nondet.size(), r.nondet.size());
  for (const auto& [rid, records] : r.nondet) {
    ASSERT_TRUE(b.nondet.count(rid) > 0) << rid;
    const auto& got = b.nondet.at(rid);
    ASSERT_EQ(got.size(), records.size());
    for (size_t i = 0; i < records.size(); i++) {
      EXPECT_EQ(got[i].name, records[i].name);
      EXPECT_EQ(got[i].value, records[i].value);
    }
  }
}

TEST(WireReports, NondetOnlySizeIsSmallerAndExact) {
  Reports r = SampleReports();
  size_t full = r.WireBytes(false);
  size_t nd = r.WireBytes(true);
  EXPECT_LT(nd, full);
  // The nondet-only costing must match a file holding only the ND records.
  Reports nd_only;
  nd_only.nondet = r.nondet;
  std::string path = TempPath("reports_nd.bin");
  ASSERT_TRUE(WriteReportsFile(path, nd_only).ok());
  // A full write of nd_only also carries the (empty) op-counts record; the nondet_only
  // costing omits it, so it prices <= the file.
  EXPECT_LE(nd, ReadFileBytes(path).size());
}

TEST(WireState, RoundTripAndExactSize) {
  InitialState s = SampleState();
  std::string path = TempPath("state_rt.bin");
  ASSERT_TRUE(WriteInitialStateFile(path, s).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), InitialStateWireBytes(s));

  Result<InitialState> back = ReadInitialStateFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(InitialStateFingerprint(back.value()), InitialStateFingerprint(s));
  // Fingerprint covers register/kv names and DB rows; double-check value identity too.
  EXPECT_TRUE(Value::DeepEquals(back.value().kv.at("cache:arr"), s.kv.at("cache:arr")));
  EXPECT_TRUE(Value::DeepEquals(back.value().registers.at("sess:bob"), Value::Null()));
  EXPECT_EQ(back.value().db.RowCount("posts"), 1u);
  EXPECT_EQ(back.value().db.RowCount("empty_t"), 0u);
}

TEST(WireFormat, RejectsBadMagic) {
  std::string path = TempPath("bad_magic.bin");
  std::string bytes = "NOTOROCH" + std::string(16, '\0');
  WriteFileBytes(path, bytes);
  Result<Trace> t = ReadTraceFile(path);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.error().find("bad magic"), std::string::npos) << t.error();
}

TEST(WireFormat, RejectsWrongVersion) {
  Trace t = SampleTrace();
  std::string path = TempPath("bad_version.bin");
  ASSERT_TRUE(WriteTraceFile(path, t).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[8] = 99;  // Version field follows the 8-byte magic.
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("unsupported format version"), std::string::npos)
      << back.error();
}

TEST(WireFormat, RejectsWrongSectionKind) {
  std::string path = TempPath("wrong_section.bin");
  ASSERT_TRUE(WriteTraceFile(path, SampleTrace()).ok());
  Result<Reports> r = ReadReportsFile(path);  // A trace file is not a reports file.
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("section kind"), std::string::npos) << r.error();
}

TEST(WireFormat, RejectsTruncation) {
  Reports r = SampleReports();
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteReportsFile(path, r).ok());
  std::string bytes = ReadFileBytes(path);
  // Chop at many boundaries: header, mid-frame, mid-payload, before the end record.
  for (size_t cut : {size_t{4}, size_t{13}, size_t{14}, size_t{20}, bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    WriteFileBytes(path, bytes.substr(0, cut));
    Result<Reports> back = ReadReportsFile(path);
    EXPECT_FALSE(back.ok()) << "cut at " << cut;
  }
}

TEST(WireFormat, RejectsTrailingGarbage) {
  std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(WriteTraceFile(path, SampleTrace()).ok());
  std::string bytes = ReadFileBytes(path) + "garbage";
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("trailing bytes"), std::string::npos) << back.error();
}

TEST(WireFormat, RejectsOversizedRecordLength) {
  std::string path = TempPath("oversized.bin");
  ASSERT_TRUE(WriteTraceFile(path, SampleTrace()).ok());
  std::string bytes = ReadFileBytes(path);
  // First record frame starts right after the 13-byte header; blow up its length field.
  for (int i = 0; i < 8; i++) {
    bytes[13 + 1 + i] = static_cast<char>(0xff);
  }
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("exceeds limit"), std::string::npos) << back.error();
}

TEST(WireFormat, RejectsUnknownRecordType) {
  std::string path = TempPath("unknown_type.bin");
  ASSERT_TRUE(WriteTraceFile(path, SampleTrace()).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[13] = 42;  // First record's type byte.
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("unknown trace record type"), std::string::npos)
      << back.error();
}

// Hand-assembled envelope bytes for forged-file tests.
void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
std::string Header(uint8_t section) {
  std::string h = "OROCHIWF";
  AppendU32(&h, 1);  // Format version.
  h.push_back(static_cast<char>(section));
  return h;
}
void AppendRecord(std::string* out, uint8_t type, const std::string& payload) {
  out->push_back(static_cast<char>(type));
  AppendU64(out, payload.size());
  out->append(payload);
}

// A forged element count far beyond the payload must reject, not feed vector::reserve
// (which would throw length_error in an exception-free codebase and abort the verifier).
TEST(WireFormat, RejectsForgedHugeOpLogCount) {
  std::string bytes = Header(2);  // Reports section.
  std::string object;             // ObjectKind::kKv + empty name.
  object.push_back(1);
  AppendU32(&object, 0);
  AppendRecord(&bytes, 1, object);
  std::string oplog;  // Object id 0 claiming 2^62 op records in a 12-byte payload.
  AppendU32(&oplog, 0);
  AppendU64(&oplog, 1ull << 62);
  AppendRecord(&bytes, 2, oplog);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("forged_oplog_count.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("exceeds payload"), std::string::npos) << back.error();
}

// ncols = 0 with nrows > 0 would let the row loop spin without consuming payload.
TEST(WireFormat, RejectsZeroWidthTableWithRows) {
  std::string bytes = Header(3);  // State section.
  std::string table;
  AppendU32(&table, 1);
  table += "t";
  AppendU32(&table, 0);           // ncols = 0.
  AppendU64(&table, 1ull << 40);  // nrows.
  AppendRecord(&bytes, 3, table);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("forged_zero_width.bin");
  WriteFileBytes(path, bytes);
  Result<InitialState> back = ReadInitialStateFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("exceeds payload"), std::string::npos) << back.error();
}

// The writer emits exactly one op-counts record; a second one must reject.
TEST(WireFormat, RejectsDuplicateOpCountsRecords) {
  std::string bytes = Header(2);
  std::string counts;
  AppendU64(&counts, 0);
  AppendRecord(&bytes, 4, counts);
  AppendRecord(&bytes, 4, counts);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("dup_op_counts.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("duplicate op-counts"), std::string::npos) << back.error();
}

// --- In-section header discipline (shard-info, object table, manifest) ---

TEST(WireTrace, ShardedFileRoundTripsAndExposesShardId) {
  Trace t = SampleTrace();
  std::string path = TempPath("sharded_trace.bin");
  ASSERT_TRUE(WriteTraceFile(path, t, /*shard_id=*/12).ok());
  // The bulk reader tolerates (and skips) the shard-info header...
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(TraceEq(t, back.value()));
  // ...and the streaming reader surfaces the id.
  TraceReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  TraceEvent e;
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(reader.shard_id(), 12u);
}

std::string ShardInfoRecordBytes(uint32_t id) {
  std::string payload;
  AppendU32(&payload, id);
  std::string out;
  AppendRecord(&out, 3, payload);  // kTraceRecShardInfo.
  return out;
}

TEST(WireTrace, RejectsDuplicateShardInfoRecord) {
  std::string bytes = Header(1) + ShardInfoRecordBytes(1) + ShardInfoRecordBytes(1);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("dup_shard_info.bin");
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("duplicate shard-info"), std::string::npos) << back.error();
}

TEST(WireTrace, RejectsOutOfOrderShardInfoRecord) {
  // A response record first, then the shard-info header: an in-section header is
  // positional, so a late one is a splice, not a valid layout.
  std::string response;
  AppendU64(&response, 7);
  AppendU32(&response, 0);  // Empty body string.
  std::string bytes = Header(1);
  AppendRecord(&bytes, 2, response);
  bytes += ShardInfoRecordBytes(1);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("late_shard_info.bin");
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("out-of-order shard-info"), std::string::npos)
      << back.error();
}

TEST(WireTrace, RejectsShardIdZeroRecord) {
  std::string bytes = Header(1) + ShardInfoRecordBytes(0);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("zero_shard_info.bin");
  WriteFileBytes(path, bytes);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("shard id 0"), std::string::npos) << back.error();
}

// Two complete sections spliced into one file: the second envelope header must not parse
// as more records.
TEST(WireTrace, RejectsConcatenatedSections) {
  std::string path = TempPath("concat_sections.bin");
  ASSERT_TRUE(WriteTraceFile(path, SampleTrace()).ok());
  std::string once = ReadFileBytes(path);
  WriteFileBytes(path, once + once);
  Result<Trace> back = ReadTraceFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("trailing bytes"), std::string::npos) << back.error();
}

std::string ObjectRecordBytes(uint8_t kind, const std::string& name) {
  std::string payload;
  payload.push_back(static_cast<char>(kind));
  AppendU32(&payload, static_cast<uint32_t>(name.size()));
  payload += name;
  std::string out;
  AppendRecord(&out, 1, payload);  // kRecObject.
  return out;
}

TEST(WireReports, RejectsDuplicateObjectRecord) {
  std::string bytes = Header(2) + ObjectRecordBytes(0, "r") + ObjectRecordBytes(0, "r");
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("dup_object.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("duplicate object record"), std::string::npos)
      << back.error();
}

TEST(WireReports, RejectsOutOfOrderObjectRecord) {
  // The object table declares the id space everything else indexes into, so an object
  // record after any non-object record is rejected (the writer always emits them first).
  std::string counts;
  AppendU64(&counts, 0);
  std::string bytes = Header(2) + ObjectRecordBytes(1, "");
  AppendRecord(&bytes, 4, counts);  // kRecOpCounts.
  bytes += ObjectRecordBytes(0, "late");
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("late_object.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("out-of-order object record"), std::string::npos)
      << back.error();
}

TEST(WireManifest, RoundTrips) {
  ShardManifest m;
  m.epoch = 42;
  m.shards.push_back({1, "trace_1.bin", "reports_1.bin"});
  m.shards.push_back({2, "sub/trace_2.bin", "sub/reports_2.bin"});
  m.shards.push_back({7, "/abs/trace_7.bin", "/abs/reports_7.bin"});
  std::string path = TempPath("manifest_rt.bin");
  ASSERT_TRUE(WriteShardManifestFile(path, m).ok());
  Result<ShardManifest> back = ReadShardManifestFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().epoch, 42u);
  ASSERT_EQ(back.value().shards.size(), 3u);
  EXPECT_EQ(back.value().shards[1].shard_id, 2u);
  EXPECT_EQ(back.value().shards[1].trace_file, "sub/trace_2.bin");
  EXPECT_EQ(back.value().shards[2].reports_file, "/abs/reports_7.bin");
}

TEST(WireManifest, RejectsDuplicateShardIdAndLateEpochRecord) {
  ShardManifest m;
  m.shards.push_back({3, "a", "b"});
  m.shards.push_back({3, "c", "d"});
  std::string path = TempPath("manifest_dup.bin");
  ASSERT_TRUE(WriteShardManifestFile(path, m).ok());
  Result<ShardManifest> back = ReadShardManifestFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("duplicate shard id"), std::string::npos) << back.error();

  // Epoch record after a shard record: same positional-header rule as everywhere else.
  std::string shard;
  AppendU32(&shard, 1);
  AppendU32(&shard, 1);
  shard += "t";
  AppendU32(&shard, 1);
  shard += "r";
  std::string epoch;
  AppendU64(&epoch, 5);
  std::string bytes = Header(4);
  AppendRecord(&bytes, 2, shard);
  AppendRecord(&bytes, 1, epoch);
  AppendRecord(&bytes, 0, "");
  std::string late_path = TempPath("manifest_late_epoch.bin");
  WriteFileBytes(late_path, bytes);
  Result<ShardManifest> late = ReadShardManifestFile(late_path);
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.error().find("out-of-order epoch record"), std::string::npos)
      << late.error();
}

// An AppendReports error must leave dst untouched (no half-merged epochs).
TEST(WireReports, AppendReportsIsAtomicOnRidCollision) {
  Reports dst = SampleReports();
  size_t objects_before = dst.objects.size();
  size_t log0_before = dst.op_logs[0].size();
  size_t groups_before = dst.groups.size();
  Reports src;
  src.objects.push_back({ObjectKind::kKv, ""});
  src.op_logs.resize(1);
  src.op_logs[0].push_back({7, 1, StateOpType::kKvGet, "x"});
  src.groups[99] = {7};
  src.op_counts[7] = 1;  // Collides with dst's rid 7.
  Status st = AppendReports(&dst, src);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(dst.objects.size(), objects_before);
  EXPECT_EQ(dst.op_logs[0].size(), log0_before);
  EXPECT_EQ(dst.groups.size(), groups_before);
  EXPECT_EQ(dst.groups.count(99), 0u);
}

TEST(WireFormat, RejectsMissingFile) {
  Result<Trace> t = ReadTraceFile(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(t.ok());
  Result<InitialState> s = ReadInitialStateFile(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(s.ok());
}

TEST(WireReports, RejectsOpLogForUnknownObject) {
  // Hand-crafted v1 file (no per-record CRC, so the payload-level check is what fires):
  // one declared object, then an op-log claiming object id 7.
  std::string bytes = Header(2);  // Reports section.
  std::string object;             // ObjectKind::kKv + empty name.
  object.push_back(1);
  AppendU32(&object, 0);
  AppendRecord(&bytes, 1, object);
  std::string oplog;
  AppendU32(&oplog, 7);  // Object id 7 does not exist.
  AppendU64(&oplog, 1);
  AppendU64(&oplog, 1);  // rid.
  AppendU32(&oplog, 1);  // opnum.
  oplog.push_back(static_cast<char>(StateOpType::kKvGet));
  AppendU32(&oplog, 1);
  oplog += "k";
  AppendRecord(&bytes, 2, oplog);
  AppendRecord(&bytes, 0, "");  // End record.
  std::string path = TempPath("bad_objid.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("unknown object id"), std::string::npos) << back.error();
}

// In a v2 file a flipped payload byte is caught by the per-record CRC, and the error
// localizes the corruption to an exact record and byte offset in the named file.
TEST(WireReports, CrcLocalizesPayloadCorruption) {
  Reports r;
  r.objects.push_back({ObjectKind::kKv, ""});
  r.op_logs.resize(1);
  r.op_logs[0].push_back({1, 1, StateOpType::kKvGet, "k"});
  std::string path = TempPath("crc_flip.bin");
  ASSERT_TRUE(WriteReportsFile(path, r).ok());
  std::string bytes = ReadFileBytes(path);
  // First payload byte of the op-log record: header(13) + object frame(13) + object
  // payload(5) + op-log frame(13).
  const size_t oplog_payload = 13 + 13 + 5 + 13;
  bytes[oplog_payload] ^= 0x01;
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().find("crc mismatch"), std::string::npos) << back.error();
  EXPECT_NE(back.error().find("at offset " + std::to_string(oplog_payload - 13)),
            std::string::npos)
      << back.error();
  EXPECT_NE(back.error().find(path), std::string::npos) << back.error();
}

// v1 files (9-byte frames, no CRC, bare end record) written by the previous release must
// keep reading back exactly.
TEST(WireReports, ReadsV1FilesBackwardCompatibly) {
  std::string bytes = Header(2);
  std::string object;
  object.push_back(0);  // ObjectKind::kRegister.
  AppendU32(&object, 3);
  object += "reg";
  AppendRecord(&bytes, 1, object);
  std::string counts;
  AppendU64(&counts, 1);
  AppendU64(&counts, 42);  // rid.
  AppendU32(&counts, 2);   // ops.
  AppendRecord(&bytes, 4, counts);
  AppendRecord(&bytes, 0, "");
  std::string path = TempPath("v1_compat.bin");
  WriteFileBytes(path, bytes);
  Result<Reports> back = ReadReportsFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_EQ(back.value().objects.size(), 1u);
  EXPECT_EQ(back.value().objects[0].name, "reg");
  EXPECT_EQ(back.value().op_counts.at(42), 2u);
}

// Drive Collector::Flush through record → flush → record → flush: each epoch's spill file
// decodes independently and holds only its own epoch's events.
TEST(WireTrace, CollectorFlushWritesAndResets) {
  Collector collector;
  collector.RecordRequest(1, "/a", {{"k", "v"}});
  collector.RecordResponse(1, "body1");
  std::string epoch1 = TempPath("flush_epoch1.bin");
  ASSERT_TRUE(collector.Flush(epoch1).ok());
  EXPECT_TRUE(collector.trace().events.empty());

  collector.RecordRequest(2, "/b", {});
  collector.RecordResponse(2, "body2");
  std::string epoch2 = TempPath("flush_epoch2.bin");
  ASSERT_TRUE(collector.Flush(epoch2).ok());

  Result<Trace> t1 = ReadTraceFile(epoch1);
  Result<Trace> t2 = ReadTraceFile(epoch2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(t1.value().events.size(), 2u);
  ASSERT_EQ(t2.value().events.size(), 2u);
  EXPECT_EQ(t1.value().events[0].rid, 1u);
  EXPECT_EQ(t2.value().events[0].rid, 2u);
  EXPECT_EQ(t2.value().events[1].body, "body2");
}

// TakeTrace must leave a valid, recordable trace behind (the PR's Collector race fix).
TEST(WireTrace, TakeTraceLeavesEmptyValidTrace) {
  Collector collector;
  collector.RecordRequest(1, "/a", {});
  collector.RecordResponse(1, "x");
  Trace first = collector.TakeTrace();
  EXPECT_EQ(first.events.size(), 2u);
  EXPECT_TRUE(collector.trace().events.empty());
  collector.RecordRequest(2, "/b", {});
  EXPECT_EQ(collector.trace().events.size(), 1u);
}

}  // namespace
}  // namespace orochi
