// Lexer, parser, compiler, and scalar-interpreter tests for wscript.
#include <gtest/gtest.h>

#include "src/lang/compiler.h"
#include "src/lang/interpreter.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace orochi {
namespace {

// Runs a script with the given params; state ops are served from a trivial in-test map so
// language tests can exercise reg/kv builtins without a server.
std::string RunWs(const std::string& src, RequestParams params = {},
                bool* trapped = nullptr) {
  Result<Program> prog = CompileSource(src, "/t");
  EXPECT_TRUE(prog.ok()) << prog.error();
  if (!prog.ok()) {
    return "<compile error: " + prog.error() + ">";
  }
  Interpreter interp(&prog.value(), &params);
  std::map<std::string, Value> store;
  int64_t clock = 100;
  while (true) {
    StepResult step = interp.Run();
    switch (step.kind) {
      case StepResult::Kind::kFinished:
        if (trapped != nullptr) {
          *trapped = false;
        }
        return interp.output();
      case StepResult::Kind::kError:
        if (trapped != nullptr) {
          *trapped = true;
          return step.error;
        }
        ADD_FAILURE() << "trap: " << step.error;
        return "<trap: " + step.error + ">";
      case StepResult::Kind::kStateOp: {
        const StateOpRequest& op = step.op;
        if (op.type == StateOpType::kRegisterRead) {
          auto it = store.find("r:" + op.target);
          interp.ProvideValue(it == store.end() ? Value::Null() : it->second);
        } else if (op.type == StateOpType::kRegisterWrite) {
          store["r:" + op.target] = op.value;
          interp.ProvideValue(Value::Null());
        } else if (op.type == StateOpType::kKvGet) {
          auto it = store.find("k:" + op.key);
          interp.ProvideValue(it == store.end() ? Value::Null() : it->second);
        } else if (op.type == StateOpType::kKvSet) {
          store["k:" + op.key] = op.value;
          interp.ProvideValue(Value::Null());
        } else {
          interp.ProvideValue(Value::Null());
        }
        break;
      }
      case StepResult::Kind::kNondet:
        interp.ProvideValue(Value::Int(clock++));
        break;
    }
  }
}

// --- Lexer ---

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  Result<std::vector<Token>> toks = Tokenize("$x = 1 + 2.5 . \"s\"; // comment");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks.value().size(), 8u);
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks.value()[0].text, "x");
  EXPECT_EQ(toks.value()[2].int_val, 1);
  EXPECT_DOUBLE_EQ(toks.value()[4].float_val, 2.5);
  EXPECT_EQ(toks.value()[6].text, "s");
}

TEST(Lexer, StringEscapes) {
  Result<std::vector<Token>> toks = Tokenize(R"("a\nb\t\"q\"" 'raw\n')");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].text, "a\nb\t\"q\"");
  EXPECT_EQ(toks.value()[1].text, "raw\\n");  // Single quotes keep backslash-n.
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(Lexer, RejectsLoneAmp) { EXPECT_FALSE(Tokenize("$a & $b").ok()); }

TEST(Lexer, BlockCommentsAndHash) {
  Result<std::vector<Token>> toks = Tokenize("# line\n/* block\nmulti */ $x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kVariable);
}

// --- Parser error cases ---

class ParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejects, Rejects) { EXPECT_FALSE(ParseScript(GetParam()).ok()); }

INSTANTIATE_TEST_SUITE_P(BadPrograms, ParserRejects,
                         ::testing::Values("$x = ;", "if $x {}", "while (1 {}", "foreach ($a) {}",
                                           "function () {}", "echo ;", "$x = 1", "break",
                                           "$a[1 = 2;", "$x = foo(;", "return 1;;;else;",
                                           "function f($a { }", "1 + ;"));

// --- Expression evaluation ---

struct ExprCase {
  const char* expr;
  const char* expected;
};

class ExprEval : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprEval, Evaluates) {
  const ExprCase& c = GetParam();
  EXPECT_EQ(RunWs(std::string("echo ") + c.expr + ";"), c.expected) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprEval,
    ::testing::Values(ExprCase{"1 + 2", "3"}, ExprCase{"7 - 10", "-3"},
                      ExprCase{"6 * 7", "42"}, ExprCase{"7 / 2", "3.5"},
                      ExprCase{"8 / 2", "4"}, ExprCase{"7 % 3", "1"},
                      ExprCase{"-5 + 2", "-3"}, ExprCase{"2 * 3 + 4", "10"},
                      ExprCase{"2 + 3 * 4", "14"}, ExprCase{"(2 + 3) * 4", "20"},
                      ExprCase{"1.5 + 1", "2.5"}, ExprCase{"\"3\" + 4", "7"},
                      ExprCase{"\"2.5\" * 2", "5"}, ExprCase{"true + true", "2"},
                      ExprCase{"null + 5", "5"}));

INSTANTIATE_TEST_SUITE_P(
    StringsAndComparisons, ExprEval,
    ::testing::Values(ExprCase{"\"a\" . \"b\"", "ab"}, ExprCase{"1 . 2", "12"},
                      ExprCase{"\"x\" . 1.5", "x1.5"}, ExprCase{"1 == 1.0 ? \"y\" : \"n\"", "y"},
                      ExprCase{"\"1\" == 1 ? \"y\" : \"n\"", "y"},
                      ExprCase{"\"a\" == \"a\" ? \"y\" : \"n\"", "y"},
                      ExprCase{"\"a\" == \"b\" ? \"y\" : \"n\"", "n"},
                      ExprCase{"3 < 4 ? \"y\" : \"n\"", "y"},
                      ExprCase{"\"10\" > \"9\" ? \"y\" : \"n\"", "y"},  // Numeric strings.
                      ExprCase{"\"abc\" < \"abd\" ? \"y\" : \"n\"", "y"},
                      ExprCase{"1 != 2 ? \"y\" : \"n\"", "y"},
                      ExprCase{"!0 ? \"y\" : \"n\"", "y"},
                      ExprCase{"true && false ? \"y\" : \"n\"", "n"},
                      ExprCase{"false || true ? \"y\" : \"n\"", "y"}));

INSTANTIATE_TEST_SUITE_P(
    Builtins, ExprEval,
    ::testing::Values(ExprCase{"strlen(\"hello\")", "5"}, ExprCase{"substr(\"hello\", 1, 3)", "ell"},
                      ExprCase{"substr(\"hello\", -2)", "lo"},
                      ExprCase{"strpos(\"hello\", \"ll\")", "2"},
                      ExprCase{"strpos(\"hello\", \"z\")", "-1"},
                      ExprCase{"str_replace(\"l\", \"L\", \"hello\")", "heLLo"},
                      ExprCase{"strtoupper(\"aBc\")", "ABC"},
                      ExprCase{"trim(\"  x  \")", "x"},
                      ExprCase{"str_repeat(\"ab\", 3)", "ababab"},
                      ExprCase{"htmlspecialchars(\"<a href=\\\"x\\\">&\")",
                               "&lt;a href=&quot;x&quot;&gt;&amp;"},
                      ExprCase{"implode(\",\", array(1, 2, 3))", "1,2,3"},
                      ExprCase{"count(explode(\"-\", \"a-b-c\"))", "3"},
                      ExprCase{"max(3, 9, 2)", "9"}, ExprCase{"min(array(4, 1, 7))", "1"},
                      ExprCase{"abs(-5)", "5"}, ExprCase{"pow(2, 10)", "1024"},
                      ExprCase{"intdiv(7, 2)", "3"}, ExprCase{"intval(\"42abc\")", "42"},
                      ExprCase{"number_format(1234567.891, 2)", "1,234,567.89"},
                      ExprCase{"sql_escape(\"it's\")", "it''s"},
                      ExprCase{"implode(\";\", sort(array(3, 1, 2)))", "1;2;3"},
                      ExprCase{"in_array(2, array(1, 2)) ? \"y\" : \"n\"", "y"},
                      ExprCase{"implode(\",\", array_keys(array(\"a\" => 1, \"b\" => 2)))",
                               "a,b"},
                      ExprCase{"implode(\",\", array_reverse(array(1, 2, 3)))", "3,2,1"},
                      ExprCase{"implode(\",\", array_slice(array(1, 2, 3, 4), 1, 2))", "2,3"},
                      ExprCase{"implode(\",\", range(1, 4))", "1,2,3,4"},
                      ExprCase{"implode(\",\", array_merge(array(1), array(2, 3)))", "1,2,3"}));

// --- Statements and control flow ---

TEST(Interp, IfElseChain) {
  const char* src = R"(
$x = intval(input("x"));
if ($x > 10) { echo "big"; }
elseif ($x > 5) { echo "mid"; }
else { echo "small"; }
)";
  EXPECT_EQ(RunWs(src, {{"x", "20"}}), "big");
  EXPECT_EQ(RunWs(src, {{"x", "7"}}), "mid");
  EXPECT_EQ(RunWs(src, {{"x", "1"}}), "small");
}

TEST(Interp, WhileWithBreakContinue) {
  const char* src = R"(
$i = 0;
$out = "";
while (true) {
  $i++;
  if ($i > 8) { break; }
  if ($i % 2 == 0) { continue; }
  $out = $out . $i;
}
echo $out;
)";
  EXPECT_EQ(RunWs(src), "1357");
}

TEST(Interp, ForLoopWithContinue) {
  const char* src = R"(
$s = 0;
for ($i = 0; $i < 10; $i++) {
  if ($i == 5) { continue; }
  $s += $i;
}
echo $s;
)";
  EXPECT_EQ(RunWs(src), "40");
}

TEST(Interp, ForeachKeyValue) {
  const char* src = R"(
$a = array("x" => 1, "y" => 2, 9 => "nine");
foreach ($a as $k => $v) { echo $k . "=" . $v . ";"; }
)";
  EXPECT_EQ(RunWs(src), "x=1;y=2;9=nine;");
}

TEST(Interp, ForeachBreakInsideNestedLoops) {
  const char* src = R"(
foreach (array(1, 2, 3) as $i) {
  foreach (array("a", "b") as $c) {
    if ($c == "b") { break; }
    echo $i . $c;
  }
}
)";
  EXPECT_EQ(RunWs(src), "1a2a3a");
}

TEST(Interp, ForeachIteratesSnapshot) {
  // Mutating the array inside the loop must not affect the ongoing iteration.
  const char* src = R"(
$a = array(1, 2, 3);
foreach ($a as $v) {
  $a[] = $v + 10;
  echo $v . ",";
}
echo count($a);
)";
  EXPECT_EQ(RunWs(src), "1,2,3,6");
}

TEST(Interp, FunctionsAndRecursion) {
  const char* src = R"(
function fib($n) {
  if ($n < 2) { return $n; }
  return fib($n - 1) + fib($n - 2);
}
echo fib(12);
)";
  EXPECT_EQ(RunWs(src), "144");
}

TEST(Interp, FunctionsSeeOwnScope) {
  const char* src = R"(
function f($x) { $y = $x * 2; return $y; }
$y = 5;
echo f(10) . "," . $y;
)";
  EXPECT_EQ(RunWs(src), "20,5");
}

TEST(Interp, NestedIndexAssignmentAutovivifies) {
  const char* src = R"(
$a["users"]["alice"]["visits"] = 3;
$a["users"]["alice"]["visits"] = $a["users"]["alice"]["visits"] + 1;
$a["users"]["bob"] = array();
echo $a["users"]["alice"]["visits"] . "," . count($a["users"]);
)";
  EXPECT_EQ(RunWs(src), "4,2");
}

TEST(Interp, AppendThroughPath) {
  const char* src = R"(
$a["list"][] = "x";
$a["list"][] = "y";
echo implode("-", $a["list"]);
)";
  EXPECT_EQ(RunWs(src), "x-y");
}

TEST(Interp, IncrementDecrementSemantics) {
  const char* src = R"(
$i = 5;
echo $i++;
echo $i;
echo ++$i;
echo $i--;
echo --$i;
)";
  // echo $i++ -> 5 (i=6); echo $i -> 6; echo ++$i -> 7 (i=7); echo $i-- -> 7 (i=6);
  // echo --$i -> 5.
  EXPECT_EQ(RunWs(src), "56775");
}

TEST(Interp, CompoundAssignment) {
  const char* src = R"(
$x = 10;
$x += 5;
$x -= 3;
$s = "a";
$s .= "b";
echo $x . $s;
)";
  EXPECT_EQ(RunWs(src), "12ab");
}

TEST(Interp, StringIndexing) {
  EXPECT_EQ(RunWs("$s = \"hello\"; echo $s[1];"), "e");
  EXPECT_EQ(RunWs("$s = \"hi\"; echo isset($s[9]) ? \"y\" : \"n\";"), "n");
}

TEST(Interp, MissingInputIsNull) {
  EXPECT_EQ(RunWs("echo isset(input(\"nope\")) ? \"y\" : \"n\";"), "n");
}

TEST(Interp, TopLevelReturnEndsRequest) {
  EXPECT_EQ(RunWs("echo \"a\"; return; echo \"b\";"), "a");
}

// --- Deterministic traps ---

TEST(Interp, DivisionByZeroTraps) {
  bool trapped = false;
  RunWs("echo 1 / 0;", {}, &trapped);
  EXPECT_TRUE(trapped);
}

TEST(Interp, ArithmeticOnWordTraps) {
  bool trapped = false;
  RunWs("echo \"abc\" + 1;", {}, &trapped);
  EXPECT_TRUE(trapped);
}

TEST(Interp, InstructionLimitTraps) {
  Result<Program> prog = CompileSource("while (true) { $x = 1; }", "/t");
  ASSERT_TRUE(prog.ok());
  RequestParams params;
  InterpreterOptions opts;
  opts.max_instructions = 10000;
  Interpreter interp(&prog.value(), &params, opts);
  StepResult step = interp.Run();
  EXPECT_EQ(step.kind, StepResult::Kind::kError);
}

TEST(Interp, ForeachOverNonArrayTraps) {
  bool trapped = false;
  RunWs("foreach (5 as $v) { echo $v; }", {}, &trapped);
  EXPECT_TRUE(trapped);
}

TEST(Compiler, RejectsUnknownFunction) {
  EXPECT_FALSE(CompileSource("mystery_fn(1);", "/t").ok());
}

TEST(Compiler, RejectsWrongBuiltinArity) {
  EXPECT_FALSE(CompileSource("strlen();", "/t").ok());
  EXPECT_FALSE(CompileSource("strlen(\"a\", \"b\");", "/t").ok());
}

TEST(Compiler, RejectsDuplicateFunction) {
  EXPECT_FALSE(CompileSource("function f() {} function f() {}", "/t").ok());
}

TEST(Compiler, RejectsCompoundAssignToElement) {
  EXPECT_FALSE(CompileSource("$a[0] += 1;", "/t").ok());
}

TEST(Compiler, UserFunctionShadowsBuiltin) {
  EXPECT_EQ(RunWs("function strlen($s) { return 99; } echo strlen(\"ab\");"), "99");
}

TEST(Compiler, DisassembleMentionsOpcodes) {
  Result<Program> prog = CompileSource("$x = 1 + 2; echo $x;", "/t");
  ASSERT_TRUE(prog.ok());
  std::string dis = Disassemble(prog.value());
  EXPECT_NE(dis.find("Add"), std::string::npos);
  EXPECT_NE(dis.find("Echo"), std::string::npos);
}

// --- Control-flow digests (the basis of grouping) ---

uint64_t DigestOf(const std::string& src, RequestParams params) {
  Result<Program> prog = CompileSource(src, "/t");
  EXPECT_TRUE(prog.ok()) << prog.error();
  InterpreterOptions opts;
  opts.record_digest = true;
  Interpreter interp(&prog.value(), &params, opts);
  StepResult step = interp.Run();
  EXPECT_EQ(step.kind, StepResult::Kind::kFinished);
  return interp.digest();
}

TEST(Digest, SameFlowSameDigest) {
  const char* src = "$x = intval(input(\"x\")); if ($x > 0) { echo \"p\"; } else { echo \"n\"; }";
  EXPECT_EQ(DigestOf(src, {{"x", "1"}}), DigestOf(src, {{"x", "99"}}));
  EXPECT_EQ(DigestOf(src, {{"x", "-1"}}), DigestOf(src, {{"x", "-7"}}));
}

TEST(Digest, DifferentBranchDifferentDigest) {
  const char* src = "$x = intval(input(\"x\")); if ($x > 0) { echo \"p\"; } else { echo \"n\"; }";
  EXPECT_NE(DigestOf(src, {{"x", "1"}}), DigestOf(src, {{"x", "-1"}}));
}

TEST(Digest, IterationCountFeedsDigest) {
  const char* src = "$n = intval(input(\"n\")); for ($i = 0; $i < $n; $i++) { echo \"x\"; }";
  EXPECT_NE(DigestOf(src, {{"n", "2"}}), DigestOf(src, {{"n", "3"}}));
  EXPECT_EQ(DigestOf(src, {{"n", "3"}}), DigestOf(src, {{"n", "3"}}));
}

}  // namespace
}  // namespace orochi
