// The socket layer under the audit service: frame codecs must round-trip and reject
// forged bytes without crashing, the reader must implement the failure taxonomy exactly
// (clean close / mid-frame close = transient I/O, CRC mismatch = "wire:" corruption,
// never silently accepted), the fault-injecting transport must be deterministic per
// seed, and every OROCHI_* service knob must hard-error on malformed values.
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/io_env.h"
#include "src/net/fault_transport.h"
#include "src/net/frame.h"
#include "src/net/transport.h"
#include "src/objects/wire_format.h"
#include "src/service/audit_service.h"
#include "tests/test_util.h"

namespace orochi {
namespace {

// A connected (client, server) socket pair over the production transport.
struct Loopback {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
};

Loopback Connect(Transport* client_transport = nullptr) {
  Loopback pair;
  Result<std::unique_ptr<Listener>> listener =
      Transport::Default()->Listen("tcp:127.0.0.1:0");
  EXPECT_TRUE(listener.ok()) << (listener.ok() ? "" : listener.error());
  std::thread accepter([&]() {
    Result<std::unique_ptr<Connection>> conn = listener.value()->Accept();
    if (conn.ok()) {
      pair.server = std::move(conn).value();
    }
  });
  Result<std::unique_ptr<Connection>> conn =
      ResolveTransport(client_transport)->Connect(listener.value()->address());
  EXPECT_TRUE(conn.ok()) << (conn.ok() ? "" : conn.error());
  pair.client = std::move(conn).value();
  accepter.join();
  EXPECT_NE(pair.server, nullptr);
  return pair;
}

// --- Frame codecs ---

TEST(FrameCodec, RoundTripsEveryFrameType) {
  net::HelloFrame hello{wire::kFormatVersion, 7, 42};
  Result<net::HelloFrame> h = net::DecodeHello(net::EncodeHello(hello));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().format_version, wire::kFormatVersion);
  EXPECT_EQ(h.value().shard_id, 7u);
  EXPECT_EQ(h.value().epoch, 42u);

  net::HelloAckFrame ack_in{11, 3, 1, 1 << 20, 64};
  Result<net::HelloAckFrame> a = net::DecodeHelloAck(net::EncodeHelloAck(ack_in));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().trace_received, 11u);
  EXPECT_EQ(a.value().reports_received, 3u);
  EXPECT_EQ(a.value().sealed, 1);
  EXPECT_EQ(a.value().max_in_flight_bytes, 1u << 20);
  EXPECT_EQ(a.value().ack_interval_records, 64u);

  net::RecordFrame rec{5, wire::kTraceRecRequest, std::string("payload\0bytes", 13)};
  Result<net::RecordFrame> r = net::DecodeRecord(net::EncodeRecord(rec));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().index, 5u);
  EXPECT_EQ(r.value().record_type, wire::kTraceRecRequest);
  EXPECT_EQ(r.value().payload, rec.payload);

  Result<net::EndEpochFrame> e =
      net::DecodeEndEpoch(net::EncodeEndEpoch(net::EndEpochFrame{100, 9}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().trace_records, 100u);
  EXPECT_EQ(e.value().reports_records, 9u);

  Result<net::AckFrame> k = net::DecodeAck(net::EncodeAck(net::AckFrame{8, 2}));
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value().trace_received, 8u);

  Result<net::EpochSealedFrame> s =
      net::DecodeEpochSealed(net::EncodeEpochSealed(net::EpochSealedFrame{3}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().epoch, 3u);

  net::ErrorFrame err{net::ErrorCode::kCorruption, "crc mismatch"};
  Result<net::ErrorFrame> d = net::DecodeError(net::EncodeError(err));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().code, net::ErrorCode::kCorruption);
  EXPECT_EQ(d.value().message, "crc mismatch");
}

TEST(FrameCodec, RejectsForgedBytesWithoutCrashing) {
  EXPECT_FALSE(net::DecodeHello("").ok());
  EXPECT_FALSE(net::DecodeHello(std::string(200, 'x')).ok());
  // Right length, wrong magic.
  net::HelloFrame hello{wire::kFormatVersion, 1, 1};
  std::string bytes = net::EncodeHello(hello);
  bytes[0] ^= 0xFF;
  Result<net::HelloFrame> h = net::DecodeHello(bytes);
  ASSERT_FALSE(h.ok());
  EXPECT_NE(h.error().find("bad magic"), std::string::npos);

  EXPECT_FALSE(net::DecodeHelloAck("short").ok());
  EXPECT_FALSE(net::DecodeRecord("12345678").ok());  // 8 bytes: index but no type.
  EXPECT_FALSE(net::DecodeEndEpoch(std::string(17, 0)).ok());
  // Error code outside the taxonomy.
  std::string bad_err = net::EncodeError({net::ErrorCode::kProtocol, "m"});
  bad_err[0] = 9;
  EXPECT_FALSE(net::DecodeError(bad_err).ok());
}

// --- The reader's failure taxonomy on real sockets ---

TEST(FrameTaxonomy, ReaderRoundTripsAndSeesCleanClose) {
  Loopback pair = Connect();
  net::FrameWriter writer(pair.client.get());
  ASSERT_TRUE(writer.Send(net::kFrameHello, net::EncodeHello({wire::kFormatVersion, 2, 1})).ok());
  ASSERT_TRUE(writer.Send(net::kFrameEndEpoch, net::EncodeEndEpoch({4, 4})).ok());
  pair.client.reset();  // Clean close at a frame boundary.

  net::FrameReader reader(pair.server.get());
  uint8_t type = 0;
  std::string payload;
  Result<bool> first = reader.Next(&type, &payload);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value());
  EXPECT_EQ(type, net::kFrameHello);
  ASSERT_TRUE(net::DecodeHello(payload).ok());
  Result<bool> second = reader.Next(&type, &payload);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value());
  EXPECT_EQ(type, net::kFrameEndEpoch);
  Result<bool> eof = reader.Next(&type, &payload);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value());
  EXPECT_EQ(reader.frames_read(), 2u);
}

TEST(FrameTaxonomy, CrcMismatchIsWireCorruptionNotTransient) {
  Loopback pair = Connect();
  std::string frame;
  wire::AppendRecordFrame(&frame, net::kFrameTraceRecord,
                          net::EncodeRecord({0, wire::kTraceRecRequest, "abcdef"}));
  frame.back() ^= 0x01;  // One payload byte flips in flight; the CRC no longer matches.
  ASSERT_TRUE(pair.client->WriteAll(frame).ok());

  net::FrameReader reader(pair.server.get());
  uint8_t type = 0;
  std::string payload;
  Result<bool> got = reader.Next(&type, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().rfind("wire:", 0), 0u) << got.error();
  EXPECT_FALSE(IsTransientIoError(got.error())) << got.error();
  EXPECT_NE(got.error().find("crc mismatch"), std::string::npos) << got.error();
}

TEST(FrameTaxonomy, MidFrameCloseIsTransientIo) {
  Loopback pair = Connect();
  std::string frame;
  wire::AppendRecordFrame(&frame, net::kFrameTraceRecord,
                          net::EncodeRecord({0, wire::kTraceRecRequest, "abcdef"}));
  // A strict prefix lands, then the peer dies.
  ASSERT_TRUE(pair.client->WriteAll(frame.data(), frame.size() / 2).ok());
  pair.client.reset();

  net::FrameReader reader(pair.server.get());
  uint8_t type = 0;
  std::string payload;
  Result<bool> got = reader.Next(&type, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsTransientIoError(got.error())) << got.error();
  EXPECT_NE(got.error().find("closed mid-frame"), std::string::npos) << got.error();
}

TEST(FrameTaxonomy, OversizedLengthIsRejectedBeforeAllocation) {
  Loopback pair = Connect();
  // A 13-byte frame whose forged length field would demand a 1 TiB allocation.
  std::string header;
  header.push_back(static_cast<char>(net::kFrameTraceRecord));
  uint64_t forged = 1ull << 40;
  for (int i = 0; i < 8; i++) {
    header.push_back(static_cast<char>((forged >> (8 * i)) & 0xFF));
  }
  header.append(4, '\0');  // CRC never gets checked.
  ASSERT_TRUE(pair.client->WriteAll(header).ok());

  net::FrameReader reader(pair.server.get());
  uint8_t type = 0;
  std::string payload;
  Result<bool> got = reader.Next(&type, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().rfind("wire:", 0), 0u) << got.error();
  EXPECT_NE(got.error().find("oversized"), std::string::npos) << got.error();
}

// --- The deterministic fault transport ---

TEST(FaultTransport, ScheduleIsDeterministicPerSeed) {
  NetFaultOptions options;
  options.seed = TestBaseSeed(0xD15C0);
  FaultInjectingTransport a(nullptr, options);
  FaultInjectingTransport b(nullptr, options);
  options.seed++;
  FaultInjectingTransport c(nullptr, options);
  bool any_difference = false;
  for (int i = 0; i < 256; i++) {
    double da = a.Draw();
    EXPECT_EQ(da, b.Draw());
    EXPECT_GE(da, 0.0);
    EXPECT_LT(da, 1.0);
    any_difference |= (da != c.Draw());
  }
  EXPECT_TRUE(any_difference) << "neighboring seeds produced identical schedules";
}

TEST(FaultTransport, ScriptedKillFiresOnceAndIsSticky) {
  NetFaultOptions options;
  options.disconnect_after_writes = 3;
  FaultInjectingTransport faulty(nullptr, options);
  Loopback pair = Connect(&faulty);

  const std::string chunk = "0123456789";
  for (int i = 0; i < 3; i++) {
    EXPECT_TRUE(pair.client->WriteAll(chunk).ok()) << "write " << i;
  }
  Status killed = pair.client->WriteAll(chunk);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(IsTransientIoError(killed.error())) << killed.error();
  EXPECT_EQ(faulty.disconnects(), 1u);
  // The connection is dead for good; the schedule does not resurrect it.
  Status after = pair.client->WriteAll(chunk);
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(IsTransientIoError(after.error()));
  EXPECT_EQ(faulty.disconnects(), 1u) << "one scripted kill must count once";
  // The un-faulted peer observes a real disconnect, not a hang: read drains the three
  // delivered chunks, then sees close.
  char buf[64];
  size_t total = 0;
  for (;;) {
    Result<size_t> got = pair.server->ReadSome(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) {
      break;
    }
    total += got.value();
  }
  EXPECT_EQ(total, 30u);
}

TEST(FaultTransport, InjectedDisconnectsAreRetryableIo) {
  NetFaultOptions options;
  options.seed = TestBaseSeed(0xD15C0) + 17;
  options.p_disconnect_write = 1.0;
  FaultInjectingTransport faulty(nullptr, options);
  Loopback pair = Connect(&faulty);
  Status st = pair.client->WriteAll("x", 1);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsTransientIoError(st.error()))
      << "an injected disconnect must classify as retryable I/O: " << st.error();
  EXPECT_GE(faulty.faults_injected(), 1u);
}

// --- OROCHI_* knobs: malformed values are hard config errors ---

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    had_old_ = old != nullptr;
    old_ = had_old_ ? old : "";
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_;
  std::string old_;
};

TEST(ServiceConfig, MalformedKnobsAreHardConfigErrors) {
  const char* knobs[] = {"OROCHI_MAX_INFLIGHT_BYTES", "OROCHI_ACK_INTERVAL",
                         "OROCHI_SHARDS_PER_EPOCH"};
  for (const char* knob : knobs) {
    for (const char* bad : {"banana", "-3", "12moo", ""}) {
      ScopedEnv guard(knob, bad);
      Result<ServiceOptions> resolved = ResolveServiceOptions(ServiceOptions{});
      ASSERT_FALSE(resolved.ok()) << knob << "='" << bad << "' must not be accepted";
      EXPECT_EQ(resolved.error().rfind("config:", 0), 0u) << resolved.error();
      EXPECT_NE(resolved.error().find(knob), std::string::npos) << resolved.error();
    }
  }
}

TEST(ServiceConfig, ZeroesThatWouldWedgeTheProtocolAreRejected) {
  {
    ScopedEnv guard("OROCHI_ACK_INTERVAL", "0");
    Result<ServiceOptions> resolved = ResolveServiceOptions(ServiceOptions{});
    ASSERT_FALSE(resolved.ok());
    EXPECT_EQ(resolved.error().rfind("config:", 0), 0u) << resolved.error();
  }
  {
    ScopedEnv guard("OROCHI_SHARDS_PER_EPOCH", "0");
    Result<ServiceOptions> resolved = ResolveServiceOptions(ServiceOptions{});
    ASSERT_FALSE(resolved.ok());
    EXPECT_EQ(resolved.error().rfind("config:", 0), 0u) << resolved.error();
  }
  {
    ScopedEnv guard("OROCHI_LISTEN_ADDRESS", "");
    Result<ServiceOptions> resolved = ResolveServiceOptions(ServiceOptions{});
    ASSERT_FALSE(resolved.ok());
    EXPECT_EQ(resolved.error().rfind("config:", 0), 0u) << resolved.error();
  }
}

TEST(ServiceConfig, ValidKnobsOverrideAndDefaultsSurvive) {
  {
    ScopedEnv a("OROCHI_MAX_INFLIGHT_BYTES", "65536");
    ScopedEnv b("OROCHI_ACK_INTERVAL", "17");
    ScopedEnv c("OROCHI_SHARDS_PER_EPOCH", "5");
    ScopedEnv d("OROCHI_LISTEN_ADDRESS", "unix:/tmp/orochi_test.sock");
    Result<ServiceOptions> resolved = ResolveServiceOptions(ServiceOptions{});
    ASSERT_TRUE(resolved.ok()) << (resolved.ok() ? "" : resolved.error());
    EXPECT_EQ(resolved.value().max_in_flight_bytes, 65536u);
    EXPECT_EQ(resolved.value().ack_interval_records, 17u);
    EXPECT_EQ(resolved.value().shards_per_epoch, 5u);
    EXPECT_EQ(resolved.value().listen_address, "unix:/tmp/orochi_test.sock");
  }
  ServiceOptions base;
  base.max_in_flight_bytes = 123;
  Result<ServiceOptions> resolved = ResolveServiceOptions(base);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().max_in_flight_bytes, 123u)
      << "explicit fields must survive when the env is unset";
  EXPECT_EQ(resolved.value().listen_address, "tcp:127.0.0.1:0");
}

// --- The transport itself ---

TEST(Transport, UnixDomainRoundTrip) {
  const std::string path = ::testing::TempDir() + "/orochi_transport_test.sock";
  Result<std::unique_ptr<Listener>> listener =
      Transport::Default()->Listen("unix:" + path);
  ASSERT_TRUE(listener.ok()) << (listener.ok() ? "" : listener.error());
  std::unique_ptr<Connection> server;
  std::thread accepter([&]() {
    Result<std::unique_ptr<Connection>> conn = listener.value()->Accept();
    if (conn.ok()) {
      server = std::move(conn).value();
    }
  });
  Result<std::unique_ptr<Connection>> client =
      Transport::Default()->Connect("unix:" + path);
  ASSERT_TRUE(client.ok()) << (client.ok() ? "" : client.error());
  accepter.join();
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client.value()->WriteAll("ping").ok());
  char buf[8];
  Result<size_t> got = server->ReadSome(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, got.value()), "ping");
}

TEST(Transport, MalformedAddressesArePermanentErrors) {
  for (const char* bad : {"", "tcp:", "tcp:127.0.0.1", "carrier-pigeon:coop", "tcp:host:notaport"}) {
    Result<std::unique_ptr<Listener>> listener = Transport::Default()->Listen(bad);
    ASSERT_FALSE(listener.ok()) << bad;
    EXPECT_FALSE(IsTransientIoError(listener.error())) << listener.error();
  }
  Result<std::unique_ptr<Connection>> conn = Transport::Default()->Connect("tcp:127.0.0.1:1");
  // Nothing listens on port 1: connecting must fail with a retryable error, not crash.
  ASSERT_FALSE(conn.ok());
}

}  // namespace
}  // namespace orochi
