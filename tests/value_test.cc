// Unit tests for the Value model: PHP-like semantics, copy-on-write arrays, canonical
// serialization (the untrusted report wire format), and multivalue projection/collapse.
#include <gtest/gtest.h>

#include "src/lang/value.h"

namespace orochi {
namespace {

TEST(ArrayKey, CanonicalIntStrings) {
  EXPECT_TRUE(ArrayKey(std::string("5")).is_int());
  EXPECT_EQ(ArrayKey(std::string("5")).int_key(), 5);
  EXPECT_TRUE(ArrayKey(std::string("-3")).is_int());
  EXPECT_FALSE(ArrayKey(std::string("05")).is_int());   // Leading zero: string key.
  EXPECT_FALSE(ArrayKey(std::string("+5")).is_int());
  EXPECT_FALSE(ArrayKey(std::string("5x")).is_int());
  EXPECT_FALSE(ArrayKey(std::string("")).is_int());
  EXPECT_TRUE(ArrayKey(std::string("0")).is_int());
}

TEST(ArrayKey, IntAndCanonicalStringCollide) {
  EXPECT_TRUE(ArrayKey(int64_t{7}) == ArrayKey(std::string("7")));
  EXPECT_EQ(ArrayKey(int64_t{7}).Hash(), ArrayKey(std::string("7")).Hash());
  EXPECT_FALSE(ArrayKey(int64_t{7}) == ArrayKey(std::string("seven")));
}

TEST(ArrayObject, AppendAssignsSequentialIndexes) {
  ArrayObject a;
  a.Append(Value::Int(10));
  a.Append(Value::Int(20));
  a.Set(ArrayKey(int64_t{5}), Value::Int(50));
  a.Append(Value::Int(60));  // Next index after 5.
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.entries()[3].first.int_key(), 6);
}

TEST(ArrayObject, EraseKeepsOrder) {
  ArrayObject a;
  a.Set(ArrayKey(std::string("x")), Value::Int(1));
  a.Set(ArrayKey(std::string("y")), Value::Int(2));
  a.Set(ArrayKey(std::string("z")), Value::Int(3));
  a.Erase(ArrayKey(std::string("y")));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.entries()[0].first.str_key(), "x");
  EXPECT_EQ(a.entries()[1].first.str_key(), "z");
  EXPECT_EQ(a.Find(ArrayKey(std::string("z")))->as_int(), 3);
}

TEST(Value, CopyOnWriteIsolation) {
  Value a = Value::Array();
  a.MutableArray().Append(Value::Int(1));
  Value b = a;  // Shares the array.
  b.MutableArray().Append(Value::Int(2));
  EXPECT_EQ(a.array().size(), 1u);
  EXPECT_EQ(b.array().size(), 2u);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_TRUE(Value::Bool(true).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Int(-1).Truthy());
  EXPECT_FALSE(Value::Float(0.0).Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
  EXPECT_FALSE(Value::Str("0").Truthy());  // PHP's famous falsy "0".
  EXPECT_TRUE(Value::Str("00").Truthy());
  EXPECT_FALSE(Value::Array().Truthy());
}

TEST(Value, ToStringMatchesPhpConventions) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value::Bool(true).ToString(), "1");
  EXPECT_EQ(Value::Bool(false).ToString(), "");
  EXPECT_EQ(Value::Int(-42).ToString(), "-42");
  EXPECT_EQ(Value::Float(1.0).ToString(), "1");   // Integral floats print bare.
  EXPECT_EQ(Value::Float(1.5).ToString(), "1.5");
}

TEST(Value, DeepEqualsIsRepresentationExact) {
  EXPECT_TRUE(Value::DeepEquals(Value::Int(1), Value::Int(1)));
  // Collapse must be representation-exact: int 1 != float 1.0 for dedup purposes.
  EXPECT_FALSE(Value::DeepEquals(Value::Int(1), Value::Float(1.0)));
  Value a = Value::Array();
  a.MutableArray().Set(ArrayKey(std::string("k")), Value::Str("v"));
  Value b = Value::Array();
  b.MutableArray().Set(ArrayKey(std::string("k")), Value::Str("v"));
  EXPECT_TRUE(Value::DeepEquals(a, b));
  b.MutableArray().Set(ArrayKey(std::string("k")), Value::Str("w"));
  EXPECT_FALSE(Value::DeepEquals(a, b));
}

TEST(Value, DeepEqualsIsOrderSensitive) {
  Value a = Value::Array();
  a.MutableArray().Set(ArrayKey(std::string("x")), Value::Int(1));
  a.MutableArray().Set(ArrayKey(std::string("y")), Value::Int(2));
  Value b = Value::Array();
  b.MutableArray().Set(ArrayKey(std::string("y")), Value::Int(2));
  b.MutableArray().Set(ArrayKey(std::string("x")), Value::Int(1));
  EXPECT_FALSE(Value::DeepEquals(a, b));
}

// Serialization roundtrip over a representative set of values.
class SerializeRoundtrip : public ::testing::TestWithParam<int> {};

Value MakeSample(int which) {
  switch (which) {
    case 0: return Value::Null();
    case 1: return Value::Bool(true);
    case 2: return Value::Bool(false);
    case 3: return Value::Int(0);
    case 4: return Value::Int(-123456789);
    case 5: return Value::Int(INT64_MAX);
    case 6: return Value::Float(3.14159);
    case 7: return Value::Float(-0.0);
    case 8: return Value::Str("");
    case 9: return Value::Str("hello; A:2:{ I:0; }");  // Metacharacters in content.
    case 10: return Value::Str(std::string("\0binary\xff", 8));
    case 11: {
      Value v = Value::Array();
      return v;
    }
    case 12: {
      Value v = Value::Array();
      v.MutableArray().Append(Value::Int(1));
      v.MutableArray().Set(ArrayKey(std::string("key")), Value::Str("val"));
      return v;
    }
    default: {
      Value inner = Value::Array();
      inner.MutableArray().Append(Value::Float(2.5));
      Value v = Value::Array();
      v.MutableArray().Set(ArrayKey(std::string("nested")), inner);
      v.MutableArray().Append(Value::Null());
      return v;
    }
  }
}

TEST_P(SerializeRoundtrip, RoundTrips) {
  Value original = MakeSample(GetParam());
  std::string bytes = original.Serialize();
  Result<Value> back = DeserializeValue(bytes);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(Value::DeepEquals(original, back.value()));
  // Canonical: re-serialization is byte-identical.
  EXPECT_EQ(back.value().Serialize(), bytes);
}

INSTANTIATE_TEST_SUITE_P(AllSamples, SerializeRoundtrip, ::testing::Range(0, 14));

// Malformed report bytes must be rejected, never crash (reports are untrusted).
class DeserializeRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(DeserializeRejects, Rejects) {
  Result<Value> r = DeserializeValue(GetParam());
  EXPECT_FALSE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(BadInputs, DeserializeRejects,
                         ::testing::Values("", "X;", "I:", "I:12", "I:12x;", "S:5:ab;",
                                           "S:-1:;", "S:9999999999999999999:x;",
                                           "A:2:{I:0;N;}", "A:1:{N;N;}", "B:2;", "F:;",
                                           "N;N;", "A:1:{I:0;N;", "I:99999999999999999999;"));

TEST(Deserialize, DepthLimited) {
  // 100 nested arrays exceeds the depth cap.
  std::string deep;
  for (int i = 0; i < 100; i++) {
    deep += "A:1:{I:0;";
  }
  deep += "N;";
  for (int i = 0; i < 100; i++) {
    deep += "}";
  }
  EXPECT_FALSE(DeserializeValue(deep).ok());
}

TEST(Multi, ContainsMultiFindsNested) {
  Value m = Value::Multi({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(ContainsMulti(m));
  Value arr = Value::Array();
  arr.MutableArray().Append(Value::Int(1));
  EXPECT_FALSE(ContainsMulti(arr));
  arr.MutableArray().Append(m);
  EXPECT_TRUE(ContainsMulti(arr));
}

TEST(Multi, ProjectComponentSharesUntouchedArrays) {
  Value arr = Value::Array();
  arr.MutableArray().Append(Value::Int(1));
  Value projected = ProjectComponent(arr, 0);
  EXPECT_EQ(projected.array_ptr(), arr.array_ptr());  // No copy when no multi inside.
}

TEST(Multi, ProjectComponentExtractsPerRequest) {
  Value arr = Value::Array();
  arr.MutableArray().Set(ArrayKey(std::string("x")),
                         Value::Multi({Value::Int(10), Value::Int(20)}));
  Value p0 = ProjectComponent(arr, 0);
  Value p1 = ProjectComponent(arr, 1);
  EXPECT_EQ(p0.array().Find(ArrayKey(std::string("x")))->as_int(), 10);
  EXPECT_EQ(p1.array().Find(ArrayKey(std::string("x")))->as_int(), 20);
}

TEST(Multi, CollapseWhenAllEqual) {
  Value v = MakeMultiCollapsed({Value::Str("same"), Value::Str("same"), Value::Str("same")});
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "same");
}

TEST(Multi, NoCollapseWhenAnyDiffers) {
  Value v = MakeMultiCollapsed({Value::Int(1), Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(v.is_multi());
  EXPECT_EQ(v.multi().items.size(), 3u);
}

TEST(Multi, EmptyCollapsesToNull) {
  EXPECT_TRUE(MakeMultiCollapsed({}).is_null());
}

}  // namespace
}  // namespace orochi
