// Shared helpers for the benchmark harnesses that regenerate the paper's tables/figures.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/common/crc32c.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/objects/reports.h"
#include "src/objects/trace.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"
#include "src/server/thread_server.h"
#include "src/workload/workloads.h"

namespace orochi {

// OROCHI_BENCH_SCALE multiplies request counts (default 1.0); benches stay tractable on
// small machines and can be scaled up to paper-size workloads. A malformed value is a
// config error, not a silent 1.0 — same contract as the audit knobs.
inline double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("OROCHI_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    Result<double> v = ParseScale(env);
    if (!v.ok()) {
      std::fprintf(stderr, "config: OROCHI_BENCH_SCALE='%s' is not a valid scale (%s)\n",
                   env, v.error().c_str());
      std::exit(2);
    }
    return v.value();
  }();
  return scale;
}

inline size_t Scaled(size_t n) { return static_cast<size_t>(static_cast<double>(n) * BenchScale()); }

// Run metadata every BENCH_*.json stamps next to its rows, so a result file is
// interpretable on its own: what machine shape, what scale, what build. Rendered as one
// JSON object (no trailing newline); embed as the "meta" field.
inline std::string BenchMetaJson() {
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "{\"hardware_threads\": %u, \"bench_scale\": %.3f, \"build\": \"%s\", "
                "\"crc32c_backend\": \"%s\"}",
                std::thread::hardware_concurrency(), BenchScale(), build,
                Crc32cBackendName());
  return buf;
}

struct ServedRun {
  Trace trace;
  Reports reports;
  double server_cpu_seconds = 0;  // CPU spent inside request handling.
  double wall_seconds = 0;
};

// Serves the workload with or without report recording and returns trace/reports plus the
// server-side CPU cost (the Figure 8 "server CPU overhead" numerator/denominator).
inline ServedRun ServeForBench(const Workload& w, bool record, int workers = 4) {
  ServedRun out;
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = record});
  Collector collector;
  WallTimer wall;
  {
    ThreadServer server(&core, &collector, workers);
    RequestId rid = 1;
    for (const WorkItem& item : w.items) {
      server.Submit(rid++, item.script, item.params);
    }
    server.Drain();
  }
  out.wall_seconds = wall.Seconds();
  out.trace = collector.TakeTrace();
  out.reports = core.TakeReports();
  out.server_cpu_seconds = core.TotalCpuSeconds();
  return out;
}

// Workload presets shared by the macro benchmarks: paper-shaped mixes at bench-friendly
// sizes (use OROCHI_BENCH_SCALE=3.3 for paper-scale request counts).
inline Workload BenchWiki() {
  WikiConfig config;
  config.num_pages = 200;
  config.num_users = 100;
  config.num_requests = Scaled(6000);
  return MakeWikiWorkload(config);
}

inline Workload BenchForum() {
  ForumConfig config;
  config.num_topics = 8;
  config.num_users = 83;
  config.num_requests = Scaled(9000);
  return MakeForumWorkload(config);
}

inline Workload BenchConf() {
  ConfConfig config;
  config.num_papers = Scaled(100);
  config.num_reviewers = 30;
  config.reviews_target = Scaled(300);
  config.review_length = 1200;
  config.max_updates_per_paper = 20;
  config.views_per_reviewer = Scaled(150);
  return MakeConfWorkload(config);
}

}  // namespace orochi

#endif  // BENCH_BENCH_UTIL_H_
