// Live-service ingestion: what does networked streaming cost over writing spill files
// locally, and how long after the last shard seals does the verdict land? Emitted as
// BENCH_ingest.json so the socket path's overhead is tracked PR over PR.
//
// Per workload (forum/wiki/conf) the harness serves one epoch, then ingests it twice:
//   - direct: Collector::Flush + WriteReportsFile straight to disk — the offline
//     deployment's spill path and the lower bound;
//   - socket: a CollectorClient streams every record through a real loopback TCP
//     connection into a live AuditService, which spools, seals, and audits.
// Both report records/sec and MB/sec over the same record count and byte volume (the
// sealed spool is byte-identical to the direct spill, so the denominators agree), and
// the socket row adds seal→verdict latency: WaitEpochVerdict minus the moment the last
// EndEpoch was acked.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/server/collector.h"
#include "src/service/audit_service.h"
#include "src/service/collector_client.h"

namespace orochi {
namespace {

struct Row {
  std::string workload;
  size_t requests = 0;
  uint64_t records = 0;        // Trace + reports records the epoch carries.
  uint64_t spill_bytes = 0;    // Sealed trace + reports file bytes.
  double direct_seconds = 0;   // Flush + WriteReportsFile to local disk.
  double socket_seconds = 0;   // StreamEpoch through loopback TCP until sealed.
  double verdict_seconds = 0;  // Seal acknowledged -> FeedShardedEpoch verdict.
  double audit_seconds = 0;    // The same audit fed directly, for scale.
  bool accepted = false;
  bool parity = false;  // Socket verdict + end state == direct audit's.
};

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

Row RunOne(const char* name, const Workload& w, const std::string& dir) {
  Row row;
  row.workload = name;
  row.requests = w.items.size();
  ServedRun served = ServeForBench(w, /*record=*/true);

  // --- Direct path: the offline spill files (also the parity + audit baseline). ---
  const std::string trace_path = dir + "/" + row.workload + "_trace.bin";
  const std::string reports_path = dir + "/" + row.workload + "_reports.bin";
  Collector direct_collector(/*shard_id=*/1);
  direct_collector.Restore(Trace(served.trace));
  WallTimer direct_wall;
  if (!direct_collector.Flush(trace_path).ok() ||
      !WriteReportsFile(reports_path, served.reports).ok()) {
    std::fprintf(stderr, "%s: direct spill failed\n", name);
    return row;
  }
  row.direct_seconds = direct_wall.Seconds();
  row.spill_bytes = FileBytes(trace_path) + FileBytes(reports_path);
  row.records = served.trace.events.size();
  ForEachReportsRecord(served.reports,
                       [&](uint8_t, const std::string&) { row.records++; });

  AuditOptions audit_options;
  AuditSession direct_session =
      AuditSession::Open(&w.app, audit_options, w.initial);
  WallTimer audit_wall;
  Result<AuditResult> truth =
      direct_session.FeedShardedEpoch({{trace_path, reports_path}});
  row.audit_seconds = audit_wall.Seconds();
  if (!truth.ok() || !truth.value().accepted) {
    std::fprintf(stderr, "%s: direct audit rejected/errored\n", name);
    return row;
  }

  // --- Socket path: the same records through loopback TCP into the live service. ---
  ServiceOptions service_options;
  service_options.spool_dir = dir;
  AuditService service(&w.app, audit_options, w.initial, service_options);
  if (!service.Start().ok()) {
    std::fprintf(stderr, "%s: service start failed\n", name);
    return row;
  }
  Collector socket_collector(/*shard_id=*/1);
  socket_collector.Restore(Trace(served.trace));
  CollectorClient client(service.address());
  WallTimer socket_wall;
  Status streamed = client.StreamEpoch(/*epoch=*/1, &socket_collector, served.reports);
  row.socket_seconds = socket_wall.Seconds();
  if (!streamed.ok()) {
    std::fprintf(stderr, "%s: stream failed: %s\n", name, streamed.error().c_str());
    service.Stop();
    return row;
  }
  WallTimer verdict_wall;
  Result<AuditResult> verdict = service.WaitEpochVerdict(1);
  row.verdict_seconds = verdict_wall.Seconds();
  service.Stop();
  if (!verdict.ok() || !verdict.value().accepted) {
    std::fprintf(stderr, "%s: socket audit rejected/errored\n", name);
    return row;
  }
  row.accepted = true;
  row.parity = InitialStateFingerprint(verdict.value().final_state) ==
               InitialStateFingerprint(truth.value().final_state);

  const double mb = static_cast<double>(row.spill_bytes) / (1024.0 * 1024.0);
  std::fprintf(stderr,
               "  %-6s %llu records, %.2f MB: direct %.0f rec/s (%.1f MB/s), socket "
               "%.0f rec/s (%.1f MB/s), seal->verdict %.3fs (audit alone %.3fs) %s\n",
               name, static_cast<unsigned long long>(row.records), mb,
               static_cast<double>(row.records) / row.direct_seconds,
               mb / row.direct_seconds,
               static_cast<double>(row.records) / row.socket_seconds,
               mb / row.socket_seconds, row.verdict_seconds, row.audit_seconds,
               row.parity ? "PARITY" : "DIVERGED");
  return row;
}

void EmitJson(const std::vector<Row>& rows) {
  FILE* f = std::fopen("BENCH_ingest.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_ingest.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ingest\",\n  \"scale\": %.3f,\n  \"meta\": %s,\n  \"rows\": [\n",
               BenchScale(), BenchMetaJson().c_str());
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"requests\": %zu, \"records\": %llu,\n"
        "     \"spill_bytes\": %llu, \"direct_seconds\": %.6f,\n"
        "     \"socket_seconds\": %.6f, \"direct_records_per_sec\": %.1f,\n"
        "     \"socket_records_per_sec\": %.1f, \"direct_mb_per_sec\": %.3f,\n"
        "     \"socket_mb_per_sec\": %.3f, \"seal_to_verdict_seconds\": %.6f,\n"
        "     \"audit_seconds\": %.6f, \"accepted\": %s, \"parity\": %s}%s\n",
        r.workload.c_str(), r.requests, static_cast<unsigned long long>(r.records),
        static_cast<unsigned long long>(r.spill_bytes), r.direct_seconds,
        r.socket_seconds, static_cast<double>(r.records) / r.direct_seconds,
        static_cast<double>(r.records) / r.socket_seconds,
        static_cast<double>(r.spill_bytes) / (1024.0 * 1024.0) / r.direct_seconds,
        static_cast<double>(r.spill_bytes) / (1024.0 * 1024.0) / r.socket_seconds,
        r.verdict_seconds, r.audit_seconds, r.accepted ? "true" : "false",
        r.parity ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote BENCH_ingest.json\n");
}

}  // namespace
}  // namespace orochi

int main() {
  using namespace orochi;
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/orochi_bench_ingest";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  std::vector<Row> rows;
  std::fprintf(stderr, "ingest bench (scale %.2f):\n", BenchScale());
  rows.push_back(RunOne("forum", BenchForum(), dir));
  rows.push_back(RunOne("wiki", BenchWiki(), dir));
  rows.push_back(RunOne("conf", BenchConf(), dir));
  EmitJson(rows);
  for (const Row& r : rows) {
    if (!r.accepted || !r.parity) {
      return 1;
    }
  }
  return 0;
}
