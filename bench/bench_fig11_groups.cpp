// Figure 11: characteristics of control-flow groups in the wiki (MediaWiki) workload.
//
// For every group c the audit records (n_c, alpha_c, l_c): requests in the group, fraction
// of univalent instructions, and instructions executed. The paper's shape: many groups with
// large n, alpha > 0.95 almost everywhere, and a mild negative n-alpha correlation.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/auditor.h"

using namespace orochi;

int main() {
  Workload w = BenchWiki();
  ServedRun run = ServeForBench(w, /*record=*/true);
  Auditor auditor(&w.app);
  AuditResult result = auditor.Audit(run.trace, run.reports, w.initial);
  if (!result.accepted) {
    std::printf("!! audit rejected: %s\n", result.reason.c_str());
    return 1;
  }

  auto stats = result.stats.group_stats;
  std::sort(stats.begin(), stats.end(),
            [](const AuditStats::GroupStat& a, const AuditStats::GroupStat& b) {
              return a.n > b.n;
            });

  size_t groups_gt1 = 0;
  double min_alpha = 1.0;
  for (const auto& g : stats) {
    if (g.n > 1) {
      groups_gt1++;
    }
    min_alpha = std::min(min_alpha, g.alpha);
  }

  std::printf("Figure 11: control-flow group characteristics (wiki workload, %zu requests)\n",
              run.trace.NumRequests());
  std::printf("%zu total groups; %zu groups with n > 1; %zu scripts (unique URLs); "
              "min alpha = %.4f\n\n",
              stats.size(), groups_gt1, w.app.ScriptNames().size(), min_alpha);
  std::printf("%-14s %8s %10s %12s\n", "script", "n", "alpha", "instructions");
  std::printf("--------------------------------------------------\n");
  size_t shown = 0;
  for (const auto& g : stats) {
    if (shown++ >= 25) {
      break;
    }
    std::printf("%-14s %8u %10.4f %12llu\n", g.script.c_str(), g.n, g.alpha,
                static_cast<unsigned long long>(g.length));
  }
  if (stats.size() > 25) {
    std::printf("... (%zu more groups)\n", stats.size() - 25);
  }
  std::printf("\npaper shape: 527 groups / 237 with n>1 / 200 URLs at 20k requests; "
              "all alpha > 0.95\n");
  return 0;
}
