// Figure 8 (right graph): latency vs server throughput for the forum (phpBB) workload,
// baseline (legacy, no recording) vs OROCHI (recording on).
//
// Open-loop Poisson arrivals at increasing offered rates; we report p50/p90/p99 response
// latency at the achieved throughput. The paper's shape: OROCHI tracks the baseline with
// mildly higher latency and ~11-18% lower saturation throughput.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"

using namespace orochi;

namespace {

struct LatencyPoint {
  double achieved_rps;
  double p50_ms;
  double p90_ms;
  double p99_ms;
};

LatencyPoint RunAtRate(const Workload& w, bool record, double rate_rps, size_t num_requests,
                       uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  ServerCore core(&w.app, w.initial, ServerOptions{.record_reports = record});
  Collector collector;
  std::mutex mu;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(num_requests);
  std::vector<Clock::time_point> submit_times(num_requests + 1);

  Rng rng(seed);
  WallTimer wall;
  {
    ThreadServer server(&core, &collector, 4);
    Clock::time_point next = Clock::now();
    for (size_t i = 0; i < num_requests; i++) {
      // Poisson arrivals: exponential inter-arrival gaps at the offered rate.
      next += std::chrono::nanoseconds(
          static_cast<int64_t>(rng.Exponential(rate_rps) * 1e9));
      std::this_thread::sleep_until(next);
      RequestId rid = static_cast<RequestId>(i + 1);
      const WorkItem& item = w.items[i % w.items.size()];
      submit_times[rid] = Clock::now();
      server.Submit(rid, item.script, item.params,
                    [&, rid](RequestId, const std::string&) {
                      double ms = std::chrono::duration<double, std::milli>(
                                      Clock::now() - submit_times[rid])
                                      .count();
                      std::lock_guard<std::mutex> lock(mu);
                      latencies_ms.push_back(ms);
                    });
    }
    server.Drain();
  }
  double elapsed = wall.Seconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    if (latencies_ms.empty()) {
      return 0.0;
    }
    size_t idx = static_cast<size_t>(p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  return {static_cast<double>(num_requests) / elapsed, pct(0.50), pct(0.90), pct(0.99)};
}

}  // namespace

int main() {
  ForumConfig config;
  config.num_topics = 8;
  config.num_users = 83;
  config.num_requests = 2000;  // Item pool; requests cycle through it.
  Workload w = MakeForumWorkload(config);

  // Calibrate the saturation rate from a burst run, then sweep fractions of it.
  ServedRun burst = ServeForBench(w, /*record=*/false);
  double max_rps = static_cast<double>(burst.trace.NumRequests()) / burst.wall_seconds;
  size_t n = Scaled(1500);

  std::printf("Figure 8 (right): latency vs throughput, forum workload "
              "(calibrated saturation ~%.0f req/s)\n", max_rps);
  std::printf("%-10s %12s %10s %10s %10s\n", "config", "rps", "p50(ms)", "p90(ms)",
              "p99(ms)");
  std::printf("------------------------------------------------------------\n");
  for (double frac : {0.2, 0.4, 0.6, 0.75, 0.9}) {
    double rate = max_rps * frac;
    LatencyPoint base = RunAtRate(w, /*record=*/false, rate, n, /*seed=*/17);
    LatencyPoint oro = RunAtRate(w, /*record=*/true, rate, n, /*seed=*/17);
    std::printf("%-10s %12.0f %10.2f %10.2f %10.2f\n", "baseline", base.achieved_rps,
                base.p50_ms, base.p90_ms, base.p99_ms);
    std::printf("%-10s %12.0f %10.2f %10.2f %10.2f\n", "orochi", oro.achieved_rps,
                oro.p50_ms, oro.p90_ms, oro.p99_ms);
  }
  std::printf("\npaper shape: OROCHI tracks baseline latency closely, with ~11-18%% lower "
              "peak throughput\n");
  return 0;
}
