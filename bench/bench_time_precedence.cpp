// Ablation (§3.5, §A.8): CreateTimePrecedenceGraph — the streaming frontier algorithm —
// against a quadratic reference that connects every finished request to every later
// arrival (what a naive encoding of <Tr does before transitive reduction).
//
// The frontier algorithm runs in O(X + Z) and emits the *minimum* edge set (Lemma 12);
// the table shows edges and time as concurrency (the number of in-flight requests) grows.
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/core/time_precedence.h"

using namespace orochi;

namespace {

// A synthetic balanced trace with ~P requests in flight at any time.
Trace MakeTrace(size_t num_requests, size_t concurrency, uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  std::vector<RequestId> open;
  RequestId next = 1;
  while (next <= num_requests || !open.empty()) {
    bool can_open = next <= num_requests;
    bool must_close = open.size() >= concurrency || !can_open;
    if (must_close || (open.size() > 1 && rng.Chance(0.4))) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      TraceEvent e;
      e.kind = TraceEvent::Kind::kResponse;
      e.rid = open[pick];
      trace.events.push_back(std::move(e));
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      TraceEvent e;
      e.kind = TraceEvent::Kind::kRequest;
      e.rid = next;
      e.script = "/x";
      trace.events.push_back(std::move(e));
      open.push_back(next);
      next++;
    }
  }
  return trace;
}

// Naive edge construction: every response connects to every subsequent arrival whose
// request comes later (pairwise <Tr edges, no reduction). Counts edges only — materializing
// them at scale would be the memory blow-up the frontier algorithm avoids.
size_t NaiveEdgeCount(const Trace& trace) {
  size_t finished = 0;
  size_t edges = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kResponse) {
      finished++;
    } else {
      edges += finished;  // Every finished request precedes this arrival.
    }
  }
  return edges;
}

}  // namespace

int main() {
  std::printf("CreateTimePrecedenceGraph (Fig. 6): frontier vs naive pairwise edges\n");
  std::printf("%10s %8s | %12s %12s | %10s %12s\n", "requests", "conc", "frontier-Z",
              "naive-Z", "time(ms)", "edges/req");
  std::printf("--------------------------------------------------------------------------\n");
  for (size_t concurrency : {1, 4, 16, 64, 256}) {
    size_t n = 50000;
    Trace trace = MakeTrace(n, concurrency, 42 + concurrency);
    WallTimer timer;
    TimePrecedenceGraph g = CreateTimePrecedenceGraph(trace);
    double ms = timer.Seconds() * 1e3;
    size_t naive = NaiveEdgeCount(trace);
    std::printf("%10zu %8zu | %12zu %12zu | %10.2f %12.2f\n", n, concurrency, g.num_edges,
                naive, ms, static_cast<double>(g.num_edges) / static_cast<double>(n));
  }
  std::printf("\npaper shape: frontier edge count grows ~X*P/2 for worst-case epochs but "
              "stays the minimum set;\nnaive pairwise edges grow ~X^2 and are infeasible "
              "to materialize\n");
  return 0;
}
