// Figure 10: per-instruction-category cost in the unmodified interpreter vs acc execution.
//
// Categories follow the paper: Multiply, Concat, Isset, Jump, GetVal, ArraySet, Iteration,
// Microtime, Increment, NewArray. For each we run a loop of repeated statements and report
// nanoseconds per statement:
//   *_Scalar          — unmodified (scalar) interpreter,
//   *_AccUnivalent    — acc interpreter, identical inputs across the group (values collapse
//                       to univalues, so statements execute once),
//   *_AccMulti/N      — acc interpreter, N requests with differing inputs (statements
//                       execute componentwise). Sweeping N exposes the paper's fixed +
//                       marginal cost decomposition; time/N in the `per_component` counter.
//
// Paper shape to expect: multivalent cost is a large constant factor over scalar, and the
// marginal per-component cost can exceed the scalar cost — SIMD-on-demand wins only
// because almost all instructions execute univalently (§5.2).
#include <benchmark/benchmark.h>

#include <cassert>
#include <string>
#include <vector>

#include "src/lang/acc_interpreter.h"
#include "src/lang/compiler.h"
#include "src/lang/interpreter.h"

using namespace orochi;

namespace {

constexpr int kIters = 200;   // Loop trips per program run.
constexpr int kCopies = 10;   // Statement copies per trip.

std::string MakeSource(const std::string& op_stmt) {
  std::string body;
  for (int i = 0; i < kCopies; i++) {
    body += "  " + op_stmt + "\n";
  }
  return
      "$a = intval(input(\"a\"));\n"
      "$b = intval(input(\"b\"));\n"
      "$t = input(\"t\");\n"
      "$k = intval(input(\"k\"));\n"
      "$arr = array(10, 20, 30, 40, 50, 60, 70, 80);\n"
      "$small = array($a, $b, $a + 1, $b + 1);\n"
      "$arr2 = array();\n"
      "$x = 0;\n"
      "$x2 = $a;\n"
      "$s = \"\";\n"
      "for ($i = 0; $i < " + std::to_string(kIters) + "; $i++) {\n" + body + "}\n"
      "echo $x;\n";
}

struct Bench {
  const char* name;
  const char* stmt;
  bool uses_nondet;
};

const Bench kBenches[] = {
    {"Multiply", "$x = $a * 7;", false},
    {"Concat", "$s = $t . \"x\";", false},
    {"Isset", "$x = isset($a);", false},
    {"Jump", "if ($a > 0) { $x = 1; }", false},
    {"GetVal", "$x = $arr[$k];", false},
    {"ArraySet", "$arr2[$k] = 1;", false},
    {"Iteration", "foreach ($small as $v) { $x = $v; }", false},
    {"Microtime", "$x = microtime();", true},
    {"Increment", "$x2++;", false},
    {"NewArray", "$y = array($a => 1);", false},
};

Program Compile(const std::string& stmt) {
  Result<Program> prog = CompileSource(MakeSource(stmt), "/bench");
  assert(prog.ok() && "bench program must compile");
  return std::move(prog).value();
}

RequestParams ParamsFor(int j, bool identical) {
  RequestParams p;
  int v = identical ? 3 : 3 + j;
  p["a"] = std::to_string(v);
  p["b"] = std::to_string(v + 1);
  p["t"] = "tag" + std::to_string(identical ? 0 : j);
  p["k"] = std::to_string(identical ? 2 : (j % 8));
  return p;
}

// ---- Scalar (unmodified interpreter) ----
void RunScalar(benchmark::State& state, const Bench& bench) {
  Program prog = Compile(bench.stmt);
  RequestParams params = ParamsFor(0, true);
  int64_t ops = 0;
  for (auto _ : state) {
    Interpreter interp(&prog, &params);
    int64_t tick = 0;
    while (true) {
      StepResult step = interp.Run();
      if (step.kind == StepResult::Kind::kFinished) {
        break;
      }
      if (step.kind == StepResult::Kind::kNondet) {
        interp.ProvideValue(Value::Float(1.5e9 + static_cast<double>(tick++) * 1e-4));
        continue;
      }
      state.SkipWithError("unexpected step");
      return;
    }
    ops += kIters * kCopies;
  }
  state.counters["ns_per_stmt"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// ---- Acc interpreter (univalent or multivalent depending on inputs) ----
void RunAcc(benchmark::State& state, const Bench& bench, size_t n, bool identical) {
  Program prog = Compile(bench.stmt);
  std::vector<RequestParams> storage;
  storage.reserve(n);
  for (size_t j = 0; j < n; j++) {
    storage.push_back(ParamsFor(static_cast<int>(j), identical));
  }
  std::vector<const RequestParams*> params;
  for (const RequestParams& p : storage) {
    params.push_back(&p);
  }
  int64_t ops = 0;
  for (auto _ : state) {
    AccInterpreter acc(&prog, params);
    int64_t tick = 0;
    while (true) {
      AccStepResult step = acc.Run();
      if (step.kind == AccStepResult::Kind::kFinished) {
        break;
      }
      if (step.kind == AccStepResult::Kind::kNondet) {
        std::vector<Value> vals;
        for (size_t j = 0; j < n; j++) {
          double v = 1.5e9 + static_cast<double>(tick) * 1e-4 +
                     (identical ? 0.0 : static_cast<double>(j) * 1e-7);
          vals.push_back(Value::Float(v));
        }
        tick++;
        acc.ProvideValues(std::move(vals));
        continue;
      }
      state.SkipWithError("unexpected acc step");
      return;
    }
    ops += kIters * kCopies;
  }
  state.counters["ns_per_stmt"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["per_component"] = benchmark::Counter(
      static_cast<double>(ops) * static_cast<double>(n),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

}  // namespace

int main(int argc, char** argv) {
  for (const Bench& bench : kBenches) {
    benchmark::RegisterBenchmark((std::string(bench.name) + "_Scalar").c_str(),
                                 [&bench](benchmark::State& s) { RunScalar(s, bench); });
    benchmark::RegisterBenchmark((std::string(bench.name) + "_AccUnivalent").c_str(),
                                 [&bench](benchmark::State& s) { RunAcc(s, bench, 8, true); });
    for (size_t n : {2, 8, 32}) {
      benchmark::RegisterBenchmark(
          (std::string(bench.name) + "_AccMulti/" + std::to_string(n)).c_str(),
          [&bench, n](benchmark::State& s) { RunAcc(s, bench, n, false); });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
