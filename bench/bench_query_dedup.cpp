// Ablation (§4.5, §5.2): read-query deduplication on vs off.
//
// The paper observes dedup matters most for read-dominated workloads (wiki); this harness
// audits each workload twice — dedup enabled and disabled — and reports DB-query time and
// SELECT counts. Grouping stays on in both configurations, isolating dedup's contribution.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/auditor.h"

using namespace orochi;

int main() {
  std::printf("Query dedup ablation (grouped audit, dedup on vs off)\n");
  std::printf("%-8s | %9s %9s %9s | %9s %9s | %8s\n", "app", "selects", "issued", "deduped",
              "dbq on(s)", "dbq off(s)", "saving");
  std::printf("--------------------------------------------------------------------------\n");
  for (Workload (*make)() : {&BenchWiki, &BenchForum, &BenchConf}) {
    Workload w = make();
    ServedRun run = ServeForBench(w, /*record=*/true);

    AuditOptions with_dedup;
    with_dedup.enable_query_dedup = true;
    Auditor auditor_on(&w.app, with_dedup);
    double cpu0 = ProcessCpuSeconds();
    AuditResult on = auditor_on.Audit(run.trace, run.reports, w.initial);
    double on_cpu = ProcessCpuSeconds() - cpu0;

    AuditOptions without_dedup;
    without_dedup.enable_query_dedup = false;
    Auditor auditor_off(&w.app, without_dedup);
    cpu0 = ProcessCpuSeconds();
    AuditResult off = auditor_off.Audit(run.trace, run.reports, w.initial);
    double off_cpu = ProcessCpuSeconds() - cpu0;

    if (!on.accepted || !off.accepted) {
      std::printf("!! audit rejected: %s%s\n", on.reason.c_str(), off.reason.c_str());
      continue;
    }
    uint64_t total = on.stats.db_selects_issued + on.stats.db_selects_deduped;
    std::printf("%-8s | %9llu %9llu %9llu | %9.3f %9.3f | %6.1f%%\n", w.name.c_str(),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(on.stats.db_selects_issued),
                static_cast<unsigned long long>(on.stats.db_selects_deduped),
                on.stats.db_query_seconds, off.stats.db_query_seconds,
                100.0 * (1.0 - on_cpu / off_cpu));
  }
  std::printf("\npaper shape: dedup's win is largest on the read-dominated wiki workload\n");
  return 0;
}
