// Figure 9: decomposition of audit-time CPU costs, baseline vs OROCHI, three workloads.
//
// Paper stacks: "PHP" (re-execution), "DB query", and for OROCHI additionally
// "ProcOpRep" (Figures 5/6 logic), "DB redo" (versioned-store build), "Other".
// The shape under reproduction: OROCHI's PHP + DB-query bars shrink several-fold vs the
// baseline (SIMD-on-demand + query dedup), while ProcOpRep/DB-redo add small fixed costs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/auditor.h"

using namespace orochi;

namespace {

void PrintRow(const char* config, const AuditStats& s, double total) {
  double php = s.reexec_seconds - s.db_query_seconds;
  std::printf("  %-9s total %6.2fs | PHP %6.2fs | DBquery %6.2fs | ProcOpRep %5.2fs | "
              "DBredo %5.2fs | other %5.2fs | instr %lluk (%lluk multi)\n",
              config, total, php, s.db_query_seconds, s.proc_op_reports_seconds,
              s.db_redo_seconds, s.other_seconds,
              static_cast<unsigned long long>(s.total_instructions / 1000),
              static_cast<unsigned long long>(s.multivalent_instructions / 1000));
}

}  // namespace

int main() {
  std::printf("Figure 9: decomposition of audit-time CPU costs\n");
  for (Workload (*make)() : {&BenchWiki, &BenchForum, &BenchConf}) {
    Workload w = make();
    ServedRun run = ServeForBench(w, /*record=*/true);
    Auditor auditor(&w.app);

    std::printf("%s (%zu requests):\n", w.name.c_str(), run.trace.NumRequests());
    double cpu0 = ProcessCpuSeconds();
    AuditResult baseline = auditor.AuditSequential(run.trace, run.reports, w.initial);
    double baseline_total = ProcessCpuSeconds() - cpu0;
    if (!baseline.accepted) {
      std::printf("!! baseline rejected: %s\n", baseline.reason.c_str());
    }
    PrintRow("baseline", baseline.stats, baseline_total);

    cpu0 = ProcessCpuSeconds();
    AuditResult grouped = auditor.Audit(run.trace, run.reports, w.initial);
    double grouped_total = ProcessCpuSeconds() - cpu0;
    if (!grouped.accepted) {
      std::printf("!! orochi rejected: %s\n", grouped.reason.c_str());
    }
    PrintRow("orochi", grouped.stats, grouped_total);
    std::printf("  dedup: %llu of %llu SELECTs served from cache; groups %llu "
                "(%llu multi)\n",
                static_cast<unsigned long long>(grouped.stats.db_selects_deduped),
                static_cast<unsigned long long>(grouped.stats.db_selects_deduped +
                                                grouped.stats.db_selects_issued),
                static_cast<unsigned long long>(grouped.stats.num_groups),
                static_cast<unsigned long long>(grouped.stats.groups_multi));
  }
  std::printf("\npaper shape: OROCHI bars are several-fold shorter; ProcOpRep and DB-redo "
              "are small additive costs\n");
  return 0;
}
