// Streamed vs. in-memory epoch audit: wall time and memory for the forum/wiki/conf
// workloads, emitted as BENCH_stream_audit.json so the out-of-core path's overhead and
// memory ceiling are tracked PR over PR.
//
// Per workload the harness serves one epoch, spills it to wire-format files, then audits
// the files three times: streamed with pass-2 read-ahead OFF (depth 0), streamed with
// read-ahead ON (the default depth), and fully in-memory. Both streamed runs page trace
// payloads AND op-log contents under ONE budget (peak residency reported by the
// ChunkBudget); the prefetch-on run additionally reports the pipeline's hit rate. The
// streamed audits run FIRST because ru_maxrss is a process-lifetime high-water mark —
// ordering them first means the reported streamed RSS was not inflated by the in-memory
// trace/reports materialization. Correctness cross-checks ride along: all paths must
// accept and agree on the final state, and each streamed peak must respect max(budget,
// largest single admission) — one chunk bigger than the whole budget is legitimately
// admitted alone.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/stream_audit.h"

namespace orochi {
namespace {

// Default streamed-audit budget; OROCHI_AUDIT_BUDGET overrides.
constexpr size_t kDefaultBudget = 256 * 1024;

long PeakRssKb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux; monotone over the process lifetime.
}

struct Row {
  std::string workload;
  size_t requests = 0;
  size_t trace_file_bytes = 0;
  size_t reports_file_bytes = 0;
  size_t request_payload_bytes = 0;  // Trace-side bytes the budget pages.
  uint64_t oplog_payload_bytes = 0;  // Reports-side bytes the budget pages.
  uint64_t budget_bytes = 0;
  uint64_t peak_resident_bytes = 0;  // ChunkBudget high-water mark: trace + reports.
  uint64_t largest_admission_bytes = 0;
  double streamed_seconds = 0;  // Read-ahead off (depth 0).
  // Read-ahead on (kDefaultPrefetchDepth): same budget, same verdict, its own peak and
  // the pipeline's counters. hit_rate = hits / (hits + misses) over pass-2 gate acquires.
  size_t prefetch_depth = 0;
  uint64_t prefetch_peak_resident_bytes = 0;
  uint64_t prefetch_largest_admission_bytes = 0;
  double prefetch_streamed_seconds = 0;
  PrefetchStats prefetch;
  double in_memory_seconds = 0;
  long rss_after_streamed_kb = 0;
  long rss_after_in_memory_kb = 0;
  bool accepted = false;
  bool states_match = false;
};

Row RunOne(const char* name, const Workload& w, const std::string& dir) {
  Row row;
  row.workload = name;
  row.requests = w.items.size();
  ServedRun served = ServeForBench(w, /*record=*/true);
  const std::string trace_path = dir + "/" + row.workload + "_trace.bin";
  const std::string reports_path = dir + "/" + row.workload + "_reports.bin";
  if (!WriteTraceFile(trace_path, served.trace).ok() ||
      !WriteReportsFile(reports_path, served.reports).ok()) {
    std::fprintf(stderr, "%s: spill failed\n", name);
    return row;
  }
  row.trace_file_bytes = served.trace.WireBytes();
  row.reports_file_bytes = served.reports.WireBytes();
  // Shed the in-memory copies: the point of the comparison is what each *audit* keeps
  // resident, not what the serving harness did.
  served.trace = Trace{};
  served.reports = Reports{};

  AuditOptions options;
  if (std::getenv("OROCHI_AUDIT_BUDGET") == nullptr) {
    options.max_resident_bytes = kDefaultBudget;
  }
  // Modest chunks so paging churns; a chunk is charged for its request payloads plus the
  // op-log contents its checks compare against, and the invariant below uses the
  // budget's own largest-admission ledger to account for any oversized chunk.
  options.max_group_size = 512;

  {
    StreamTraceSet trace_probe;
    if (Result<uint32_t> r = trace_probe.AppendFile(trace_path); !r.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, r.error().c_str());
      return row;
    }
    row.request_payload_bytes = trace_probe.total_request_payload_bytes();
    StreamReportsSet reports_probe;
    if (Status st = reports_probe.AppendFile(reports_path); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, st.error().c_str());
      return row;
    }
    row.oplog_payload_bytes = reports_probe.total_log_payload_bytes();
  }

  Result<uint64_t> resolved_budget = ResolveAuditBudget(options);
  if (!resolved_budget.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, resolved_budget.error().c_str());
    return row;
  }

  // Read-ahead off: the paging baseline.
  ChunkBudget budget(resolved_budget.value());
  row.budget_bytes = budget.max_bytes();
  Result<AuditResult> streamed_result = Result<AuditResult>::Error("not run");
  {
    AuditOptions off = options;
    off.prefetch_depth = 0;
    StreamAuditHooks hooks;
    hooks.budget = &budget;
    AuditSession streamed = AuditSession::Open(&w.app, off, w.initial);
    WallTimer stream_wall;
    streamed_result = streamed.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
    row.streamed_seconds = stream_wall.Seconds();
    row.peak_resident_bytes = budget.peak_bytes();
    row.largest_admission_bytes = budget.largest_acquire_bytes();
  }
  if (!streamed_result.ok() || !streamed_result.value().accepted) {
    std::fprintf(stderr, "%s streamed REJECTED/errored: %s\n", name,
                 streamed_result.ok() ? streamed_result.value().reason.c_str()
                                      : streamed_result.error().c_str());
    return row;
  }

  // Read-ahead on: same budget ceiling, its own ChunkBudget ledger so the two runs'
  // high-water marks do not shadow each other.
  ChunkBudget prefetch_budget(resolved_budget.value());
  Result<AuditResult> prefetch_result = Result<AuditResult>::Error("not run");
  {
    // Depth stays auto here: OROCHI_PREFETCH_DEPTH drives this run (CI smokes it at 0
    // and at the default), falling back to kDefaultPrefetchDepth.
    AuditOptions on = options;
    Result<size_t> depth = ResolvePrefetchDepth(on);
    if (!depth.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, depth.error().c_str());
      return row;
    }
    row.prefetch_depth = depth.value();
    StreamAuditHooks hooks;
    hooks.budget = &prefetch_budget;
    hooks.prefetch_stats = &row.prefetch;
    AuditSession streamed = AuditSession::Open(&w.app, on, w.initial);
    WallTimer stream_wall;
    prefetch_result = streamed.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
    row.prefetch_streamed_seconds = stream_wall.Seconds();
    row.prefetch_peak_resident_bytes = prefetch_budget.peak_bytes();
    row.prefetch_largest_admission_bytes = prefetch_budget.largest_acquire_bytes();
  }
  row.rss_after_streamed_kb = PeakRssKb();
  if (!prefetch_result.ok() || !prefetch_result.value().accepted) {
    std::fprintf(stderr, "%s streamed+prefetch REJECTED/errored: %s\n", name,
                 prefetch_result.ok() ? prefetch_result.value().reason.c_str()
                                      : prefetch_result.error().c_str());
    return row;
  }

  AuditSession in_memory = AuditSession::Open(&w.app, options, w.initial);
  WallTimer mem_wall;
  Result<AuditResult> memory_result = in_memory.FeedEpochFiles(trace_path, reports_path);
  row.in_memory_seconds = mem_wall.Seconds();
  row.rss_after_in_memory_kb = PeakRssKb();
  if (!memory_result.ok() || !memory_result.value().accepted) {
    std::fprintf(stderr, "%s in-memory REJECTED/errored\n", name);
    return row;
  }
  row.accepted = true;
  const std::string memory_fp = InitialStateFingerprint(memory_result.value().final_state);
  row.states_match =
      InitialStateFingerprint(streamed_result.value().final_state) == memory_fp &&
      InitialStateFingerprint(prefetch_result.value().final_state) == memory_fp;
  const uint64_t acquires = row.prefetch.hits + row.prefetch.misses;
  std::fprintf(stderr,
               "  %-6s streamed=%.3fs +prefetch=%.3fs in_memory=%.3fs "
               "peak_resident=%llu|%llu/%llu bytes hit_rate=%.2f "
               "(%zu trace + %llu oplog on disk) %s\n",
               name, row.streamed_seconds, row.prefetch_streamed_seconds,
               row.in_memory_seconds,
               static_cast<unsigned long long>(row.peak_resident_bytes),
               static_cast<unsigned long long>(row.prefetch_peak_resident_bytes),
               static_cast<unsigned long long>(row.budget_bytes),
               acquires > 0 ? static_cast<double>(row.prefetch.hits) /
                                  static_cast<double>(acquires)
                            : 0.0,
               row.request_payload_bytes,
               static_cast<unsigned long long>(row.oplog_payload_bytes),
               row.states_match ? "MATCH" : "DIVERGED");
  return row;
}

void EmitJson(const std::vector<Row>& rows) {
  FILE* f = std::fopen("BENCH_stream_audit.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_stream_audit.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"stream_audit\",\n  \"scale\": %.3f,\n  \"meta\": %s,\n  \"rows\": [\n",
               BenchScale(), BenchMetaJson().c_str());
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    const uint64_t acquires = r.prefetch.hits + r.prefetch.misses;
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"requests\": %zu, \"trace_file_bytes\": %zu,\n"
        "     \"reports_file_bytes\": %zu, \"request_payload_bytes\": %zu,\n"
        "     \"oplog_payload_bytes\": %llu, \"budget_bytes\": %llu,\n"
        "     \"peak_resident_bytes\": %llu, \"largest_admission_bytes\": %llu,\n"
        "     \"streamed_seconds\": %.6f,\n"
        "     \"prefetch_depth\": %zu, \"prefetch_streamed_seconds\": %.6f,\n"
        "     \"prefetch_peak_resident_bytes\": %llu,\n"
        "     \"prefetch_largest_admission_bytes\": %llu,\n"
        "     \"prefetch_hits\": %llu, \"prefetch_misses\": %llu,\n"
        "     \"prefetch_issued\": %llu, \"prefetch_revoked\": %llu,\n"
        "     \"prefetch_bytes\": %llu, \"prefetch_hit_rate\": %.4f,\n"
        "     \"prefetch_over_no_prefetch\": %.3f,\n"
        "     \"in_memory_seconds\": %.6f, \"streamed_over_in_memory\": %.3f,\n"
        "     \"peak_rss_after_streamed_kb\": %ld, \"peak_rss_after_in_memory_kb\": %ld,\n"
        "     \"accepted\": %s, \"states_match\": %s}%s\n",
        r.workload.c_str(), r.requests, r.trace_file_bytes, r.reports_file_bytes,
        r.request_payload_bytes, static_cast<unsigned long long>(r.oplog_payload_bytes),
        static_cast<unsigned long long>(r.budget_bytes),
        static_cast<unsigned long long>(r.peak_resident_bytes),
        static_cast<unsigned long long>(r.largest_admission_bytes), r.streamed_seconds,
        r.prefetch_depth, r.prefetch_streamed_seconds,
        static_cast<unsigned long long>(r.prefetch_peak_resident_bytes),
        static_cast<unsigned long long>(r.prefetch_largest_admission_bytes),
        static_cast<unsigned long long>(r.prefetch.hits),
        static_cast<unsigned long long>(r.prefetch.misses),
        static_cast<unsigned long long>(r.prefetch.issued),
        static_cast<unsigned long long>(r.prefetch.revoked),
        static_cast<unsigned long long>(r.prefetch.bytes),
        acquires > 0
            ? static_cast<double>(r.prefetch.hits) / static_cast<double>(acquires)
            : 0.0,
        r.streamed_seconds > 0 ? r.prefetch_streamed_seconds / r.streamed_seconds : 0.0,
        r.in_memory_seconds,
        r.in_memory_seconds > 0 ? r.streamed_seconds / r.in_memory_seconds : 0.0,
        r.rss_after_streamed_kb, r.rss_after_in_memory_kb, r.accepted ? "true" : "false",
        r.states_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace orochi

int main() {
  using namespace orochi;
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr ? std::string(tmp) : std::string("/tmp")) +
                    "/orochi_bench_stream_audit";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "stream audit bench (OROCHI_BENCH_SCALE=%.3f)\n", BenchScale());
  std::vector<Row> rows;
  rows.push_back(RunOne("forum", BenchForum(), dir));
  rows.push_back(RunOne("wiki", BenchWiki(), dir));
  rows.push_back(RunOne("conf", BenchConf(), dir));
  EmitJson(rows);
  std::fprintf(stderr, "wrote BENCH_stream_audit.json\n");
  for (const Row& r : rows) {
    // `accepted` distinguishes "a stage failed outright" (spill error, reject, file
    // error — already reported by RunOne) from a completed run whose states diverged.
    if (!r.accepted) {
      std::fprintf(stderr, "ERROR: %s did not complete both audits\n", r.workload.c_str());
      return 1;
    }
    if (!r.states_match) {
      std::fprintf(stderr, "ERROR: %s diverged between streamed and in-memory audits\n",
                   r.workload.c_str());
      return 1;
    }
    // A single admission larger than the whole budget runs alone (the oversized-chunk
    // path), so the enforceable ceiling is max(budget, largest admission) — for the
    // prefetch-on run too: read-ahead bytes ride the same budget and must not raise it.
    uint64_t ceiling = std::max(r.budget_bytes, r.largest_admission_bytes);
    if (r.budget_bytes > 0 && r.peak_resident_bytes > ceiling) {
      std::fprintf(stderr, "ERROR: %s exceeded the resident-byte budget\n",
                   r.workload.c_str());
      return 1;
    }
    uint64_t prefetch_ceiling =
        std::max(r.budget_bytes, r.prefetch_largest_admission_bytes);
    if (r.budget_bytes > 0 && r.prefetch_peak_resident_bytes > prefetch_ceiling) {
      std::fprintf(stderr, "ERROR: %s exceeded the resident-byte budget with prefetch\n",
                   r.workload.c_str());
      return 1;
    }
  }
  return 0;
}
