// Streamed vs. in-memory epoch audit: wall time and memory for the forum/wiki/conf
// workloads, emitted as BENCH_stream_audit.json so the out-of-core path's overhead and
// memory ceiling are tracked PR over PR.
//
// Per workload the harness serves one epoch, spills it to wire-format files, then audits
// the files twice: streamed (trace payloads AND op-log contents paged in under ONE
// budget, peak residency reported by the ChunkBudget) and fully in-memory. The streamed
// audit runs FIRST because ru_maxrss is a process-lifetime high-water mark — ordering it
// first means the reported streamed RSS was not inflated by the in-memory trace/reports
// materialization. Correctness cross-checks ride along: both paths must accept and agree
// on the final state, and the streamed peak must respect max(budget, largest single
// admission) — one chunk bigger than the whole budget is legitimately admitted alone.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/stream_audit.h"

namespace orochi {
namespace {

// Default streamed-audit budget; OROCHI_AUDIT_BUDGET overrides.
constexpr size_t kDefaultBudget = 256 * 1024;

long PeakRssKb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux; monotone over the process lifetime.
}

struct Row {
  std::string workload;
  size_t requests = 0;
  size_t trace_file_bytes = 0;
  size_t reports_file_bytes = 0;
  size_t request_payload_bytes = 0;  // Trace-side bytes the budget pages.
  uint64_t oplog_payload_bytes = 0;  // Reports-side bytes the budget pages.
  uint64_t budget_bytes = 0;
  uint64_t peak_resident_bytes = 0;  // ChunkBudget high-water mark: trace + reports.
  uint64_t largest_admission_bytes = 0;
  double streamed_seconds = 0;
  double in_memory_seconds = 0;
  long rss_after_streamed_kb = 0;
  long rss_after_in_memory_kb = 0;
  bool accepted = false;
  bool states_match = false;
};

Row RunOne(const char* name, const Workload& w, const std::string& dir) {
  Row row;
  row.workload = name;
  row.requests = w.items.size();
  ServedRun served = ServeForBench(w, /*record=*/true);
  const std::string trace_path = dir + "/" + row.workload + "_trace.bin";
  const std::string reports_path = dir + "/" + row.workload + "_reports.bin";
  if (!WriteTraceFile(trace_path, served.trace).ok() ||
      !WriteReportsFile(reports_path, served.reports).ok()) {
    std::fprintf(stderr, "%s: spill failed\n", name);
    return row;
  }
  row.trace_file_bytes = served.trace.WireBytes();
  row.reports_file_bytes = served.reports.WireBytes();
  // Shed the in-memory copies: the point of the comparison is what each *audit* keeps
  // resident, not what the serving harness did.
  served.trace = Trace{};
  served.reports = Reports{};

  AuditOptions options;
  if (std::getenv("OROCHI_AUDIT_BUDGET") == nullptr) {
    options.max_resident_bytes = kDefaultBudget;
  }
  // Modest chunks so paging churns; a chunk is charged for its request payloads plus the
  // op-log contents its checks compare against, and the invariant below uses the
  // budget's own largest-admission ledger to account for any oversized chunk.
  options.max_group_size = 512;

  {
    StreamTraceSet trace_probe;
    if (Result<uint32_t> r = trace_probe.AppendFile(trace_path); !r.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, r.error().c_str());
      return row;
    }
    row.request_payload_bytes = trace_probe.total_request_payload_bytes();
    StreamReportsSet reports_probe;
    if (Status st = reports_probe.AppendFile(reports_path); !st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, st.error().c_str());
      return row;
    }
    row.oplog_payload_bytes = reports_probe.total_log_payload_bytes();
  }

  Result<uint64_t> resolved_budget = ResolveAuditBudget(options);
  if (!resolved_budget.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, resolved_budget.error().c_str());
    return row;
  }
  ChunkBudget budget(resolved_budget.value());
  row.budget_bytes = budget.max_bytes();
  StreamAuditHooks hooks;
  hooks.budget = &budget;
  AuditSession streamed = AuditSession::Open(&w.app, options, w.initial);
  WallTimer stream_wall;
  Result<AuditResult> streamed_result =
      streamed.FeedEpochFilesStreamed(trace_path, reports_path, &hooks);
  row.streamed_seconds = stream_wall.Seconds();
  row.peak_resident_bytes = budget.peak_bytes();
  row.largest_admission_bytes = budget.largest_acquire_bytes();
  row.rss_after_streamed_kb = PeakRssKb();
  if (!streamed_result.ok() || !streamed_result.value().accepted) {
    std::fprintf(stderr, "%s streamed REJECTED/errored: %s\n", name,
                 streamed_result.ok() ? streamed_result.value().reason.c_str()
                                      : streamed_result.error().c_str());
    return row;
  }

  AuditSession in_memory = AuditSession::Open(&w.app, options, w.initial);
  WallTimer mem_wall;
  Result<AuditResult> memory_result = in_memory.FeedEpochFiles(trace_path, reports_path);
  row.in_memory_seconds = mem_wall.Seconds();
  row.rss_after_in_memory_kb = PeakRssKb();
  if (!memory_result.ok() || !memory_result.value().accepted) {
    std::fprintf(stderr, "%s in-memory REJECTED/errored\n", name);
    return row;
  }
  row.accepted = true;
  row.states_match = InitialStateFingerprint(streamed_result.value().final_state) ==
                     InitialStateFingerprint(memory_result.value().final_state);
  std::fprintf(stderr,
               "  %-6s streamed=%.3fs in_memory=%.3fs peak_resident=%llu/%llu bytes "
               "(%zu trace + %llu oplog on disk) %s\n",
               name, row.streamed_seconds, row.in_memory_seconds,
               static_cast<unsigned long long>(row.peak_resident_bytes),
               static_cast<unsigned long long>(row.budget_bytes),
               row.request_payload_bytes,
               static_cast<unsigned long long>(row.oplog_payload_bytes),
               row.states_match ? "MATCH" : "DIVERGED");
  return row;
}

void EmitJson(const std::vector<Row>& rows) {
  FILE* f = std::fopen("BENCH_stream_audit.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_stream_audit.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"stream_audit\",\n  \"scale\": %.3f,\n  \"meta\": %s,\n  \"rows\": [\n",
               BenchScale(), BenchMetaJson().c_str());
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"requests\": %zu, \"trace_file_bytes\": %zu,\n"
        "     \"reports_file_bytes\": %zu, \"request_payload_bytes\": %zu,\n"
        "     \"oplog_payload_bytes\": %llu, \"budget_bytes\": %llu,\n"
        "     \"peak_resident_bytes\": %llu, \"largest_admission_bytes\": %llu,\n"
        "     \"streamed_seconds\": %.6f,\n"
        "     \"in_memory_seconds\": %.6f, \"streamed_over_in_memory\": %.3f,\n"
        "     \"peak_rss_after_streamed_kb\": %ld, \"peak_rss_after_in_memory_kb\": %ld,\n"
        "     \"accepted\": %s, \"states_match\": %s}%s\n",
        r.workload.c_str(), r.requests, r.trace_file_bytes, r.reports_file_bytes,
        r.request_payload_bytes, static_cast<unsigned long long>(r.oplog_payload_bytes),
        static_cast<unsigned long long>(r.budget_bytes),
        static_cast<unsigned long long>(r.peak_resident_bytes),
        static_cast<unsigned long long>(r.largest_admission_bytes), r.streamed_seconds,
        r.in_memory_seconds,
        r.in_memory_seconds > 0 ? r.streamed_seconds / r.in_memory_seconds : 0.0,
        r.rss_after_streamed_kb, r.rss_after_in_memory_kb, r.accepted ? "true" : "false",
        r.states_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace orochi

int main() {
  using namespace orochi;
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr ? std::string(tmp) : std::string("/tmp")) +
                    "/orochi_bench_stream_audit";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "stream audit bench (OROCHI_BENCH_SCALE=%.3f)\n", BenchScale());
  std::vector<Row> rows;
  rows.push_back(RunOne("forum", BenchForum(), dir));
  rows.push_back(RunOne("wiki", BenchWiki(), dir));
  rows.push_back(RunOne("conf", BenchConf(), dir));
  EmitJson(rows);
  std::fprintf(stderr, "wrote BENCH_stream_audit.json\n");
  for (const Row& r : rows) {
    // `accepted` distinguishes "a stage failed outright" (spill error, reject, file
    // error — already reported by RunOne) from a completed run whose states diverged.
    if (!r.accepted) {
      std::fprintf(stderr, "ERROR: %s did not complete both audits\n", r.workload.c_str());
      return 1;
    }
    if (!r.states_match) {
      std::fprintf(stderr, "ERROR: %s diverged between streamed and in-memory audits\n",
                   r.workload.c_str());
      return 1;
    }
    // A single admission larger than the whole budget runs alone (the oversized-chunk
    // path), so the enforceable ceiling is max(budget, largest admission).
    uint64_t ceiling = std::max(r.budget_bytes, r.largest_admission_bytes);
    if (r.budget_bytes > 0 && r.peak_resident_bytes > ceiling) {
      std::fprintf(stderr, "ERROR: %s exceeded the resident-byte budget\n",
                   r.workload.c_str());
      return 1;
    }
  }
  return 0;
}
