// Parallel-audit scaling sweep: audits the forum, wiki, and conf workloads at 1/2/4/8
// worker threads and emits machine-readable JSON (BENCH_parallel_audit.json) so the perf
// trajectory is tracked PR over PR.
//
// Correctness cross-checks ride along: every thread count must produce the same verdict
// and the same final-state fingerprint as the single-threaded run.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/auditor.h"

namespace orochi {
namespace {

struct Sweep {
  std::string workload;
  size_t requests = 0;
  struct Point {
    size_t threads;
    double reexec_seconds;
    double total_seconds;
    bool accepted;
    bool matches_single_thread;
  };
  std::vector<Point> points;
};

Sweep RunSweep(const char* name, const Workload& w) {
  Sweep sweep;
  sweep.workload = name;
  sweep.requests = w.items.size();
  ServedRun served = ServeForBench(w, /*record=*/true);
  std::string base_fp;
  bool base_accepted = false;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    AuditOptions options;
    options.num_threads = threads;
    Auditor auditor(&w.app, options);
    WallTimer wall;
    AuditResult r = auditor.Audit(served.trace, served.reports, w.initial);
    double total = wall.Seconds();
    if (!r.accepted) {
      std::fprintf(stderr, "%s @%zu threads REJECTED: %s\n", name, threads,
                   r.reason.c_str());
    }
    std::string fp = r.accepted ? InitialStateFingerprint(r.final_state) : "";
    if (threads == 1) {
      base_fp = fp;
      base_accepted = r.accepted;
    }
    sweep.points.push_back({threads, r.stats.reexec_seconds, total, r.accepted,
                            r.accepted == base_accepted && fp == base_fp});
    std::fprintf(stderr, "  %-6s threads=%zu reexec=%.3fs total=%.3fs %s\n", name, threads,
                 r.stats.reexec_seconds, total, r.accepted ? "ACCEPT" : "REJECT");
  }
  return sweep;
}

void EmitJson(const std::vector<Sweep>& sweeps) {
  FILE* f = std::fopen("BENCH_parallel_audit.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_parallel_audit.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel_audit\",\n  \"scale\": %.3f,\n  \"meta\": %s,\n  \"sweeps\": [\n",
               BenchScale(), BenchMetaJson().c_str());
  for (size_t i = 0; i < sweeps.size(); i++) {
    const Sweep& s = sweeps[i];
    std::fprintf(f, "    {\"workload\": \"%s\", \"requests\": %zu, \"points\": [\n",
                 s.workload.c_str(), s.requests);
    double base = s.points.empty() ? 0 : s.points[0].total_seconds;
    for (size_t j = 0; j < s.points.size(); j++) {
      const Sweep::Point& p = s.points[j];
      std::fprintf(f,
                   "      {\"threads\": %zu, \"reexec_seconds\": %.6f, "
                   "\"total_seconds\": %.6f, \"speedup_vs_1\": %.3f, \"accepted\": %s, "
                   "\"matches_single_thread\": %s}%s\n",
                   p.threads, p.reexec_seconds, p.total_seconds,
                   p.total_seconds > 0 ? base / p.total_seconds : 0.0,
                   p.accepted ? "true" : "false",
                   p.matches_single_thread ? "true" : "false",
                   j + 1 < s.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace orochi

int main() {
  using namespace orochi;
  std::vector<Sweep> sweeps;
  std::fprintf(stderr, "parallel audit sweep (OROCHI_BENCH_SCALE=%.3f, hw threads=%u)\n",
               BenchScale(), std::thread::hardware_concurrency());
  sweeps.push_back(RunSweep("forum", BenchForum()));
  sweeps.push_back(RunSweep("wiki", BenchWiki()));
  sweeps.push_back(RunSweep("conf", BenchConf()));
  EmitJson(sweeps);
  std::fprintf(stderr, "wrote BENCH_parallel_audit.json\n");
  bool all_match = true;
  for (const Sweep& s : sweeps) {
    for (const auto& p : s.points) {
      all_match = all_match && p.matches_single_thread;
    }
  }
  if (!all_match) {
    std::fprintf(stderr, "ERROR: results diverged across thread counts\n");
    return 1;
  }
  return 0;
}
