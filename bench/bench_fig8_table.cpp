// Figure 8 (left table): OROCHI versus simple re-execution.
//
// Paper columns -> this harness:
//   audit speedup        = CPU(sequential per-request audit) / CPU(grouped SSCO audit)
//   server CPU overhead  = CPU(recording server) / CPU(legacy server) - 1
//   avg request          = trace bytes / requests
//   reports baseline     = nondeterminism reports only (the paper charges the baseline
//                          for nondet advice, §5.1)
//   reports OROCHI       = all four report types
//   OROCHI ovhd          = (trace + OROCHI reports) / (trace + baseline reports) - 1
//   temp DB overhead     = versioned-store bytes / plain-store bytes during the audit
//   permanent            = 1x by construction (only the latest state is kept, §5.1)
//
// Paper's measured values (4-core i5 testbed): speedups 10.9x / 5.6x / 6.2x, server CPU
// overhead 4.7% / 8.6% / 5.9%, report overhead 11.4% / 2.7% / 10.9%. Expect the same
// ordering and rough magnitudes, not identical numbers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/auditor.h"
#include "src/sql/versioned_database.h"

using namespace orochi;

namespace {

struct Row {
  std::string name;
  double speedup;
  double server_overhead;
  double request_kb;
  double baseline_report_kb;
  double orochi_report_kb;
  double report_overhead;
  double temp_db;
  uint64_t requests;
};

Row RunOne(Workload w) {
  Row row;
  row.name = w.name;

  // Legacy server (no recording) = the baseline's server cost.
  ServedRun legacy = ServeForBench(w, /*record=*/false);
  // OROCHI server (recording on) produces the trace and reports used below.
  ServedRun recorded = ServeForBench(w, /*record=*/true);
  row.server_overhead = recorded.server_cpu_seconds / legacy.server_cpu_seconds - 1.0;
  row.requests = recorded.trace.NumRequests();
  row.request_kb =
      static_cast<double>(recorded.trace.WireBytes()) / 1024.0 / static_cast<double>(row.requests);
  row.baseline_report_kb = static_cast<double>(recorded.reports.WireBytes(true)) /
                           1024.0 / static_cast<double>(row.requests);
  row.orochi_report_kb = static_cast<double>(recorded.reports.WireBytes(false)) /
                         1024.0 / static_cast<double>(row.requests);
  double trace_kb = static_cast<double>(recorded.trace.WireBytes()) / 1024.0;
  row.report_overhead =
      (trace_kb + row.orochi_report_kb * static_cast<double>(row.requests)) /
          (trace_kb + row.baseline_report_kb * static_cast<double>(row.requests)) -
      1.0;

  Auditor auditor(&w.app);
  double cpu0 = ProcessCpuSeconds();
  AuditResult grouped = auditor.Audit(recorded.trace, recorded.reports, w.initial);
  double grouped_cpu = ProcessCpuSeconds() - cpu0;
  cpu0 = ProcessCpuSeconds();
  AuditResult baseline = auditor.AuditSequential(recorded.trace, recorded.reports, w.initial);
  double baseline_cpu = ProcessCpuSeconds() - cpu0;
  if (!grouped.accepted || !baseline.accepted) {
    std::printf("!! audit rejected: %s%s\n", grouped.reason.c_str(), baseline.reason.c_str());
  }
  row.speedup = baseline_cpu / grouped_cpu;

  // Temp DB overhead: rebuild the versioned store from the logs and compare footprints.
  {
    VersionedDatabase vdb;
    int db_obj = recorded.reports.FindObject(ObjectKind::kDb, "");
    // The audit already built this internally; reconstruct footprints from final state.
    (void)db_obj;
    double plain_bytes = static_cast<double>(grouped.final_state.db.ApproximateBytes());
    // Approximate versioned footprint: plain rows + one extra version per recorded write.
    // (The audit context owns the real store; ratio via row counts is equivalent here.)
    double versioned_rows = 0;
    double plain_rows = 0;
    for (const std::string& table : grouped.final_state.db.TableNames()) {
      plain_rows += static_cast<double>(grouped.final_state.db.RowCount(table));
    }
    // Count write statements in the db log as extra versions.
    double extra_versions = 0;
    if (db_obj >= 0) {
      for (const OpRecord& op : recorded.reports.op_logs[static_cast<size_t>(db_obj)]) {
        Result<DbContents> dc = ParseDbContents(op.contents);
        if (dc.ok() && dc.value().success) {
          for (const std::string& sql : dc.value().sql) {
            if (sql.rfind("SELECT", 0) != 0 && sql.rfind("select", 0) != 0) {
              extra_versions += 1;
            }
          }
        }
      }
    }
    versioned_rows = plain_rows + extra_versions;
    row.temp_db = plain_rows > 0 ? versioned_rows / plain_rows : 1.0;
    (void)plain_bytes;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Figure 8 (left table): OROCHI vs simple re-execution\n");
  std::printf("%-8s %8s | %7s | %9s | %9s %9s %7s | %8s %9s\n", "", "audit", "server",
              "avg req", "rep base", "rep oro", "ovhd", "DB temp", "DB perm");
  std::printf("%-8s %8s | %7s | %9s | %9s %9s %7s | %8s %9s\n", "app", "speedup", "CPU ovh",
              "(KB)", "(KB/req)", "(KB/req)", "(%)", "(x)", "(x)");
  std::printf("---------------------------------------------------------------------------"
              "-----------\n");
  for (Workload (*make)() : {&BenchWiki, &BenchForum, &BenchConf}) {
    Row r = RunOne(make());
    std::printf("%-8s %7.1fx | %6.1f%% | %9.1f | %9.2f %9.2f %6.1f%% | %7.1fx %8s\n",
                r.name.c_str(), r.speedup, 100.0 * r.server_overhead, r.request_kb,
                r.baseline_report_kb, r.orochi_report_kb, 100.0 * r.report_overhead,
                r.temp_db, "1x");
  }
  std::printf("\npaper (4-core i5): wiki 10.9x/4.7%%/11.4%%/1.0x, forum 5.6x/8.6%%/2.7%%/1.7x,"
              "\n                   confrev 6.2x/5.9%%/10.9%%/1.5x\n");
  return 0;
}
