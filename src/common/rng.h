// Deterministic pseudo-random utilities for workload generation and property tests.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace orochi {

// Thin wrapper over mt19937_64 with convenience samplers. Seeded explicitly so that
// workloads and property tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }

  // Bernoulli trial with probability p of true.
  bool Chance(double p) { return UniformDouble() < p; }

  // Exponential inter-arrival sample with the given rate (events per unit time).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

// Zipf sampler over {0, ..., n-1} with exponent beta: P(k) proportional to 1/(k+1)^beta.
// Used to reproduce the paper's Wikipedia-derived page popularity (beta = 0.53, §5).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double beta) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (size_t k = 0; k < n; k++) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), beta);
      cdf_[k] = sum;
    }
    for (size_t k = 0; k < n; k++) {
      cdf_[k] /= sum;
    }
  }

  size_t Sample(Rng& rng) const {
    double u = rng.UniformDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace orochi

#endif  // SRC_COMMON_RNG_H_
