#include "src/common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__)
#define OROCHI_CRC32C_X86 1
#include <nmmintrin.h>
#endif
#elif defined(__aarch64__) && defined(__GNUC__)
#define OROCHI_CRC32C_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace orochi {
namespace crc32c_internal {

namespace {

// Slice-by-8 tables: T[0] is the classic byte table for the reflected Castagnoli
// polynomial; T[k][b] advances a byte seen k positions earlier, so eight table lookups
// retire eight input bytes per iteration instead of one.
struct SliceTables {
  uint32_t t[8][256];
};

const SliceTables* Tables() {
  static const SliceTables* const tables = [] {
    auto* s = new SliceTables();
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int k = 0; k < 8; k++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      s->t[0][i] = crc;
    }
    for (int k = 1; k < 8; k++) {
      for (uint32_t i = 0; i < 256; i++) {
        const uint32_t prev = s->t[k - 1][i];
        s->t[k][i] = s->t[0][prev & 0xff] ^ (prev >> 8);
      }
    }
    return s;
  }();
  return tables;
}

inline bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

uint32_t ExtendSoftware(uint32_t crc, const char* data, size_t n) {
  const SliceTables* s = Tables();
  const uint32_t(*t)[256] = s->t;
  crc = ~crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  // The 8-byte kernel folds a little-endian word; other hosts take the byte loop (the
  // verifier targets x86-64/aarch64, so this is a portability backstop, not a hot path).
  if (HostIsLittleEndian()) {
    while (n >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      const uint32_t lo = static_cast<uint32_t>(word) ^ crc;
      const uint32_t hi = static_cast<uint32_t>(word >> 32);
      crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
            t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
    p++;
    n--;
  }
  return ~crc;
}

#if defined(OROCHI_CRC32C_X86)

__attribute__((target("sse4.2"))) uint32_t ExtendHardwareImpl(uint32_t crc,
                                                              const char* data,
                                                              size_t n) {
  crc = ~crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p);
    p++;
    n--;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#else
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = _mm_crc32_u32(crc, word);
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    p++;
    n--;
  }
  return ~crc;
}

bool HardwareAvailable() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

#elif defined(OROCHI_CRC32C_ARM)

__attribute__((target("+crc"))) uint32_t ExtendHardwareImpl(uint32_t crc,
                                                            const char* data, size_t n) {
  crc = ~crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p);
    p++;
    n--;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p);
    p++;
    n--;
  }
  return ~crc;
}

bool HardwareAvailable() {
#if defined(__linux__)
  static const bool available = (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
  return available;
#else
  return false;
#endif
}

#else

bool HardwareAvailable() { return false; }

#endif

uint32_t ExtendHardware(uint32_t crc, const char* data, size_t n) {
#if defined(OROCHI_CRC32C_X86) || defined(OROCHI_CRC32C_ARM)
  return ExtendHardwareImpl(crc, data, n);
#else
  // Unreachable by contract (HardwareAvailable() is false); keep the symbol defined.
  return ExtendSoftware(crc, data, n);
#endif
}

}  // namespace crc32c_internal

namespace {

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

ExtendFn ResolveExtend() {
  return crc32c_internal::HardwareAvailable() ? &crc32c_internal::ExtendHardware
                                              : &crc32c_internal::ExtendSoftware;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  static const ExtendFn fn = ResolveExtend();
  return fn(crc, data, n);
}

const char* Crc32cBackendName() {
  if (!crc32c_internal::HardwareAvailable()) {
    return "software";
  }
#if defined(OROCHI_CRC32C_X86)
  return "sse4.2";
#elif defined(OROCHI_CRC32C_ARM)
  return "armv8-crc";
#else
  return "software";
#endif
}

}  // namespace orochi
