#include "src/common/io_env.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/hash.h"
#include "src/obs/metrics.h"

namespace orochi {

namespace {

// File-layer instruments (see README "Observability"). Function-local statics keep the
// registry lookup off the hot path.
obs::Counter* IoFsyncs() {
  static obs::Counter* const c = obs::MetricsRegistry::Default()->GetCounter(
      "orochi_io_fsyncs_total", "fsync calls issued by writers (spills, checkpoints)");
  return c;
}
obs::Counter* IoWriteBytes() {
  static obs::Counter* const c = obs::MetricsRegistry::Default()->GetCounter(
      "orochi_io_write_bytes_total", "bytes written through the Env file layer");
  return c;
}
obs::Counter* IoReadBytes() {
  static obs::Counter* const c = obs::MetricsRegistry::Default()->GetCounter(
      "orochi_io_read_bytes_total", "bytes read through ReadUpToAt/ReadFullAt");
  return c;
}
obs::Counter* IoReadRetries() {
  static obs::Counter* const c = obs::MetricsRegistry::Default()->GetCounter(
      "orochi_io_read_transient_retries_total",
      "transient read errors absorbed by the bounded-backoff retry loop");
  return c;
}
obs::Counter* IoReadsRecovered() {
  static obs::Counter* const c = obs::MetricsRegistry::Default()->GetCounter(
      "orochi_io_reads_recovered_total",
      "reads that completed only after one or more transient-error retries");
  return c;
}

constexpr char kTransientPrefix[] = "io-transient: ";

// Bounded exponential backoff for transient errors: 4 attempts, 50us base doubling.
constexpr int kMaxIoAttempts = 4;
constexpr int kBackoffBaseMicros = 50;

std::string ErrnoDetail(const std::string& what, const std::string& path) {
  return "io: " + what + " " + path + ": " + std::string(::strerror(errno));
}

// --- POSIX files ---

class PosixReadableFile : public ReadableFile {
 public:
  PosixReadableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixReadableFile() override { ::close(fd_); }

  Result<size_t> PReadSome(uint64_t offset, size_t n, char* buf) override {
    while (true) {
      ssize_t got = ::pread(fd_, buf, n, static_cast<off_t>(offset));
      if (got >= 0) {
        return static_cast<size_t>(got);
      }
      if (errno == EINTR) {
        continue;
      }
      return Result<size_t>::Error(ErrnoDetail("read failed for", path_));
    }
  }

 private:
  int fd_;
  std::string path_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {
    buffer_.reserve(kBufferBytes);
  }
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      (void)FlushBuffer();
      ::close(fd_);
    }
  }

  Status Append(const char* data, size_t n) override {
    if (fd_ < 0) {
      return Status::Error("io: write to closed file " + path_);
    }
    if (buffer_.size() + n > kBufferBytes) {
      if (Status st = FlushBuffer(); !st.ok()) {
        return st;
      }
    }
    if (n > kBufferBytes) {
      return WriteRaw(data, n);
    }
    buffer_.append(data, n);
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) {
      return Status::Error("io: sync on closed file " + path_);
    }
    if (Status st = FlushBuffer(); !st.ok()) {
      return st;
    }
    if (::fsync(fd_) != 0) {
      return Status::Error(ErrnoDetail("fsync failed for", path_));
    }
    IoFsyncs()->Inc();
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) {
      return Status::Ok();
    }
    Status st = FlushBuffer();
    int rc = ::close(fd_);
    fd_ = -1;
    if (!st.ok()) {
      return st;
    }
    if (rc != 0) {
      return Status::Error(ErrnoDetail("close failed for", path_));
    }
    return Status::Ok();
  }

 private:
  static constexpr size_t kBufferBytes = 64 * 1024;

  Status FlushBuffer() {
    if (buffer_.empty()) {
      return Status::Ok();
    }
    Status st = WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return st;
  }

  Status WriteRaw(const char* data, size_t n) {
    size_t done = 0;
    while (done < n) {
      ssize_t wrote = ::write(fd_, data + done, n - done);
      if (wrote < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::Error(ErrnoDetail("write failed for", path_));
      }
      done += static_cast<size_t>(wrote);
    }
    IoWriteBytes()->Inc(n);
    return Status::Ok();
  }

  int fd_;
  std::string path_;
  std::string buffer_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<ReadableFile>> OpenRead(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Result<std::unique_ptr<ReadableFile>>::Error(
          ErrnoDetail("cannot open", path));
    }
    return std::unique_ptr<ReadableFile>(new PosixReadableFile(fd, path));
  }

  Result<std::unique_ptr<WritableFile>> OpenWrite(const std::string& path) override {
    return OpenForWrite(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
  }

  Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) override {
    return OpenForWrite(path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC);
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Error(ErrnoDetail("rename failed for", from + " -> " + to));
    }
    return Status::Ok();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Error(ErrnoDetail("remove failed for", path));
    }
    return Status::Ok();
  }

  Result<bool> FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

 private:
  Result<std::unique_ptr<WritableFile>> OpenForWrite(const std::string& path, int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Result<std::unique_ptr<WritableFile>>::Error(
          ErrnoDetail("cannot create", path));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

namespace {

// The base Env's StartReadAt services the read inline, so Wait() just reports what
// already happened. The seam is the point: all chunk-loader reads flow through it, so an
// env with a real submission queue overlaps them without touching the loaders.
class CompletedRead : public PendingRead {
 public:
  explicit CompletedRead(Status st) : st_(std::move(st)) {}
  Status Wait() override { return st_; }

 private:
  const Status st_;
};

}  // namespace

std::unique_ptr<PendingRead> Env::StartReadAt(ReadableFile* file, const std::string& path,
                                              uint64_t offset, size_t n, char* buf) {
  return std::make_unique<CompletedRead>(ReadFullAt(file, path, offset, n, buf));
}

std::string MakeTransientIoError(const std::string& detail) {
  return kTransientPrefix + detail;
}

bool IsTransientIoError(const std::string& error) {
  return error.compare(0, sizeof(kTransientPrefix) - 1, kTransientPrefix) == 0;
}

Result<size_t> ReadUpToAt(ReadableFile* file, const std::string& path, uint64_t offset,
                          size_t n, char* buf) {
  size_t done = 0;
  int attempts = 0;
  while (done < n) {
    Result<size_t> got = file->PReadSome(offset + done, n - done, buf + done);
    if (!got.ok()) {
      if (IsTransientIoError(got.error()) && ++attempts < kMaxIoAttempts) {
        IoReadRetries()->Inc();
        std::this_thread::sleep_for(
            std::chrono::microseconds(kBackoffBaseMicros << attempts));
        continue;
      }
      return Result<size_t>::Error(got.error());
    }
    if (got.value() == 0) {
      break;  // EOF.
    }
    done += got.value();
  }
  (void)path;
  if (attempts > 0) {
    IoReadsRecovered()->Inc();
  }
  IoReadBytes()->Inc(done);
  return done;
}

Status ReadFullAt(ReadableFile* file, const std::string& path, uint64_t offset, size_t n,
                  char* buf) {
  Result<size_t> got = ReadUpToAt(file, path, offset, n, buf);
  if (!got.ok()) {
    return Status::Error(got.error());
  }
  if (got.value() < n) {
    return Status::Error("io: unexpected end of file at offset " +
                         std::to_string(offset + got.value()) + " in " + path);
  }
  return Status::Ok();
}

// --- AtomicFileWriter ---

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

Status AtomicFileWriter::Open(Env* env, const std::string& path) {
  if (file_ != nullptr) {
    return Status::Error("io: AtomicFileWriter already open");
  }
  env_ = ResolveEnv(env);
  path_ = path;
  tmp_path_ = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> f = env_->OpenWrite(tmp_path_);
  if (!f.ok()) {
    return Status::Error(f.error());
  }
  file_ = std::move(f).value();
  committed_ = false;
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) {
    return Status::Error("io: AtomicFileWriter is not open");
  }
  Status st = file_->Sync();
  Status close_st = file_->Close();
  file_.reset();
  if (!st.ok()) {
    (void)env_->Remove(tmp_path_);
    return st;
  }
  if (!close_st.ok()) {
    (void)env_->Remove(tmp_path_);
    return close_st;
  }
  if (Status rn = env_->Rename(tmp_path_, path_); !rn.ok()) {
    (void)env_->Remove(tmp_path_);
    return rn;
  }
  committed_ = true;
  return Status::Ok();
}

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  if (!committed_ && env_ != nullptr && !tmp_path_.empty()) {
    (void)env_->Remove(tmp_path_);
  }
}

// --- FaultInjectingEnv ---

// Named (not anonymous-namespace) classes: FaultInjectingEnv befriends them by name.
class FaultReadableFile : public ReadableFile {
 public:
  FaultReadableFile(FaultInjectingEnv* env, std::unique_ptr<ReadableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Result<size_t> PReadSome(uint64_t offset, size_t n, char* buf) override;

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<ReadableFile> base_;
  std::string path_;
};

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(const char* data, size_t n) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

double FaultInjectingEnv::Draw() {
  uint64_t index = op_index_.fetch_add(1);
  uint64_t bits = Mix64(options_.seed ^ Mix64(index + 0x517cc1b727220a95ull));
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa.
}

int FaultInjectingEnv::WriteOpState() {
  write_ops_.fetch_add(1);
  int64_t before = remaining_writes_.fetch_sub(1);
  if (before <= 0) {
    remaining_writes_.fetch_add(1);  // Pin at "crashed" without underflow drift.
    return 2;
  }
  return before == 1 ? 1 : 0;
}

Result<size_t> FaultReadableFile::PReadSome(uint64_t offset, size_t n, char* buf) {
  env_->read_ops_.fetch_add(1);
  double d = env_->Draw();
  const FaultOptions& o = env_->options_;
  if (d < o.p_read_transient) {
    env_->CountFault();
    return Result<size_t>::Error(MakeTransientIoError(
        "injected transient read error at offset " + std::to_string(offset) + " in " +
        path_));
  }
  d -= o.p_read_transient;
  if (d < o.p_read_error) {
    env_->CountFault();
    return Result<size_t>::Error("io: injected read error (EIO) at offset " +
                                 std::to_string(offset) + " in " + path_);
  }
  d -= o.p_read_error;
  if (d < o.p_short_read && n > 1) {
    env_->CountFault();
    n = std::max<size_t>(1, n / 2);  // A strict prefix, but always progress.
  }
  return base_->PReadSome(offset, n, buf);
}

Status FaultWritableFile::Append(const char* data, size_t n) {
  switch (env_->WriteOpState()) {
    case 1: {  // Crash point: a torn prefix of this append lands, then silence.
      env_->CountFault();
      (void)base_->Append(data, n / 2);
      (void)base_->Sync();
      return Status::Error("io: crashed during append to " + path_);
    }
    case 2:
      return Status::Error("io: crashed (no further writes) for " + path_);
    default:
      break;
  }
  if (env_->Draw() < env_->options_.p_append_error) {
    env_->CountFault();
    return Status::Error("io: injected append failure (ENOSPC) for " + path_);
  }
  return base_->Append(data, n);
}

Status FaultWritableFile::Sync() {
  switch (env_->WriteOpState()) {
    case 1:
      env_->CountFault();
      return Status::Error("io: crashed during sync of " + path_);
    case 2:
      return Status::Error("io: crashed (no further writes) for " + path_);
    default:
      break;
  }
  if (env_->Draw() < env_->options_.p_sync_error) {
    env_->CountFault();
    return Status::Error("io: injected fsync failure for " + path_);
  }
  return base_->Sync();
}

Result<std::unique_ptr<ReadableFile>> FaultInjectingEnv::OpenRead(
    const std::string& path) {
  Result<std::unique_ptr<ReadableFile>> base = base_->OpenRead(path);
  if (!base.ok()) {
    return base;
  }
  return std::unique_ptr<ReadableFile>(
      new FaultReadableFile(this, std::move(base).value(), path));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenWrite(
    const std::string& path) {
  if (crashed()) {
    return Result<std::unique_ptr<WritableFile>>::Error(
        "io: crashed (no further writes) for " + path);
  }
  Result<std::unique_ptr<WritableFile>> base = base_->OpenWrite(path);
  if (!base.ok()) {
    return base;
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(base).value(), path));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenAppend(
    const std::string& path) {
  if (crashed()) {
    return Result<std::unique_ptr<WritableFile>>::Error(
        "io: crashed (no further writes) for " + path);
  }
  Result<std::unique_ptr<WritableFile>> base = base_->OpenAppend(path);
  if (!base.ok()) {
    return base;
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(base).value(), path));
}

Status FaultInjectingEnv::Rename(const std::string& from, const std::string& to) {
  switch (WriteOpState()) {
    case 1:  // Crash at the rename boundary: all-or-nothing, so nothing happens.
      CountFault();
      return Status::Error("io: crashed before rename of " + from);
    case 2:
      return Status::Error("io: crashed (no further writes) for " + from);
    default:
      break;
  }
  if (Draw() < options_.p_rename_error) {
    CountFault();
    return Status::Error("io: injected rename failure for " + from + " -> " + to);
  }
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  if (crashed()) {
    return Status::Error("io: crashed (no further writes) for " + path);
  }
  return base_->Remove(path);
}

Result<bool> FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace orochi
