#include "src/common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace orochi {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KB";
  }
  return FormatDouble(v, 1) + unit;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  using R = Result<uint64_t>;
  if (s.empty()) {
    return R::Error("empty value");
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return R::Error("not a nonnegative decimal integer");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return R::Error("value overflows uint64");
    }
    v = v * 10 + digit;
  }
  return v;
}

Result<uint64_t> ParseSeed(std::string_view s) {
  using R = Result<uint64_t>;
  if (s.size() <= 2 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return ParseUint64(s);
  }
  uint64_t v = 0;
  for (char c : s.substr(2)) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return R::Error("not a hexadecimal integer");
    }
    if (v > (UINT64_MAX - digit) / 16) {
      return R::Error("value overflows uint64");
    }
    v = v * 16 + digit;
  }
  return v;
}

Result<double> ParseScale(std::string_view s) {
  using R = Result<double>;
  if (s.empty()) {
    return R::Error("empty value");
  }
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno != 0 || !std::isfinite(v)) {
    return R::Error("not a finite number");
  }
  if (v <= 0) {
    return R::Error("scale must be greater than zero");
  }
  return v;
}

}  // namespace orochi
