// Hashing utilities: FNV-1a for strings, splitmix-style mixing for control-flow digests.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace orochi {

// 64-bit FNV-1a over a byte string. Deterministic across platforms, used for control-flow
// digests and query-text fingerprints.
inline uint64_t FnvHash(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer; a strong 64-bit mixing function.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) { return Mix64(seed ^ (v + 0x9e3779b9)); }

}  // namespace orochi

#endif  // SRC_COMMON_HASH_H_
