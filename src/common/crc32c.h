// CRC32C (Castagnoli) — the per-record checksum of wire format v2+, the frame checksum
// of the net transport, and the record checksum of checkpoint sidecars; one definition
// shared by all three so a value computed by any writer verifies under any reader.
//
// The implementation (crc32c.cc) dispatches at first use: SSE4.2 _mm_crc32_u64 on x86-64,
// the ARMv8 crc32c instructions on aarch64, and slice-by-8 tables everywhere else. Every
// backend computes the same polynomial (0x82f63b78, reflected) bit-identically — spill
// files, frames, and checkpoints verify identically on every host the verifier runs on,
// hardware acceleration only changes the cycle count. tests/crc32c_test.cc pins all
// backends to the RFC 3720 golden vectors and to each other.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace orochi {

// Extends a running CRC32C over `n` more bytes. Start (and finish) with `crc = 0`;
// the pre/post inversion is handled internally so values chain:
//   Crc32c(a+b) == Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

inline uint32_t Crc32c(const char* data, size_t n) { return Crc32cExtend(0, data, n); }

inline uint32_t Crc32c(const std::string& s) { return Crc32c(s.data(), s.size()); }

// Which implementation runtime dispatch selected for this process: "sse4.2",
// "armv8-crc", or "software". Stamped into bench meta blocks so recorded numbers say
// what hardware path produced them.
const char* Crc32cBackendName();

namespace crc32c_internal {

// The portable slice-by-8 reference, always available; the golden-vector test holds the
// dispatched implementation to this one on random inputs.
uint32_t ExtendSoftware(uint32_t crc, const char* data, size_t n);

// True when the CPU offers an accelerated path (and it was compiled in).
bool HardwareAvailable();
// The accelerated path; only callable when HardwareAvailable().
uint32_t ExtendHardware(uint32_t crc, const char* data, size_t n);

}  // namespace crc32c_internal

}  // namespace orochi

#endif  // SRC_COMMON_CRC32C_H_
