// CRC32C (Castagnoli) — the per-record checksum of wire format v2. Software
// table-driven implementation; no hardware dependency so spill files verify
// identically on every host the verifier runs on.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace orochi {

namespace crc32c_internal {

inline const uint32_t* Table() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int k = 0; k < 8; k++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32c_internal

// Extends a running CRC32C over `n` more bytes. Start (and finish) with `crc = 0`;
// the pre/post inversion is handled internally so values chain:
//   Crc32c(a+b) == Crc32cExtend(Crc32c(a), b).
inline uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  const uint32_t* table = crc32c_internal::Table();
  crc = ~crc;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32c(const char* data, size_t n) { return Crc32cExtend(0, data, n); }

inline uint32_t Crc32c(const std::string& s) { return Crc32c(s.data(), s.size()); }

}  // namespace orochi

#endif  // SRC_COMMON_CRC32C_H_
