// Pluggable I/O environment for every spill-file read and write in the audit
// pipeline. Production code goes through Env::Default() (POSIX files); tests swap in
// FaultInjectingEnv to replay a deterministic schedule of EIO / short-read / ENOSPC /
// crash-point faults, so the fault-tolerance claims are provable instead of aspirational.
//
// Error taxonomy (the verdict must never conflate these):
//   - transient errors ("io-transient: ..."): worth retrying; ReadFullAt absorbs them
//     with bounded exponential backoff.
//   - permanent I/O errors ("io: ..." and "wire: ..."): corruption, truncation, ENOSPC,
//     crash — surfaced to the caller as an I/O failure, never as a tamper rejection.
#ifndef SRC_COMMON_IO_ENV_H_
#define SRC_COMMON_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"

namespace orochi {

class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  // One best-effort positional read of up to `n` bytes into `buf`. Returns the count
  // actually read; 0 means end-of-file. May return fewer than `n` before EOF — callers
  // loop (or use ReadFullAt, which also retries transient errors).
  virtual Result<size_t> PReadSome(uint64_t offset, size_t n, char* buf) = 0;
};

class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const char* data, size_t n) = 0;
  Status Append(const std::string& data) { return Append(data.data(), data.size()); }
  // Durably flushes everything appended so far (fsync).
  virtual Status Sync() = 0;
  // Flushes buffers and closes. Idempotent; the destructor closes without reporting.
  virtual Status Close() = 0;
};

// Handle for an in-flight StartReadAt. Wait() blocks until the read completes and
// returns its status — exactly ReadFullAt's contract: all `n` bytes or an error naming
// file and offset, transient faults already retried with bounded backoff.
class PendingRead {
 public:
  virtual ~PendingRead() = default;
  virtual Status Wait() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<ReadableFile>> OpenRead(const std::string& path) = 0;

  // Begins reading exactly `n` bytes of `file` at `offset` into `buf` (`path` labels
  // errors); `buf` must stay valid until Wait() returns. The base implementation
  // services the read inline — in the audit pipeline the caller is either a pass-2
  // worker or the prefetcher's dedicated I/O thread (src/stream/prefetch.h), so "async"
  // means "off the worker threads", and a wrapping FaultInjectingEnv's schedule fires at
  // the same deterministic operation index either way because the read still goes
  // through the file handle the env handed out. An env with a real submission queue can
  // override this to overlap reads.
  virtual std::unique_ptr<PendingRead> StartReadAt(ReadableFile* file,
                                                   const std::string& path,
                                                   uint64_t offset, size_t n, char* buf);
  // Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> OpenWrite(const std::string& path) = 0;
  // Opens `path` for appending, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) = 0;
  // Atomically replaces `to` with `from` (rename(2) semantics: all-or-nothing).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;

  // The production POSIX environment; a process-lifetime singleton.
  static Env* Default();
};

// nullptr resolves to Env::Default() — every Env-threaded API takes an optional Env*.
inline Env* ResolveEnv(Env* env) { return env != nullptr ? env : Env::Default(); }

// --- error taxonomy helpers ---

// Tags an error message as transient (retry-worthy). IsTransientIoError detects the tag.
std::string MakeTransientIoError(const std::string& detail);
bool IsTransientIoError(const std::string& error);

// --- exact reads with transient-retry ---

// Reads up to `n` bytes at `offset`, looping over short reads and retrying transient
// errors with bounded exponential backoff. Returns the byte count read; < n only when
// EOF intervened.
Result<size_t> ReadUpToAt(ReadableFile* file, const std::string& path, uint64_t offset,
                          size_t n, char* buf);

// Reads exactly `n` bytes at `offset` or errors (EOF before `n` bytes names the file and
// offset). Transient errors are retried like ReadUpToAt.
Status ReadFullAt(ReadableFile* file, const std::string& path, uint64_t offset, size_t n,
                  char* buf);

// --- crash-safe writes: temp + fsync + rename ---

// Writes `path + ".tmp"`, then Commit() = Sync + Close + Rename into place. A reader of
// `path` therefore only ever observes the previous complete file or the new complete
// file, never a torn prefix. Abandoning (destruction without Commit) closes and removes
// the temp file.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  Status Open(Env* env, const std::string& path);
  // Valid between a successful Open and Commit.
  WritableFile* file() { return file_.get(); }
  Status Commit();

 private:
  void Abandon();

  Env* env_ = nullptr;
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<WritableFile> file_;
  bool committed_ = false;
};

// --- deterministic fault injection ---

struct FaultOptions {
  uint64_t seed = 1;
  // Per-operation fault probabilities (at most one fault fires per operation).
  double p_read_transient = 0;  // Retryable EIO on a read.
  double p_read_error = 0;      // Permanent EIO on a read.
  double p_short_read = 0;      // Read returns a strict prefix (caller must loop).
  double p_append_error = 0;    // ENOSPC-style append failure.
  double p_sync_error = 0;      // fsync failure.
  double p_rename_error = 0;    // rename failure (no replacement happens).
  // Crash point: this many write-side operations (appends, syncs, renames) complete,
  // then the next append is torn (a prefix of its bytes lands) and every write-side
  // operation after that fails — modeling a process killed mid-spill.
  static constexpr uint64_t kNeverCrash = UINT64_MAX;
  uint64_t crash_after_writes = kNeverCrash;
};

// Wraps a base Env, injecting faults from a schedule fully determined by
// (seed, operation index). The operation index is a global atomic, so a single-threaded
// run replays exactly; multi-threaded runs stay schedule-deterministic per interleaving.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env* base, FaultOptions options)
      : base_(ResolveEnv(base)), options_(options) {
    remaining_writes_.store(options.crash_after_writes == FaultOptions::kNeverCrash
                                ? INT64_MAX
                                : static_cast<int64_t>(options.crash_after_writes) + 1);
  }

  Result<std::unique_ptr<ReadableFile>> OpenRead(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWrite(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;

  // Write-side operations observed (appends + syncs + renames), for kill-point sweeps:
  // run once fault-free to learn the op count N, then re-run with
  // crash_after_writes = 0..N-1 to cover every crash point.
  uint64_t write_ops() const { return write_ops_.load(); }
  uint64_t read_ops() const { return read_ops_.load(); }
  uint64_t faults_injected() const { return faults_injected_.load(); }
  bool crashed() const { return remaining_writes_.load() <= 0; }

 private:
  friend class FaultReadableFile;
  friend class FaultWritableFile;

  // Draws one uniform [0,1) double for the next operation in the schedule.
  double Draw();
  // Consumes one write-op slot. Returns: 0 = proceed, 1 = this op is the crash point
  // (tear it), 2 = already crashed (fail).
  int WriteOpState();
  void CountFault() { faults_injected_.fetch_add(1); }

  Env* base_;
  FaultOptions options_;
  std::atomic<uint64_t> op_index_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<int64_t> remaining_writes_{INT64_MAX};
};

}  // namespace orochi

#endif  // SRC_COMMON_IO_ENV_H_
