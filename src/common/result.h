// Lightweight expected-like result type used throughout the library instead of exceptions.
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace orochi {

// Result<T> carries either a value of type T or an error message. The library avoids
// exceptions (per the style guide); fallible operations return Result and callers branch on
// ok().
template <typename T>
class Result {
 public:
  // Implicit construction from a value keeps call sites terse: `return parsed;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

// Result specialization for operations that produce no value.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.error_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace orochi

#endif  // SRC_COMMON_RESULT_H_
