// A minimal work-stealing pool for a fixed batch of tasks (no dynamic submission).
//
// The audit scheduler hands the pool an index list pre-sorted largest-first; worker w's
// initial share is the indices at positions w, w+W, 2w+W, ... (round-robin over the sorted
// list, an LPT-style assignment), and a worker whose own deque drains steals from the back
// of another worker's deque. Tasks never spawn tasks, so a worker that finds every deque
// empty can exit: all remaining work is already running elsewhere.
#ifndef SRC_COMMON_WORK_STEAL_POOL_H_
#define SRC_COMMON_WORK_STEAL_POOL_H_

#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orochi {

class WorkStealPool {
 public:
  explicit WorkStealPool(size_t num_threads) : num_threads_(num_threads < 1 ? 1 : num_threads) {}

  // Runs fn(task) for every element of `tasks` across the pool's workers and blocks until
  // all have returned. The calling thread acts as worker 0, so only num_threads - 1
  // threads are spawned. fn must be safe to call concurrently from distinct threads.
  void Run(const std::vector<size_t>& tasks, const std::function<void(size_t)>& fn) {
    const size_t w = num_threads_;
    std::vector<Shard> shards(w);
    for (size_t i = 0; i < tasks.size(); i++) {
      shards[i % w].q.push_back(tasks[i]);
    }
    auto worker = [&shards, &fn, w](size_t self) {
      while (true) {
        size_t task = 0;
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(shards[self].mu);
          if (!shards[self].q.empty()) {
            task = shards[self].q.front();
            shards[self].q.pop_front();
            found = true;
          }
        }
        if (!found) {
          // Steal from the back of the first non-empty victim.
          for (size_t k = 1; k < w && !found; k++) {
            Shard& victim = shards[(self + k) % w];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.q.empty()) {
              task = victim.q.back();
              victim.q.pop_back();
              found = true;
            }
          }
        }
        if (!found) {
          return;  // Every deque is empty and no task can create more work.
        }
        fn(task);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(w - 1);
    for (size_t i = 1; i < w; i++) {
      threads.emplace_back(worker, i);
    }
    worker(0);
    for (std::thread& t : threads) {
      t.join();
    }
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<size_t> q;
  };

  size_t num_threads_;
};

}  // namespace orochi

#endif  // SRC_COMMON_WORK_STEAL_POOL_H_
