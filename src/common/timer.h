// Wall-clock and process-CPU timers used by the benchmark harnesses and audit statistics.
#ifndef SRC_COMMON_TIMER_H_
#define SRC_COMMON_TIMER_H_

#include <sys/resource.h>
#include <sys/time.h>

#include <chrono>
#include <cstdint>

namespace orochi {

// Monotonic wall-clock timer reporting elapsed seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Process CPU time (user + system) in seconds, summed across all threads. The paper's
// evaluation reports CPU costs (Figure 8, Figure 9); we use the same resource-accounting
// notion via getrusage.
inline double ProcessCpuSeconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto to_sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_sec(ru.ru_utime) + to_sec(ru.ru_stime);
}

// Scoped accumulator: adds the wall time spent in a scope to a counter. Audit phases are
// single-threaded, so wall time equals CPU time for them up to scheduler noise; the macro
// benchmarks use ProcessCpuSeconds for cross-checks.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.Seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace orochi

#endif  // SRC_COMMON_TIMER_H_
