// Small string helpers shared by the SQL engine, the scripting language, and the harnesses.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace orochi {

std::vector<std::string> SplitString(std::string_view s, char sep);

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy (SQL keywords are case-insensitive).
std::string AsciiLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Formats a double with the given number of decimal places (benchmark tables).
std::string FormatDouble(double v, int decimals);

// Human-readable byte count, e.g. "7.1KB".
std::string FormatBytes(double bytes);

// Strict nonnegative decimal parse for configuration values (env variables): the whole
// string must be digits — no sign, no whitespace, no trailing junk, no overflow. Unlike
// atoll, a malformed value is an error, never a silent fallback.
Result<uint64_t> ParseUint64(std::string_view s);

// Strict seed parse (OROCHI_FAULT_SEED): decimal per ParseUint64, or 0x/0X-prefixed
// hexadecimal — whole string, no trailing junk, no overflow. Seeds are customarily
// written in hex (CI uses 0xF417), which is why this is not just ParseUint64.
Result<uint64_t> ParseSeed(std::string_view s);

// Strict scale parse (OROCHI_BENCH_SCALE): the whole string must be a finite number
// greater than zero. Unlike atof, a malformed or nonpositive value is an error, never a
// silent fall-back to 1.0.
Result<double> ParseScale(std::string_view s);

}  // namespace orochi

#endif  // SRC_COMMON_STRINGS_H_
