#include <cassert>

#include "src/workload/workloads.h"

namespace orochi {

namespace {

// /counter/hit: bumps a per-key counter in the KV store, remembers the caller in a session
// register, and appends an audit row to the database. Small enough to read in one sitting,
// but touches every object kind.
const char* kHitScript = R"WS(
$key = input("key");
if (!isset($key)) { $key = "default"; }
$who = input("who");
if (!isset($who)) { $who = "anon"; }

$count = intval(kv_get("count:" . $key)) + 1;
kv_set("count:" . $key, $count);

$sess = reg_read("visitor:" . $who);
if (!is_array($sess)) { $sess = array("hits" => 0); }
$sess["hits"] = $sess["hits"] + 1;
reg_write("visitor:" . $who, $sess);

db_query("INSERT INTO hits (key, who, n) VALUES ('" . sql_escape($key) . "', '" .
         sql_escape($who) . "', " . $count . ")");

echo "<html><body>counter '" . htmlspecialchars($key) . "' is now " . $count .
     " (your hit #" . $sess["hits"] . ")</body></html>";
)WS";

const char* kReadScript = R"WS(
$key = input("key");
if (!isset($key)) { $key = "default"; }
$count = intval(kv_get("count:" . $key));
$rows = db_query("SELECT count(*) AS n FROM hits WHERE key = '" . sql_escape($key) . "'");
echo "<html><body>counter '" . htmlspecialchars($key) . "' = " . $count . " (" .
     $rows[0]["n"] . " recorded hits)</body></html>";
)WS";

}  // namespace

Application BuildCounterApp() {
  Application app;
  Status st = app.AddScript("/counter/hit", kHitScript);
  assert(st.ok() && "counter hit script must compile");
  st = app.AddScript("/counter/read", kReadScript);
  assert(st.ok() && "counter read script must compile");
  (void)st;
  return app;
}

}  // namespace orochi
