#include <cassert>

#include "src/common/rng.h"
#include "src/workload/workloads.h"

namespace orochi {

namespace {

const char* kTopicScript = R"WS(
function load_lang() {
  $keys = array("forum", "topic", "post", "reply", "quote", "edit", "delete", "report",
                "search", "login", "logout", "register", "profile", "members", "faq",
                "rules", "mark_read", "subscribe", "unsubscribe", "attachments", "poll",
                "vote", "moderator", "administrator", "guest", "online", "offline",
                "joined", "posts_count", "location", "website", "signature", "avatar",
                "private_message", "email", "warn", "ban", "unban", "sticky", "announce");
  $lang = array();
  foreach ($keys as $k) {
    $lang[$k] = strtoupper(substr($k, 0, 1)) . str_replace("_", " ", substr($k, 1));
  }
  return $lang;
}

function load_bbcode() {
  $tags = array("b", "i", "u", "quote", "code", "list", "img", "url", "size", "color",
                "spoiler", "youtube", "attachment", "email", "flash", "sub", "sup");
  $bb = array();
  foreach ($tags as $tag) {
    $bb["[" . $tag . "]"] = "<" . $tag . ">";
    $bb["[/" . $tag . "]"] = "</" . $tag . ">";
  }
  return $bb;
}

function load_permissions($user) {
  $actions = array("read", "post", "reply", "quote", "edit_own", "delete_own", "attach",
                   "poll_create", "poll_vote", "search", "pm_send", "pm_read", "report",
                   "subscribe", "bookmark", "sig_edit", "avatar_upload", "rate");
  $perms = array();
  foreach ($actions as $i => $a) {
    $perms[$a] = ($user != "guest") || ($i < 4);
  }
  return $perms;
}

function board_header($title) {
  $lang = load_lang();
  $bb = load_bbcode();
  $crumbs = array("Board index", "CentOS", "Support", "Software");
  $menu = array("FAQ", "Search", "Register", "Login", "Unanswered topics", "Active topics",
                "New posts", "Your posts", "Bookmarks", "Subscriptions", "Moderator tools");
  $html = "<html><head><title>" . htmlspecialchars($title) . "</title>";
  $html = $html . "<link rel='stylesheet' href='/styles/prosilver.css'/>";
  $html = $html . "<meta name='viewport' content='width=device-width'/></head><body>";
  $html = $html . "<div id='menu'><ul>";
  foreach ($menu as $i => $m) {
    $slug = strtolower(str_replace(" ", "_", $m));
    $html = $html . "<li class='m" . $i . "'><a href='/forum/" . $slug . "' rel='nofollow'>" .
            htmlspecialchars($m) . "</a></li>";
  }
  $html = $html . "</ul><li class='end'>" . $lang["online"] . " &middot; " .
          $lang["mark_read"] . "</li></div><div class='crumbs'>";
  foreach ($crumbs as $i => $c) {
    if ($i > 0) { $html = $html . " &raquo; "; }
    $html = $html . "<a href='/forum/index'>" . htmlspecialchars($c) . "</a>";
  }
  $html = $html . "</div>";
  return $html;
}

function board_footer() {
  $links = array("FAQ", "Members", "The team", "Delete cookies", "All times are UTC");
  $html = "<div class='footer'><ul>";
  foreach ($links as $l) {
    $html = $html . "<li>" . htmlspecialchars($l) . "</li>";
  }
  $html = $html . "</ul><div class='powered'>Powered by a bulletin board</div></body></html>";
  return $html;
}

function render_post($author, $body, $created, $index) {
  $quoted = str_replace("\n", "<br/>", htmlspecialchars($body));
  $html = "<div class='post' id='p" . $index . "'>";
  $html = $html . "<div class='author'><b>" . htmlspecialchars($author) . "</b>";
  $html = $html . "<span class='badge'>" . substr(hash64($author), 0, 6) . "</span></div>";
  $html = $html . "<div class='when'>#" . $index . " at " . $created . "</div>";
  $html = $html . "<div class='body'>" . $quoted . "</div></div>";
  return $html;
}

$topic = intval(input("topic"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$trows = db_query("SELECT id, title, replies, views FROM topics WHERE id = " . $topic);
if (count($trows) == 0) {
  echo "<html><body>no such topic</body></html>";
  return;
}
$perms = load_permissions($user);
if (!$perms["read"]) {
  echo "<html><body>not permitted</body></html>";
  return;
}
$t = $trows[0];
$posts = db_query("SELECT id, author, body, created FROM posts WHERE topic_id = " . $topic .
                  " ORDER BY id ASC, created ASC");
echo board_header($t["title"]);
echo "<h1>" . htmlspecialchars($t["title"]) . "</h1>";
echo "<div class='meta'>" . count($posts) . " posts</div>";
$i = 0;
foreach ($posts as $p) {
  $i++;
  echo render_post($p["author"], $p["body"], $p["created"], $i);
}
if ($user != "guest") {
  $sess = reg_read("fsess:" . $user);
  if (!is_array($sess)) { $sess = array("seen" => array()); }
  $sess["seen"][$topic] = count($posts);
  reg_write("fsess:" . $user, $sess);
  echo "<div class='user'>logged in as " . htmlspecialchars($user) . "</div>";
}
echo board_footer();
if (rand(0, 49) == 0) {
  db_query("UPDATE topics SET views = views + 1 WHERE id = " . $topic);
}
)WS";

const char* kReplyScript = R"WS(
$topic = intval(input("topic"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$body = input("body");
if (!isset($body)) { $body = ""; }
$m = db_query("SELECT max(id) AS m FROM posts");
$next = intval($m[0]["m"]) + 1;
$now = time();
$res = db_txn(array(
  "INSERT INTO posts (id, topic_id, author, body, created) VALUES (" . $next . ", " . $topic .
      ", '" . sql_escape($user) . "', '" . sql_escape($body) . "', " . $now . ")",
  "UPDATE topics SET replies = replies + 1 WHERE id = " . $topic
));
if ($res[0]) {
  echo "<html><body>reply " . $next . " posted to topic " . $topic . "</body></html>";
} else {
  echo "<html><body>could not post reply</body></html>";
}
)WS";

const char* kIndexScript = R"WS(
$rows = db_query("SELECT id, title, replies FROM topics ORDER BY id ASC LIMIT 20");
$total = db_query("SELECT count(*) AS n, sum(replies) AS r FROM topics");
echo "<html><body><h1>Board</h1><table>";
foreach ($rows as $t) {
  echo "<tr><td><a href='/forum/topic?topic=" . $t["id"] . "'>" .
       htmlspecialchars($t["title"]) . "</a></td><td>" . $t["replies"] . "</td></tr>";
}
echo "</table><div>" . $total[0]["n"] . " topics, " . $total[0]["r"] . " replies</div>";
echo "</body></html>";
)WS";

const char* kLoginScript = R"WS(
$user = input("user");
if (!isset($user)) {
  echo "<html><body>missing user</body></html>";
  return;
}
$sess = reg_read("fsess:" . $user);
if (!is_array($sess)) { $sess = array("seen" => array()); }
$sess["logins"] = intval($sess["logins"]) + 1;
$sess["last_login"] = time();
reg_write("fsess:" . $user, $sess);
echo "<html><body>welcome back, " . htmlspecialchars($user) . " (login #" .
     $sess["logins"] . ")</body></html>";
)WS";

const char* kPostBodies[] = {
    "I ran into the same issue after the last update, rebuilding the initramfs fixed it.",
    "Could you post the output of the journal? Hard to tell without logs.",
    "This is a known regression, see the tracker. A patched package is in updates-testing.",
    "Worked for me after clearing the cache, thanks for the pointer!",
    "You need to enable the repository first, otherwise the dependency is missing.",
    "Same here on a fresh install. Downgrading the kernel avoids the panic.",
};

}  // namespace

Application BuildForumApp() {
  Application app;
  Status st = app.AddScript("/forum/topic", kTopicScript);
  assert(st.ok() && "forum topic script must compile");
  st = app.AddScript("/forum/reply", kReplyScript);
  assert(st.ok() && "forum reply script must compile");
  st = app.AddScript("/forum/index", kIndexScript);
  assert(st.ok() && "forum index script must compile");
  st = app.AddScript("/forum/login", kLoginScript);
  assert(st.ok() && "forum login script must compile");
  (void)st;
  return app;
}

Workload MakeForumWorkload(const ForumConfig& config) {
  Workload w;
  w.name = "forum";
  w.app = BuildForumApp();

  Rng rng(config.seed);
  Result<StmtResult> r1 = w.initial.db.ExecuteText(
      "CREATE TABLE topics (id INT, title TEXT, replies INT, views INT)");
  Result<StmtResult> r2 = w.initial.db.ExecuteText(
      "CREATE TABLE posts (id INT, topic_id INT, author TEXT, body TEXT, created INT)");
  assert(r1.ok() && r2.ok());
  (void)r1;
  (void)r2;
  int64_t post_id = 0;
  for (size_t t = 0; t < config.num_topics; t++) {
    Result<StmtResult> rt = w.initial.db.ExecuteText(
        "INSERT INTO topics (id, title, replies, views) VALUES (" + std::to_string(t) +
        ", 'Help thread " + std::to_string(t) + "', 0, 0)");
    assert(rt.ok());
    (void)rt;
    // Topics have distinct lengths (as real threads do); topic pages then land in
    // per-topic control-flow groups rather than merging across topics.
    size_t seed_posts = config.seed_posts_per_topic + 3 * t;
    for (size_t p = 0; p < seed_posts; p++) {
      post_id++;
      Result<StmtResult> rp = w.initial.db.ExecuteText(
          "INSERT INTO posts (id, topic_id, author, body, created) VALUES (" +
          std::to_string(post_id) + ", " + std::to_string(t) + ", 'u" +
          std::to_string(rng.UniformInt(0, static_cast<int64_t>(config.num_users) - 1)) +
          "', '" + kPostBodies[rng.UniformInt(0, 5)] + "', 1500000000)");
      assert(rp.ok());
      (void)rp;
    }
  }

  // Topic popularity is Zipf-ish: the paper scraped the most popular CentOS topic.
  ZipfSampler zipf(config.num_topics, 1.0);
  auto random_user = [&] {
    return "u" + std::to_string(rng.UniformInt(0, static_cast<int64_t>(config.num_users) - 1));
  };
  for (size_t i = 0; i < config.num_requests; i++) {
    double dice = rng.UniformDouble();
    WorkItem item;
    if (dice < config.reply_fraction) {
      item.script = "/forum/reply";
      item.params["topic"] = std::to_string(zipf.Sample(rng));
      item.params["user"] = random_user();
      item.params["body"] = kPostBodies[rng.UniformInt(0, 5)];
    } else if (dice < config.reply_fraction + config.index_fraction) {
      item.script = "/forum/index";
    } else if (dice < config.reply_fraction + config.index_fraction + config.login_fraction) {
      item.script = "/forum/login";
      item.params["user"] = random_user();
    } else {
      item.script = "/forum/topic";
      item.params["topic"] = std::to_string(zipf.Sample(rng));
      if (rng.Chance(config.registered_view_fraction)) {
        item.params["user"] = random_user();
      }
    }
    w.items.push_back(std::move(item));
  }
  return w;
}

}  // namespace orochi
