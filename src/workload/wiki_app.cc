#include <cassert>

#include "src/common/rng.h"
#include "src/workload/workloads.h"

namespace orochi {

namespace {

// /wiki/view: session upkeep for registered users, APC-cached rendering, sparse view
// counting (the paper's phpBB/MediaWiki modifications reduce counter-update frequency to
// create audit-time acceleration opportunities, §5.4).
const char* kViewScript = R"WS(
function render_skin_header() {
  $nav = array("Main", "Recent changes", "Random", "Help", "Community", "Tools",
               "Special pages", "Upload", "Preferences", "Watchlist", "Contributions",
               "Talk", "History", "Move", "Protect", "Delete", "Cite", "Permalink");
  $sub = array("overview", "discussion", "archive");
  $html = "<html><head><title>wiki</title><meta charset='utf-8'/>";
  $html = $html . "<link rel='stylesheet' href='/skins/vector.css'/></head><body>";
  $html = $html . "<div id='sidebar'><ul>";
  foreach ($nav as $i => $item) {
    $slug = strtolower(str_replace(" ", "-", $item));
    $html = $html . "<li class='nav-" . $i . "'><a href='/wiki/" . $slug . "' title='" .
            htmlspecialchars($item) . "'>" . htmlspecialchars($item) . "</a><ul>";
    foreach ($sub as $s) {
      $html = $html . "<li class='sub'><a href='/wiki/" . $slug . "/" . $s . "'>" . $s .
              "</a></li>";
    }
    $html = $html . "</ul></li>";
  }
  $html = $html . "</ul></div><div id='content'>";
  return $html;
}

function render_skin_footer() {
  $links = array("About", "Disclaimers", "Privacy policy", "Developers", "Statistics",
                 "Cookie statement", "Mobile view");
  $langs = array("en", "de", "fr", "es", "it", "pt", "nl", "ru", "ja", "zh", "pl", "sv",
                 "vi", "ar", "ko", "fa", "tr", "cs", "uk", "hu", "fi", "he", "no", "da");
  $html = "</div><div id='footer'><ul>";
  foreach ($links as $l) {
    $html = $html . "<li>" . htmlspecialchars($l) . "</li>";
  }
  $html = $html . "</ul><div id='interlang'>";
  foreach ($langs as $i => $code) {
    $html = $html . "<a class='lang-" . $i . "' hreflang='" . $code . "' href='//" . $code .
            ".example.org/'>" . strtoupper($code) . "</a> ";
  }
  $html = $html . "</div><div class='copy'>content is available under CC BY-SA</div>";
  $html = $html . "</div></body></html>";
  return $html;
}

function render_markup($text) {
  // A wikitext-flavoured mini renderer: bold, italics, heading and link markers.
  $out = htmlspecialchars($text);
  $out = str_replace("'''", "<b>", $out);
  $out = str_replace("''", "<i>", $out);
  $words = explode(" ", $out);
  $linked = array();
  foreach ($words as $word) {
    if (strpos($word, "p") == 0 && strlen($word) > 2 && is_numeric(substr($word, 1, 1))) {
      $linked[] = "<a href='/wiki/view?page=" . substr($word, 1) . "'>" . $word . "</a>";
    } else {
      $linked[] = $word;
    }
  }
  return implode(" ", $linked);
}

function render_page($title, $content) {
  $paras = explode("|", $content);
  $toc = "<div class='toc'><ol>";
  $body = "";
  $n = 0;
  foreach ($paras as $p) {
    if (strlen(trim($p)) > 0) {
      $n++;
      $toc = $toc . "<li><a href='#sec" . $n . "'>Section " . $n . "</a></li>";
      $body = $body . "<h2 id='sec" . $n . "'>Section " . $n . "</h2><p>" .
              render_markup($p) . "</p>";
    }
  }
  $toc = $toc . "</ol></div>";
  return "<h1>" . htmlspecialchars($title) . "</h1>" . $toc . $body;
}

$page = intval(input("page"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
if ($user != "guest") {
  $sess = reg_read("wsess:" . $user);
  if (!is_array($sess)) { $sess = array("views" => 0); }
  $sess["views"] = $sess["views"] + 1;
  reg_write("wsess:" . $user, $sess);
}
$html = kv_get("wikipage:" . $page);
if (!isset($html)) {
  $rows = db_query("SELECT title, content, views FROM pages WHERE id = " . $page);
  if (count($rows) == 0) {
    echo "<html><body>no such page</body></html>";
    return;
  }
  $row = $rows[0];
  $html = render_page($row["title"], $row["content"]);
  kv_set("wikipage:" . $page, $html);
}
echo render_skin_header();
echo $html;
echo "<div class='footer-note'>for " . htmlspecialchars($user) . "</div>";
echo render_skin_footer();
if (rand(0, 19) == 0) {
  db_query("UPDATE pages SET views = views + 1 WHERE id = " . $page);
}
)WS";

const char* kEditScript = R"WS(
$page = intval(input("page"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$content = input("content");
if (!isset($content)) { $content = ""; }
$rows = db_query("SELECT id FROM pages WHERE id = " . $page);
$now = time();
if (count($rows) == 0) {
  db_query("INSERT INTO pages (id, title, content, views, updated) VALUES (" . $page .
           ", 'Page " . $page . "', '" . sql_escape($content) . "', 0, " . $now . ")");
} else {
  db_query("UPDATE pages SET content = '" . sql_escape($content) . "', updated = " . $now .
           " WHERE id = " . $page);
}
kv_set("wikipage:" . $page, null);
if ($user != "guest") {
  $sess = reg_read("wsess:" . $user);
  if (!is_array($sess)) { $sess = array("views" => 0); }
  $sess["edits"] = intval($sess["edits"]) + 1;
  reg_write("wsess:" . $user, $sess);
}
echo "<html><body>saved page " . $page . " at " . $now . "</body></html>";
)WS";

const char* kListScript = R"WS(
$rows = db_query("SELECT id, title, views FROM pages ORDER BY views DESC, id ASC LIMIT 25");
echo "<html><body><ul>";
foreach ($rows as $r) {
  echo "<li><a href='/wiki/view?page=" . $r["id"] . "'>" . htmlspecialchars($r["title"]) .
       "</a> (" . $r["views"] . " views)</li>";
}
echo "</ul></body></html>";
)WS";

std::string MakePageContent(Rng& rng, size_t page_id) {
  // A handful of sentence-shaped paragraphs, '|'-separated (the view script splits on |).
  static const char* kWords[] = {"system", "audit", "server",  "record", "replay",
                                 "verify", "cloud", "execute", "trace",  "report"};
  std::string content;
  size_t paragraphs = 3 + static_cast<size_t>(rng.UniformInt(0, 4));
  for (size_t p = 0; p < paragraphs; p++) {
    if (p > 0) {
      content += "|";
    }
    size_t words = 12 + static_cast<size_t>(rng.UniformInt(0, 24));
    for (size_t w = 0; w < words; w++) {
      if (w > 0) {
        content += " ";
      }
      content += kWords[rng.UniformInt(0, 9)];
    }
    content += " p" + std::to_string(page_id) + "." + std::to_string(p);
  }
  return content;
}

}  // namespace

Application BuildWikiApp() {
  Application app;
  Status st = app.AddScript("/wiki/view", kViewScript);
  assert(st.ok() && "wiki view script must compile");
  st = app.AddScript("/wiki/edit", kEditScript);
  assert(st.ok() && "wiki edit script must compile");
  st = app.AddScript("/wiki/list", kListScript);
  assert(st.ok() && "wiki list script must compile");
  (void)st;
  return app;
}

Workload MakeWikiWorkload(const WikiConfig& config) {
  Workload w;
  w.name = "wiki";
  w.app = BuildWikiApp();

  Rng rng(config.seed);
  // Pre-populate the pages table (the state the verifier holds from the prior audit).
  Result<StmtResult> created = w.initial.db.ExecuteText(
      "CREATE TABLE pages (id INT, title TEXT, content TEXT, views INT, updated INT)");
  assert(created.ok());
  (void)created;
  for (size_t p = 0; p < config.num_pages; p++) {
    std::string content = MakePageContent(rng, p);
    Result<StmtResult> ins = w.initial.db.ExecuteText(
        "INSERT INTO pages (id, title, content, views, updated) VALUES (" + std::to_string(p) +
        ", 'Page " + std::to_string(p) + "', '" + content + "', 0, 1500000000)");
    assert(ins.ok());
    (void)ins;
  }

  ZipfSampler zipf(config.num_pages, config.zipf_beta);
  for (size_t i = 0; i < config.num_requests; i++) {
    double dice = rng.UniformDouble();
    WorkItem item;
    if (dice < config.edit_fraction) {
      item.script = "/wiki/edit";
      item.params["page"] = std::to_string(zipf.Sample(rng));
      item.params["user"] = "u" + std::to_string(rng.UniformInt(
                                      0, static_cast<int64_t>(config.num_users) - 1));
      item.params["content"] = MakePageContent(rng, i);
    } else if (dice < config.edit_fraction + config.list_fraction) {
      item.script = "/wiki/list";
    } else {
      item.script = "/wiki/view";
      item.params["page"] = std::to_string(zipf.Sample(rng));
      if (rng.Chance(config.registered_fraction)) {
        item.params["user"] = "u" + std::to_string(rng.UniformInt(
                                        0, static_cast<int64_t>(config.num_users) - 1));
      }
    }
    w.items.push_back(std::move(item));
  }
  return w;
}

}  // namespace orochi
