#include <algorithm>
#include <cassert>

#include "src/common/rng.h"
#include "src/workload/workloads.h"

namespace orochi {

namespace {

const char* kPaperScript = R"WS(
function conf_settings() {
  $opts = array("sub_open", "sub_update", "sub_sub", "sub_reg", "rev_open", "rev_notify",
                "rev_blind", "rev_rating", "au_seerev", "seedec", "resp_open", "resp_words",
                "final_open", "final_soft", "final_done", "pc_seeall", "pcrev_any",
                "pcrev_editdelegate", "extrev_chairreq", "extrev_view", "tag_vote",
                "tag_rank", "tag_color", "track_viewer", "topics_required", "abstract_max",
                "banal_m", "clickthrough", "mailer_from", "shepherd");
  $settings = array();
  foreach ($opts as $i => $o) {
    $settings[$o] = ($i * 37 + 11) % 5 > 1;
  }
  return $settings;
}

function site_chrome($title) {
  $settings = conf_settings();
  $tabs = array("Home", "Search", "Your submissions", "Your reviews", "Profile", "Help",
                "Sign out", "PC chair", "Assignments", "Offline reviewing");
  $topics = array("Networking", "Storage", "Security", "OS", "Distributed systems",
                  "Verification", "Databases", "Machine learning", "Measurement",
                  "Mobile", "Energy", "Hardware");
  $fields = array("title", "authors", "abstract", "pdf", "topics", "options", "conflicts",
                  "collaborators", "contacts");
  $html = "<html><head><title>" . htmlspecialchars($title) . "</title>";
  $html = $html . "<link rel='stylesheet' href='/style.css'/><script src='/script.js'>" .
          "</script></head><body><div id='tabs'>";
  foreach ($tabs as $i => $tab) {
    $html = $html . "<span class='tab tab" . $i . "'><a href='/conf/" .
            strtolower(str_replace(" ", "", $tab)) . "'>" . htmlspecialchars($tab) .
            "</a></span>";
  }
  $html = $html . "</div><div id='sidebar'><ul>";
  foreach ($topics as $i => $t) {
    $html = $html . "<li class='topic-" . $i . "'>" . htmlspecialchars($t) . " <span " .
            "class='count'>(" . (7 + $i * 3) . ")</span></li>";
  }
  $html = $html . "</ul><div class='fields'>";
  foreach ($fields as $f) {
    $html = $html . "<span data-field='" . $f . "'>" . strtoupper(substr($f, 0, 1)) .
            substr($f, 1) . "</span> ";
  }
  $html = $html . "</div>";
  if ($settings["sub_open"]) {
    $html = $html . "<div class='deadline'>submissions are open</div>";
  }
  $html = $html . "</div><div id='main'>";
  return $html;
}

$paper = intval(input("paper"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$rows = db_query("SELECT id, title, abstract, author, updated FROM papers WHERE id = " . $paper);
if (count($rows) == 0) {
  echo "<html><body>no such paper</body></html>";
  return;
}
$p = $rows[0];
echo site_chrome("Paper " . $p["id"]);
echo "<h1>#" . $p["id"] . ": " . htmlspecialchars($p["title"]) . "</h1>";
echo "<div class='abstract'>" . htmlspecialchars($p["abstract"]) . "</div>";
if ($user == $p["author"]) {
  echo "<div class='notice'>you are the contact author; reviews are hidden until decisions</div>";
} else {
  $reviews = db_query("SELECT reviewer, body, version FROM reviews WHERE paper_id = " . $paper .
                      " ORDER BY reviewer ASC, version DESC");
  $shown = array();
  foreach ($reviews as $r) {
    if (!isset($shown[$r["reviewer"]])) {
      $shown[$r["reviewer"]] = true;
      echo "<div class='review'><b>" . htmlspecialchars($r["reviewer"]) . "</b> (v" .
           $r["version"] . ")<br/>" . htmlspecialchars(substr($r["body"], 0, 400)) .
           "</div>";
    }
  }
  echo "<div class='count'>" . count($shown) . " reviews</div>";
}
echo "</div><div id='foot'>submissions close at 23:59 AoE</div></body></html>";
)WS";

const char* kSubmitScript = R"WS(
$paper = intval(input("paper"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$title = input("title");
if (!isset($title)) { $title = "untitled"; }
$abstract = input("abstract");
if (!isset($abstract)) { $abstract = ""; }
$now = time();
$rows = db_query("SELECT id FROM papers WHERE id = " . $paper);
if (count($rows) == 0) {
  db_query("INSERT INTO papers (id, title, abstract, author, updated) VALUES (" . $paper .
           ", '" . sql_escape($title) . "', '" . sql_escape($abstract) . "', '" .
           sql_escape($user) . "', " . $now . ")");
  echo "<html><body>paper " . $paper . " submitted</body></html>";
} else {
  db_query("UPDATE papers SET title = '" . sql_escape($title) . "', abstract = '" .
           sql_escape($abstract) . "', updated = " . $now . " WHERE id = " . $paper);
  echo "<html><body>paper " . $paper . " updated</body></html>";
}
$sess = reg_read("csess:" . $user);
if (!is_array($sess)) { $sess = array(); }
$sess["submissions"] = intval($sess["submissions"]) + 1;
reg_write("csess:" . $user, $sess);
)WS";

const char* kReviewScript = R"WS(
$paper = intval(input("paper"));
$user = input("user");
if (!isset($user)) { $user = "guest"; }
$body = input("body");
if (!isset($body)) { $body = ""; }
$now = time();
$prev = db_query("SELECT max(version) AS v FROM reviews WHERE paper_id = " . $paper .
                 " AND reviewer = '" . sql_escape($user) . "'");
$version = intval($prev[0]["v"]) + 1;
$res = db_txn(array(
  "INSERT INTO reviews (paper_id, reviewer, body, version, created) VALUES (" . $paper .
      ", '" . sql_escape($user) . "', '" . sql_escape($body) . "', " . $version . ", " .
      $now . ")",
  "UPDATE counts SET n = n + 1 WHERE paper_id = " . $paper
));
if ($res[0]) {
  echo "<html><body>review v" . $version . " stored for paper " . $paper . "</body></html>";
} else {
  echo "<html><body>review failed</body></html>";
}
$sess = reg_read("csess:" . $user);
if (!is_array($sess)) { $sess = array(); }
$sess["reviews"] = intval($sess["reviews"]) + 1;
reg_write("csess:" . $user, $sess);
)WS";

const char* kListScript = R"WS(
$rows = db_query("SELECT id, title, author, updated FROM papers ORDER BY id ASC LIMIT 40");
$counts = db_query("SELECT count(*) AS n FROM reviews");
echo "<html><body><h1>Submissions</h1><ol>";
foreach ($rows as $p) {
  echo "<li>" . htmlspecialchars($p["title"]) . " (#" . $p["id"] . ")</li>";
}
echo "</ol><div>" . $counts[0]["n"] . " reviews in system</div></body></html>";
)WS";

std::string MakeText(Rng& rng, size_t target_len, const std::string& salt) {
  static const char* kWords[] = {"the",      "protocol", "evaluation", "baseline",
                                 "approach", "improves", "latency",    "throughput",
                                 "analysis", "results"};
  std::string out;
  while (out.size() < target_len) {
    if (!out.empty()) {
      out += " ";
    }
    out += kWords[rng.UniformInt(0, 9)];
  }
  out += " [" + salt + "]";
  return out;
}

}  // namespace

Application BuildConfApp() {
  Application app;
  Status st = app.AddScript("/conf/paper", kPaperScript);
  assert(st.ok() && "conf paper script must compile");
  st = app.AddScript("/conf/submit", kSubmitScript);
  assert(st.ok() && "conf submit script must compile");
  st = app.AddScript("/conf/review", kReviewScript);
  assert(st.ok() && "conf review script must compile");
  st = app.AddScript("/conf/list", kListScript);
  assert(st.ok() && "conf list script must compile");
  (void)st;
  return app;
}

Workload MakeConfWorkload(const ConfConfig& config) {
  Workload w;
  w.name = "confrev";
  w.app = BuildConfApp();

  Rng rng(config.seed);
  Result<StmtResult> r1 = w.initial.db.ExecuteText(
      "CREATE TABLE papers (id INT, title TEXT, abstract TEXT, author TEXT, updated INT)");
  Result<StmtResult> r2 = w.initial.db.ExecuteText(
      "CREATE TABLE reviews (paper_id INT, reviewer TEXT, body TEXT, version INT, created INT)");
  Result<StmtResult> r3 = w.initial.db.ExecuteText("CREATE TABLE counts (paper_id INT, n INT)");
  assert(r1.ok() && r2.ok() && r3.ok());
  (void)r1;
  (void)r2;
  (void)r3;
  for (size_t p = 0; p < config.num_papers; p++) {
    Result<StmtResult> rc = w.initial.db.ExecuteText(
        "INSERT INTO counts (paper_id, n) VALUES (" + std::to_string(p) + ", 0)");
    assert(rc.ok());
    (void)rc;
  }

  // One registered author submits one valid paper, with U(1, max) updates (§5); the first
  // submission inserts, subsequent ones update.
  std::vector<WorkItem> items;
  for (size_t p = 0; p < config.num_papers; p++) {
    size_t updates = 1 + static_cast<size_t>(
                             rng.UniformInt(0, static_cast<int64_t>(config.max_updates_per_paper) - 1));
    for (size_t u = 0; u < updates; u++) {
      WorkItem item;
      item.script = "/conf/submit";
      item.params["paper"] = std::to_string(p);
      item.params["user"] = "author" + std::to_string(p);
      item.params["title"] = "A Study of Topic " + std::to_string(p) + " rev " +
                             std::to_string(u);
      item.params["abstract"] = MakeText(rng, 280, "p" + std::to_string(p));
      items.push_back(std::move(item));
    }
  }
  // Each paper gets ~3 reviews; each reviewer submits two versions of each review (§5).
  size_t reviews_made = 0;
  for (size_t p = 0; p < config.num_papers && reviews_made < config.reviews_target; p++) {
    for (int k = 0; k < 3 && reviews_made < config.reviews_target; k++) {
      std::string reviewer =
          "rev" + std::to_string(rng.UniformInt(0, static_cast<int64_t>(config.num_reviewers) - 1));
      for (int version = 0; version < 2; version++) {
        WorkItem item;
        item.script = "/conf/review";
        item.params["paper"] = std::to_string(p);
        item.params["user"] = reviewer;
        item.params["body"] =
            MakeText(rng, config.review_length, "r" + std::to_string(reviews_made));
        items.push_back(std::move(item));
      }
      reviews_made++;
    }
  }
  // Each reviewer views paper pages (and occasionally the list). Interest concentrates on
  // a subset of papers (discussion-heavy submissions), like the Zipf page mix of §5.
  ZipfSampler paper_zipf(config.num_papers, 1.0);
  for (size_t r = 0; r < config.num_reviewers; r++) {
    for (size_t v = 0; v < config.views_per_reviewer; v++) {
      WorkItem item;
      if (rng.Chance(0.06)) {
        item.script = "/conf/list";
      } else {
        item.script = "/conf/paper";
        item.params["paper"] = std::to_string(paper_zipf.Sample(rng));
        item.params["user"] = "rev" + std::to_string(r);
      }
      items.push_back(std::move(item));
    }
  }
  // Arrival order follows the real lifecycle: submissions cluster early, reviews and page
  // views cluster late, with jitter. (A uniform shuffle would interleave updates between
  // every view, which no conference timeline does.)
  std::vector<std::pair<double, size_t>> order;
  order.reserve(items.size());
  for (size_t i = 0; i < items.size(); i++) {
    double phase = items[i].script == "/conf/submit" ? 0.0 : 1.0;
    order.emplace_back(phase + rng.UniformDouble(), i);
  }
  std::sort(order.begin(), order.end());
  w.items.reserve(items.size());
  for (const auto& [key, idx] : order) {
    (void)key;
    w.items.push_back(std::move(items[idx]));
  }
  return w;
}

}  // namespace orochi
