// The three evaluation applications and their synthetic workloads (paper §5).
//
// The paper's workloads came from proprietary traces (2007 Wikipedia sample, the CentOS
// phpBB forum, SIGCOMM 2009 statistics). Those are unavailable; the generators here
// reproduce the published workload *parameters* — Zipf(0.53) page popularity, the
// registered:guest = 1:40 mix, papers=269 / reviewers=58 / reviews=820 with 3625-character
// reviews and U(1,20) paper updates — which are the properties that drive control-flow
// grouping and therefore the audit-speedup shape.
#ifndef SRC_WORKLOAD_WORKLOADS_H_
#define SRC_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/interpreter.h"
#include "src/objects/stores.h"
#include "src/server/application.h"

namespace orochi {

struct WorkItem {
  std::string script;
  RequestParams params;
};

struct Workload {
  std::string name;
  Application app;
  InitialState initial;
  std::vector<WorkItem> items;
};

// --- Wiki (MediaWiki analog): read-dominated page views over Zipf-popular pages, an
// APC-style rendered-page cache, occasional edits. ---
struct WikiConfig {
  size_t num_pages = 200;
  size_t num_users = 100;
  size_t num_requests = 20000;
  double zipf_beta = 0.53;
  double edit_fraction = 0.03;
  double list_fraction = 0.05;
  double registered_fraction = 0.30;
  uint64_t seed = 1;
};
Application BuildWikiApp();
Workload MakeWikiWorkload(const WikiConfig& config);

// --- Forum (phpBB analog): one-board forum, topic views dominated by guests (1:40
// registered:guest), replies, logins. ---
struct ForumConfig {
  size_t num_topics = 8;
  size_t seed_posts_per_topic = 8;
  size_t num_users = 83;
  size_t num_requests = 30000;
  double reply_fraction = 0.02;
  double index_fraction = 0.06;
  double login_fraction = 0.02;
  double registered_view_fraction = 1.0 / 41.0;  // 1:40 registered:guest.
  uint64_t seed = 2;
};
Application BuildForumApp();
Workload MakeForumWorkload(const ForumConfig& config);

// --- Confrev (HotCRP analog): paper submissions with repeated updates, reviews in two
// versions, reviewer page views. ---
struct ConfConfig {
  size_t num_papers = 269;
  size_t num_reviewers = 58;
  size_t reviews_target = 820;
  size_t review_length = 3625;
  size_t max_updates_per_paper = 20;
  size_t views_per_reviewer = 100;
  uint64_t seed = 3;
};
Application BuildConfApp();
Workload MakeConfWorkload(const ConfConfig& config);

// A deliberately tiny application used by the quickstart example and unit tests: a visit
// counter per key, backed by all three object kinds.
Application BuildCounterApp();

}  // namespace orochi

#endif  // SRC_WORKLOAD_WORKLOADS_H_
