#include "src/core/audit_plan.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "src/common/timer.h"
#include "src/common/work_steal_pool.h"
#include "src/core/auditor.h"
#include "src/core/reexec.h"

namespace orochi {

AuditPlan PlanAuditTasks(AuditContext* ctx, const Reports& reports, const Application* app,
                         const AuditOptions& options) {
  AuditPlan plan;
  size_t order = 0;
  std::unordered_set<RequestId> claimed;
  for (const auto& [tag, rids] : reports.groups) {
    (void)tag;
    if (rids.empty()) {
      continue;
    }
    ctx->stats().num_groups++;
    if (rids.size() > 1) {
      ctx->stats().groups_multi++;
    }
    const size_t group_order = order++;
    // All requests in a group must exist and target the same script.
    const TraceEvent* first = ctx->RequestEvent(rids[0]);
    if (first == nullptr) {
      plan.fail_order = group_order;
      plan.fail_reason = "group contains rid " + std::to_string(rids[0]) + " not in the trace";
      break;
    }
    bool group_ok = true;
    for (RequestId rid : rids) {
      const TraceEvent* req = ctx->RequestEvent(rid);
      if (req == nullptr || req->script != first->script) {
        plan.fail_order = group_order;
        plan.fail_reason = "group mixes scripts or names an untraced rid";
        group_ok = false;
        break;
      }
    }
    if (!group_ok) {
      break;
    }
    const Program* prog = app->GetScript(first->script);
    if (prog == nullptr) {
      for (RequestId rid : rids) {
        if (ctx->OpCount(rid) != 0) {
          plan.fail_order = group_order;
          plan.fail_reason = "rid " + std::to_string(rid) +
                             " targets an unknown script but claims operations";
          group_ok = false;
          break;
        }
        ctx->SetOutput(rid, kNoSuchScriptBody);
      }
      if (!group_ok) {
        break;
      }
      continue;
    }
    for (size_t start = 0; start < rids.size(); start += options.max_group_size) {
      size_t end = std::min(rids.size(), start + options.max_group_size);
      AuditTask task;
      task.order = order++;
      task.prog = prog;
      task.rids.assign(rids.begin() + static_cast<ptrdiff_t>(start),
                       rids.begin() + static_cast<ptrdiff_t>(end));
      for (RequestId rid : task.rids) {
        task.cost += 1 + ctx->OpCount(rid);
        task.serial = task.serial || !claimed.insert(rid).second;
      }
      plan.tasks.push_back(std::move(task));
    }
  }
  return plan;
}

namespace {

// Shared by ExecuteAuditPlan and PoolDispatchOrder: indexes of the plan's non-serial
// tasks in the order the pool will claim them. Costliest chunk first minimizes makespan
// (cost = requests + total reported op-length; see AuditTask::cost); scheduling order
// never affects the verdict.
std::vector<size_t> PoolDispatchIndexes(const std::vector<AuditTask>& tasks,
                                        size_t num_threads) {
  std::vector<size_t> pool;
  for (size_t i = 0; i < tasks.size(); i++) {
    if (!tasks[i].serial) {
      pool.push_back(i);
    }
  }
  if (num_threads > 1 && pool.size() > 1) {
    std::stable_sort(pool.begin(), pool.end(),
                     [&](size_t a, size_t b) { return tasks[a].cost > tasks[b].cost; });
  }
  return pool;
}

}  // namespace

std::vector<const AuditTask*> PoolDispatchOrder(const AuditPlan& plan,
                                                size_t num_threads) {
  std::vector<const AuditTask*> order;
  for (size_t i : PoolDispatchIndexes(plan.tasks, num_threads)) {
    order.push_back(&plan.tasks[i]);
  }
  return order;
}

AuditExecOutcome ExecuteAuditPlan(AuditContext* ctx, const Application* app,
                                  const AuditOptions& options, const AuditPlan& plan,
                                  AuditTaskGate* gate, AuditTaskJournal* journal) {
  Result<size_t> threads = ResolveAuditThreads(options);
  if (!threads.ok()) {
    // A malformed OROCHI_AUDIT_THREADS is a configuration error, not an audit verdict;
    // gate_failed routes it out of the verdict path (callers pre-validate, so this is a
    // backstop for direct engine users).
    AuditExecOutcome out;
    out.fail_order = 0;
    out.fail_reason = threads.error();
    out.gate_failed = true;
    return out;
  }
  const std::vector<AuditTask>& tasks = plan.tasks;
  // Each task accumulates into its own stats block; blocks merge in walk order afterwards,
  // so merged stats (group_stats in particular) are independent of scheduling.
  std::vector<AuditStats> task_stats(tasks.size());
  std::vector<std::string> task_error(tasks.size());
  std::vector<uint8_t> task_gate_failed(tasks.size(), 0);
  std::atomic<size_t> first_fail{plan.fail_order};
  {
    ScopedAccumulator t(&ctx->stats().reexec_seconds);
    auto record_failure = [&](size_t task_order) {
      size_t cur = first_fail.load(std::memory_order_relaxed);
      while (task_order < cur &&
             !first_fail.compare_exchange_weak(cur, task_order, std::memory_order_relaxed)) {
      }
    };
    auto run_task = [&](size_t i) {
      const AuditTask& task = tasks[i];
      if (task.order > first_fail.load(std::memory_order_relaxed)) {
        return;  // A strictly earlier failure already decided the verdict.
      }
      if (journal != nullptr) {
        if (const AuditTaskRecord* rec = journal->Lookup(task.order); rec != nullptr) {
          // Replay the journaled contribution: no gate (nothing is paged in), no
          // re-execution — the recorded stats and outputs stand in for both.
          obs::TraceSpan span(options.tracer, obs::Phase::kCheckpointReplay);
          task_stats[i] = rec->stats;
          task_stats[i].checkpoint_chunks_reused += 1;
          for (const auto& [rid, body] : rec->outputs) {
            ctx->SetOutput(rid, body);
          }
          return;
        }
      }
      if (gate != nullptr) {
        // Budget waits + whatever preads the prefetcher did not hide: the span that
        // shrinks when read-ahead works.
        obs::TraceSpan span(options.tracer, obs::Phase::kPass2IoWait);
        if (Status st = gate->Acquire(task); !st.ok()) {
          task_error[i] = st.error();
          task_gate_failed[i] = 1;
          record_failure(task.order);
          return;
        }
      }
      AuditWorkerState ws(&task_stats[i]);
      Status run;
      {
        obs::TraceSpan span(options.tracer, obs::Phase::kPass2Execute);
        run = RunGroupChunk(app, options.interp, ctx, task.prog, task.rids, &ws);
      }
      if (!run.ok()) {
        task_error[i] = run.error();
        record_failure(task.order);
      }
      if (gate != nullptr) {
        gate->Release(task);
      }
      if (run.ok() && journal != nullptr) {
        AuditTaskRecord rec;
        rec.stats = task_stats[i];
        rec.outputs.reserve(task.rids.size());
        for (RequestId rid : task.rids) {
          if (const std::string* body = ctx->ProducedOutput(rid)) {
            rec.outputs.emplace_back(rid, *body);
          }
        }
        journal->Record(task, rec);
      }
    };

    const size_t num_threads = threads.value();
    std::vector<size_t> pool_tasks = PoolDispatchIndexes(tasks, num_threads);
    std::vector<size_t> serial_tasks;
    for (size_t i = 0; i < tasks.size(); i++) {
      if (tasks[i].serial) {
        serial_tasks.push_back(i);
      }
    }
    if (num_threads <= 1 || pool_tasks.size() <= 1) {
      for (size_t i : pool_tasks) {
        run_task(i);
      }
    } else {
      WorkStealPool(std::min(num_threads, pool_tasks.size())).Run(pool_tasks, run_task);
    }
    for (size_t i : serial_tasks) {
      run_task(i);
    }
  }
  for (const AuditStats& s : task_stats) {
    ctx->stats().MergeFrom(s);
  }

  AuditExecOutcome out;
  out.fail_order = first_fail.load(std::memory_order_relaxed);
  if (out.fail_order == kNoAuditFailure) {
    return out;
  }
  out.fail_reason = plan.fail_reason;
  for (size_t i = 0; i < tasks.size(); i++) {
    if (tasks[i].order == out.fail_order) {
      out.fail_reason = task_error[i];
      out.gate_failed = task_gate_failed[i] != 0;
      break;
    }
  }
  return out;
}

}  // namespace orochi
