// The event-precedence graph G of paper §3.5 (Figure 5): one node per event — request
// arrival (rid, 0), alleged operations (rid, 1..M), response departure (rid, ∞) — with
// edges for time precedence, program order, and alleged log order. Acyclicity of G is what
// makes the implied schedule exist.
#ifndef SRC_CORE_GRAPH_H_
#define SRC_CORE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/objects/object_model.h"

namespace orochi {

// Node id space: each request owns a contiguous block [base, base + M + 1]:
//   base + k     = (rid, k) for k in 0..M,
//   base + M + 1 = (rid, ∞).
class EventGraph {
 public:
  // Registers a request with the given op count; returns its base node id.
  uint32_t AddRequest(RequestId rid, uint32_t op_count);

  bool HasRequest(RequestId rid) const { return blocks_.count(rid) > 0; }

  // Node accessors; the request must have been added.
  uint32_t ArrivalNode(RequestId rid) const;                  // (rid, 0)
  uint32_t OpNode(RequestId rid, uint32_t opnum) const;       // (rid, opnum), 1 <= opnum <= M
  uint32_t DepartureNode(RequestId rid) const;                // (rid, ∞)

  void AddEdge(uint32_t from, uint32_t to);

  size_t NumNodes() const { return adj_.size(); }
  size_t NumEdges() const { return num_edges_; }
  const std::vector<uint32_t>& OutEdges(uint32_t node) const { return adj_[node]; }

  // Standard iterative three-color DFS. True when G has a directed cycle.
  bool HasCycle() const;

  // A topological order of all nodes (valid only when acyclic); used by the OOO auditor
  // and the soundness tests to materialize the implied schedule.
  std::vector<uint32_t> TopologicalOrder() const;

  struct NodeLabel {
    RequestId rid;
    uint32_t opnum;    // kInfinityOp for (rid, ∞).
  };
  static constexpr uint32_t kInfinityOp = UINT32_MAX;

  // Reverse lookup for diagnostics and the OOO schedule.
  NodeLabel Label(uint32_t node) const;

 private:
  struct Block {
    uint32_t base;
    uint32_t op_count;
  };

  std::unordered_map<RequestId, Block> blocks_;
  std::vector<std::pair<RequestId, uint32_t>> node_owner_;  // node -> (rid, offset).
  std::vector<std::vector<uint32_t>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace orochi

#endif  // SRC_CORE_GRAPH_H_
