// CreateTimePrecedenceGraph (paper Figure 6): the streaming frontier algorithm that
// materializes the trace's time-precedence partial order <Tr with the minimum number of
// edges, in O(X + Z) time (Lemma 11/12). Prior work [Anderson et al.] costs
// O(X log X + Z); the frontier trick removes the log factor — this algorithm is one of the
// paper's standalone contributions (§3.5).
#ifndef SRC_CORE_TIME_PRECEDENCE_H_
#define SRC_CORE_TIME_PRECEDENCE_H_

#include <unordered_map>
#include <vector>

#include "src/objects/trace.h"

namespace orochi {

// GTr: for each request, the list of parent requests (every edge parent -> rid states that
// parent's response departed before rid arrived).
struct TimePrecedenceGraph {
  // Parents keyed by rid; requests absent from the map have no parents.
  std::unordered_map<RequestId, std::vector<RequestId>> parents;
  size_t num_edges = 0;

  // r1 <Tr r2 iff there is a directed path from r1 to r2 (used by tests against a
  // brute-force oracle; the audit itself only consumes `parents`).
  bool HasPath(RequestId from, RequestId to) const;
};

// The trace must be balanced (CheckTraceBalanced) before calling.
TimePrecedenceGraph CreateTimePrecedenceGraph(const Trace& trace);

}  // namespace orochi

#endif  // SRC_CORE_TIME_PRECEDENCE_H_
