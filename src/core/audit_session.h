// Epoch-based audit sessions: the verifier side of the paper's periodic-audit deployment
// (§2, §4.5). A trusted collector records traffic continuously and spills one trace +
// reports file pair per epoch; the verifier audits epochs in order, and each ACCEPTed
// epoch's end-of-period object state automatically seeds the next epoch's InitialState —
// the steady state the paper assumes between audit periods.
//
//   AuditSession session = AuditSession::Open(&app, options, initial);
//   AuditResult r1 = session.FeedEpoch(trace1, reports1);           // in-memory epoch
//   Result<AuditResult> r2 = session.FeedEpochFiles(t2_path, r2_path);  // spilled epoch
//
// A REJECTed epoch does not advance the session state, so a corrected copy of the same
// epoch (e.g. re-fetched from the trusted collector after detecting tampering in transit)
// can be re-fed, after which later epochs verify normally.
//
// FeedEpoch owns the grouped SSCO audit engine (planning, the work-stealing parallel
// re-execution, output comparison); Auditor::Audit is a thin one-epoch wrapper over a
// fresh session, kept for compatibility.
#ifndef SRC_CORE_AUDIT_SESSION_H_
#define SRC_CORE_AUDIT_SESSION_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/auditor.h"

namespace orochi {

struct StreamAuditHooks;  // Test/bench instrumentation knobs (src/stream/stream_audit.h).
struct MergedShards;      // One logical epoch merged from shard files (src/stream/shard_merge.h).

// One collector shard's spill-file pair for an epoch. In the sharded deployment N
// collectors each record their front end's slice of the epoch's traffic; the verifier
// merge-joins the pairs back into one logical epoch (FeedShardedEpoch).
struct ShardEpochFiles {
  std::string trace_path;
  std::string reports_path;
};

class AuditSession {
 public:
  // `initial` is the state both sides agree on at the start of the first epoch.
  AuditSession(const Application* app, AuditOptions options, InitialState initial);

  static AuditSession Open(const Application* app, AuditOptions options,
                           InitialState initial) {
    return AuditSession(app, std::move(options), std::move(initial));
  }

  // Opens a session whose starting state is loaded from a wire-format snapshot file
  // (written by SaveState or WriteInitialStateFile).
  static Result<AuditSession> OpenFromStateFile(const Application* app, AuditOptions options,
                                                const std::string& state_path);

  // Audits one epoch against the session's current state. On ACCEPT the epoch's
  // final_state becomes the next epoch's initial state; on REJECT the session state is
  // unchanged. Accept/reject, reason, and final_state are deterministic across thread
  // counts (same guarantee as the single-shot audit).
  AuditResult FeedEpoch(const Trace& trace, const Reports& reports);

  // Reads the epoch's trace and reports from wire-format spill files, then FeedEpoch.
  // A file-level error (missing, corrupt, truncated) is an error Result — distinct from
  // a well-formed epoch whose audit REJECTs.
  Result<AuditResult> FeedEpochFiles(const std::string& trace_path,
                                     const std::string& reports_path);

  // --- Out-of-core streaming audits (implemented in src/stream/stream_session.cc) ---
  //
  // Same contract as FeedEpochFiles, but the trace payloads never materialize in full:
  // pass 1 streams the trace file record-by-record to build a group plan plus a byte
  // -offset index, pass 2 re-executes chunks whose request payloads are paged in from the
  // file on demand under AuditOptions::max_resident_bytes (env OROCHI_AUDIT_BUDGET), and
  // the final output comparison pages response bodies in one at a time. The
  // verdict, rejection reason, and final_state are bit-identical to FeedEpochFiles at
  // every thread count — both paths drive the engine in src/core/audit_plan.h.
  // `hooks` injects a counting loader/budget for tests and benches; nullptr = defaults.
  Result<AuditResult> FeedEpochFilesStreamed(const std::string& trace_path,
                                             const std::string& reports_path,
                                             const StreamAuditHooks* hooks = nullptr);

  // Streams spill-file pairs from many collector shards as ONE logical epoch: shards are
  // ordered by their trace files' shard ids (argument order breaks ties), traces
  // concatenate in that order, reports merge via AppendReports, and rid-disjointness
  // across shards is checked up front. A merge failure (duplicate shard id, shared rid,
  // corrupt file) is an error Result and consumes no epoch.
  Result<AuditResult> FeedShardedEpoch(const std::vector<ShardEpochFiles>& shards,
                                       const StreamAuditHooks* hooks = nullptr);
  // Reads the shard list from a wire-format manifest file (relative spill paths resolve
  // against the manifest's directory), verifying each trace file's stamped shard id
  // against the manifest's claim.
  Result<AuditResult> FeedShardedEpoch(const std::string& manifest_path,
                                       const StreamAuditHooks* hooks = nullptr);

  // Persists the current session state as a wire-format snapshot, so a future process can
  // resume the audit chain with OpenFromStateFile.
  Status SaveState(const std::string& path) const;

  // The state the next epoch will be audited against (the last accepted final_state, or
  // the opening state when nothing has been accepted yet).
  const InitialState& state() const { return state_; }

  uint64_t epochs_fed() const { return epochs_fed_; }
  uint64_t epochs_accepted() const { return epochs_accepted_; }

 private:
  // Marks `out` accepted with the context's final state and advances the session chain.
  void CommitAccepted(AuditContext* ctx, AuditResult* out);

  // Shared driver behind the streamed feeds (defined in src/stream/stream_session.cc):
  // audits the merged skeleton epoch with payloads paged in under the budget.
  Result<AuditResult> FeedMergedEpochStreamed(MergedShards&& merged,
                                              const StreamAuditHooks* hooks);

  const Application* app_;
  AuditOptions options_;
  InitialState state_;
  uint64_t epochs_fed_ = 0;
  uint64_t epochs_accepted_ = 0;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDIT_SESSION_H_
