#include "src/core/time_precedence.h"

#include <unordered_set>

namespace orochi {

TimePrecedenceGraph CreateTimePrecedenceGraph(const Trace& trace) {
  TimePrecedenceGraph g;
  // "Latest" requests; parent(s) of any new request (paper Figure 6).
  std::unordered_set<RequestId> frontier;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      auto& parents = g.parents[e.rid];
      parents.assign(frontier.begin(), frontier.end());
      g.num_edges += parents.size();
    } else {
      // rid enters the frontier, evicting its parents.
      auto it = g.parents.find(e.rid);
      if (it != g.parents.end()) {
        for (RequestId parent : it->second) {
          frontier.erase(parent);
        }
      }
      frontier.insert(e.rid);
    }
  }
  return g;
}

bool TimePrecedenceGraph::HasPath(RequestId from, RequestId to) const {
  // DFS over reverse edges: start at `to`, walk to parents.
  std::unordered_set<RequestId> visited;
  std::vector<RequestId> stack{to};
  while (!stack.empty()) {
    RequestId cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) {
      continue;
    }
    auto it = parents.find(cur);
    if (it == parents.end()) {
      continue;
    }
    for (RequestId parent : it->second) {
      if (parent == from) {
        return true;
      }
      stack.push_back(parent);
    }
  }
  return false;
}

}  // namespace orochi
