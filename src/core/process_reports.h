// ProcessOpReports (paper Figure 5): consistent-ordering verification. Builds the event
// graph G from the trace's time precedence, program order, and the alleged operation logs;
// validates log well-formedness (CheckLogs) while constructing the OpMap; and rejects when
// G has a cycle — i.e., when no schedule can explain the observations (§3.4, §3.5).
#ifndef SRC_CORE_PROCESS_REPORTS_H_
#define SRC_CORE_PROCESS_REPORTS_H_

#include <string>

#include "src/common/result.h"
#include "src/core/graph.h"
#include "src/core/op_map.h"
#include "src/core/time_precedence.h"
#include "src/objects/reports.h"
#include "src/objects/trace.h"

namespace orochi {

struct ProcessedReports {
  EventGraph graph;
  OpMap op_map;
  // M with defaults applied (absent entries = 0), keyed by every rid in the trace.
  std::unordered_map<RequestId, uint32_t> op_counts;
};

// Returns an error (=> audit REJECT) when the logs are malformed or G is cyclic. The trace
// must already be balanced.
Result<ProcessedReports> ProcessOpReports(const Trace& trace, const Reports& reports);

}  // namespace orochi

#endif  // SRC_CORE_PROCESS_REPORTS_H_
