#include "src/core/graph.h"

#include <cassert>

namespace orochi {

uint32_t EventGraph::AddRequest(RequestId rid, uint32_t op_count) {
  assert(blocks_.count(rid) == 0);
  uint32_t base = static_cast<uint32_t>(adj_.size());
  blocks_[rid] = {base, op_count};
  size_t block_size = static_cast<size_t>(op_count) + 2;
  adj_.resize(adj_.size() + block_size);
  for (uint32_t off = 0; off < block_size; off++) {
    node_owner_.emplace_back(rid, off);
  }
  return base;
}

uint32_t EventGraph::ArrivalNode(RequestId rid) const { return blocks_.at(rid).base; }

uint32_t EventGraph::OpNode(RequestId rid, uint32_t opnum) const {
  const Block& b = blocks_.at(rid);
  assert(opnum >= 1 && opnum <= b.op_count);
  return b.base + opnum;
}

uint32_t EventGraph::DepartureNode(RequestId rid) const {
  const Block& b = blocks_.at(rid);
  return b.base + b.op_count + 1;
}

void EventGraph::AddEdge(uint32_t from, uint32_t to) {
  adj_[from].push_back(to);
  num_edges_++;
}

EventGraph::NodeLabel EventGraph::Label(uint32_t node) const {
  const auto& [rid, offset] = node_owner_[node];
  const Block& b = blocks_.at(rid);
  if (offset == b.op_count + 1) {
    return {rid, kInfinityOp};
  }
  return {rid, offset};
}

bool EventGraph::HasCycle() const {
  // 0 = white, 1 = gray (on stack), 2 = black.
  std::vector<uint8_t> color(adj_.size(), 0);
  std::vector<std::pair<uint32_t, size_t>> stack;  // (node, next-edge index).
  for (uint32_t start = 0; start < adj_.size(); start++) {
    if (color[start] != 0) {
      continue;
    }
    color[start] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      if (edge_idx < adj_[node].size()) {
        uint32_t next = adj_[node][edge_idx];
        edge_idx++;
        if (color[next] == 1) {
          return true;  // Back edge.
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<uint32_t> EventGraph::TopologicalOrder() const {
  std::vector<uint8_t> color(adj_.size(), 0);
  std::vector<uint32_t> order;
  order.reserve(adj_.size());
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t start = 0; start < adj_.size(); start++) {
    if (color[start] != 0) {
      continue;
    }
    color[start] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      if (edge_idx < adj_[node].size()) {
        uint32_t next = adj_[node][edge_idx];
        edge_idx++;
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = 2;
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  // Post-order reversed = topological order.
  std::vector<uint32_t> topo(order.rbegin(), order.rend());
  return topo;
}

}  // namespace orochi
