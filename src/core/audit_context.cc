#include "src/core/audit_context.h"

#include <algorithm>

#include "src/common/timer.h"
#include "src/objects/db_adapter.h"
#include "src/sql/sql_parser.h"

namespace orochi {

const std::vector<NondetRecord> AuditContext::kNoNondet;

void AuditStats::MergeFrom(const AuditStats& o) {
  proc_op_reports_seconds += o.proc_op_reports_seconds;
  db_redo_seconds += o.db_redo_seconds;
  reexec_seconds += o.reexec_seconds;
  db_query_seconds += o.db_query_seconds;
  other_seconds += o.other_seconds;
  total_instructions += o.total_instructions;
  multivalent_instructions += o.multivalent_instructions;
  num_groups += o.num_groups;
  groups_multi += o.groups_multi;
  fallback_groups += o.fallback_groups;
  ops_checked += o.ops_checked;
  db_selects_issued += o.db_selects_issued;
  db_selects_deduped += o.db_selects_deduped;
  checkpoint_chunks_reused += o.checkpoint_chunks_reused;
  prepare_watermarks_reused += o.prepare_watermarks_reused;
  compare_records_resumed += o.compare_records_resumed;
  pass1_transient_peak_bytes = std::max(pass1_transient_peak_bytes,
                                        o.pass1_transient_peak_bytes);
  group_stats.insert(group_stats.end(), o.group_stats.begin(), o.group_stats.end());
}

AuditContext::AuditContext(const Trace* trace, const Reports* reports, const Application* app,
                           const InitialState* initial, AuditOptions options)
    : trace_(trace), reports_(reports), app_(app), initial_(initial),
      options_(std::move(options)), inline_ws_(&stats_) {}

Status AuditContext::Prepare() {
  {
    ScopedAccumulator t(&stats_.other_seconds);
    if (Status st = CheckTraceBalanced(*trace_); !st.ok()) {
      return st;
    }
    for (const TraceEvent& e : trace_->events) {
      if (e.kind == TraceEvent::Kind::kRequest) {
        request_events_[e.rid] = &e;
      }
    }
    // Per-rid mutable slots are pre-built here so the re-execution phase never inserts
    // into these maps (concurrent access to distinct entries is then race-free).
    nondet_cursors_.reserve(request_events_.size());
    outputs_.reserve(request_events_.size());
    for (const auto& [rid, ev] : request_events_) {
      (void)ev;
      nondet_cursors_.emplace(rid, NondetCursor{});
      outputs_.emplace(rid, OutputSlot{});
    }
  }
  {
    ScopedAccumulator t(&stats_.proc_op_reports_seconds);
    Result<ProcessedReports> processed = ProcessOpReports(*trace_, *reports_);
    if (!processed.ok()) {
      return Status::Error(processed.error());
    }
    processed_ = std::move(processed).value();
  }
  {
    ScopedAccumulator t(&stats_.db_redo_seconds);
    kv_object_ = reports_->FindObject(ObjectKind::kKv, "");
    db_object_ = reports_->FindObject(ObjectKind::kDb, "");
    if (Status st = BuildRegisterIndexes(); !st.ok()) {
      return st;
    }
    if (Status st = BuildVersionedKv(); !st.ok()) {
      return st;
    }
    if (Status st = BuildVersionedDb(); !st.ok()) {
      return st;
    }
    // Redo is done: from here on every read of versioned storage is against an immutable
    // snapshot, so audit workers query it without locks.
    versioned_db_.Freeze();
  }
  return Status::Ok();
}

Status AuditContext::ScanOpLog(size_t object,
                               const std::function<Status(const OpRecord&, uint64_t)>& fn) {
  if (oplog_scanner_ != nullptr) {
    return oplog_scanner_->Scan(object, fn);
  }
  const std::vector<OpRecord>& log = reports_->op_logs[object];
  for (size_t j = 0; j < log.size(); j++) {
    if (Status st = fn(log[j], j + 1); !st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

Status AuditContext::BuildRegisterIndexes() {
  register_writes_.resize(reports_->objects.size());
  for (size_t i = 0; i < reports_->objects.size(); i++) {
    if (reports_->objects[i].kind != ObjectKind::kRegister) {
      continue;
    }
    Status st = ScanOpLog(i, [&](const OpRecord& op, uint64_t seqnum) {
      if (op.type != StateOpType::kRegisterWrite) {
        return Status::Ok();
      }
      Result<Value> v = ParseRegisterWriteContents(op.contents);
      if (!v.ok()) {
        return Status::Error("register log " + std::to_string(i) + " entry " +
                             std::to_string(seqnum) + ": " + v.error());
      }
      register_writes_[i].emplace_back(seqnum, std::move(v).value());
      return Status::Ok();
    });
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

Status AuditContext::BuildVersionedKv() {
  versioned_kv_.LoadInitial(initial_->kv);
  if (kv_object_ < 0) {
    return Status::Ok();
  }
  return ScanOpLog(static_cast<size_t>(kv_object_), [&](const OpRecord& op, uint64_t seqnum) {
    if (op.type != StateOpType::kKvSet) {
      return Status::Ok();
    }
    Result<KvSetContents> kv = ParseKvSetContents(op.contents);
    if (!kv.ok()) {
      return Status::Error("kv log entry " + std::to_string(seqnum) + ": " + kv.error());
    }
    versioned_kv_.AddSet(kv.value().key, seqnum, std::move(kv).value().value);
    return Status::Ok();
  });
}

Status AuditContext::BuildVersionedDb() {
  // Initial snapshot loads at ts 0.
  for (const std::string& table : initial_->db.TableNames()) {
    SqlStatement create;
    create.kind = SqlStmtKind::kCreateTable;
    create.table = table;
    create.columns = *initial_->db.Schema(table);
    Result<StmtResult> rc = versioned_db_.ApplyWrite(create, 0);
    if (!rc.ok()) {
      return Status::Error("initial db load: " + rc.error());
    }
    const std::vector<SqlRow>* rows = initial_->db.Rows(table);
    if (rows == nullptr || rows->empty()) {
      continue;
    }
    SqlStatement insert;
    insert.kind = SqlStmtKind::kInsert;
    insert.table = table;
    for (const ColumnDef& c : create.columns) {
      insert.insert_columns.push_back(c.name);
    }
    for (const SqlRow& row : *rows) {
      std::vector<SqlExprPtr> exprs;
      for (const SqlValue& v : row) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kLiteral;
        e->literal = v;
        exprs.push_back(std::move(e));
      }
      insert.insert_rows.push_back(std::move(exprs));
    }
    Result<StmtResult> ri = versioned_db_.ApplyWrite(insert, 0);
    if (!ri.ok()) {
      return Status::Error("initial db load: " + ri.error());
    }
  }

  if (db_object_ < 0) {
    return Status::Ok();
  }
  // Redo pass (§4.5): replay every logged transaction, stamping query q of log entry s
  // with ts = s * MAXQ + q. Claimed failures are validated where the engine permits. The
  // log is consumed as one forward scan, so the out-of-core path can page its contents in
  // segment by segment instead of keeping the (typically dominant) SQL text resident.
  db_log_parsed_.reserve(reports_->op_logs[static_cast<size_t>(db_object_)].size());
  return ScanOpLog(static_cast<size_t>(db_object_), [&](const OpRecord& op, uint64_t s) {
    if (op.type != StateOpType::kDbOp) {
      db_log_parsed_.emplace_back();  // Type mismatch is caught by CheckOp if referenced.
      return Status::Ok();
    }
    Result<DbContents> dc = ParseDbContents(op.contents);
    if (!dc.ok()) {
      return Status::Error("db log entry " + std::to_string(s) + ": " + dc.error());
    }
    DbContents contents = std::move(dc).value();
    if (contents.sql.size() > VersionedDatabase::kMaxQueriesPerTxn - 1) {
      return Status::Error("db log entry " + std::to_string(s) + ": too many statements");
    }
    if (!contents.success) {
      // The executor claims this op failed/aborted. For single statements the claim is
      // checkable exactly; multi-statement aborts are accepted as reported (§4.6 leeway:
      // transaction aborts are a form of non-determinism).
      if (contents.sql.size() == 1) {
        uint64_t ts = VersionedDatabase::MakeTimestamp(s, 1);
        Result<SqlStatement> stmt = ParseSql(contents.sql[0]);
        if (stmt.ok()) {
          Result<StmtResult> r =
              stmt.value().kind == SqlStmtKind::kSelect
                  ? versioned_db_.Select(stmt.value(), ts)
                  : versioned_db_.ApplyWrite(stmt.value(), ts, /*commit=*/false);
          if (r.ok()) {
            return Status::Error("db log entry " + std::to_string(s) +
                                 " claims failure but the statement succeeds on replay");
          }
        }
      }
      db_log_parsed_.push_back(std::move(contents));
      return Status::Ok();
    }
    for (size_t q = 1; q <= contents.sql.size(); q++) {
      uint64_t ts = VersionedDatabase::MakeTimestamp(s, q);
      Result<SqlStatement> stmt = ParseSql(contents.sql[q - 1]);
      if (!stmt.ok()) {
        return Status::Error("db log entry " + std::to_string(s) +
                             " claims success but statement " + std::to_string(q) +
                             " does not parse: " + stmt.error());
      }
      if (stmt.value().kind == SqlStmtKind::kSelect) {
        continue;  // Reads re-execute during SimOp at their timestamp.
      }
      Result<StmtResult> r = versioned_db_.ApplyWrite(stmt.value(), ts);
      if (!r.ok()) {
        return Status::Error("db log entry " + std::to_string(s) +
                             " claims success but replay fails: " + r.error());
      }
      redo_affected_[ts] = r.value().affected;
    }
    db_log_parsed_.push_back(std::move(contents));
    return Status::Ok();
  });
}

uint32_t AuditContext::OpCount(RequestId rid) const {
  auto it = processed_.op_counts.find(rid);
  return it == processed_.op_counts.end() ? 0 : it->second;
}

const TraceEvent* AuditContext::RequestEvent(RequestId rid) const {
  auto it = request_events_.find(rid);
  return it == request_events_.end() ? nullptr : it->second;
}

Result<OpLocation> AuditContext::CheckOp(RequestId rid, uint32_t opnum,
                                         const StateOpRequest& op, AuditWorkerState* ws) {
  using R = Result<OpLocation>;
  ws->stats->ops_checked++;
  OpLocation loc = processed_.op_map.Find(rid, opnum);
  if (!loc.valid()) {
    return R::Error("CheckOp: (rid " + std::to_string(rid) + ", opnum " +
                    std::to_string(opnum) + ") not in OpMap");
  }
  // The object the program targeted must be the object whose log claims this op.
  ObjectKind kind = op.type == StateOpType::kRegisterRead ||
                            op.type == StateOpType::kRegisterWrite
                        ? ObjectKind::kRegister
                        : (op.type == StateOpType::kDbOp ? ObjectKind::kDb : ObjectKind::kKv);
  const std::string& name = kind == ObjectKind::kRegister ? op.target : std::string();
  int expected_object = reports_->FindObject(kind, name);
  if (expected_object < 0 || static_cast<uint32_t>(expected_object) != loc.object) {
    return R::Error("CheckOp: object mismatch for (rid " + std::to_string(rid) + ", opnum " +
                    std::to_string(opnum) + ")");
  }
  const OpRecord& entry = reports_->op_logs[loc.object][loc.seqnum - 1];
  if (entry.type != op.type) {
    return R::Error("CheckOp: optype mismatch");
  }
  switch (op.type) {
    case StateOpType::kRegisterRead:
      if (!entry.contents.empty()) {
        return R::Error("CheckOp: register read has non-empty contents");
      }
      break;
    case StateOpType::kRegisterWrite:
      ws->scratch.clear();
      AppendRegisterWriteContents(&ws->scratch, op.value);
      if (entry.contents != ws->scratch) {
        return R::Error("CheckOp: register write contents mismatch");
      }
      break;
    case StateOpType::kKvGet:
      if (entry.contents != op.key) {
        return R::Error("CheckOp: kv get key mismatch");
      }
      break;
    case StateOpType::kKvSet:
      ws->scratch.clear();
      AppendKvSetContents(&ws->scratch, op.key, op.value);
      if (entry.contents != ws->scratch) {
        return R::Error("CheckOp: kv set contents mismatch");
      }
      break;
    case StateOpType::kDbOp: {
      if (db_object_ < 0 || loc.object != static_cast<uint32_t>(db_object_) ||
          loc.seqnum > db_log_parsed_.size()) {
        return R::Error("CheckOp: db op points outside the db log");
      }
      const DbContents& dc = db_log_parsed_[loc.seqnum - 1];
      if (dc.sql != op.sql || dc.is_txn != op.db_is_txn) {
        return R::Error("CheckOp: db statements mismatch");
      }
      break;
    }
  }
  return loc;
}

Result<std::shared_ptr<const StmtResult>> AuditContext::RunSelect(const std::string& sql,
                                                                  uint64_t ts,
                                                                  AuditWorkerState* ws) {
  using R = Result<std::shared_ptr<const StmtResult>>;
  QueryCacheShard& shard = query_cache_[std::hash<std::string>{}(sql) % kQueryCacheShards];

  // Parse cache. Parsing happens outside the shard lock; if two workers race on the same
  // uncached statement, both parse and the first insert wins (identical content either way).
  std::shared_ptr<const SqlStatement> stmt;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto pit = shard.parse.find(sql);
    if (pit != shard.parse.end()) {
      stmt = pit->second;
    }
  }
  if (stmt == nullptr) {
    Result<SqlStatement> parsed = ParseSql(sql);
    if (!parsed.ok()) {
      return R::Error(parsed.error());
    }
    stmt = std::make_shared<const SqlStatement>(std::move(parsed).value());
    std::lock_guard<std::mutex> lock(shard.mu);
    stmt = shard.parse.emplace(sql, stmt).first->second;
  }
  if (stmt->kind != SqlStmtKind::kSelect) {
    return R::Error("RunSelect: not a SELECT");
  }

  // A cached result at ts' serves ts when the touched table was not modified in
  // (min, max] — test both neighbours of the insertion position for ts.
  auto reusable = [&](const DedupEntry& e) {
    uint64_t lo = std::min(e.ts, ts);
    uint64_t hi = std::max(e.ts, ts);
    return lo == hi || !versioned_db_.TableModifiedBetween(stmt->table, lo, hi);
  };
  if (options_.enable_query_dedup) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<DedupEntry>& entries = shard.dedup[sql];
    auto pos = std::lower_bound(entries.begin(), entries.end(), ts,
                                [](const DedupEntry& e, uint64_t t) { return e.ts < t; });
    if (pos != entries.end() && reusable(*pos)) {
      ws->stats->db_selects_deduped++;
      return R(pos->result);
    }
    if (pos != entries.begin() && reusable(*(pos - 1))) {
      ws->stats->db_selects_deduped++;
      return R((pos - 1)->result);
    }
  }

  // Miss: run the SELECT against the frozen versioned store with no lock held. Two
  // workers may both miss the same (sql, window) concurrently; both charge an issued
  // SELECT, so issued + deduped always equals the number of logical SELECTs simulated.
  ws->stats->db_selects_issued++;
  Result<StmtResult> r = [&] {
    ScopedAccumulator t(&ws->stats->db_query_seconds);
    return versioned_db_.Select(*stmt, ts);
  }();
  if (!r.ok()) {
    return R::Error(r.error());
  }
  auto shared = std::make_shared<const StmtResult>(std::move(r).value());
  if (options_.enable_query_dedup) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<DedupEntry>& entries = shard.dedup[sql];
    auto pos = std::lower_bound(entries.begin(), entries.end(), ts,
                                [](const DedupEntry& e, uint64_t t) { return e.ts < t; });
    if (pos == entries.end() || pos->ts != ts) {
      entries.insert(pos, {ts, shared});
    }
  }
  return R(shared);
}

Result<Value> AuditContext::SimDbOp(const StateOpRequest& op, OpLocation loc,
                                    AuditWorkerState* ws) {
  using R = Result<Value>;
  const DbContents& dc = db_log_parsed_[loc.seqnum - 1];
  if (!dc.success) {
    return op.db_is_txn ? DbTxnResultToValue(false, {}) : DbQueryFailureValue();
  }
  std::vector<StmtResult> results;
  results.reserve(dc.sql.size());
  for (size_t q = 1; q <= dc.sql.size(); q++) {
    uint64_t ts = VersionedDatabase::MakeTimestamp(loc.seqnum, q);
    auto affected = redo_affected_.find(ts);
    if (affected != redo_affected_.end()) {
      StmtResult sr;
      sr.is_rows = false;
      sr.affected = affected->second;
      results.push_back(std::move(sr));
      continue;
    }
    // A read (or a CREATE, which records affected = 0 and is handled above).
    Result<std::shared_ptr<const StmtResult>> r = RunSelect(dc.sql[q - 1], ts, ws);
    if (!r.ok()) {
      return R::Error("db op " + std::to_string(loc.seqnum) +
                      " claims success but read fails on replay: " + r.error());
    }
    results.push_back(*r.value());
  }
  if (op.db_is_txn) {
    return DbTxnResultToValue(true, results);
  }
  return StmtResultToValue(results[0]);
}

Result<Value> AuditContext::SimOp(const StateOpRequest& op, OpLocation loc,
                                  AuditWorkerState* ws) {
  switch (op.type) {
    case StateOpType::kRegisterRead: {
      // "Walk backward from s for the latest RegisterWrite" (Figure 12), over the
      // pre-parsed per-object write index; absent writes fall back to the initial state.
      const auto& writes = register_writes_[loc.object];
      auto pos = std::lower_bound(
          writes.begin(), writes.end(), static_cast<uint64_t>(loc.seqnum),
          [](const std::pair<uint64_t, Value>& w, uint64_t s) { return w.first < s; });
      if (pos != writes.begin()) {
        return (pos - 1)->second;
      }
      auto init = initial_->registers.find(op.target);
      return init == initial_->registers.end() ? Value::Null() : init->second;
    }
    case StateOpType::kKvGet:
      return versioned_kv_.Get(op.key, loc.seqnum);
    case StateOpType::kRegisterWrite:
    case StateOpType::kKvSet:
      return Value::Null();
    case StateOpType::kDbOp:
      return SimDbOp(op, loc, ws);
  }
  return Value::Null();
}

void AuditContext::ResetNondet(RequestId rid) {
  // Slots were pre-built for every traced rid; callers validate RequestEvent(rid) first,
  // so a miss means the rid is untraced and the replay will fail on that check instead.
  auto it = nondet_cursors_.find(rid);
  if (it != nondet_cursors_.end()) {
    it->second = NondetCursor{};
  }
}

Result<Value> AuditContext::NextNondet(RequestId rid, const NondetRequest& req) {
  using R = Result<Value>;
  auto rit = reports_->nondet.find(rid);
  const std::vector<NondetRecord>& records = rit == reports_->nondet.end() ? kNoNondet
                                                                           : rit->second;
  auto cit = nondet_cursors_.find(rid);
  if (cit == nondet_cursors_.end()) {
    return R::Error("nondet: rid " + std::to_string(rid) + " is not in the trace");
  }
  NondetCursor& cursor = cit->second;
  if (cursor.pos >= records.size()) {
    return R::Error("nondet: rid " + std::to_string(rid) + " has no recorded value for call #" +
                    std::to_string(cursor.pos + 1));
  }
  const NondetRecord& record = records[cursor.pos];
  cursor.pos++;
  if (record.name != req.name) {
    return R::Error("nondet: recorded builtin '" + record.name + "' but program called '" +
                    req.name + "'");
  }
  Result<Value> parsed = DeserializeValue(record.value);
  if (!parsed.ok()) {
    return R::Error("nondet: " + parsed.error());
  }
  Value v = std::move(parsed).value();
  // Plausibility checks (§4.6): time and microtime must be monotone within the request;
  // rand must respect its range.
  if (req.name == "time") {
    if (!v.is_int() || (cursor.has_last_time && v.as_int() < cursor.last_time)) {
      return R::Error("nondet: time() value implausible for rid " + std::to_string(rid));
    }
    cursor.has_last_time = true;
    cursor.last_time = v.as_int();
  } else if (req.name == "microtime") {
    if (!v.is_float() || (cursor.has_last_micro && v.as_float() < cursor.last_micro)) {
      return R::Error("nondet: microtime() value implausible for rid " + std::to_string(rid));
    }
    cursor.has_last_micro = true;
    cursor.last_micro = v.as_float();
  } else if (req.name == "rand") {
    int64_t lo = req.args.size() > 0 ? req.args[0].ToInt() : 0;
    int64_t hi = req.args.size() > 1 ? req.args[1].ToInt() : 0;
    if (!v.is_int() || (hi >= lo && (v.as_int() < lo || v.as_int() > hi))) {
      return R::Error("nondet: rand() value out of range for rid " + std::to_string(rid));
    }
  }
  return v;
}

Status AuditContext::CheckNondetConsumed(RequestId rid) {
  auto rit = reports_->nondet.find(rid);
  size_t total = rit == reports_->nondet.end() ? 0 : rit->second.size();
  auto cit = nondet_cursors_.find(rid);
  size_t used = cit == nondet_cursors_.end() ? 0 : cit->second.pos;
  if (used != total) {
    return Status::Error("nondet: rid " + std::to_string(rid) + " consumed " +
                         std::to_string(used) + " of " + std::to_string(total) +
                         " recorded values");
  }
  return Status::Ok();
}

void AuditContext::SetOutput(RequestId rid, std::string body) {
  auto it = outputs_.find(rid);
  if (it == outputs_.end()) {
    return;  // Callers only pass traced rids (slots pre-built in Prepare).
  }
  it->second.produced = true;
  it->second.body = std::move(body);
}

const std::string* AuditContext::ProducedOutput(RequestId rid) const {
  auto it = outputs_.find(rid);
  if (it == outputs_.end() || !it->second.produced) {
    return nullptr;
  }
  return &it->second.body;
}

std::string AuditContext::CheckResponseOutput(RequestId rid, const std::string& body) const {
  auto it = outputs_.find(rid);
  if (it == outputs_.end() || !it->second.produced) {
    return "output: rid " + std::to_string(rid) + " was never re-executed";
  }
  if (it->second.body != body) {
    return "output: rid " + std::to_string(rid) + " response does not match re-execution";
  }
  return std::string();
}

Status AuditContext::CompareOutputs() {
  ScopedAccumulator t(&stats_.other_seconds);
  for (const TraceEvent& e : trace_->events) {
    if (e.kind != TraceEvent::Kind::kResponse) {
      continue;
    }
    if (std::string reason = CheckResponseOutput(e.rid, e.body); !reason.empty()) {
      return Status::Error(reason);
    }
  }
  return Status::Ok();
}

InitialState AuditContext::ExtractFinalState() const {
  InitialState out;
  // Registers: the last logged write per register object, else the initial value.
  out.registers = initial_->registers;
  for (size_t i = 0; i < reports_->objects.size(); i++) {
    if (reports_->objects[i].kind != ObjectKind::kRegister || register_writes_[i].empty()) {
      continue;
    }
    out.registers[reports_->objects[i].name] = register_writes_[i].back().second;
  }
  out.kv = versioned_kv_.LatestSnapshot();
  out.db = versioned_db_.LatestState();
  return out;
}

}  // namespace orochi
