#include "src/core/audit_session.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <vector>

#include "src/common/timer.h"
#include "src/common/work_steal_pool.h"
#include "src/core/reexec.h"
#include "src/objects/wire_format.h"

namespace orochi {

namespace {

// One unit of parallel audit work: a chunk of a control-flow group. `order` is the chunk's
// position in the sequential group walk (group validation consumes a position too), which
// is the tiebreak that makes rejection deterministic across thread counts.
struct AuditTask {
  size_t order = 0;
  const Program* prog = nullptr;
  std::vector<RequestId> rids;
  // True when this chunk shares a rid with an earlier task (possible only for adversarial
  // reports that list a rid in several groups). Such chunks run serially after the pool
  // joins, so two workers never touch the same rid's cursor or output slot concurrently.
  bool serial = false;
};

constexpr size_t kNoFailure = SIZE_MAX;

}  // namespace

AuditSession::AuditSession(const Application* app, AuditOptions options, InitialState initial)
    : app_(app), options_(std::move(options)), state_(std::move(initial)) {}

Result<AuditSession> AuditSession::OpenFromStateFile(const Application* app,
                                                     AuditOptions options,
                                                     const std::string& state_path) {
  Result<InitialState> state = ReadInitialStateFile(state_path);
  if (!state.ok()) {
    return Result<AuditSession>::Error(state.error());
  }
  return AuditSession(app, std::move(options), std::move(state).value());
}

Status AuditSession::SaveState(const std::string& path) const {
  return WriteInitialStateFile(path, state_);
}

Result<AuditResult> AuditSession::FeedEpochFiles(const std::string& trace_path,
                                                 const std::string& reports_path) {
  Result<Trace> trace = ReadTraceFile(trace_path);
  if (!trace.ok()) {
    return Result<AuditResult>::Error(trace.error());
  }
  Result<Reports> reports = ReadReportsFile(reports_path);
  if (!reports.ok()) {
    return Result<AuditResult>::Error(reports.error());
  }
  return FeedEpoch(trace.value(), reports.value());
}

// The grouped SSCO audit engine (paper Figures 3 and 12): balanced-trace check,
// consistent-ordering verification and versioned-storage builds (AuditContext::Prepare),
// grouped SIMD-on-demand re-execution over a work-stealing pool, then the produced-output
// vs. trace comparison. On ACCEPT, final_state chains into the next FeedEpoch call.
AuditResult AuditSession::FeedEpoch(const Trace& trace, const Reports& reports) {
  epochs_fed_++;
  AuditResult out;
  AuditContext ctx(&trace, &reports, app_, &state_, options_);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }

  // --- Plan: walk groups in report order, validate them, and cut them into chunk tasks.
  // Validation errors claim the walk position at which sequential execution would have
  // reported them; planning stops there since no later event can win the min-order race.
  std::vector<AuditTask> tasks;
  size_t order = 0;
  size_t plan_fail_order = kNoFailure;
  std::string plan_fail_reason;
  std::unordered_set<RequestId> claimed;
  for (const auto& [tag, rids] : reports.groups) {
    (void)tag;
    if (rids.empty()) {
      continue;
    }
    ctx.stats().num_groups++;
    if (rids.size() > 1) {
      ctx.stats().groups_multi++;
    }
    const size_t group_order = order++;
    // All requests in a group must exist and target the same script.
    const TraceEvent* first = ctx.RequestEvent(rids[0]);
    if (first == nullptr) {
      plan_fail_order = group_order;
      plan_fail_reason = "group contains rid " + std::to_string(rids[0]) + " not in the trace";
      break;
    }
    bool group_ok = true;
    for (RequestId rid : rids) {
      const TraceEvent* req = ctx.RequestEvent(rid);
      if (req == nullptr || req->script != first->script) {
        plan_fail_order = group_order;
        plan_fail_reason = "group mixes scripts or names an untraced rid";
        group_ok = false;
        break;
      }
    }
    if (!group_ok) {
      break;
    }
    const Program* prog = app_->GetScript(first->script);
    if (prog == nullptr) {
      for (RequestId rid : rids) {
        if (ctx.OpCount(rid) != 0) {
          plan_fail_order = group_order;
          plan_fail_reason = "rid " + std::to_string(rid) +
                             " targets an unknown script but claims operations";
          group_ok = false;
          break;
        }
        ctx.SetOutput(rid, kNoSuchScriptBody);
      }
      if (!group_ok) {
        break;
      }
      continue;
    }
    for (size_t start = 0; start < rids.size(); start += options_.max_group_size) {
      size_t end = std::min(rids.size(), start + options_.max_group_size);
      AuditTask task;
      task.order = order++;
      task.prog = prog;
      task.rids.assign(rids.begin() + static_cast<ptrdiff_t>(start),
                       rids.begin() + static_cast<ptrdiff_t>(end));
      for (RequestId rid : task.rids) {
        task.serial = task.serial || !claimed.insert(rid).second;
      }
      tasks.push_back(std::move(task));
    }
  }

  // --- Execute: chunks run on a work-stealing pool, largest-first to minimize makespan.
  // Each task accumulates into its own stats block; blocks merge in walk order afterwards,
  // so merged stats (group_stats in particular) are independent of scheduling.
  std::vector<AuditStats> task_stats(tasks.size());
  std::vector<std::string> task_error(tasks.size());
  std::atomic<size_t> first_fail{plan_fail_order};
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    auto run_task = [&](size_t i) {
      const AuditTask& task = tasks[i];
      if (task.order > first_fail.load(std::memory_order_relaxed)) {
        return;  // A strictly earlier failure already decided the verdict.
      }
      AuditWorkerState ws(&task_stats[i]);
      if (Status st = RunGroupChunk(app_, options_.interp, &ctx, task.prog, task.rids, &ws);
          !st.ok()) {
        task_error[i] = st.error();
        size_t cur = first_fail.load(std::memory_order_relaxed);
        while (task.order < cur &&
               !first_fail.compare_exchange_weak(cur, task.order, std::memory_order_relaxed)) {
        }
      }
    };

    std::vector<size_t> pool_tasks;
    std::vector<size_t> serial_tasks;
    for (size_t i = 0; i < tasks.size(); i++) {
      (tasks[i].serial ? serial_tasks : pool_tasks).push_back(i);
    }
    const size_t num_threads = ResolveAuditThreads(options_);
    if (num_threads <= 1 || pool_tasks.size() <= 1) {
      for (size_t i : pool_tasks) {
        run_task(i);
      }
    } else {
      // Largest chunk first (chunk size is the cost proxy: group length is unknown until
      // executed, and chunk cost is roughly requests × script length within one script).
      std::stable_sort(pool_tasks.begin(), pool_tasks.end(), [&](size_t a, size_t b) {
        return tasks[a].rids.size() > tasks[b].rids.size();
      });
      WorkStealPool(std::min(num_threads, pool_tasks.size())).Run(pool_tasks, run_task);
    }
    for (size_t i : serial_tasks) {
      run_task(i);
    }
  }
  for (const AuditStats& s : task_stats) {
    ctx.stats().MergeFrom(s);
  }

  const size_t fail = first_fail.load(std::memory_order_relaxed);
  if (fail != kNoFailure) {
    out.reason = plan_fail_reason;
    for (size_t i = 0; i < tasks.size(); i++) {
      if (tasks[i].order == fail) {
        out.reason = task_error[i];
        break;
      }
    }
    out.stats = ctx.stats();
    return out;
  }

  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  epochs_accepted_++;
  state_ = out.final_state;  // The accepted epoch seeds the next epoch's audit (§4.5).
  return out;
}

}  // namespace orochi
