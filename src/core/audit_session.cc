#include "src/core/audit_session.h"

#include <utility>

#include "src/core/audit_plan.h"
#include "src/objects/wire_format.h"

namespace orochi {

AuditSession::AuditSession(const Application* app, AuditOptions options, InitialState initial)
    : app_(app), options_(std::move(options)), state_(std::move(initial)) {}

Result<AuditSession> AuditSession::OpenFromStateFile(const Application* app,
                                                     AuditOptions options,
                                                     const std::string& state_path) {
  Result<InitialState> state = ReadInitialStateFile(state_path, options.io_env);
  if (!state.ok()) {
    return Result<AuditSession>::Error(state.error());
  }
  return AuditSession(app, std::move(options), std::move(state).value());
}

Status AuditSession::SaveState(const std::string& path) const {
  return WriteInitialStateFile(path, state_, options_.io_env);
}

Result<AuditResult> AuditSession::FeedEpochFiles(const std::string& trace_path,
                                                 const std::string& reports_path) {
  // Config errors (malformed OROCHI_AUDIT_THREADS) surface as a hard error before any
  // file is read — the epoch is unconsumed, like any other error Result.
  if (Result<size_t> threads = ResolveAuditThreads(options_); !threads.ok()) {
    return Result<AuditResult>::Error(threads.error());
  }
  Result<Trace> trace = ReadTraceFile(trace_path, options_.io_env);
  if (!trace.ok()) {
    return Result<AuditResult>::Error(trace.error());
  }
  Result<Reports> reports = ReadReportsFile(reports_path, options_.io_env);
  if (!reports.ok()) {
    return Result<AuditResult>::Error(reports.error());
  }
  return FeedEpoch(trace.value(), reports.value());
}

void AuditSession::CommitAccepted(AuditContext* ctx, AuditResult* out) {
  out->accepted = true;
  out->final_state = ctx->ExtractFinalState();
  out->stats = ctx->stats();
  epochs_accepted_++;
  state_ = out->final_state;  // The accepted epoch seeds the next epoch's audit (§4.5).
}

// The grouped SSCO audit engine (paper Figures 3 and 12): balanced-trace check,
// consistent-ordering verification and versioned-storage builds (AuditContext::Prepare),
// grouped SIMD-on-demand re-execution over a work-stealing pool, then the produced-output
// vs. trace comparison. Planning and execution live in src/core/audit_plan.{h,cc}, shared
// with the out-of-core streaming path so both are deterministic in lockstep. On ACCEPT,
// final_state chains into the next FeedEpoch call.
AuditResult AuditSession::FeedEpoch(const Trace& trace, const Reports& reports) {
  AuditResult out;
  // FeedEpoch has no error channel, so a malformed OROCHI_AUDIT_THREADS reports as a
  // rejection whose reason names the config problem; the epoch is not consumed.
  if (Result<size_t> threads = ResolveAuditThreads(options_); !threads.ok()) {
    out.reason = threads.error();
    return out;
  }
  epochs_fed_++;
  obs::PhaseTracer* tracer = obs::ResolveTracer(options_.tracer);
  const obs::PhaseBreakdown phase_mark = tracer->totals();
  AuditContext ctx(&trace, &reports, app_, &state_, options_);
  Status prepared;
  {
    obs::TraceSpan span(tracer, obs::Phase::kPrepare);
    prepared = ctx.Prepare();
  }
  out.phases = tracer->totals().DiffSince(phase_mark);
  if (!prepared.ok()) {
    out.reason = prepared.error();
    out.stats = ctx.stats();
    return out;
  }

  AuditPlan plan = PlanAuditTasks(&ctx, reports, app_, options_);
  AuditExecOutcome exec = ExecuteAuditPlan(&ctx, app_, options_, plan);
  out.phases = tracer->totals().DiffSince(phase_mark);
  if (exec.fail_order != kNoAuditFailure) {
    out.reason = exec.fail_reason;
    out.stats = ctx.stats();
    return out;
  }

  Status compared;
  {
    obs::TraceSpan span(tracer, obs::Phase::kPass3Compare);
    compared = ctx.CompareOutputs();
  }
  out.phases = tracer->totals().DiffSince(phase_mark);
  if (!compared.ok()) {
    out.reason = compared.error();
    out.stats = ctx.stats();
    return out;
  }
  CommitAccepted(&ctx, &out);
  return out;
}

}  // namespace orochi
