#include "src/core/reexec.h"

#include <string>
#include <utility>

#include "src/lang/acc_interpreter.h"

namespace orochi {

Status ReplaySingleRequest(const Application* app, const InterpreterOptions& interp_options,
                           AuditContext* ctx, RequestId rid, AuditWorkerState* ws) {
  const TraceEvent* req = ctx->RequestEvent(rid);
  if (req == nullptr) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " is not in the trace");
  }
  const Program* prog = app->GetScript(req->script);
  if (prog == nullptr) {
    if (ctx->OpCount(rid) != 0) {
      return Status::Error("re-exec: rid " + std::to_string(rid) +
                           " targets an unknown script but claims operations");
    }
    ctx->SetOutput(rid, kNoSuchScriptBody);
    return Status::Ok();
  }
  ctx->ResetNondet(rid);
  Interpreter interp(prog, &req->params, interp_options);
  uint32_t opnum = 0;
  std::string body;
  while (true) {
    StepResult step = interp.Run();
    if (step.kind == StepResult::Kind::kFinished) {
      body = interp.output();
      break;
    }
    if (step.kind == StepResult::Kind::kError) {
      body = interp.output() + "\n[error] " + step.error;
      break;
    }
    if (step.kind == StepResult::Kind::kStateOp) {
      opnum++;
      Result<OpLocation> loc = ctx->CheckOp(rid, opnum, step.op, ws);
      if (!loc.ok()) {
        return Status::Error(loc.error());
      }
      Result<Value> v = ctx->SimOp(step.op, loc.value(), ws);
      if (!v.ok()) {
        return Status::Error(v.error());
      }
      interp.ProvideValue(std::move(v).value());
      continue;
    }
    Result<Value> v = ctx->NextNondet(rid, step.nondet);
    if (!v.ok()) {
      return Status::Error(v.error());
    }
    interp.ProvideValue(std::move(v).value());
  }
  if (opnum != ctx->OpCount(rid)) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " issued " +
                         std::to_string(opnum) + " ops but M(rid) = " +
                         std::to_string(ctx->OpCount(rid)));
  }
  if (Status st = ctx->CheckNondetConsumed(rid); !st.ok()) {
    return st;
  }
  ws->stats->total_instructions += interp.instructions_executed();
  ctx->SetOutput(rid, std::move(body));
  return Status::Ok();
}

Status RunGroupChunk(const Application* app, const InterpreterOptions& interp_options,
                     AuditContext* ctx, const Program* prog,
                     const std::vector<RequestId>& rids, AuditWorkerState* ws) {
  const size_t n = rids.size();
  std::vector<const RequestParams*> params(n);
  for (size_t j = 0; j < n; j++) {
    const TraceEvent* req = ctx->RequestEvent(rids[j]);
    if (req == nullptr) {
      return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                           " is not in the trace");
    }
    params[j] = &req->params;
    ctx->ResetNondet(rids[j]);
  }

  AccInterpreter acc(prog, std::move(params), interp_options);
  uint32_t opnum = 0;
  while (true) {
    AccStepResult step = acc.Run();
    switch (step.kind) {
      case AccStepResult::Kind::kFinished:
      case AccStepResult::Kind::kError: {
        // Figure 12 step (3): each request must have issued exactly M(rid) operations.
        // (A uniform trap is a deterministic end of the group; its op-count discipline is
        // the same.)
        for (size_t j = 0; j < n; j++) {
          if (opnum != ctx->OpCount(rids[j])) {
            return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                                 " issued " + std::to_string(opnum) + " ops but M(rid) = " +
                                 std::to_string(ctx->OpCount(rids[j])));
          }
          if (Status st = ctx->CheckNondetConsumed(rids[j]); !st.ok()) {
            return st;
          }
          std::string body = acc.outputs()[j];
          if (step.kind == AccStepResult::Kind::kError) {
            body += "\n[error] " + step.error;
          }
          ctx->SetOutput(rids[j], std::move(body));
        }
        ws->stats->total_instructions += acc.total_instructions();
        ws->stats->multivalent_instructions += acc.multivalent_instructions();
        uint64_t len = acc.total_instructions();
        ws->stats->group_stats.push_back(
            {prog->script_name, static_cast<uint32_t>(n), len,
             len == 0 ? 1.0
                      : 1.0 - static_cast<double>(acc.multivalent_instructions()) /
                                  static_cast<double>(len)});
        return Status::Ok();
      }
      case AccStepResult::Kind::kDiverged:
        return Status::Error("group re-exec: control-flow grouping is wrong: " + step.error);
      case AccStepResult::Kind::kFallback: {
        // Not representable in lockstep (§4.7): re-execute the chunk's requests
        // individually. Re-execution is idempotent, so ops already checked recheck fine.
        ws->stats->fallback_groups++;
        for (RequestId rid : rids) {
          if (Status st = ReplaySingleRequest(app, interp_options, ctx, rid, ws); !st.ok()) {
            return st;
          }
        }
        return Status::Ok();
      }
      case AccStepResult::Kind::kStateOp: {
        opnum++;
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<OpLocation> loc = ctx->CheckOp(rids[j], opnum, step.ops[j], ws);
          if (!loc.ok()) {
            return Status::Error(loc.error());
          }
          Result<Value> v = ctx->SimOp(step.ops[j], loc.value(), ws);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
      case AccStepResult::Kind::kNondet: {
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> v = ctx->NextNondet(rids[j], step.nondets[j]);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
    }
  }
}

}  // namespace orochi
