#include "src/core/auditor.h"

#include <algorithm>

#include "src/common/timer.h"
#include "src/lang/acc_interpreter.h"

namespace orochi {

Auditor::Auditor(const Application* app, AuditOptions options)
    : app_(app), options_(std::move(options)) {}

Status Auditor::ReplaySingleRequest(AuditContext* ctx, RequestId rid) {
  const TraceEvent* req = ctx->RequestEvent(rid);
  if (req == nullptr) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " is not in the trace");
  }
  const Program* prog = app_->GetScript(req->script);
  if (prog == nullptr) {
    if (ctx->OpCount(rid) != 0) {
      return Status::Error("re-exec: rid " + std::to_string(rid) +
                           " targets an unknown script but claims operations");
    }
    ctx->SetOutput(rid, kNoSuchScriptBody);
    return Status::Ok();
  }
  ctx->ResetNondet(rid);
  Interpreter interp(prog, &req->params, options_.interp);
  uint32_t opnum = 0;
  std::string body;
  while (true) {
    StepResult step = interp.Run();
    if (step.kind == StepResult::Kind::kFinished) {
      body = interp.output();
      break;
    }
    if (step.kind == StepResult::Kind::kError) {
      body = interp.output() + "\n[error] " + step.error;
      break;
    }
    if (step.kind == StepResult::Kind::kStateOp) {
      opnum++;
      Result<OpLocation> loc = ctx->CheckOp(rid, opnum, step.op);
      if (!loc.ok()) {
        return Status::Error(loc.error());
      }
      Result<Value> v = ctx->SimOp(step.op, loc.value());
      if (!v.ok()) {
        return Status::Error(v.error());
      }
      interp.ProvideValue(std::move(v).value());
      continue;
    }
    Result<Value> v = ctx->NextNondet(rid, step.nondet);
    if (!v.ok()) {
      return Status::Error(v.error());
    }
    interp.ProvideValue(std::move(v).value());
  }
  if (opnum != ctx->OpCount(rid)) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " issued " +
                         std::to_string(opnum) + " ops but M(rid) = " +
                         std::to_string(ctx->OpCount(rid)));
  }
  if (Status st = ctx->CheckNondetConsumed(rid); !st.ok()) {
    return st;
  }
  ctx->stats().total_instructions += interp.instructions_executed();
  ctx->SetOutput(rid, std::move(body));
  return Status::Ok();
}

Status Auditor::RunGroupChunk(AuditContext* ctx, const Program* prog,
                              const std::vector<RequestId>& rids) {
  const size_t n = rids.size();
  std::vector<const RequestParams*> params(n);
  for (size_t j = 0; j < n; j++) {
    const TraceEvent* req = ctx->RequestEvent(rids[j]);
    if (req == nullptr) {
      return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                           " is not in the trace");
    }
    params[j] = &req->params;
    ctx->ResetNondet(rids[j]);
  }

  AccInterpreter acc(prog, std::move(params), options_.interp);
  uint32_t opnum = 0;
  while (true) {
    AccStepResult step = acc.Run();
    switch (step.kind) {
      case AccStepResult::Kind::kFinished:
      case AccStepResult::Kind::kError: {
        // Figure 12 step (3): each request must have issued exactly M(rid) operations.
        // (A uniform trap is a deterministic end of the group; its op-count discipline is
        // the same.)
        for (size_t j = 0; j < n; j++) {
          if (opnum != ctx->OpCount(rids[j])) {
            return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                                 " issued " + std::to_string(opnum) + " ops but M(rid) = " +
                                 std::to_string(ctx->OpCount(rids[j])));
          }
          if (Status st = ctx->CheckNondetConsumed(rids[j]); !st.ok()) {
            return st;
          }
          std::string body = acc.outputs()[j];
          if (step.kind == AccStepResult::Kind::kError) {
            body += "\n[error] " + step.error;
          }
          ctx->SetOutput(rids[j], std::move(body));
        }
        ctx->stats().total_instructions += acc.total_instructions();
        ctx->stats().multivalent_instructions += acc.multivalent_instructions();
        uint64_t len = acc.total_instructions();
        ctx->stats().group_stats.push_back(
            {prog->script_name, static_cast<uint32_t>(n), len,
             len == 0 ? 1.0
                      : 1.0 - static_cast<double>(acc.multivalent_instructions()) /
                                  static_cast<double>(len)});
        return Status::Ok();
      }
      case AccStepResult::Kind::kDiverged:
        return Status::Error("group re-exec: control-flow grouping is wrong: " + step.error);
      case AccStepResult::Kind::kFallback: {
        // Not representable in lockstep (§4.7): re-execute the chunk's requests
        // individually. Re-execution is idempotent, so ops already checked recheck fine.
        ctx->stats().fallback_groups++;
        for (RequestId rid : rids) {
          if (Status st = ReplaySingleRequest(ctx, rid); !st.ok()) {
            return st;
          }
        }
        return Status::Ok();
      }
      case AccStepResult::Kind::kStateOp: {
        opnum++;
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<OpLocation> loc = ctx->CheckOp(rids[j], opnum, step.ops[j]);
          if (!loc.ok()) {
            return Status::Error(loc.error());
          }
          Result<Value> v = ctx->SimOp(step.ops[j], loc.value());
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
      case AccStepResult::Kind::kNondet: {
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> v = ctx->NextNondet(rids[j], step.nondets[j]);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
    }
  }
}

AuditResult Auditor::Audit(const Trace& trace, const Reports& reports,
                           const InitialState& initial) {
  AuditResult out;
  AuditContext ctx(&trace, &reports, app_, &initial, options_);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }

  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    for (const auto& [tag, rids] : reports.groups) {
      (void)tag;
      if (rids.empty()) {
        continue;
      }
      ctx.stats().num_groups++;
      if (rids.size() > 1) {
        ctx.stats().groups_multi++;
      }
      // All requests in a group must exist and target the same script.
      const TraceEvent* first = ctx.RequestEvent(rids[0]);
      if (first == nullptr) {
        out.reason = "group contains rid " + std::to_string(rids[0]) + " not in the trace";
        out.stats = ctx.stats();
        return out;
      }
      for (RequestId rid : rids) {
        const TraceEvent* req = ctx.RequestEvent(rid);
        if (req == nullptr || req->script != first->script) {
          out.reason = "group mixes scripts or names an untraced rid";
          out.stats = ctx.stats();
          return out;
        }
      }
      const Program* prog = app_->GetScript(first->script);
      if (prog == nullptr) {
        for (RequestId rid : rids) {
          if (ctx.OpCount(rid) != 0) {
            out.reason = "rid " + std::to_string(rid) +
                         " targets an unknown script but claims operations";
            out.stats = ctx.stats();
            return out;
          }
          ctx.SetOutput(rid, kNoSuchScriptBody);
        }
        continue;
      }
      for (size_t start = 0; start < rids.size(); start += options_.max_group_size) {
        size_t end = std::min(rids.size(), start + options_.max_group_size);
        std::vector<RequestId> chunk(rids.begin() + static_cast<ptrdiff_t>(start),
                                     rids.begin() + static_cast<ptrdiff_t>(end));
        if (Status st = RunGroupChunk(&ctx, prog, chunk); !st.ok()) {
          out.reason = st.error();
          out.stats = ctx.stats();
          return out;
        }
      }
    }
  }

  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

AuditResult Auditor::AuditSequential(const Trace& trace, const Reports& reports,
                                     const InitialState& initial) {
  AuditResult out;
  AuditOptions opts = options_;
  opts.enable_query_dedup = false;  // The baseline reissues every read (§5.2).
  AuditContext ctx(&trace, &reports, app_, &initial, opts);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    for (const TraceEvent& e : trace.events) {
      if (e.kind != TraceEvent::Kind::kRequest) {
        continue;
      }
      if (Status st = ReplaySingleRequest(&ctx, e.rid); !st.ok()) {
        out.reason = st.error();
        out.stats = ctx.stats();
        return out;
      }
    }
  }
  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

}  // namespace orochi
