#include "src/core/auditor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <unordered_set>

#include "src/common/timer.h"
#include "src/common/work_steal_pool.h"
#include "src/lang/acc_interpreter.h"

namespace orochi {

size_t ResolveAuditThreads(const AuditOptions& options) {
  if (options.num_threads > 0) {
    return options.num_threads;
  }
  if (const char* env = std::getenv("OROCHI_AUDIT_THREADS")) {
    long v = std::atol(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

Auditor::Auditor(const Application* app, AuditOptions options)
    : app_(app), options_(std::move(options)) {}

Status Auditor::ReplaySingleRequest(AuditContext* ctx, RequestId rid, AuditWorkerState* ws) {
  const TraceEvent* req = ctx->RequestEvent(rid);
  if (req == nullptr) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " is not in the trace");
  }
  const Program* prog = app_->GetScript(req->script);
  if (prog == nullptr) {
    if (ctx->OpCount(rid) != 0) {
      return Status::Error("re-exec: rid " + std::to_string(rid) +
                           " targets an unknown script but claims operations");
    }
    ctx->SetOutput(rid, kNoSuchScriptBody);
    return Status::Ok();
  }
  ctx->ResetNondet(rid);
  Interpreter interp(prog, &req->params, options_.interp);
  uint32_t opnum = 0;
  std::string body;
  while (true) {
    StepResult step = interp.Run();
    if (step.kind == StepResult::Kind::kFinished) {
      body = interp.output();
      break;
    }
    if (step.kind == StepResult::Kind::kError) {
      body = interp.output() + "\n[error] " + step.error;
      break;
    }
    if (step.kind == StepResult::Kind::kStateOp) {
      opnum++;
      Result<OpLocation> loc = ctx->CheckOp(rid, opnum, step.op, ws);
      if (!loc.ok()) {
        return Status::Error(loc.error());
      }
      Result<Value> v = ctx->SimOp(step.op, loc.value(), ws);
      if (!v.ok()) {
        return Status::Error(v.error());
      }
      interp.ProvideValue(std::move(v).value());
      continue;
    }
    Result<Value> v = ctx->NextNondet(rid, step.nondet);
    if (!v.ok()) {
      return Status::Error(v.error());
    }
    interp.ProvideValue(std::move(v).value());
  }
  if (opnum != ctx->OpCount(rid)) {
    return Status::Error("re-exec: rid " + std::to_string(rid) + " issued " +
                         std::to_string(opnum) + " ops but M(rid) = " +
                         std::to_string(ctx->OpCount(rid)));
  }
  if (Status st = ctx->CheckNondetConsumed(rid); !st.ok()) {
    return st;
  }
  ws->stats->total_instructions += interp.instructions_executed();
  ctx->SetOutput(rid, std::move(body));
  return Status::Ok();
}

Status Auditor::RunGroupChunk(AuditContext* ctx, const Program* prog,
                              const std::vector<RequestId>& rids, AuditWorkerState* ws) {
  const size_t n = rids.size();
  std::vector<const RequestParams*> params(n);
  for (size_t j = 0; j < n; j++) {
    const TraceEvent* req = ctx->RequestEvent(rids[j]);
    if (req == nullptr) {
      return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                           " is not in the trace");
    }
    params[j] = &req->params;
    ctx->ResetNondet(rids[j]);
  }

  AccInterpreter acc(prog, std::move(params), options_.interp);
  uint32_t opnum = 0;
  while (true) {
    AccStepResult step = acc.Run();
    switch (step.kind) {
      case AccStepResult::Kind::kFinished:
      case AccStepResult::Kind::kError: {
        // Figure 12 step (3): each request must have issued exactly M(rid) operations.
        // (A uniform trap is a deterministic end of the group; its op-count discipline is
        // the same.)
        for (size_t j = 0; j < n; j++) {
          if (opnum != ctx->OpCount(rids[j])) {
            return Status::Error("group re-exec: rid " + std::to_string(rids[j]) +
                                 " issued " + std::to_string(opnum) + " ops but M(rid) = " +
                                 std::to_string(ctx->OpCount(rids[j])));
          }
          if (Status st = ctx->CheckNondetConsumed(rids[j]); !st.ok()) {
            return st;
          }
          std::string body = acc.outputs()[j];
          if (step.kind == AccStepResult::Kind::kError) {
            body += "\n[error] " + step.error;
          }
          ctx->SetOutput(rids[j], std::move(body));
        }
        ws->stats->total_instructions += acc.total_instructions();
        ws->stats->multivalent_instructions += acc.multivalent_instructions();
        uint64_t len = acc.total_instructions();
        ws->stats->group_stats.push_back(
            {prog->script_name, static_cast<uint32_t>(n), len,
             len == 0 ? 1.0
                      : 1.0 - static_cast<double>(acc.multivalent_instructions()) /
                                  static_cast<double>(len)});
        return Status::Ok();
      }
      case AccStepResult::Kind::kDiverged:
        return Status::Error("group re-exec: control-flow grouping is wrong: " + step.error);
      case AccStepResult::Kind::kFallback: {
        // Not representable in lockstep (§4.7): re-execute the chunk's requests
        // individually. Re-execution is idempotent, so ops already checked recheck fine.
        ws->stats->fallback_groups++;
        for (RequestId rid : rids) {
          if (Status st = ReplaySingleRequest(ctx, rid, ws); !st.ok()) {
            return st;
          }
        }
        return Status::Ok();
      }
      case AccStepResult::Kind::kStateOp: {
        opnum++;
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<OpLocation> loc = ctx->CheckOp(rids[j], opnum, step.ops[j], ws);
          if (!loc.ok()) {
            return Status::Error(loc.error());
          }
          Result<Value> v = ctx->SimOp(step.ops[j], loc.value(), ws);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
      case AccStepResult::Kind::kNondet: {
        std::vector<Value> results(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> v = ctx->NextNondet(rids[j], step.nondets[j]);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          results[j] = std::move(v).value();
        }
        acc.ProvideValues(std::move(results));
        break;
      }
    }
  }
}

namespace {

// One unit of parallel audit work: a chunk of a control-flow group. `order` is the chunk's
// position in the sequential walk over groups (group validation consumes a position too),
// which is the tiebreak that makes rejection deterministic across thread counts.
struct AuditTask {
  size_t order = 0;
  const Program* prog = nullptr;
  std::vector<RequestId> rids;
  // True when this chunk shares a rid with an earlier task (possible only for adversarial
  // reports that list a rid in several groups). Such chunks run serially after the pool
  // joins, so two workers never touch the same rid's cursor or output slot concurrently.
  bool serial = false;
};

constexpr size_t kNoFailure = SIZE_MAX;

}  // namespace

AuditResult Auditor::Audit(const Trace& trace, const Reports& reports,
                           const InitialState& initial) {
  AuditResult out;
  AuditContext ctx(&trace, &reports, app_, &initial, options_);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }

  // --- Plan: walk groups in report order, validate them, and cut them into chunk tasks.
  // Validation errors claim the walk position at which sequential execution would have
  // reported them; planning stops there since no later event can win the min-order race.
  std::vector<AuditTask> tasks;
  size_t order = 0;
  size_t plan_fail_order = kNoFailure;
  std::string plan_fail_reason;
  std::unordered_set<RequestId> claimed;
  for (const auto& [tag, rids] : reports.groups) {
    (void)tag;
    if (rids.empty()) {
      continue;
    }
    ctx.stats().num_groups++;
    if (rids.size() > 1) {
      ctx.stats().groups_multi++;
    }
    const size_t group_order = order++;
    // All requests in a group must exist and target the same script.
    const TraceEvent* first = ctx.RequestEvent(rids[0]);
    if (first == nullptr) {
      plan_fail_order = group_order;
      plan_fail_reason = "group contains rid " + std::to_string(rids[0]) + " not in the trace";
      break;
    }
    bool group_ok = true;
    for (RequestId rid : rids) {
      const TraceEvent* req = ctx.RequestEvent(rid);
      if (req == nullptr || req->script != first->script) {
        plan_fail_order = group_order;
        plan_fail_reason = "group mixes scripts or names an untraced rid";
        group_ok = false;
        break;
      }
    }
    if (!group_ok) {
      break;
    }
    const Program* prog = app_->GetScript(first->script);
    if (prog == nullptr) {
      for (RequestId rid : rids) {
        if (ctx.OpCount(rid) != 0) {
          plan_fail_order = group_order;
          plan_fail_reason = "rid " + std::to_string(rid) +
                             " targets an unknown script but claims operations";
          group_ok = false;
          break;
        }
        ctx.SetOutput(rid, kNoSuchScriptBody);
      }
      if (!group_ok) {
        break;
      }
      continue;
    }
    for (size_t start = 0; start < rids.size(); start += options_.max_group_size) {
      size_t end = std::min(rids.size(), start + options_.max_group_size);
      AuditTask task;
      task.order = order++;
      task.prog = prog;
      task.rids.assign(rids.begin() + static_cast<ptrdiff_t>(start),
                       rids.begin() + static_cast<ptrdiff_t>(end));
      for (RequestId rid : task.rids) {
        task.serial = task.serial || !claimed.insert(rid).second;
      }
      tasks.push_back(std::move(task));
    }
  }

  // --- Execute: chunks run on a work-stealing pool, largest-first to minimize makespan.
  // Each task accumulates into its own stats block; blocks merge in walk order afterwards,
  // so merged stats (group_stats in particular) are independent of scheduling.
  std::vector<AuditStats> task_stats(tasks.size());
  std::vector<std::string> task_error(tasks.size());
  std::atomic<size_t> first_fail{plan_fail_order};
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    auto run_task = [&](size_t i) {
      const AuditTask& task = tasks[i];
      if (task.order > first_fail.load(std::memory_order_relaxed)) {
        return;  // A strictly earlier failure already decided the verdict.
      }
      AuditWorkerState ws(&task_stats[i]);
      if (Status st = RunGroupChunk(&ctx, task.prog, task.rids, &ws); !st.ok()) {
        task_error[i] = st.error();
        size_t cur = first_fail.load(std::memory_order_relaxed);
        while (task.order < cur &&
               !first_fail.compare_exchange_weak(cur, task.order, std::memory_order_relaxed)) {
        }
      }
    };

    std::vector<size_t> pool_tasks;
    std::vector<size_t> serial_tasks;
    for (size_t i = 0; i < tasks.size(); i++) {
      (tasks[i].serial ? serial_tasks : pool_tasks).push_back(i);
    }
    const size_t num_threads = ResolveAuditThreads(options_);
    if (num_threads <= 1 || pool_tasks.size() <= 1) {
      for (size_t i : pool_tasks) {
        run_task(i);
      }
    } else {
      // Largest chunk first (chunk size is the cost proxy: group length is unknown until
      // executed, and chunk cost is roughly requests × script length within one script).
      std::stable_sort(pool_tasks.begin(), pool_tasks.end(), [&](size_t a, size_t b) {
        return tasks[a].rids.size() > tasks[b].rids.size();
      });
      WorkStealPool(std::min(num_threads, pool_tasks.size())).Run(pool_tasks, run_task);
    }
    for (size_t i : serial_tasks) {
      run_task(i);
    }
  }
  for (const AuditStats& s : task_stats) {
    ctx.stats().MergeFrom(s);
  }

  const size_t fail = first_fail.load(std::memory_order_relaxed);
  if (fail != kNoFailure) {
    out.reason = plan_fail_reason;
    for (size_t i = 0; i < tasks.size(); i++) {
      if (tasks[i].order == fail) {
        out.reason = task_error[i];
        break;
      }
    }
    out.stats = ctx.stats();
    return out;
  }

  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

AuditResult Auditor::AuditSequential(const Trace& trace, const Reports& reports,
                                     const InitialState& initial) {
  AuditResult out;
  AuditOptions opts = options_;
  opts.enable_query_dedup = false;  // The baseline reissues every read (§5.2).
  AuditContext ctx(&trace, &reports, app_, &initial, opts);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    AuditWorkerState ws(&ctx.stats());
    for (const TraceEvent& e : trace.events) {
      if (e.kind != TraceEvent::Kind::kRequest) {
        continue;
      }
      if (Status st = ReplaySingleRequest(&ctx, e.rid, &ws); !st.ok()) {
        out.reason = st.error();
        out.stats = ctx.stats();
        return out;
      }
    }
  }
  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

}  // namespace orochi
