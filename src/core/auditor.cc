#include "src/core/auditor.h"

#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/core/audit_session.h"
#include "src/core/reexec.h"

namespace orochi {

AuditOutcome ClassifyAuditOutcome(const Result<AuditResult>& result) {
  if (result.ok()) {
    return result.value().accepted ? AuditOutcome::kAccepted : AuditOutcome::kRejected;
  }
  const std::string& e = result.error();
  if (e.compare(0, 8, "config: ") == 0 ||
      e.find("OROCHI_AUDIT_THREADS") != std::string::npos ||
      e.find("OROCHI_AUDIT_BUDGET") != std::string::npos ||
      e.find("OROCHI_PREFETCH_DEPTH") != std::string::npos) {
    return AuditOutcome::kConfigError;
  }
  return AuditOutcome::kIoError;
}

AuditIoError ParseAuditIoError(const std::string& error) {
  AuditIoError out;
  out.detail = error;
  // Error messages end "... in <path>" and, when localizable, carry
  // "at offset <N>" before it. Parse from the back so payload text containing " in "
  // cannot confuse the extraction of the trailing path.
  size_t in_pos = error.rfind(" in ");
  if (in_pos != std::string::npos && in_pos + 4 < error.size()) {
    out.file = error.substr(in_pos + 4);
  }
  size_t off_pos = error.rfind(" at offset ");
  if (off_pos != std::string::npos) {
    size_t start = off_pos + 11;
    uint64_t v = 0;
    bool any = false;
    while (start < error.size() && error[start] >= '0' && error[start] <= '9') {
      v = v * 10 + static_cast<uint64_t>(error[start] - '0');
      start++;
      any = true;
    }
    if (any) {
      out.offset = v;
    }
  }
  return out;
}

Result<size_t> ResolveAuditThreads(const AuditOptions& options) {
  if (options.num_threads > 0) {
    return options.num_threads;
  }
  if (const char* env = std::getenv("OROCHI_AUDIT_THREADS")) {
    Result<uint64_t> v = ParseUint64(env);
    if (!v.ok()) {
      // A malformed thread count must not silently change how the audit runs: it is a
      // config error the caller reports before consuming an epoch.
      return Result<size_t>::Error("config: OROCHI_AUDIT_THREADS='" + std::string(env) +
                                   "' is not a valid thread count (" + v.error() + ")");
    }
    if (v.value() > 0) {
      return static_cast<size_t>(v.value());
    }
    // An explicit 0 means auto, exactly like AuditOptions::num_threads == 0.
  }
  unsigned hc = std::thread::hardware_concurrency();
  return static_cast<size_t>(hc == 0 ? 1 : hc);
}

Auditor::Auditor(const Application* app, AuditOptions options)
    : app_(app), options_(std::move(options)) {}

AuditResult Auditor::Audit(const Trace& trace, const Reports& reports,
                           const InitialState& initial) {
  AuditSession session(app_, options_, initial);
  return session.FeedEpoch(trace, reports);
}

AuditResult Auditor::AuditSequential(const Trace& trace, const Reports& reports,
                                     const InitialState& initial) {
  AuditResult out;
  AuditOptions opts = options_;
  opts.enable_query_dedup = false;  // The baseline reissues every read (§5.2).
  AuditContext ctx(&trace, &reports, app_, &initial, opts);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    AuditWorkerState ws(&ctx.stats());
    for (const TraceEvent& e : trace.events) {
      if (e.kind != TraceEvent::Kind::kRequest) {
        continue;
      }
      if (Status st = ReplaySingleRequest(app_, opts.interp, &ctx, e.rid, &ws); !st.ok()) {
        out.reason = st.error();
        out.stats = ctx.stats();
        return out;
      }
    }
  }
  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

}  // namespace orochi
