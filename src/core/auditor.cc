#include "src/core/auditor.h"

#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/core/audit_session.h"
#include "src/core/reexec.h"

namespace orochi {

Result<size_t> ResolveAuditThreads(const AuditOptions& options) {
  if (options.num_threads > 0) {
    return options.num_threads;
  }
  if (const char* env = std::getenv("OROCHI_AUDIT_THREADS")) {
    Result<uint64_t> v = ParseUint64(env);
    if (!v.ok()) {
      // A malformed thread count must not silently change how the audit runs: it is a
      // config error the caller reports before consuming an epoch.
      return Result<size_t>::Error("config: OROCHI_AUDIT_THREADS='" + std::string(env) +
                                   "' is not a valid thread count (" + v.error() + ")");
    }
    if (v.value() > 0) {
      return static_cast<size_t>(v.value());
    }
    // An explicit 0 means auto, exactly like AuditOptions::num_threads == 0.
  }
  unsigned hc = std::thread::hardware_concurrency();
  return static_cast<size_t>(hc == 0 ? 1 : hc);
}

Auditor::Auditor(const Application* app, AuditOptions options)
    : app_(app), options_(std::move(options)) {}

AuditResult Auditor::Audit(const Trace& trace, const Reports& reports,
                           const InitialState& initial) {
  AuditSession session(app_, options_, initial);
  return session.FeedEpoch(trace, reports);
}

AuditResult Auditor::AuditSequential(const Trace& trace, const Reports& reports,
                                     const InitialState& initial) {
  AuditResult out;
  AuditOptions opts = options_;
  opts.enable_query_dedup = false;  // The baseline reissues every read (§5.2).
  AuditContext ctx(&trace, &reports, app_, &initial, opts);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  {
    ScopedAccumulator t(&ctx.stats().reexec_seconds);
    AuditWorkerState ws(&ctx.stats());
    for (const TraceEvent& e : trace.events) {
      if (e.kind != TraceEvent::Kind::kRequest) {
        continue;
      }
      if (Status st = ReplaySingleRequest(app_, opts.interp, &ctx, e.rid, &ws); !st.ok()) {
        out.reason = st.error();
        out.stats = ctx.stats();
        return out;
      }
    }
  }
  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

}  // namespace orochi
