// Single-shot audit entry points. The grouped SSCO audit engine (paper Figures 3 and 12)
// lives in AuditSession::FeedEpoch (src/core/audit_session.h), which chains accepted
// epochs' final states; Auditor::Audit is a thin one-epoch wrapper over a fresh session,
// kept for compatibility with pre-epoch callers.
//
// AuditSequential() re-executes each request individually in trace order with the same
// checks — no grouping, no query dedup. It corresponds to the paper's "simple
// re-execution" comparator and is the Figure 8/9 baseline.
#ifndef SRC_CORE_AUDITOR_H_
#define SRC_CORE_AUDITOR_H_

#include <string>

#include "src/core/audit_context.h"

namespace orochi {

struct AuditResult {
  bool accepted = false;
  std::string reason;  // Set on rejection.
  AuditStats stats;
  // Valid only when accepted: the end-of-period object state, which seeds the next
  // audit's InitialState (§4.5). AuditSession does this chaining automatically.
  InitialState final_state;
};

// Worker-thread count an AuditOptions resolves to: num_threads when nonzero, else the
// OROCHI_AUDIT_THREADS environment variable (0 = auto, like the option), else
// std::thread::hardware_concurrency(). A set but malformed environment value is a hard
// configuration error, never a silent fallback — audit entry points surface it before
// consuming an epoch.
Result<size_t> ResolveAuditThreads(const AuditOptions& options);

class Auditor {
 public:
  explicit Auditor(const Application* app, AuditOptions options = {});

  // SSCO grouped audit of one epoch (parallel over group chunks): equivalent to feeding a
  // single epoch to a fresh AuditSession opened at `initial`.
  AuditResult Audit(const Trace& trace, const Reports& reports, const InitialState& initial);

  // Per-request baseline with identical checks (grouping and dedup disabled).
  AuditResult AuditSequential(const Trace& trace, const Reports& reports,
                              const InitialState& initial);

 private:
  const Application* app_;
  AuditOptions options_;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDITOR_H_
