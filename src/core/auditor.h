// Single-shot audit entry points. The grouped SSCO audit engine (paper Figures 3 and 12)
// lives in AuditSession::FeedEpoch (src/core/audit_session.h), which chains accepted
// epochs' final states; Auditor::Audit is a thin one-epoch wrapper over a fresh session,
// kept for compatibility with pre-epoch callers.
//
// AuditSequential() re-executes each request individually in trace order with the same
// checks — no grouping, no query dedup. It corresponds to the paper's "simple
// re-execution" comparator and is the Figure 8/9 baseline.
#ifndef SRC_CORE_AUDITOR_H_
#define SRC_CORE_AUDITOR_H_

#include <string>

#include "src/core/audit_context.h"

namespace orochi {

struct AuditResult {
  bool accepted = false;
  std::string reason;  // Set on rejection.
  AuditStats stats;
  // Wall-time decomposition of this epoch's audit into pipeline phases (the runtime twin
  // of the paper's Figure 9). Unlike AuditStats this is NOT serialized into checkpoint
  // journals — it is computed fresh per Feed* call from the session's PhaseTracer.
  obs::PhaseBreakdown phases;
  // Valid only when accepted: the end-of-period object state, which seeds the next
  // audit's InitialState (§4.5). AuditSession does this chaining automatically.
  InitialState final_state;
};

// What one Feed* call amounted to, separating the three outcomes an operator reacts to
// differently: a verdict (accept/reject — the epoch was consumed), an I/O failure
// (corrupt, truncated, or unreadable spill file — the epoch is unconsumed and the audit
// can be retried once the file is restored; NEVER evidence of server misbehavior), and a
// configuration error (bad OROCHI_AUDIT_THREADS / OROCHI_AUDIT_BUDGET or options — fix
// the verifier, not the files).
enum class AuditOutcome {
  kAccepted,
  kRejected,
  kIoError,
  kConfigError,
};

// Structured context parsed out of an I/O-failure error string: which file, where, and
// the raw detail. Fields are best-effort (offset == UINT64_MAX when the error carries
// none); `detail` always holds the full message.
struct AuditIoError {
  std::string file;
  uint64_t offset = UINT64_MAX;
  std::string detail;
};

// Classifies a Feed* result into the taxonomy above. Error Results split into
// kConfigError (message names a config knob) and kIoError (everything else: wire
// corruption, short files, failed reads/writes, crashed spills); ok Results map to
// kAccepted/kRejected from the verdict.
AuditOutcome ClassifyAuditOutcome(const Result<AuditResult>& result);

// Parses file/offset context from a kIoError message ("... at offset N in <path>" /
// "... in <path>" shapes). Always fills `detail`.
AuditIoError ParseAuditIoError(const std::string& error);

// Worker-thread count an AuditOptions resolves to: num_threads when nonzero, else the
// OROCHI_AUDIT_THREADS environment variable (0 = auto, like the option), else
// std::thread::hardware_concurrency(). A set but malformed environment value is a hard
// configuration error, never a silent fallback — audit entry points surface it before
// consuming an epoch.
Result<size_t> ResolveAuditThreads(const AuditOptions& options);

class Auditor {
 public:
  explicit Auditor(const Application* app, AuditOptions options = {});

  // SSCO grouped audit of one epoch (parallel over group chunks): equivalent to feeding a
  // single epoch to a fresh AuditSession opened at `initial`.
  AuditResult Audit(const Trace& trace, const Reports& reports, const InitialState& initial);

  // Per-request baseline with identical checks (grouping and dedup disabled).
  AuditResult AuditSequential(const Trace& trace, const Reports& reports,
                              const InitialState& initial);

 private:
  const Application* app_;
  AuditOptions options_;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDITOR_H_
