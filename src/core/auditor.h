// The SSCO audit procedure (paper Figures 3 and 12) and the simple-re-execution baseline.
//
// Audit() is SSCO_AUDIT2: balanced-trace check, consistent-ordering verification
// (ProcessOpReports), versioned-storage builds, then grouped SIMD-on-demand re-execution
// with simulate-and-check, and finally the produced-output vs. trace comparison.
//
// Group re-execution is parallel: once consistent ordering is verified and the versioned
// stores are frozen, control-flow groups are independent, so their chunks are dispatched
// largest-first over a work-stealing pool (AuditOptions::num_threads workers). Accept /
// reject and the rejection reason are reproducible across thread counts: every chunk keeps
// its position in the sequential group walk, and the failure with the smallest position
// wins — exactly the failure single-threaded execution would have reported.
//
// AuditSequential() re-executes each request individually in trace order with the same
// checks — no grouping, no query dedup. It corresponds to the paper's "simple
// re-execution" comparator and is the Figure 8/9 baseline.
#ifndef SRC_CORE_AUDITOR_H_
#define SRC_CORE_AUDITOR_H_

#include <string>
#include <vector>

#include "src/core/audit_context.h"

namespace orochi {

struct AuditResult {
  bool accepted = false;
  std::string reason;  // Set on rejection.
  AuditStats stats;
  // Valid only when accepted: the end-of-period object state, which seeds the next
  // audit's InitialState (§4.5).
  InitialState final_state;
};

// Worker-thread count an AuditOptions resolves to: num_threads when nonzero, else the
// OROCHI_AUDIT_THREADS environment variable, else std::thread::hardware_concurrency().
size_t ResolveAuditThreads(const AuditOptions& options);

class Auditor {
 public:
  explicit Auditor(const Application* app, AuditOptions options = {});

  // SSCO grouped audit (parallel over group chunks).
  AuditResult Audit(const Trace& trace, const Reports& reports, const InitialState& initial);

  // Per-request baseline with identical checks (grouping and dedup disabled).
  AuditResult AuditSequential(const Trace& trace, const Reports& reports,
                              const InitialState& initial);

 private:
  // Re-executes one request with simulate-and-check; fills ctx outputs. Used by the
  // baseline and by the fallback path for groups acc cannot run in lockstep.
  Status ReplaySingleRequest(AuditContext* ctx, RequestId rid, AuditWorkerState* ws);

  // Re-executes one control-flow group chunk via the acc interpreter.
  Status RunGroupChunk(AuditContext* ctx, const Program* prog,
                       const std::vector<RequestId>& rids, AuditWorkerState* ws);

  const Application* app_;
  AuditOptions options_;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDITOR_H_
