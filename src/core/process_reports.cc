#include "src/core/process_reports.h"

namespace orochi {

Result<ProcessedReports> ProcessOpReports(const Trace& trace, const Reports& reports) {
  using R = Result<ProcessedReports>;
  ProcessedReports out;

  // Collect per-request op counts for every rid in the trace (absent reports mean the
  // request allegedly issued no operations).
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEvent::Kind::kRequest) {
      continue;
    }
    auto it = reports.op_counts.find(e.rid);
    out.op_counts[e.rid] = it == reports.op_counts.end() ? 0 : it->second;
  }

  // CheckLogs requires every alleged (rid, opnum) up to M(rid) to be claimed by exactly
  // one log entry, so the alleged totals can never exceed the entries actually present
  // in the (size-bounded) reports file. Enforce that BEFORE allocating graph/op-map
  // nodes: M(rid) is the adversary's claim, and an absurd count must reject, not size
  // an allocation.
  uint64_t total_alleged = 0;
  for (const auto& [rid, m] : out.op_counts) {
    (void)rid;
    total_alleged += m;
  }
  uint64_t total_logged = 0;
  for (const auto& log : reports.op_logs) {
    total_logged += log.size();
  }
  if (total_alleged > total_logged) {
    return R::Error("CheckLogs: alleged op counts total " + std::to_string(total_alleged) +
                    " but the logs contain only " + std::to_string(total_logged) +
                    " entries");
  }

  // CreateTimePrecedenceGraph + SplitNodes + AddProgramEdges (Figure 5, lines 4-6;
  // Figure 6). Nodes for all of (rid, 0..M, inf) are allocated per request; program-order
  // edges chain them.
  TimePrecedenceGraph gtr = CreateTimePrecedenceGraph(trace);
  for (const auto& [rid, m] : out.op_counts) {
    out.graph.AddRequest(rid, m);
    out.op_map.DeclareRequest(rid, m);
  }
  for (const auto& [rid, m] : out.op_counts) {
    uint32_t prev = out.graph.ArrivalNode(rid);
    for (uint32_t opnum = 1; opnum <= m; opnum++) {
      uint32_t node = out.graph.OpNode(rid, opnum);
      out.graph.AddEdge(prev, node);
      prev = node;
    }
    out.graph.AddEdge(prev, out.graph.DepartureNode(rid));
  }
  // SplitNodes: each GTr edge <r1, r2> becomes <(r1, inf), (r2, 0)>.
  for (const auto& [rid, parents] : gtr.parents) {
    for (RequestId parent : parents) {
      out.graph.AddEdge(out.graph.DepartureNode(parent), out.graph.ArrivalNode(rid));
    }
  }

  // CheckLogs (Figure 5, lines 28-42): every log entry must name a traced request and an
  // opnum in [1, M(rid)], and no (rid, opnum) may be claimed twice. Afterwards, every
  // (rid, opnum) up to M(rid) must be claimed by exactly one entry.
  for (size_t i = 0; i < reports.op_logs.size(); i++) {
    const auto& log = reports.op_logs[i];
    for (size_t j = 0; j < log.size(); j++) {
      const OpRecord& op = log[j];
      auto mc = out.op_counts.find(op.rid);
      if (mc == out.op_counts.end()) {
        return R::Error("CheckLogs: log entry names rid " + std::to_string(op.rid) +
                        " absent from the trace");
      }
      if (op.opnum == 0 || op.opnum > mc->second) {
        return R::Error("CheckLogs: opnum " + std::to_string(op.opnum) + " out of range for rid " +
                        std::to_string(op.rid));
      }
      if (!out.op_map.Insert(op.rid, op.opnum,
                             {static_cast<uint32_t>(i), static_cast<uint32_t>(j + 1)})) {
        return R::Error("CheckLogs: duplicate claim for (rid " + std::to_string(op.rid) +
                        ", opnum " + std::to_string(op.opnum) + ")");
      }
    }
  }
  if (!out.op_map.Complete()) {
    return R::Error("CheckLogs: some (rid, opnum) pair up to M(rid) has no log entry");
  }

  // AddStateEdges (Figure 5, lines 44-54): adjacent log entries from different requests
  // order their ops; same-request adjacency must respect program order.
  for (const auto& log : reports.op_logs) {
    for (size_t j = 1; j < log.size(); j++) {
      const OpRecord& prev = log[j - 1];
      const OpRecord& curr = log[j];
      if (prev.rid != curr.rid) {
        out.graph.AddEdge(out.graph.OpNode(prev.rid, prev.opnum),
                          out.graph.OpNode(curr.rid, curr.opnum));
      } else if (prev.opnum > curr.opnum) {
        return R::Error("AddStateEdges: intra-request opnum decreases in a log");
      }
    }
  }

  if (out.graph.HasCycle()) {
    return R::Error("consistent ordering: event graph has a cycle "
                    "(no schedule can explain the trace and logs)");
  }
  return out;
}

}  // namespace orochi
