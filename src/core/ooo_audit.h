// OOOAudit (paper Figure 13, §A.4): out-of-order re-execution following an explicit op
// schedule. This is the proof's bridge between grouped re-execution and physical
// execution; here it doubles as a test harness for the schedule-indifference property
// (Lemma 5: all well-formed schedules produce the same verdict) and as an alternative
// formulation of the simple re-execution baseline.
#ifndef SRC_CORE_OOO_AUDIT_H_
#define SRC_CORE_OOO_AUDIT_H_

#include <cstdint>
#include <vector>

#include "src/core/audit_context.h"
#include "src/core/auditor.h"

namespace orochi {

// One schedule entry: opnum 0 = read inputs / allocate, 1..M = run through the request's
// k-th state operation, kOutputStep = run to output.
struct OpScheduleEntry {
  RequestId rid;
  uint32_t opnum;
};
inline constexpr uint32_t kOutputStep = UINT32_MAX;

using OpSchedule = std::vector<OpScheduleEntry>;

// Schedule builders (all produce well-formed schedules per Definition 4).
// Requests in trace order, each run start-to-finish before the next.
OpSchedule SequentialSchedule(const Trace& trace,
                              const std::unordered_map<RequestId, uint32_t>& op_counts);
// The implied schedule: a topological sort of the event graph G.
OpSchedule TopologicalSchedule(const ProcessedReports& processed);
// A random well-formed schedule (respects program order only), for Lemma 5 testing.
OpSchedule RandomWellFormedSchedule(const Trace& trace,
                                    const std::unordered_map<RequestId, uint32_t>& op_counts,
                                    uint64_t seed);

// Runs the full audit using OOOExec over the given schedule.
AuditResult OOOAudit(const Application* app, const Trace& trace, const Reports& reports,
                     const InitialState& initial, const OpSchedule& schedule,
                     AuditOptions options = {});

}  // namespace orochi

#endif  // SRC_CORE_OOO_AUDIT_H_
