// OpMap (paper Figures 3/5/12): the index from (requestID, opnum) to the unique log entry
// (object i, sequence number) claiming that operation. CheckLogs builds it and enforces the
// bijection between log entries and the (rid, 1..M(rid)) op space.
#ifndef SRC_CORE_OP_MAP_H_
#define SRC_CORE_OP_MAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/objects/object_model.h"

namespace orochi {

struct OpLocation {
  uint32_t object = UINT32_MAX;  // Object id i (index into reports.objects).
  uint32_t seqnum = 0;           // 1-based position in OLi.

  bool valid() const { return object != UINT32_MAX; }
};

class OpMap {
 public:
  // Pre-sizes the per-request slot array to M(rid); all slots start unset.
  void DeclareRequest(RequestId rid, uint32_t op_count) {
    slots_[rid].resize(op_count);
  }

  bool Knows(RequestId rid) const { return slots_.count(rid) > 0; }

  // False when the slot is already set (duplicate claim) or out of range.
  bool Insert(RequestId rid, uint32_t opnum, OpLocation loc) {
    auto it = slots_.find(rid);
    if (it == slots_.end() || opnum == 0 || opnum > it->second.size()) {
      return false;
    }
    OpLocation& slot = it->second[opnum - 1];
    if (slot.valid()) {
      return false;
    }
    slot = loc;
    return true;
  }

  // Unset/absent lookups return an invalid location.
  OpLocation Find(RequestId rid, uint32_t opnum) const {
    auto it = slots_.find(rid);
    if (it == slots_.end() || opnum == 0 || opnum > it->second.size()) {
      return {};
    }
    return it->second[opnum - 1];
  }

  // True when every declared (rid, 1..M) slot is set.
  bool Complete() const {
    for (const auto& [rid, slots] : slots_) {
      (void)rid;
      for (const OpLocation& loc : slots) {
        if (!loc.valid()) {
          return false;
        }
      }
    }
    return true;
  }

  size_t TotalOps() const {
    size_t n = 0;
    for (const auto& [rid, slots] : slots_) {
      (void)rid;
      n += slots.size();
    }
    return n;
  }

 private:
  std::unordered_map<RequestId, std::vector<OpLocation>> slots_;
};

}  // namespace orochi

#endif  // SRC_CORE_OP_MAP_H_
