// The re-execution drivers shared by both audit engines: AuditSession's grouped
// SIMD-on-demand epoch audit and Auditor::AuditSequential's per-request baseline.
//
// ReplaySingleRequest re-executes one request with simulate-and-check (Figure 12); it is
// the baseline's unit of work and the §4.7 escape hatch for groups acc cannot run in
// lockstep. RunGroupChunk re-executes one control-flow group chunk via the acc
// interpreter, falling back to per-request replay on AccStepResult::kFallback.
#ifndef SRC_CORE_REEXEC_H_
#define SRC_CORE_REEXEC_H_

#include <vector>

#include "src/core/audit_context.h"

namespace orochi {

Status ReplaySingleRequest(const Application* app, const InterpreterOptions& interp_options,
                           AuditContext* ctx, RequestId rid, AuditWorkerState* ws);

Status RunGroupChunk(const Application* app, const InterpreterOptions& interp_options,
                     AuditContext* ctx, const Program* prog,
                     const std::vector<RequestId>& rids, AuditWorkerState* ws);

}  // namespace orochi

#endif  // SRC_CORE_REEXEC_H_
