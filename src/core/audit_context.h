// Shared audit-time state: the OpMap, versioned stores built by the redo pass (§4.5),
// CheckOp / SimOp (simulate-and-check, §3.3 and Figure 12), non-determinism validation
// (§4.6), and read-query deduplication. Both the grouped SIMD-on-demand re-execution and
// the per-request (baseline / fallback / OOO) re-executions drive this context.
//
// Concurrency model (parallel audit): after Prepare() the versioned stores, parsed logs,
// OpMap, and trace indexes are immutable, so CheckOp/SimOp reads are lock-free. The only
// mutable shared state on the re-execution path is (a) the SELECT parse + dedup caches,
// which are sharded with per-shard mutexes so §4.5 query dedup keeps working across
// threads, and (b) per-request cursors/output slots, which are pre-built for every traced
// rid in Prepare() and only ever touched by the one worker executing that rid's group.
// Stats on the hot path accumulate into a per-worker AuditWorkerState and are merged at
// join, keeping counters contention-free.
#ifndef SRC_CORE_AUDIT_CONTEXT_H_
#define SRC_CORE_AUDIT_CONTEXT_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/core/process_reports.h"
#include "src/obs/trace.h"
#include "src/lang/step_result.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"
#include "src/server/application.h"
#include "src/sql/versioned_database.h"

namespace orochi {

struct AuditOptions {
  size_t max_group_size = 3000;      // acc-PHP's group cap (§4.7).
  bool enable_query_dedup = true;    // §4.5 read-query dedup (ablation switch).
  // Worker threads for grouped re-execution. 0 = auto: OROCHI_AUDIT_THREADS when set,
  // else std::thread::hardware_concurrency().
  size_t num_threads = 0;
  // Memory budget (bytes) for trace payloads resident during an out-of-core streaming
  // audit (AuditSession::FeedEpochFilesStreamed / FeedShardedEpoch): workers block until
  // their chunk fits, and a single chunk larger than the whole budget is admitted only
  // while nothing else is resident. 0 = auto: OROCHI_AUDIT_BUDGET when set, else
  // unlimited. Ignored by the in-memory path.
  size_t max_resident_bytes = 0;
  // Pass-2 read-ahead depth for streamed audits: how many future chunks the prefetch
  // I/O thread (src/stream/prefetch.h) may hold resident ahead of the workers, charged
  // to the same max_resident_bytes budget. 0 disables read-ahead entirely.
  // kPrefetchDepthAuto = auto: OROCHI_PREFETCH_DEPTH when set, else the built-in
  // default. Ignored by the in-memory path. Deliberately excluded from the checkpoint
  // fingerprint — a resumed audit may use any depth.
  static constexpr size_t kPrefetchDepthAuto = SIZE_MAX;
  size_t prefetch_depth = kPrefetchDepthAuto;
  // I/O environment every spill read/write of the audit goes through. nullptr = the
  // production posix environment; tests install a FaultInjectingEnv here to drive the
  // whole pipeline through injected faults. Not owned.
  Env* io_env = nullptr;
  // When nonempty, FeedEpochFilesStreamed journals completed pass-2 chunks to this
  // sidecar file and, on a later run over the same epoch, resumes without re-executing
  // them. Removed once a verdict (accept or reject) is reached.
  std::string checkpoint_path;
  // Phase tracer the audit's TraceSpans record into. nullptr = the process-wide
  // obs::PhaseTracer::Default(); concurrent sessions that want isolated per-epoch
  // attribution install private tracers here. Not owned.
  obs::PhaseTracer* tracer = nullptr;
  InterpreterOptions interp;
};

struct AuditStats {
  double proc_op_reports_seconds = 0;  // Figures 5/6 logic.
  double db_redo_seconds = 0;          // Versioned-storage build.
  double reexec_seconds = 0;           // SIMD-on-demand / per-request replay ("PHP").
  double db_query_seconds = 0;         // SELECTs against versioned storage (inside reexec).
  double other_seconds = 0;            // Init + output comparison + bookkeeping.

  uint64_t total_instructions = 0;
  uint64_t multivalent_instructions = 0;
  uint64_t num_groups = 0;
  uint64_t groups_multi = 0;     // Groups with more than one request.
  uint64_t fallback_groups = 0;  // Groups re-executed per-request (§4.7 escape hatch).
  uint64_t ops_checked = 0;
  uint64_t db_selects_issued = 0;   // SELECTs actually run against versioned storage.
  uint64_t db_selects_deduped = 0;  // SELECTs answered from the dedup cache.
  // Pass-2 chunk tasks replayed from a checkpoint journal instead of re-executed (only
  // nonzero on a resumed streamed audit; see src/stream/checkpoint.h).
  uint64_t checkpoint_chunks_reused = 0;
  // Per-object Prepare scans a prior (killed) run had already journaled as complete
  // (only nonzero on a streamed resume; the scans still rerun — the stores are in-memory
  // — this counts the journal's coverage of the Prepare phase).
  uint64_t prepare_watermarks_reused = 0;
  // Pass-3 response compares skipped on resume because they sit below the prior run's
  // journaled compare watermark.
  uint64_t compare_records_resumed = 0;
  // Largest record payload pass 1 transiently materialized while indexing the reports
  // spill (max-merged, not summed). Bounded by ~wire::kMaxOpLogSegmentBytes for v3
  // spills; a v1/v2 file pays its largest monolithic op-log record.
  uint64_t pass1_transient_peak_bytes = 0;

  struct GroupStat {
    std::string script;
    uint32_t n;        // Requests in the group.
    uint64_t length;   // Instructions executed by the group (l_c in Figure 11).
    double alpha;      // Fraction of univalent instructions (alpha_c in Figure 11).
  };
  std::vector<GroupStat> group_stats;

  // Folds a per-worker (or per-task) stats block into this one. The parallel audit merges
  // task blocks in group order, so group_stats ordering matches sequential execution.
  void MergeFrom(const AuditStats& o);
};

// Per-worker mutable state for the re-execution hot path: a stats block the worker owns
// exclusively (merged under the caller's control) and a scratch buffer reused for
// op-content serialization so CheckOp does not allocate per comparison.
struct AuditWorkerState {
  explicit AuditWorkerState(AuditStats* s) : stats(s) {}
  AuditStats* stats;
  std::string scratch;
};

// Forward-scan access to one object's op log with entry contents materialized. The
// in-memory path never installs one (the resident Reports backs scans directly); the
// out-of-core path installs a segment-paging scanner (src/stream/reports_index.h) before
// Prepare(), so the versioned-store builds read spilled log contents in bounded pages
// charged against the same budget as trace payloads. The entries handed to `fn` must be
// identical to the resident log's — the scanner only changes *when* contents bytes are
// resident, never what the builds see.
class OpLogScanner {
 public:
  virtual ~OpLogScanner() = default;
  // Invokes fn(entry, seqnum) for every entry of `object`'s log in order (seqnum is
  // 1-based). A non-ok Status from fn aborts the scan and is returned; the scanner's own
  // I/O failures are also returned (callers distinguish them via io_failed()).
  virtual Status Scan(size_t object,
                      const std::function<Status(const OpRecord&, uint64_t)>& fn) = 0;
  // True when the last Scan error came from paging (a file-level problem, not an audit
  // verdict) — mirrors AuditExecOutcome::gate_failed.
  virtual bool io_failed() const { return false; }
};

class AuditContext {
 public:
  AuditContext(const Trace* trace, const Reports* reports, const Application* app,
               const InitialState* initial, AuditOptions options);

  // Installs the op-log scanner the versioned-store builds read spilled contents through.
  // Must be called before Prepare(); null (the default) scans the resident reports.
  void set_oplog_scanner(OpLogScanner* scanner) { oplog_scanner_ = scanner; }

  // Balanced-trace check, ProcessOpReports, and the versioned-storage builds. An error
  // means the audit REJECTs with that reason. On success the versioned stores are frozen:
  // everything the re-execution phase reads is immutable from here on.
  Status Prepare();

  // CheckOp (Figure 12 lines 10-15): validates that the program-generated op matches the
  // unique log entry claiming (rid, opnum); returns that entry's (object, seqnum).
  Result<OpLocation> CheckOp(RequestId rid, uint32_t opnum, const StateOpRequest& op,
                             AuditWorkerState* ws);
  Result<OpLocation> CheckOp(RequestId rid, uint32_t opnum, const StateOpRequest& op) {
    return CheckOp(rid, opnum, op, &inline_ws_);
  }

  // SimOp (Figure 12 lines 17-28) extended with write results: reads are fed from the
  // logs / versioned stores; DB writes return the redo pass outcome.
  Result<Value> SimOp(const StateOpRequest& op, OpLocation loc, AuditWorkerState* ws);
  Result<Value> SimOp(const StateOpRequest& op, OpLocation loc) {
    return SimOp(op, loc, &inline_ws_);
  }

  // --- Non-determinism feeding (§4.6) ---
  // Resets the per-request cursor (re-execution is idempotent; a request may re-run).
  void ResetNondet(RequestId rid);
  Result<Value> NextNondet(RequestId rid, const NondetRequest& req);
  Status CheckNondetConsumed(RequestId rid);

  // M(rid) with default 0.
  uint32_t OpCount(RequestId rid) const;

  // The trace's request event for rid; nullptr when absent.
  const TraceEvent* RequestEvent(RequestId rid) const;

  const ProcessedReports& processed() const { return processed_; }
  AuditStats& stats() { return stats_; }

  // Produced-output registry (filled by the re-execution drivers). Slots exist for every
  // traced rid after Prepare(), so concurrent SetOutput calls for distinct rids never
  // mutate the map structure; callers must only pass rids present in the trace.
  void SetOutput(RequestId rid, std::string body);
  // The output a re-execution produced for rid, or nullptr when none was set. Same
  // concurrency discipline as SetOutput: only the worker owning rid's task may call this
  // while tasks run (the checkpoint journal captures a chunk's outputs through it).
  const std::string* ProducedOutput(RequestId rid) const;
  // Compares produced outputs against the trace's responses (the final accept check).
  Status CompareOutputs();
  // Verdict for one traced response against the produced outputs; empty = match. The
  // single source of both rejection reasons ("never re-executed" / mismatch):
  // CompareOutputs walks the in-memory trace with it, and the out-of-core comparer calls
  // it per re-streamed response body (the skeleton trace holds no bodies), so the two
  // paths cannot drift apart.
  std::string CheckResponseOutput(RequestId rid, const std::string& body) const;

  // The end-of-period object state implied by the logs (kept as the next InitialState).
  InitialState ExtractFinalState() const;

 private:
  // Forward scan over one op log: via the installed scanner (spilled contents paged in
  // per segment) or directly over the resident reports. Shared by the three builds.
  Status ScanOpLog(size_t object,
                   const std::function<Status(const OpRecord&, uint64_t)>& fn);

  Status BuildRegisterIndexes();
  Status BuildVersionedKv();
  Status BuildVersionedDb();

  Result<Value> SimDbOp(const StateOpRequest& op, OpLocation loc, AuditWorkerState* ws);
  // Executes (or dedups) one SELECT at timestamp ts.
  Result<std::shared_ptr<const StmtResult>> RunSelect(const std::string& sql, uint64_t ts,
                                                      AuditWorkerState* ws);

  const Trace* trace_;
  const Reports* reports_;
  const Application* app_;
  const InitialState* initial_;
  AuditOptions options_;
  OpLogScanner* oplog_scanner_ = nullptr;

  ProcessedReports processed_;
  std::unordered_map<RequestId, const TraceEvent*> request_events_;

  // Per-register-object parsed write sequences: (seqnum, value), ascending.
  std::vector<std::vector<std::pair<uint64_t, Value>>> register_writes_;
  VersionedKv versioned_kv_;
  VersionedDatabase versioned_db_;
  int kv_object_ = -1;
  int db_object_ = -1;

  // Parsed DB log entries (per seqnum-1) and redo outcomes for write statements (by ts).
  std::vector<DbContents> db_log_parsed_;
  std::unordered_map<uint64_t, int64_t> redo_affected_;

  // SELECT parse + dedup caches, striped so dedup works across audit workers: a shard's
  // mutex guards its parse and dedup maps; the (expensive) SELECT itself runs outside any
  // lock against the frozen versioned store.
  struct DedupEntry {
    uint64_t ts;
    std::shared_ptr<const StmtResult> result;
  };
  struct QueryCacheShard {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const SqlStatement>> parse;
    std::unordered_map<std::string, std::vector<DedupEntry>> dedup;  // Sorted by ts.
  };
  static constexpr size_t kQueryCacheShards = 16;
  std::array<QueryCacheShard, kQueryCacheShards> query_cache_;

  // Nondet cursors and monotonicity state. Pre-built for every traced rid in Prepare();
  // re-execution only mutates existing entries (one worker per rid at a time).
  struct NondetCursor {
    size_t pos = 0;
    bool has_last_time = false;
    int64_t last_time = 0;
    bool has_last_micro = false;
    double last_micro = 0;
  };
  std::unordered_map<RequestId, NondetCursor> nondet_cursors_;
  static const std::vector<NondetRecord> kNoNondet;

  struct OutputSlot {
    bool produced = false;
    std::string body;
  };
  std::unordered_map<RequestId, OutputSlot> outputs_;

  AuditStats stats_;
  // Worker state backing the single-threaded convenience overloads (baseline / OOO /
  // main-thread callers): stats feed straight into stats_.
  AuditWorkerState inline_ws_;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDIT_CONTEXT_H_
