// Shared audit-time state: the OpMap, versioned stores built by the redo pass (§4.5),
// CheckOp / SimOp (simulate-and-check, §3.3 and Figure 12), non-determinism validation
// (§4.6), and read-query deduplication. Both the grouped SIMD-on-demand re-execution and
// the per-request (baseline / fallback / OOO) re-executions drive this context.
#ifndef SRC_CORE_AUDIT_CONTEXT_H_
#define SRC_CORE_AUDIT_CONTEXT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/core/process_reports.h"
#include "src/lang/step_result.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"
#include "src/server/application.h"
#include "src/sql/versioned_database.h"

namespace orochi {

struct AuditOptions {
  size_t max_group_size = 3000;      // acc-PHP's group cap (§4.7).
  bool enable_query_dedup = true;    // §4.5 read-query dedup (ablation switch).
  InterpreterOptions interp;
};

struct AuditStats {
  double proc_op_reports_seconds = 0;  // Figures 5/6 logic.
  double db_redo_seconds = 0;          // Versioned-storage build.
  double reexec_seconds = 0;           // SIMD-on-demand / per-request replay ("PHP").
  double db_query_seconds = 0;         // SELECTs against versioned storage (inside reexec).
  double other_seconds = 0;            // Init + output comparison + bookkeeping.

  uint64_t total_instructions = 0;
  uint64_t multivalent_instructions = 0;
  uint64_t num_groups = 0;
  uint64_t groups_multi = 0;     // Groups with more than one request.
  uint64_t fallback_groups = 0;  // Groups re-executed per-request (§4.7 escape hatch).
  uint64_t ops_checked = 0;
  uint64_t db_selects_issued = 0;   // SELECTs actually run against versioned storage.
  uint64_t db_selects_deduped = 0;  // SELECTs answered from the dedup cache.

  struct GroupStat {
    std::string script;
    uint32_t n;        // Requests in the group.
    uint64_t length;   // Instructions executed by the group (l_c in Figure 11).
    double alpha;      // Fraction of univalent instructions (alpha_c in Figure 11).
  };
  std::vector<GroupStat> group_stats;
};

class AuditContext {
 public:
  AuditContext(const Trace* trace, const Reports* reports, const Application* app,
               const InitialState* initial, AuditOptions options);

  // Balanced-trace check, ProcessOpReports, and the versioned-storage builds. An error
  // means the audit REJECTs with that reason.
  Status Prepare();

  // CheckOp (Figure 12 lines 10-15): validates that the program-generated op matches the
  // unique log entry claiming (rid, opnum); returns that entry's (object, seqnum).
  Result<OpLocation> CheckOp(RequestId rid, uint32_t opnum, const StateOpRequest& op);

  // SimOp (Figure 12 lines 17-28) extended with write results: reads are fed from the
  // logs / versioned stores; DB writes return the redo pass outcome.
  Result<Value> SimOp(const StateOpRequest& op, OpLocation loc);

  // --- Non-determinism feeding (§4.6) ---
  // Resets the per-request cursor (re-execution is idempotent; a request may re-run).
  void ResetNondet(RequestId rid);
  Result<Value> NextNondet(RequestId rid, const NondetRequest& req);
  Status CheckNondetConsumed(RequestId rid);

  // M(rid) with default 0.
  uint32_t OpCount(RequestId rid) const;

  // The trace's request event for rid; nullptr when absent.
  const TraceEvent* RequestEvent(RequestId rid) const;

  const ProcessedReports& processed() const { return processed_; }
  AuditStats& stats() { return stats_; }

  // Produced-output registry (filled by the re-execution drivers).
  void SetOutput(RequestId rid, std::string body) { outputs_[rid] = std::move(body); }
  // Compares produced outputs against the trace's responses (the final accept check).
  Status CompareOutputs();

  // The end-of-period object state implied by the logs (kept as the next InitialState).
  InitialState ExtractFinalState() const;

 private:
  Status BuildRegisterIndexes();
  Status BuildVersionedKv();
  Status BuildVersionedDb();

  Result<Value> SimDbOp(const StateOpRequest& op, OpLocation loc);
  // Executes (or dedups) one SELECT at timestamp ts.
  Result<std::shared_ptr<const StmtResult>> RunSelect(const std::string& sql, uint64_t ts);

  const Trace* trace_;
  const Reports* reports_;
  const Application* app_;
  const InitialState* initial_;
  AuditOptions options_;

  ProcessedReports processed_;
  std::unordered_map<RequestId, const TraceEvent*> request_events_;

  // Per-register-object parsed write sequences: (seqnum, value), ascending.
  std::vector<std::vector<std::pair<uint64_t, Value>>> register_writes_;
  VersionedKv versioned_kv_;
  VersionedDatabase versioned_db_;
  int kv_object_ = -1;
  int db_object_ = -1;

  // Parsed DB log entries (per seqnum-1) and redo outcomes for write statements (by ts).
  std::vector<DbContents> db_log_parsed_;
  std::unordered_map<uint64_t, int64_t> redo_affected_;

  // SELECT parse + dedup caches.
  std::unordered_map<std::string, std::shared_ptr<const SqlStatement>> select_parse_cache_;
  struct DedupEntry {
    uint64_t ts;
    std::shared_ptr<const StmtResult> result;
  };
  std::unordered_map<std::string, std::vector<DedupEntry>> dedup_cache_;  // Sorted by ts.

  // Nondet cursors and monotonicity state.
  struct NondetCursor {
    size_t pos = 0;
    bool has_last_time = false;
    int64_t last_time = 0;
    bool has_last_micro = false;
    double last_micro = 0;
  };
  std::unordered_map<RequestId, NondetCursor> nondet_cursors_;
  static const std::vector<NondetRecord> kNoNondet;

  std::unordered_map<RequestId, std::string> outputs_;
  AuditStats stats_;
};

}  // namespace orochi

#endif  // SRC_CORE_AUDIT_CONTEXT_H_
