#include "src/core/ooo_audit.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/timer.h"

namespace orochi {

OpSchedule SequentialSchedule(const Trace& trace,
                              const std::unordered_map<RequestId, uint32_t>& op_counts) {
  OpSchedule s;
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEvent::Kind::kRequest) {
      continue;
    }
    auto it = op_counts.find(e.rid);
    uint32_t m = it == op_counts.end() ? 0 : it->second;
    s.push_back({e.rid, 0});
    for (uint32_t k = 1; k <= m; k++) {
      s.push_back({e.rid, k});
    }
    s.push_back({e.rid, kOutputStep});
  }
  return s;
}

OpSchedule TopologicalSchedule(const ProcessedReports& processed) {
  OpSchedule s;
  for (uint32_t node : processed.graph.TopologicalOrder()) {
    EventGraph::NodeLabel label = processed.graph.Label(node);
    s.push_back({label.rid, label.opnum == EventGraph::kInfinityOp ? kOutputStep : label.opnum});
  }
  return s;
}

OpSchedule RandomWellFormedSchedule(const Trace& trace,
                                    const std::unordered_map<RequestId, uint32_t>& op_counts,
                                    uint64_t seed) {
  // Interleave per-request sequences by repeatedly picking a random request that still
  // has pending steps.
  struct Cursor {
    RequestId rid;
    uint32_t next = 0;  // 0..M then kOutputStep.
    uint32_t m = 0;
    bool done = false;
  };
  std::vector<Cursor> cursors;
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEvent::Kind::kRequest) {
      continue;
    }
    auto it = op_counts.find(e.rid);
    cursors.push_back({e.rid, 0, it == op_counts.end() ? 0 : it->second, false});
  }
  Rng rng(seed);
  OpSchedule s;
  size_t remaining = cursors.size();
  while (remaining > 0) {
    size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(cursors.size()) - 1));
    Cursor& c = cursors[pick];
    if (c.done) {
      continue;
    }
    if (c.next <= c.m) {
      s.push_back({c.rid, c.next});
      c.next++;
    } else {
      s.push_back({c.rid, kOutputStep});
      c.done = true;
      remaining--;
    }
  }
  return s;
}

AuditResult OOOAudit(const Application* app, const Trace& trace, const Reports& reports,
                     const InitialState& initial, const OpSchedule& schedule,
                     AuditOptions options) {
  AuditResult out;
  AuditContext ctx(&trace, &reports, app, &initial, options);
  if (Status st = ctx.Prepare(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }

  struct Thread {
    std::unique_ptr<Interpreter> interp;
    uint32_t ops_done = 0;
    bool finished = false;
    bool pending_op = false;        // Interpreter stopped at a state op awaiting SimOp.
    StateOpRequest held_op;         // The op it stopped at.
    std::string body;
    bool missing_script = false;
  };
  std::unordered_map<RequestId, Thread> threads;

  auto reject = [&](const std::string& reason) {
    AuditResult r;
    r.reason = reason;
    r.stats = ctx.stats();
    return r;
  };

  // Runs a thread until its next state op (held, not yet simulated), output, or trap.
  // Nondet calls are serviced inline.
  auto run_until_event = [&](RequestId rid, Thread* t) -> Status {
    while (true) {
      StepResult step = t->interp->Run();
      switch (step.kind) {
        case StepResult::Kind::kFinished:
          t->finished = true;
          t->body = t->interp->output();
          return Status::Ok();
        case StepResult::Kind::kError:
          t->finished = true;
          t->body = t->interp->output() + "\n[error] " + step.error;
          return Status::Ok();
        case StepResult::Kind::kStateOp:
          t->pending_op = true;
          t->held_op = std::move(step.op);
          return Status::Ok();
        case StepResult::Kind::kNondet: {
          Result<Value> v = ctx.NextNondet(rid, step.nondet);
          if (!v.ok()) {
            return Status::Error(v.error());
          }
          t->interp->ProvideValue(std::move(v).value());
          break;
        }
      }
    }
  };

  {
    ScopedAccumulator timer(&ctx.stats().reexec_seconds);
    for (const OpScheduleEntry& entry : schedule) {
      if (entry.opnum == 0) {
        // Read inputs, allocate program structures (Figure 13 lines 6-8).
        const TraceEvent* req = ctx.RequestEvent(entry.rid);
        if (req == nullptr) {
          return reject("ooo: schedule names rid " + std::to_string(entry.rid) +
                        " not in the trace");
        }
        Thread t;
        const Program* prog = app->GetScript(req->script);
        if (prog == nullptr) {
          if (ctx.OpCount(entry.rid) != 0) {
            return reject("ooo: unknown script but M(rid) > 0");
          }
          t.missing_script = true;
          t.finished = true;
          t.body = kNoSuchScriptBody;
        } else {
          ctx.ResetNondet(entry.rid);
          t.interp = std::make_unique<Interpreter>(prog, &req->params, options.interp);
        }
        threads[entry.rid] = std::move(t);
        continue;
      }

      auto it = threads.find(entry.rid);
      if (it == threads.end()) {
        return reject("ooo: schedule uses rid " + std::to_string(entry.rid) +
                      " before its init step");
      }
      Thread& t = it->second;

      if (entry.opnum == kOutputStep) {
        // Run to output; reaching another state op here means the request issues more ops
        // than scheduled (Figure 13 lines 10-14).
        if (!t.finished) {
          if (t.pending_op) {
            return reject("ooo: output step reached with an unsimulated op");
          }
          if (Status st = run_until_event(entry.rid, &t); !st.ok()) {
            return reject(st.error());
          }
          if (!t.finished) {
            return reject("ooo: request issued a state op where output was expected");
          }
        }
        if (!t.missing_script) {
          if (t.ops_done != ctx.OpCount(entry.rid)) {
            return reject("ooo: rid " + std::to_string(entry.rid) + " issued " +
                          std::to_string(t.ops_done) + " ops but M(rid) = " +
                          std::to_string(ctx.OpCount(entry.rid)));
          }
          if (Status st = ctx.CheckNondetConsumed(entry.rid); !st.ok()) {
            return reject(st.error());
          }
          ctx.stats().total_instructions += t.interp->instructions_executed();
        }
        ctx.SetOutput(entry.rid, t.body);
        continue;
      }

      // Ordinary op step: run to the next state op and simulate it (Figure 13 lines 16-23).
      if (t.finished) {
        return reject("ooo: request finished before scheduled op " +
                      std::to_string(entry.opnum));
      }
      if (!t.pending_op) {
        if (Status st = run_until_event(entry.rid, &t); !st.ok()) {
          return reject(st.error());
        }
      }
      if (t.finished || !t.pending_op) {
        return reject("ooo: request produced output where a state op was expected");
      }
      t.ops_done++;
      if (t.ops_done != entry.opnum) {
        return reject("ooo: schedule op numbering does not match execution");
      }
      Result<OpLocation> loc = ctx.CheckOp(entry.rid, t.ops_done, t.held_op);
      if (!loc.ok()) {
        return reject(loc.error());
      }
      Result<Value> v = ctx.SimOp(t.held_op, loc.value());
      if (!v.ok()) {
        return reject(v.error());
      }
      t.pending_op = false;
      t.interp->ProvideValue(std::move(v).value());
    }
  }

  if (Status st = ctx.CompareOutputs(); !st.ok()) {
    out.reason = st.error();
    out.stats = ctx.stats();
    return out;
  }
  out.accepted = true;
  out.final_state = ctx.ExtractFinalState();
  out.stats = ctx.stats();
  return out;
}

}  // namespace orochi
