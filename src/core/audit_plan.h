// The grouped SSCO audit engine shared by the in-memory and out-of-core paths: planning
// (walk the reported groups in order, validate them, cut them into chunk tasks) and
// parallel execution (dispatch chunks costliest-first over a work-stealing pool with the
// deterministic smallest-position-failure-wins rejection rule).
//
// Both `AuditSession::FeedEpoch` and the streaming audit (src/stream/) drive exactly this
// code, which is what makes their verdict, rejection reason, and final_state bit-identical
// by construction: the only difference between the two paths is the AuditTaskGate an
// out-of-core caller installs to page a task's trace payloads in and out around its run.
#ifndef SRC_CORE_AUDIT_PLAN_H_
#define SRC_CORE_AUDIT_PLAN_H_

#include <string>
#include <vector>

#include "src/core/audit_context.h"

namespace orochi {

// One unit of parallel audit work: a chunk of a control-flow group. `order` is the chunk's
// position in the sequential group walk (group validation consumes a position too), which
// is the tiebreak that makes rejection deterministic across thread counts.
struct AuditTask {
  size_t order = 0;
  const Program* prog = nullptr;
  std::vector<RequestId> rids;
  // Scheduling cost estimate: requests plus the total reported op-length of the chunk
  // (Σ 1 + M(rid)). Group length is unknown until executed; op count is the best static
  // proxy for how much simulate-and-check work the chunk carries, and weighting it beats
  // request count alone when scripts differ wildly in state-op density.
  uint64_t cost = 0;
  // True when this chunk shares a rid with an earlier task (possible only for adversarial
  // reports that list a rid in several groups). Such chunks run serially after the pool
  // joins, so two workers never touch the same rid's cursor or output slot concurrently.
  bool serial = false;
};

inline constexpr size_t kNoAuditFailure = SIZE_MAX;

struct AuditPlan {
  std::vector<AuditTask> tasks;
  // Planning-time validation failure (kNoAuditFailure when the walk completed): the walk
  // position at which sequential execution would have reported it. Planning stops there —
  // no later event can win the min-order race — but earlier tasks still run, since one of
  // them may fail at a strictly smaller position.
  size_t fail_order = kNoAuditFailure;
  std::string fail_reason;
};

// Walks reports.groups in order against a prepared context: validates each group (every
// rid traced, one script per group), resolves the script, handles unknown-script groups
// (outputs set at plan time when legal), and cuts runnable groups into max_group_size
// chunks. Mutates ctx stats (num_groups / groups_multi) exactly as the sequential walk
// would.
AuditPlan PlanAuditTasks(AuditContext* ctx, const Reports& reports, const Application* app,
                         const AuditOptions& options);

// The exact order ExecuteAuditPlan dispatches the plan's pool (non-serial) tasks in for
// `num_threads` resolved workers: costliest-first when a parallel pool will run
// (num_threads > 1 and more than one pool task), plan order otherwise. The pass-2
// prefetcher (src/stream/prefetch.h) walks this order ahead of the workers; both callers
// share this one function so walk and dispatch can never drift. Pointers index into
// plan.tasks, which must outlive the result.
std::vector<const AuditTask*> PoolDispatchOrder(const AuditPlan& plan, size_t num_threads);

// Hook bracketing each task's execution, for out-of-core callers: Acquire runs on the
// worker thread immediately before the task's re-execution (page in the chunk's trace
// payloads, blocking on the memory budget), Release immediately after it retires (evict).
// Acquire and Release calls for one task always pair on the same thread; tasks skipped
// because a strictly earlier failure already decided the verdict get neither call.
class AuditTaskGate {
 public:
  virtual ~AuditTaskGate() = default;
  virtual Status Acquire(const AuditTask& task) = 0;
  virtual void Release(const AuditTask& task) = 0;
};

// Everything a successfully retired task contributed: its stats block and the outputs it
// produced, keyed by its walk order. A checkpoint journal persists these so a resumed
// audit replays the contribution instead of re-executing the chunk.
struct AuditTaskRecord {
  AuditStats stats;
  std::vector<std::pair<RequestId, std::string>> outputs;  // In task.rids order.
};

// Sidecar journal of completed tasks (src/stream/checkpoint.h implements it over a wire
// checkpoint file). Only successful tasks are journaled — failed chunks re-execute on
// resume and fail identically, which keeps the verdict bit-identical by construction.
// Both methods are called from worker threads; implementations must be thread-safe.
class AuditTaskJournal {
 public:
  virtual ~AuditTaskJournal() = default;
  // The record a prior run journaled for walk order `order`, or nullptr. The returned
  // pointer must stay valid until ExecuteAuditPlan returns.
  virtual const AuditTaskRecord* Lookup(size_t order) = 0;
  // Journals a task that just retired successfully. Failures here must be swallowed (a
  // lost journal entry only costs re-execution on resume, never correctness).
  virtual void Record(const AuditTask& task, const AuditTaskRecord& record) = 0;
};

struct AuditExecOutcome {
  size_t fail_order = kNoAuditFailure;  // kNoAuditFailure: every task succeeded.
  std::string fail_reason;
  // True when the winning failure came from the gate (an I/O problem paging the chunk in),
  // which callers surface as a file-level error rather than an audit REJECT.
  bool gate_failed = false;
};

// Runs the plan's tasks: parallel chunks costliest-first over a work-stealing pool of
// ResolveAuditThreads(options) workers, then the serial chunks in order. Per-task stats
// merge into ctx->stats() in walk order, so merged statistics are schedule-independent.
// The returned failure is the plan's failure, a task failure, or a gate failure —
// whichever claims the smallest walk position. A journaled task replays its record
// (stats + outputs, checkpoint_chunks_reused incremented) without touching the gate.
AuditExecOutcome ExecuteAuditPlan(AuditContext* ctx, const Application* app,
                                  const AuditOptions& options, const AuditPlan& plan,
                                  AuditTaskGate* gate = nullptr,
                                  AuditTaskJournal* journal = nullptr);

}  // namespace orochi

#endif  // SRC_CORE_AUDIT_PLAN_H_
