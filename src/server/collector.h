// The trace collector: the trusted middlebox of paper §1/§4 that records requests and
// responses in the order they actually cross the server boundary. In the periodic-audit
// deployment (§2, §4.5) the collector also closes epochs: Flush() spills everything
// recorded so far to a wire-format file and starts the next epoch's trace empty.
#ifndef SRC_SERVER_COLLECTOR_H_
#define SRC_SERVER_COLLECTOR_H_

#include <iterator>
#include <mutex>
#include <string>
#include <utility>

#include "src/lang/interpreter.h"
#include "src/objects/trace.h"
#include "src/objects/wire_format.h"

namespace orochi {

class Collector {
 public:
  // In a sharded deployment one collector sits in front of each front end; a nonzero
  // shard_id stamps every spill file this collector flushes so the verifier can identify
  // and deterministically order the shards when merging one logical epoch
  // (AuditSession::FeedShardedEpoch). The default 0 is the classic single-collector
  // deployment and leaves the spill files byte-identical to before. `env` routes spill
  // writes (nullptr = the production posix environment; tests inject faults here).
  explicit Collector(uint32_t shard_id = 0, Env* env = nullptr)
      : shard_id_(shard_id), env_(env) {}

  uint32_t shard_id() const { return shard_id_; }

  void RecordRequest(RequestId rid, const std::string& script, const RequestParams& params) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRequest;
    e.rid = rid;
    e.script = script;
    e.params = params;
    trace_.events.push_back(std::move(e));
  }

  void RecordResponse(RequestId rid, const std::string& body) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e;
    e.kind = TraceEvent::Kind::kResponse;
    e.rid = rid;
    e.body = body;
    trace_.events.push_back(std::move(e));
  }

  // Snapshot of the trace recorded so far (copy taken under the lock; safe while workers
  // are still recording, though the snapshot is only balanced after a drain).
  Trace trace() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }

  // Hands over the recorded trace and leaves an empty one behind, so the collector keeps
  // recording the next epoch.
  Trace TakeTrace() {
    std::lock_guard<std::mutex> lock(mu_);
    Trace out = std::move(trace_);
    trace_ = Trace{};
    return out;
  }

  // Returns a trace a previous TakeTrace() handed out, after the caller failed to ship
  // it (e.g. CollectorClient ran out of reconnect attempts): the returned events go back
  // in front of anything recorded since, so the next epoch close carries them and no
  // recorded traffic is lost.
  void Restore(Trace&& trace) {
    std::lock_guard<std::mutex> lock(mu_);
    if (trace_.events.empty()) {
      trace_ = std::move(trace);
      return;
    }
    trace.events.insert(trace.events.end(),
                        std::make_move_iterator(trace_.events.begin()),
                        std::make_move_iterator(trace_.events.end()));
    trace_ = std::move(trace);
  }

  // Closes the current epoch: spills the recorded trace to a wire-format file at the
  // current wire::kFormatVersion (written to a temp file, fsynced, then renamed into
  // place — a reader never observes a partial spill) and, on success, resets the
  // in-memory trace for the next epoch. On any
  // write/fsync/rename failure the error propagates and the trace is kept so no recorded
  // traffic is lost. Call after draining the server.
  Status Flush(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    if (Status st = WriteTraceFile(path, trace_, shard_id_, env_); !st.ok()) {
      return st;
    }
    trace_ = Trace{};
    return Status::Ok();
  }

 private:
  const uint32_t shard_id_ = 0;
  Env* const env_ = nullptr;
  mutable std::mutex mu_;
  Trace trace_;
};

}  // namespace orochi

#endif  // SRC_SERVER_COLLECTOR_H_
