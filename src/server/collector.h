// The trace collector: the trusted middlebox of paper §1/§4 that records requests and
// responses in the order they actually cross the server boundary.
#ifndef SRC_SERVER_COLLECTOR_H_
#define SRC_SERVER_COLLECTOR_H_

#include <mutex>
#include <string>

#include "src/lang/interpreter.h"
#include "src/objects/trace.h"

namespace orochi {

class Collector {
 public:
  void RecordRequest(RequestId rid, const std::string& script, const RequestParams& params) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRequest;
    e.rid = rid;
    e.script = script;
    e.params = params;
    trace_.events.push_back(std::move(e));
  }

  void RecordResponse(RequestId rid, const std::string& body) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e;
    e.kind = TraceEvent::Kind::kResponse;
    e.rid = rid;
    e.body = body;
    trace_.events.push_back(std::move(e));
  }

  // Call after draining the server.
  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }

 private:
  std::mutex mu_;
  Trace trace_;
};

}  // namespace orochi

#endif  // SRC_SERVER_COLLECTOR_H_
