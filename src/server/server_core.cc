#include "src/server/server_core.h"

#include <ctime>

#include "src/common/hash.h"
#include "src/objects/db_adapter.h"
#include "src/objects/wire_format.h"

namespace orochi {

namespace {

uint64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Workload epoch: an arbitrary fixed base so time() values look like unix timestamps.
constexpr int64_t kTimeBase = 1'500'000'000;

}  // namespace

Value NondetSource::Produce(const std::string& name, const std::vector<Value>& args) {
  uint64_t tick = counter_.fetch_add(1);
  if (name == "time") {
    // Coarse seconds that advance monotonically with activity.
    return Value::Int(kTimeBase + static_cast<int64_t>(tick / 100));
  }
  if (name == "microtime") {
    return Value::Float(static_cast<double>(kTimeBase) + static_cast<double>(tick) * 1e-4);
  }
  if (name == "rand") {
    int64_t lo = args.size() > 0 ? args[0].ToInt() : 0;
    int64_t hi = args.size() > 1 ? args[1].ToInt() : 0;
    if (hi < lo) {
      return Value::Int(lo);
    }
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return Value::Int(lo + static_cast<int64_t>(Mix64(tick * 0x9e3779b97f4a7c15ull) % span));
  }
  return Value::Null();
}

ServerCore::ServerCore(const Application* app, const InitialState& init, ServerOptions options)
    : app_(app), options_(options) {
  registers_.Load(init.registers);
  kv_.Load(init.kv);
  db_ = init.db;
  ResetReportsLocked();  // No contention in the constructor.
}

void ServerCore::ResetReportsLocked() {
  reports_ = Reports{};
  if (options_.record_reports) {
    // Well-known object ids 0 (kv) and 1 (db); registers get ids on first use.
    reports_.objects.push_back({ObjectKind::kKv, ""});
    reports_.objects.push_back({ObjectKind::kDb, ""});
    reports_.op_logs.resize(2);
  }
}

Reports ServerCore::TakeReports() {
  std::lock_guard<std::mutex> lock(report_mu_);
  Reports out = std::move(reports_);
  ResetReportsLocked();
  return out;
}

Status ServerCore::ExportReports(const std::string& path) {
  std::lock_guard<std::mutex> lock(report_mu_);
  // The shared writer emits wire v3: an object whose op-log outgrows
  // wire::kMaxOpLogSegmentBytes spills as byte-capped segment records, so a hot object
  // here never forces the verifier's pass 1 to materialize its whole log at once.
  if (Status st = ReportsWriter::WriteFile(path, reports_, options_.io_env); !st.ok()) {
    return st;
  }
  ResetReportsLocked();
  return Status::Ok();
}

void ServerCore::AppendOpRecord(size_t object, OpRecord rec) {
  std::lock_guard<std::mutex> lock(report_mu_);
  reports_.op_logs[object].push_back(std::move(rec));
}

void ServerCore::AppendRegisterOp(const std::string& name, OpRecord rec) {
  std::lock_guard<std::mutex> lock(report_mu_);
  int id = reports_.FindObject(ObjectKind::kRegister, name);
  if (id < 0) {
    reports_.objects.push_back({ObjectKind::kRegister, name});
    reports_.op_logs.emplace_back();
    id = static_cast<int>(reports_.objects.size() - 1);
  }
  reports_.op_logs[static_cast<size_t>(id)].push_back(std::move(rec));
}

Value ServerCore::PerformStateOp(RequestId rid, uint32_t opnum, const StateOpRequest& op) {
  const bool rec = options_.record_reports;
  switch (op.type) {
    case StateOpType::kRegisterRead: {
      std::lock_guard<std::mutex> lock(reg_mu_);
      Value v = registers_.Read(op.target);
      if (rec) {
        AppendRegisterOp(op.target, {rid, opnum, StateOpType::kRegisterRead, ""});
      }
      return v;
    }
    case StateOpType::kRegisterWrite: {
      std::lock_guard<std::mutex> lock(reg_mu_);
      registers_.Write(op.target, op.value);
      if (rec) {
        AppendRegisterOp(op.target, {rid, opnum, StateOpType::kRegisterWrite,
                                     MakeRegisterWriteContents(op.value)});
      }
      return Value::Null();
    }
    case StateOpType::kKvGet: {
      std::lock_guard<std::mutex> lock(kv_mu_);
      Value v = kv_.Get(op.key);
      if (rec) {
        AppendOpRecord(0, {rid, opnum, StateOpType::kKvGet, op.key});
      }
      return v;
    }
    case StateOpType::kKvSet: {
      std::lock_guard<std::mutex> lock(kv_mu_);
      kv_.Set(op.key, op.value);
      if (rec) {
        AppendOpRecord(0, {rid, opnum, StateOpType::kKvSet,
                           MakeKvSetContents(op.key, op.value)});
      }
      return Value::Null();
    }
    case StateOpType::kDbOp: {
      std::lock_guard<std::mutex> lock(db_mu_);
      bool is_txn = op.db_is_txn;
      Value result;
      bool success;
      if (!is_txn) {
        Result<StmtResult> r = db_.ExecuteText(op.sql[0]);
        success = r.ok();
        result = r.ok() ? StmtResultToValue(r.value()) : DbQueryFailureValue();
      } else {
        Database::TxnResult r = db_.ExecuteTransaction(op.sql);
        success = r.committed;
        result = DbTxnResultToValue(r.committed, r.results);
      }
      if (rec) {
        AppendOpRecord(1, {rid, opnum, StateOpType::kDbOp,
                           MakeDbContents(op.sql, is_txn, success)});
      }
      return result;
    }
  }
  return Value::Null();
}

void ServerCore::FinalizeRequest(RequestId rid, uint64_t tag, uint32_t op_count,
                                 std::vector<NondetRecord> nondet_records) {
  if (!options_.record_reports) {
    return;
  }
  std::lock_guard<std::mutex> lock(report_mu_);
  reports_.groups[tag].push_back(rid);
  reports_.op_counts[rid] = op_count;
  if (!nondet_records.empty()) {
    reports_.nondet[rid] = std::move(nondet_records);
  }
}

std::string ServerCore::HandleRequest(RequestId rid, const std::string& script,
                                      const RequestParams& params) {
  uint64_t cpu_start = ThreadCpuNanos();
  std::string body;
  const Program* prog = app_->GetScript(script);
  if (prog == nullptr) {
    body = kNoSuchScriptBody;
    FinalizeRequest(rid, FnvHash("missing:" + script), 0, {});
  } else {
    InterpreterOptions iopts;
    iopts.record_digest = options_.record_reports;
    Interpreter interp(prog, &params, iopts);
    uint32_t opnum = 0;
    std::vector<NondetRecord> nondet_records;
    while (true) {
      StepResult step = interp.Run();
      if (step.kind == StepResult::Kind::kFinished) {
        body = interp.output();
        break;
      }
      if (step.kind == StepResult::Kind::kError) {
        body = interp.output() + "\n[error] " + step.error;
        break;
      }
      if (step.kind == StepResult::Kind::kStateOp) {
        opnum++;
        interp.ProvideValue(PerformStateOp(rid, opnum, step.op));
        continue;
      }
      // Nondet.
      Value v = nondet_.Produce(step.nondet.name, step.nondet.args);
      if (options_.record_reports) {
        nondet_records.push_back({step.nondet.name, v.Serialize()});
      }
      interp.ProvideValue(std::move(v));
    }
    FinalizeRequest(rid, interp.digest(), opnum, std::move(nondet_records));
  }
  cpu_ns_.fetch_add(ThreadCpuNanos() - cpu_start);
  requests_served_.fetch_add(1);
  return body;
}

InitialState ServerCore::SnapshotState() const {
  InitialState out;
  out.registers = registers_.Snapshot();
  out.kv = kv_.Snapshot();
  out.db = db_;
  return out;
}

}  // namespace orochi
