// A thread-pooled front end over ServerCore plus the collector: the full "executor +
// middlebox" assembly of Figure 1. Clients submit requests; workers run them concurrently;
// the collector sees every request at submission and every response at delivery.
#ifndef SRC_SERVER_THREAD_SERVER_H_
#define SRC_SERVER_THREAD_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/server/collector.h"
#include "src/server/server_core.h"

namespace orochi {

class ThreadServer {
 public:
  // Called on the worker thread after the response is delivered (optional; used by the
  // latency benchmark to timestamp completions).
  using CompletionFn = std::function<void(RequestId, const std::string& body)>;

  ThreadServer(ServerCore* core, Collector* collector, int num_workers);
  ~ThreadServer();

  ThreadServer(const ThreadServer&) = delete;
  ThreadServer& operator=(const ThreadServer&) = delete;

  // Records the request with the collector and enqueues it. Non-blocking.
  void Submit(RequestId rid, std::string script, RequestParams params,
              CompletionFn on_complete = nullptr);

  // Blocks until every submitted request has been served ("draining the server before an
  // audit", §4.7).
  void Drain();

 private:
  struct Job {
    RequestId rid;
    std::string script;
    RequestParams params;
    CompletionFn on_complete;
  };

  void WorkerLoop();

  ServerCore* core_;
  Collector* collector_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drain_cv_;
  std::deque<Job> queue_;
  uint64_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace orochi

#endif  // SRC_SERVER_THREAD_SERVER_H_
