// The recording executor core: runs requests against live shared objects, capturing the
// four report types (control-flow groupings, operation logs, op counts, non-determinism)
// the way OROCHI's instrumented runtime does (paper §3, §4.3–§4.6).
//
// Report capture is untrusted by the verifier; here it is implemented faithfully so that
// Completeness holds, and the tamper library (tamper.h) mutates the outputs to exercise
// Soundness.
#ifndef SRC_SERVER_SERVER_CORE_H_
#define SRC_SERVER_SERVER_CORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/lang/interpreter.h"
#include "src/objects/object_model.h"
#include "src/objects/reports.h"
#include "src/common/io_env.h"
#include "src/objects/stores.h"
#include "src/server/application.h"
#include "src/sql/database.h"

namespace orochi {

struct ServerOptions {
  // When false the server behaves like the legacy (pre-OROCHI) deployment: no digests, no
  // operation logs, no nondet records. Used as the baseline in Figure 8.
  bool record_reports = true;
  // I/O environment ExportReports spills through. nullptr = the production posix
  // environment. Not owned.
  Env* io_env = nullptr;
};

// Produces values for non-deterministic builtins and is shared between recording and
// baseline configurations so both serve identical workloads.
class NondetSource {
 public:
  NondetSource() : counter_(0) {}

  Value Produce(const std::string& name, const std::vector<Value>& args);

 private:
  std::atomic<uint64_t> counter_;
};

class ServerCore {
 public:
  ServerCore(const Application* app, const InitialState& init, ServerOptions options = {});

  // Runs one request to completion on the calling thread and returns the response body.
  // Thread-safe; concurrent calls interleave at shared-object operations.
  std::string HandleRequest(RequestId rid, const std::string& script,
                            const RequestParams& params);

  // Reports accumulated so far. Call after draining (no concurrent HandleRequest).
  const Reports& reports() const { return reports_; }
  // Hands over the accumulated reports and leaves a fresh recording-ready set behind
  // (object table re-seeded), so the server keeps serving the next epoch.
  Reports TakeReports();

  // Closes the current epoch on the report side: spills the accumulated reports to a
  // wire-format file and, on success, resets them for the next epoch. Pairs with
  // Collector::Flush; call after draining.
  Status ExportReports(const std::string& path);

  // End-of-period object state: becomes the next audit's InitialState (§4.5).
  InitialState SnapshotState() const;

  // Total CPU seconds spent inside HandleRequest across all threads (Figure 8 server
  // overhead is measured on this).
  double TotalCpuSeconds() const { return cpu_ns_.load() * 1e-9; }
  uint64_t RequestsServed() const { return requests_served_.load(); }

  // --- Low-level API used by ManualExecutor (scripted interleavings) ---

  // Performs a state op against live objects, appending to the op log under the same lock
  // so log order equals the real operation order.
  Value PerformStateOp(RequestId rid, uint32_t opnum, const StateOpRequest& op);
  // Produces (and lets the caller record) a nondet value.
  Value ProduceNondet(const std::string& name, const std::vector<Value>& args) {
    return nondet_.Produce(name, args);
  }
  // Registers the end-of-request bookkeeping: group membership, op count, nondet records.
  void FinalizeRequest(RequestId rid, uint64_t tag, uint32_t op_count,
                       std::vector<NondetRecord> nondet_records);
  bool recording() const { return options_.record_reports; }

 private:
  // Appends to an existing object's log. Takes report_mu_: creating a register object can
  // reallocate the outer op_logs vector, so unsynchronized op_logs[i].push_back from
  // another worker would race with that move (TSan-caught crash).
  void AppendOpRecord(size_t object, OpRecord rec);
  // Register path: object lookup/creation and the append under one report_mu_ hold.
  void AppendRegisterOp(const std::string& name, OpRecord rec);
  // Re-seeds reports_ with the well-known kv/db objects. Caller holds report_mu_.
  void ResetReportsLocked();

  const Application* app_;
  ServerOptions options_;

  RegisterStore registers_;
  KvStore kv_;
  Database db_;
  std::mutex reg_mu_;   // Guards registers_ ops + their logs.
  std::mutex kv_mu_;    // Guards kv_ ops + its log.
  std::mutex db_mu_;    // Guards db_ ops + its log (global lock = strict serializability).
  std::mutex report_mu_;  // Guards reports_ bookkeeping (object table, groups, counts).

  NondetSource nondet_;
  Reports reports_;
  std::atomic<uint64_t> cpu_ns_{0};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace orochi

#endif  // SRC_SERVER_SERVER_CORE_H_
