#include "src/server/tamper.h"

#include <algorithm>

namespace orochi {

namespace {

TraceEvent* FindResponse(Trace* trace, RequestId rid) {
  for (TraceEvent& e : trace->events) {
    if (e.kind == TraceEvent::Kind::kResponse && e.rid == rid) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace

bool TamperResponseBody(Trace* trace, RequestId rid, const std::string& new_body) {
  TraceEvent* e = FindResponse(trace, rid);
  if (e == nullptr) {
    return false;
  }
  e->body = new_body;
  return true;
}

bool SwapResponseBodies(Trace* trace, RequestId r1, RequestId r2) {
  TraceEvent* e1 = FindResponse(trace, r1);
  TraceEvent* e2 = FindResponse(trace, r2);
  if (e1 == nullptr || e2 == nullptr) {
    return false;
  }
  std::swap(e1->body, e2->body);
  return true;
}

bool SwapLogEntries(Reports* reports, size_t object, size_t idx1, size_t idx2) {
  if (object >= reports->op_logs.size()) {
    return false;
  }
  auto& log = reports->op_logs[object];
  if (idx1 >= log.size() || idx2 >= log.size()) {
    return false;
  }
  std::swap(log[idx1], log[idx2]);
  return true;
}

bool DropLogEntry(Reports* reports, size_t object, size_t idx) {
  if (object >= reports->op_logs.size()) {
    return false;
  }
  auto& log = reports->op_logs[object];
  if (idx >= log.size()) {
    return false;
  }
  log.erase(log.begin() + static_cast<ptrdiff_t>(idx));
  return true;
}

bool InsertSpuriousOp(Reports* reports, size_t object, size_t idx, RequestId rid,
                      uint32_t opnum) {
  if (object >= reports->op_logs.size()) {
    return false;
  }
  auto& log = reports->op_logs[object];
  if (idx >= log.size()) {
    return false;
  }
  OpRecord copy = log[idx];
  copy.rid = rid;
  copy.opnum = opnum;
  log.insert(log.begin() + static_cast<ptrdiff_t>(idx), std::move(copy));
  return true;
}

bool TamperLogContents(Reports* reports, size_t object, size_t idx,
                       const std::string& new_contents) {
  if (object >= reports->op_logs.size()) {
    return false;
  }
  auto& log = reports->op_logs[object];
  if (idx >= log.size()) {
    return false;
  }
  log[idx].contents = new_contents;
  return true;
}

bool TamperOpCount(Reports* reports, RequestId rid, uint32_t new_count) {
  auto it = reports->op_counts.find(rid);
  if (it == reports->op_counts.end()) {
    return false;
  }
  it->second = new_count;
  return true;
}

bool MoveRequestToGroup(Reports* reports, RequestId rid, uint64_t new_tag) {
  for (auto& [tag, rids] : reports->groups) {
    auto it = std::find(rids.begin(), rids.end(), rid);
    if (it != rids.end()) {
      if (tag == new_tag) {
        return true;
      }
      rids.erase(it);
      if (rids.empty()) {
        reports->groups.erase(tag);
      }
      reports->groups[new_tag].push_back(rid);
      return true;
    }
  }
  return false;
}

bool TamperNondet(Reports* reports, RequestId rid, size_t idx, const Value& new_value) {
  auto it = reports->nondet.find(rid);
  if (it == reports->nondet.end() || idx >= it->second.size()) {
    return false;
  }
  it->second[idx].value = new_value.Serialize();
  return true;
}

}  // namespace orochi
