#include "src/server/manual_executor.h"

#include <cassert>

#include "src/common/hash.h"

namespace orochi {

void ManualExecutor::Begin(RequestId rid, const std::string& script, RequestParams params) {
  collector_->RecordRequest(rid, script, params);
  Pending p;
  p.script = script;
  p.params = std::make_unique<RequestParams>(std::move(params));
  const Program* prog = app_->GetScript(script);
  if (prog != nullptr) {
    InterpreterOptions opts;
    opts.record_digest = core_->recording();
    p.interp = std::make_unique<Interpreter>(prog, p.params.get(), opts);
  } else {
    p.done = true;
    p.body = kNoSuchScriptBody;
    core_->FinalizeRequest(rid, FnvHash("missing:" + script), 0, {});
  }
  pending_.emplace(rid, std::move(p));
}

bool ManualExecutor::Advance(RequestId rid, Pending* p) {
  while (true) {
    StepResult step = p->interp->Run();
    switch (step.kind) {
      case StepResult::Kind::kFinished:
        p->done = true;
        p->body = p->interp->output();
        core_->FinalizeRequest(rid, p->interp->digest(), p->opnum,
                               std::move(p->nondet_records));
        return false;
      case StepResult::Kind::kError:
        p->done = true;
        p->body = p->interp->output() + "\n[error] " + step.error;
        core_->FinalizeRequest(rid, p->interp->digest(), p->opnum,
                               std::move(p->nondet_records));
        return false;
      case StepResult::Kind::kStateOp: {
        p->opnum++;
        p->interp->ProvideValue(core_->PerformStateOp(rid, p->opnum, step.op));
        return true;
      }
      case StepResult::Kind::kNondet: {
        Value v = core_->ProduceNondet(step.nondet.name, step.nondet.args);
        if (core_->recording()) {
          p->nondet_records.push_back({step.nondet.name, v.Serialize()});
        }
        p->interp->ProvideValue(std::move(v));
        break;  // Keep running; nondet calls are not scheduling points.
      }
    }
  }
}

bool ManualExecutor::Step(RequestId rid) {
  auto it = pending_.find(rid);
  assert(it != pending_.end());
  Pending& p = it->second;
  if (p.done) {
    return false;
  }
  return Advance(rid, &p);
}

void ManualExecutor::Finish(RequestId rid) {
  auto it = pending_.find(rid);
  assert(it != pending_.end());
  Pending& p = it->second;
  while (!p.done) {
    Advance(rid, &p);
  }
  collector_->RecordResponse(rid, p.body);
  pending_.erase(it);
}

void ManualExecutor::RunToCompletion(RequestId rid, const std::string& script,
                                     RequestParams params) {
  Begin(rid, script, std::move(params));
  Finish(rid);
}

}  // namespace orochi
