// Adversarial mutations of responses and reports, used to exercise the audit's Soundness:
// each models a class of executor misbehaviour the paper's verifier must catch (§2, §3.4).
#ifndef SRC_SERVER_TAMPER_H_
#define SRC_SERVER_TAMPER_H_

#include <string>

#include "src/lang/value.h"
#include "src/objects/reports.h"
#include "src/objects/trace.h"

namespace orochi {

// Replaces the response body of `rid` in the trace. Returns false when rid has no response.
bool TamperResponseBody(Trace* trace, RequestId rid, const std::string& new_body);

// Swaps the response bodies of two requests.
bool SwapResponseBodies(Trace* trace, RequestId r1, RequestId r2);

// Swaps two entries of object i's operation log (forging the claimed operation order).
bool SwapLogEntries(Reports* reports, size_t object, size_t idx1, size_t idx2);

// Deletes one log entry (hiding an operation).
bool DropLogEntry(Reports* reports, size_t object, size_t idx);

// Inserts a spurious copy of an existing entry with the given rid/opnum.
bool InsertSpuriousOp(Reports* reports, size_t object, size_t idx, RequestId rid,
                      uint32_t opnum);

// Overwrites the logged contents of a write operation (forging the written value).
bool TamperLogContents(Reports* reports, size_t object, size_t idx,
                       const std::string& new_contents);

// Misstates M(rid).
bool TamperOpCount(Reports* reports, RequestId rid, uint32_t new_count);

// Moves a request into a different (existing or fresh) control-flow group.
bool MoveRequestToGroup(Reports* reports, RequestId rid, uint64_t new_tag);

// Overwrites the i-th recorded nondet value for a request.
bool TamperNondet(Reports* reports, RequestId rid, size_t idx, const Value& new_value);

}  // namespace orochi

#endif  // SRC_SERVER_TAMPER_H_
