#include "src/server/thread_server.h"

namespace orochi {

ThreadServer::ThreadServer(ServerCore* core, Collector* collector, int num_workers)
    : core_(core), collector_(collector) {
  for (int i = 0; i < num_workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadServer::~ThreadServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadServer::Submit(RequestId rid, std::string script, RequestParams params,
                          CompletionFn on_complete) {
  // The collector observes the request the moment it reaches the server boundary.
  collector_->RecordRequest(rid, script, params);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back({rid, std::move(script), std::move(params), std::move(on_complete)});
    in_flight_++;
  }
  cv_.notify_one();
}

void ThreadServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadServer::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string body = core_->HandleRequest(job.rid, job.script, job.params);
    collector_->RecordResponse(job.rid, body);
    if (job.on_complete) {
      job.on_complete(job.rid, body);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_--;
      if (in_flight_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

}  // namespace orochi
