#include "src/server/application.h"

#include "src/lang/compiler.h"

namespace orochi {

Status Application::AddScript(const std::string& name, const std::string& source) {
  if (scripts_.count(name) > 0) {
    return Status::Error("duplicate script '" + name + "'");
  }
  Result<Program> prog = CompileSource(source, name);
  if (!prog.ok()) {
    return Status::Error("script '" + name + "': " + prog.error());
  }
  scripts_.emplace(name, std::move(prog).value());
  return Status::Ok();
}

const Program* Application::GetScript(const std::string& name) const {
  auto it = scripts_.find(name);
  return it == scripts_.end() ? nullptr : &it->second;
}

std::vector<std::string> Application::ScriptNames() const {
  std::vector<std::string> names;
  for (const auto& [name, prog] : scripts_) {
    (void)prog;
    names.push_back(name);
  }
  return names;
}

size_t Application::TotalInstructions() const {
  size_t n = 0;
  for (const auto& [name, prog] : scripts_) {
    (void)name;
    n += prog.TotalInstructions();
  }
  return n;
}

}  // namespace orochi
