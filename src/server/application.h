// An application: a set of named wscript endpoints (the PHP scripts of paper §4.2).
#ifndef SRC_SERVER_APPLICATION_H_
#define SRC_SERVER_APPLICATION_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lang/bytecode.h"

namespace orochi {

class Application {
 public:
  // Compiles and registers an endpoint; `name` is the request path (e.g. "/wiki/view").
  Status AddScript(const std::string& name, const std::string& source);

  // nullptr when the endpoint does not exist.
  const Program* GetScript(const std::string& name) const;

  std::vector<std::string> ScriptNames() const;
  size_t TotalInstructions() const;

 private:
  std::map<std::string, Program> scripts_;
};

// Deterministic response body for requests to unknown endpoints; both the server and the
// verifier produce it so such requests remain auditable.
inline constexpr const char* kNoSuchScriptBody = "[error] no such script";

}  // namespace orochi

#endif  // SRC_SERVER_APPLICATION_H_
