// A single-threaded executor with explicit, scripted context switches at shared-object
// operation boundaries. This is the concurrency model of paper §3.2 made deterministic:
// tests use it to construct exact interleavings (e.g. the Figure 4 scenarios) and verify
// that the audit accepts or rejects accordingly.
#ifndef SRC_SERVER_MANUAL_EXECUTOR_H_
#define SRC_SERVER_MANUAL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "src/lang/interpreter.h"
#include "src/server/application.h"
#include "src/server/collector.h"
#include "src/server/server_core.h"

namespace orochi {

class ManualExecutor {
 public:
  ManualExecutor(const Application* app, ServerCore* core, Collector* collector)
      : app_(app), core_(core), collector_(collector) {}

  // Records the REQUEST event and creates the request's execution context.
  void Begin(RequestId rid, const std::string& script, RequestParams params);

  // Runs the request up to and including its next shared-object operation (nondet calls
  // are serviced transparently). Returns false when the request ran to its end (no state
  // op remained) — the request still needs Finish() to deliver its response.
  bool Step(RequestId rid);

  // Runs any remaining work to completion and records the RESPONSE event.
  void Finish(RequestId rid);

  // Convenience: Begin + Finish.
  void RunToCompletion(RequestId rid, const std::string& script, RequestParams params);

 private:
  struct Pending {
    std::string script;
    std::unique_ptr<RequestParams> params;  // Stable storage; the interpreter points at it.
    std::unique_ptr<Interpreter> interp;    // Null for unknown scripts.
    uint32_t opnum = 0;
    std::vector<NondetRecord> nondet_records;
    bool done = false;
    std::string body;
  };

  // Advances until a state op is serviced (returns true), or the request completes or
  // traps (returns false, setting done/body).
  bool Advance(RequestId rid, Pending* p);

  const Application* app_;
  ServerCore* core_;
  Collector* collector_;
  std::map<RequestId, Pending> pending_;
};

}  // namespace orochi

#endif  // SRC_SERVER_MANUAL_EXECUTOR_H_
