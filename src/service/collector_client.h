// Collector-side sender: wraps a Collector and streams one closed epoch (trace +
// executor reports) to a live AuditService over the framed protocol of src/net/frame.h,
// instead of spilling files for an offline handoff.
//
// Reliability contract:
//   - Records carry explicit indexes; after a disconnect the client reconnects, learns
//     the service's received counts from the HelloAck, and re-sends from exactly there —
//     duplicates are skipped by index, nothing is lost or double-spooled.
//   - Backpressure: the client keeps at most the service-advertised max-in-flight bytes
//     unacked on the wire, waiting on Ack frames past that bound.
//   - When every reconnect attempt is exhausted the recorded trace is restored into the
//     collector (Collector::Restore) so no recorded traffic is lost, and the error is
//     transient-tagged when the failure was a disconnect — operators retry, they do not
//     treat a network flap as tamper evidence.
#ifndef SRC_SERVICE_COLLECTOR_CLIENT_H_
#define SRC_SERVICE_COLLECTOR_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/net/frame.h"
#include "src/net/transport.h"
#include "src/objects/reports.h"
#include "src/server/collector.h"

namespace orochi {

struct ClientStats {
  uint64_t records_sent = 0;    // Data records put on the wire (re-sends included).
  uint64_t bytes_sent = 0;      // Frame bytes put on the wire.
  uint64_t reconnects = 0;      // Successful re-handshakes after a failure.
  uint64_t records_resumed = 0; // Records a resume point let the client skip re-sending.
  uint64_t acks_received = 0;
};

class CollectorClient {
 public:
  // `address` as in Transport ("tcp:HOST:PORT" / "unix:/path"); `transport` nullptr =
  // the production sockets, tests pass a FaultInjectingTransport. `max_reconnects` bounds
  // how many times one StreamEpoch call re-dials after a transient failure.
  explicit CollectorClient(std::string address, Transport* transport = nullptr,
                           int max_reconnects = 8)
      : address_(std::move(address)),
        transport_(ResolveTransport(transport)),
        max_reconnects_(max_reconnects) {}

  // Closes `collector`'s current epoch (TakeTrace) and streams it with `reports` to the
  // service as epoch `epoch`, blocking until the service confirms the seal. On failure
  // the taken trace is restored into the collector and an error returns: transient-tagged
  // ("io-transient: net: ...") when retrying later can succeed, permanent for protocol
  // errors. The collector's shard id stamps the stream and must be nonzero.
  Status StreamEpoch(uint64_t epoch, Collector* collector, const Reports& reports);

  const ClientStats& stats() const { return stats_; }

 private:
  // One connection attempt: handshake, send everything not yet acked, wait for the seal.
  // A transient-tagged error (or `false` with no seal) means reconnect and resume.
  Status RunAttempt(uint64_t epoch, uint32_t shard_id,
                    const std::vector<std::pair<uint8_t, std::string>>& trace_records,
                    const std::vector<std::pair<uint8_t, std::string>>& reports_records,
                    bool* sealed);

  const std::string address_;
  Transport* const transport_;
  const int max_reconnects_;
  ClientStats stats_;
};

}  // namespace orochi

#endif  // SRC_SERVICE_COLLECTOR_CLIENT_H_
