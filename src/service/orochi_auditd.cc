// orochi-auditd: the long-running verifier daemon. Listens for collector shard
// connections, spools their streamed epochs into wire-format spill files, and audits each
// epoch as it seals, chaining accepted final states continuously.
//
// Configuration is environment-driven (malformed values are hard errors, never silent
// fallbacks):
//   OROCHI_APP               counter | wiki | forum | conf   (which application to audit)
//   OROCHI_SPOOL_DIR         directory for per-epoch spill files (default ".")
//   OROCHI_LISTEN_ADDRESS    tcp:HOST:PORT or unix:/path (default tcp:127.0.0.1:0;
//                            the bound address is printed on stdout)
//   OROCHI_SHARDS_PER_EPOCH  collector shards per epoch (default 1)
//   OROCHI_MAX_INFLIGHT_BYTES / OROCHI_ACK_INTERVAL  backpressure knobs
//   OROCHI_EPOCH_LIMIT       exit after this many epochs have verdicts (default 0 =
//                            run until killed); smoke tests set a small limit
//   OROCHI_AUDIT_THREADS / OROCHI_AUDIT_BUDGET  as everywhere else
//
// Output: one "listening on <address>" line (plus "stats on <address>" when the stats
// endpoint is up), then one line per epoch verdict:
//   epoch <E>: ACCEPTED | epoch <E>: REJECTED (<reason>) | epoch <E>: ERROR (<error>)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/strings.h"
#include "src/service/audit_service.h"
#include "src/workload/workloads.h"

namespace {

using namespace orochi;

constexpr char kVersion[] = "orochi-auditd 0.8.0";

constexpr char kHelp[] =
    R"(orochi-auditd: continuous verifier daemon for the efficient server audit.

Collector shards connect over the framed protocol, their epochs spool into
wire-format spill files, and each epoch is audited as it seals — verdicts are
bit-identical to an offline audit of the same traffic.

usage: orochi-auditd [--help] [--version]

All configuration is environment-driven; malformed values are hard errors,
never silent fallbacks:

  OROCHI_APP                 counter | wiki | forum | conf (default counter):
                             which application's audit logic to run.
  OROCHI_SPOOL_DIR           directory for per-epoch spill files (default ".").
  OROCHI_LISTEN_ADDRESS      tcp:HOST:PORT or unix:/path (default
                             tcp:127.0.0.1:0); the bound address is printed.
  OROCHI_STATS_ADDRESS       observability endpoint (same address syntax;
                             default unset = off). Serves GET /metrics
                             (Prometheus text), /metrics.json, /epochs
                             (per-epoch verdict + phase decomposition), and
                             /shards (per-shard stream state).
  OROCHI_SHARDS_PER_EPOCH    collector shards per epoch (default 1).
  OROCHI_MAX_INFLIGHT_BYTES  backpressure: max unacked bytes a client keeps in
                             flight (default 4194304; 0 = unbounded).
  OROCHI_ACK_INTERVAL        ack every N records (default 256; must be > 0).
  OROCHI_EPOCH_LIMIT         exit after this many epochs have verdicts
                             (default 0 = run until killed).
  OROCHI_AUDIT_THREADS       re-execution worker threads (default: hardware
                             concurrency).
  OROCHI_AUDIT_BUDGET        resident-byte budget for the streamed audit
                             (default 0 = unlimited).
  OROCHI_TRACE_FILE          dump a Chrome-trace JSON of audit phase spans
                             here on exit (view in chrome://tracing).
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "orochi-auditd: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kHelp, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", kVersion);
      return 0;
    }
    // Refuse anything else: a daemon silently ignoring a misspelled flag (say,
    // --spool-dir where the env var was meant) is how misconfigurations go unnoticed.
    std::fprintf(stderr, "orochi-auditd: unknown argument '%s' (try --help)\n", argv[i]);
    return 1;
  }
  std::string app_name = "counter";
  if (const char* env = std::getenv("OROCHI_APP")) {
    app_name = env;
  }
  Application app;
  if (app_name == "counter") {
    app = BuildCounterApp();
  } else if (app_name == "wiki") {
    app = BuildWikiApp();
  } else if (app_name == "forum") {
    app = BuildForumApp();
  } else if (app_name == "conf") {
    app = BuildConfApp();
  } else {
    return Fail("config: OROCHI_APP='" + app_name +
                "' is not one of counter|wiki|forum|conf");
  }

  ServiceOptions base;
  base.spool_dir = ".";
  if (const char* env = std::getenv("OROCHI_SPOOL_DIR")) {
    base.spool_dir = env;
  }
  Result<ServiceOptions> options = ResolveServiceOptions(base);
  if (!options.ok()) {
    return Fail(options.error());
  }

  uint64_t epoch_limit = 0;
  if (const char* env = std::getenv("OROCHI_EPOCH_LIMIT")) {
    Result<uint64_t> v = ParseUint64(env);
    if (!v.ok()) {
      return Fail("config: OROCHI_EPOCH_LIMIT='" + std::string(env) +
                  "' is not a valid epoch count (" + v.error() + ")");
    }
    epoch_limit = v.value();
  }

  AuditService service(&app, AuditOptions{}, InitialState{}, options.value());
  if (Status st = service.Start(); !st.ok()) {
    return Fail(st.error());
  }
  std::printf("listening on %s\n", service.address().c_str());
  if (!service.stats_address().empty()) {
    std::printf("stats on %s\n", service.stats_address().c_str());
  }
  std::fflush(stdout);

  // Epochs are numbered from 1 by convention; wait for each in turn. With no limit this
  // loop runs until the process is killed (the service itself has no epoch ceiling).
  for (uint64_t epoch = 1; epoch_limit == 0 || epoch <= epoch_limit; epoch++) {
    Result<AuditResult> verdict = service.WaitEpochVerdict(epoch);
    if (!verdict.ok()) {
      std::printf("epoch %llu: ERROR (%s)\n", static_cast<unsigned long long>(epoch),
                  verdict.error().c_str());
      std::fflush(stdout);
      service.Stop();
      return 2;
    }
    if (verdict.value().accepted) {
      std::printf("epoch %llu: ACCEPTED\n", static_cast<unsigned long long>(epoch));
    } else {
      std::printf("epoch %llu: REJECTED (%s)\n", static_cast<unsigned long long>(epoch),
                  verdict.value().reason.c_str());
    }
    std::fflush(stdout);
  }
  service.Stop();
  const ServiceStats stats = service.stats();
  std::printf("spooled %llu records (%llu bytes), sealed %llu shards, audited %llu epochs "
              "(%llu accepted)\n",
              static_cast<unsigned long long>(stats.records_spooled),
              static_cast<unsigned long long>(stats.bytes_spooled),
              static_cast<unsigned long long>(stats.shards_sealed),
              static_cast<unsigned long long>(stats.epochs_audited),
              static_cast<unsigned long long>(stats.epochs_accepted));
  return 0;
}
