#include "src/service/collector_client.h"

#include <deque>

#include "src/common/io_env.h"
#include "src/objects/wire_format.h"
#include "src/obs/metrics.h"

namespace orochi {

namespace {

// Collector-side instruments: the flow-control stalls live here (the client is the one
// that waits), the service mirrors the ingest side.
struct ClientMetrics {
  obs::Counter* records_sent;
  obs::Counter* bytes_sent;
  obs::Counter* reconnects;
  obs::Counter* records_resumed;
  obs::Counter* acks;
  obs::Counter* backpressure_stalls;

  static ClientMetrics* Get() {
    static ClientMetrics* const m = [] {
      auto* r = obs::MetricsRegistry::Default();
      auto* out = new ClientMetrics();
      out->records_sent = r->GetCounter("orochi_client_records_sent_total",
                                        "records streamed to the audit service");
      out->bytes_sent = r->GetCounter("orochi_client_bytes_sent_total",
                                      "wire bytes streamed to the audit service");
      out->reconnects = r->GetCounter("orochi_client_reconnects_total",
                                      "re-dial attempts after a transient failure");
      out->records_resumed = r->GetCounter(
          "orochi_client_records_resumed_total",
          "records a resume handshake reported already spooled (skipped, not re-sent)");
      out->acks = r->GetCounter("orochi_client_acks_received_total",
                                "ack frames received from the service");
      out->backpressure_stalls = r->GetCounter(
          "orochi_client_backpressure_stalls_total",
          "sends that blocked on acks at the service's in-flight byte bound");
      return out;
    }();
    return m;
  }
};

// An Error frame from the service, mapped onto the audit taxonomy: retryable service
// states and corruption (the frame was dropped, a resume re-sends it) are transient;
// protocol errors are permanent — retrying the same bytes cannot succeed.
Status ServiceError(const net::ErrorFrame& e) {
  switch (e.code) {
    case net::ErrorCode::kRetryable:
    case net::ErrorCode::kCorruption:
      return Status::Error(IsTransientIoError(e.message) ? e.message
                                                         : MakeTransientIoError(e.message));
    case net::ErrorCode::kProtocol:
      break;
  }
  return Status::Error(e.message);
}

}  // namespace

Status CollectorClient::RunAttempt(
    uint64_t epoch, uint32_t shard_id,
    const std::vector<std::pair<uint8_t, std::string>>& trace_records,
    const std::vector<std::pair<uint8_t, std::string>>& reports_records, bool* sealed) {
  Result<std::unique_ptr<Connection>> dial = transport_->Connect(address_);
  if (!dial.ok()) {
    return Status::Error(dial.error());
  }
  std::unique_ptr<Connection> conn = std::move(dial.value());
  net::FrameReader reader(conn.get());
  net::FrameWriter writer(conn.get());

  net::HelloFrame hello;
  hello.format_version = wire::kFormatVersion;
  hello.shard_id = shard_id;
  hello.epoch = epoch;
  if (Status st = writer.Send(net::kFrameHello, net::EncodeHello(hello)); !st.ok()) {
    return st;
  }
  uint8_t type = 0;
  std::string payload;
  Result<bool> next = reader.Next(&type, &payload);
  if (!next.ok()) {
    return Status::Error(next.error());
  }
  if (!next.value()) {
    return Status::Error(
        MakeTransientIoError("net: service closed before answering the hello"));
  }
  if (type == net::kFrameError) {
    Result<net::ErrorFrame> e = net::DecodeError(payload);
    return e.ok() ? ServiceError(e.value()) : Status::Error(e.error());
  }
  if (type != net::kFrameHelloAck) {
    return Status::Error("net: expected a hello-ack, got frame type " +
                         std::to_string(type));
  }
  Result<net::HelloAckFrame> hello_ack = net::DecodeHelloAck(payload);
  if (!hello_ack.ok()) {
    return Status::Error(hello_ack.error());
  }
  const net::HelloAckFrame& resume = hello_ack.value();
  if (resume.sealed != 0) {
    // A previous attempt's EndEpoch landed; the epoch is already sealed server-side.
    *sealed = true;
    return Status::Ok();
  }
  if (resume.trace_received > trace_records.size() ||
      resume.reports_received > reports_records.size()) {
    return Status::Error("net: service claims more records than this epoch has (" +
                         std::to_string(resume.trace_received) + "/" +
                         std::to_string(resume.reports_received) + ")");
  }
  stats_.records_resumed += resume.trace_received + resume.reports_received;
  ClientMetrics::Get()->records_resumed->Inc(resume.trace_received +
                                             resume.reports_received);

  // Flow control: sizes of wire frames not yet covered by an Ack, oldest first. The
  // client stalls on acks once the unacked bytes exceed the service's advertised bound.
  const uint64_t bound = resume.max_in_flight_bytes;
  std::deque<uint64_t> unacked_sizes;
  uint64_t unacked_bytes = 0;
  uint64_t acked_records = resume.trace_received + resume.reports_received;

  // Consumes one service frame while sending. *done set on EpochSealed.
  auto pump_one = [&](bool* done) -> Status {
    uint8_t t = 0;
    std::string p;
    Result<bool> got = reader.Next(&t, &p);
    if (!got.ok()) {
      return Status::Error(got.error());
    }
    if (!got.value()) {
      return Status::Error(
          MakeTransientIoError("net: service closed before sealing the epoch"));
    }
    switch (t) {
      case net::kFrameAck: {
        Result<net::AckFrame> a = net::DecodeAck(p);
        if (!a.ok()) {
          return Status::Error(a.error());
        }
        stats_.acks_received++;
        ClientMetrics::Get()->acks->Inc();
        uint64_t total = a.value().trace_received + a.value().reports_received;
        while (acked_records < total && !unacked_sizes.empty()) {
          unacked_bytes -= unacked_sizes.front();
          unacked_sizes.pop_front();
          acked_records++;
        }
        acked_records = total;
        return Status::Ok();
      }
      case net::kFrameEpochSealed: {
        Result<net::EpochSealedFrame> s = net::DecodeEpochSealed(p);
        if (!s.ok()) {
          return Status::Error(s.error());
        }
        if (s.value().epoch != epoch) {
          return Status::Error("net: service sealed epoch " +
                               std::to_string(s.value().epoch) + ", expected " +
                               std::to_string(epoch));
        }
        *done = true;
        return Status::Ok();
      }
      case net::kFrameError: {
        Result<net::ErrorFrame> e = net::DecodeError(p);
        return e.ok() ? ServiceError(e.value()) : Status::Error(e.error());
      }
      default:
        return Status::Error("net: unexpected frame type " + std::to_string(t) +
                             " from the service");
    }
  };

  auto send_section = [&](uint8_t frame_type,
                          const std::vector<std::pair<uint8_t, std::string>>& records,
                          uint64_t from) -> Status {
    for (uint64_t i = from; i < records.size(); i++) {
      if (bound > 0 && unacked_bytes > bound) {
        ClientMetrics::Get()->backpressure_stalls->Inc();
      }
      while (bound > 0 && unacked_bytes > bound) {
        bool done = false;
        if (Status st = pump_one(&done); !st.ok()) {
          return st;
        }
        if (done) {
          return Status::Error("net: service sealed the epoch before end-epoch");
        }
      }
      net::RecordFrame rf;
      rf.index = i;
      rf.record_type = records[i].first;
      rf.payload = records[i].second;
      std::string encoded = net::EncodeRecord(rf);
      if (Status st = writer.Send(frame_type, encoded); !st.ok()) {
        return st;
      }
      uint64_t frame_bytes = wire::kRecordFrameBytesV2 + encoded.size();
      stats_.records_sent++;
      stats_.bytes_sent += frame_bytes;
      ClientMetrics::Get()->records_sent->Inc();
      ClientMetrics::Get()->bytes_sent->Inc(frame_bytes);
      unacked_sizes.push_back(frame_bytes);
      unacked_bytes += frame_bytes;
    }
    return Status::Ok();
  };

  if (Status st = send_section(net::kFrameTraceRecord, trace_records,
                               resume.trace_received);
      !st.ok()) {
    return st;
  }
  if (Status st = send_section(net::kFrameReportsRecord, reports_records,
                               resume.reports_received);
      !st.ok()) {
    return st;
  }
  net::EndEpochFrame end;
  end.trace_records = trace_records.size();
  end.reports_records = reports_records.size();
  if (Status st = writer.Send(net::kFrameEndEpoch, net::EncodeEndEpoch(end)); !st.ok()) {
    return st;
  }
  while (!*sealed) {
    if (Status st = pump_one(sealed); !st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

Status CollectorClient::StreamEpoch(uint64_t epoch, Collector* collector,
                                    const Reports& reports) {
  if (collector->shard_id() == 0) {
    return Status::Error("net: a streaming collector needs a nonzero shard id");
  }
  Trace trace = collector->TakeTrace();
  std::vector<std::pair<uint8_t, std::string>> trace_records;
  trace_records.reserve(trace.events.size());
  for (const TraceEvent& event : trace.events) {
    uint8_t type = 0;
    std::string payload;
    EncodeTraceEventRecord(event, &type, &payload);
    trace_records.emplace_back(type, std::move(payload));
  }
  std::vector<std::pair<uint8_t, std::string>> reports_records;
  ForEachReportsRecord(reports, [&](uint8_t type, const std::string& payload) {
    reports_records.emplace_back(type, payload);
  });

  Status last = Status::Ok();
  bool sealed = false;
  for (int attempt = 0; attempt <= max_reconnects_; attempt++) {
    if (attempt > 0) {
      stats_.reconnects++;
      ClientMetrics::Get()->reconnects->Inc();
    }
    last = RunAttempt(epoch, collector->shard_id(), trace_records, reports_records,
                      &sealed);
    if (last.ok() && sealed) {
      return Status::Ok();
    }
    if (!last.ok() && !IsTransientIoError(last.error())) {
      break;  // Protocol-level: re-dialing the same bytes cannot succeed.
    }
  }
  // Out of attempts (or refused): give the epoch's traffic back to the collector so
  // nothing recorded is lost — a later StreamEpoch or Flush carries it.
  collector->Restore(std::move(trace));
  return last.ok() ? Status::Error(MakeTransientIoError(
                         "net: ran out of reconnect attempts before the epoch sealed"))
                   : last;
}

}  // namespace orochi
