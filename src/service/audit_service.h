// The live audit service: a long-running verifier-side daemon that turns the offline
// spill-file handoff of the paper's periodic-audit deployment (§2, §4.5) into networked
// streaming ingestion. N collector shards connect (src/service/collector_client.h), each
// streams its epoch's trace and reports records over the framed protocol of
// src/net/frame.h, and the service spools the records straight back into the canonical
// wire-format spill files — byte-identical to what Collector::Flush / WriteReportsFile
// would have produced locally — so when an epoch seals, the continuous audit is exactly
// AuditSession::FeedShardedEpoch over the sealed pairs, and the verdict is bit-identical
// to an offline audit of the same traffic.
//
// Failure handling follows the AuditOutcome taxonomy end to end:
//   - a client disconnect or short frame is retryable I/O: the stream stays resumable,
//     the client reconnects and re-sends from the acked counts, never tamper evidence;
//   - a frame that fails its CRC is localized corruption: the record is never spooled,
//     the client is told (ErrorCode::kCorruption) and re-sends after the resume
//     handshake — corruption in transit is never silently accepted;
//   - a shard whose EndEpoch totals disagree with what was actually spooled is
//     quarantined: its epoch never seals, and WaitEpochVerdict reports the quarantine
//     instead of a verdict.
#ifndef SRC_SERVICE_AUDIT_SERVICE_H_
#define SRC_SERVICE_AUDIT_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/audit_session.h"
#include "src/net/frame.h"
#include "src/net/transport.h"
#include "src/obs/stats_server.h"

namespace orochi {

// Knobs of the service, each with an OROCHI_* environment override resolved by
// ResolveServiceOptions (malformed values are hard "config: ..." errors, never silent
// fallbacks — same contract as OROCHI_AUDIT_THREADS / OROCHI_AUDIT_BUDGET).
struct ServiceOptions {
  // Where to listen (OROCHI_LISTEN_ADDRESS): "tcp:HOST:PORT" (port 0 = ephemeral; see
  // AuditService::address() for the bound one) or "unix:/path".
  std::string listen_address = "tcp:127.0.0.1:0";
  // Backpressure: the most unacked bytes a client may keep in flight before it must wait
  // for an Ack (OROCHI_MAX_INFLIGHT_BYTES; 0 = unbounded). Advertised in the HelloAck.
  uint64_t max_in_flight_bytes = 4ull << 20;
  // The service acks every this many records (OROCHI_ACK_INTERVAL; must be positive —
  // a client bounded by max_in_flight_bytes waits on acks to make progress).
  uint64_t ack_interval_records = 256;
  // Distinct shard streams an epoch needs sealed before it is audited
  // (OROCHI_SHARDS_PER_EPOCH; must be positive).
  uint32_t shards_per_epoch = 1;
  // Directory the per-epoch spill files land in, named epoch_<E>_shard_<S>.trace /
  // .reports. Sealed atomically (temp + fsync + rename), so anything visible under these
  // names is a complete, auditable spill file.
  std::string spool_dir;
  // Observability endpoint (OROCHI_STATS_ADDRESS): when nonempty, Start() also binds an
  // obs::StatsServer here serving /metrics (Prometheus text), /metrics.json, /epochs
  // (per-epoch verdict + phase decomposition + checkpoint reuse), and /shards (per-shard
  // connection state, spooled counts, unacked bytes, quarantine reason). Empty = off.
  std::string stats_address;
  Env* env = nullptr;              // Spool I/O; nullptr = Env::Default().
  Transport* transport = nullptr;  // Listener; nullptr = Transport::Default().
};

// Applies the OROCHI_* environment overrides to `base` (explicitly-set fields win only
// where the env var is unset: the env, when present, is authoritative, mirroring
// ResolveAuditThreads). Returns a hard config error for malformed or out-of-range values.
Result<ServiceOptions> ResolveServiceOptions(ServiceOptions base);

// Counters a long-running deployment watches; snapshot via AuditService::stats().
struct ServiceStats {
  uint64_t connections_accepted = 0;
  uint64_t records_spooled = 0;
  uint64_t records_deduped = 0;  // Resume overlap: re-sent records skipped exactly.
  uint64_t bytes_spooled = 0;
  uint64_t corrupt_frames = 0;  // CRC failures caught (and never spooled).
  uint64_t shards_sealed = 0;
  uint64_t shards_quarantined = 0;
  uint64_t epochs_audited = 0;
  uint64_t epochs_accepted = 0;
};

class AuditService {
 public:
  // The audit side mirrors AuditSession::Open: `app` + `audit_options` + the initial
  // state both sides agree on before the first epoch. `options` should already be
  // resolved (ResolveServiceOptions).
  AuditService(const Application* app, AuditOptions audit_options, InitialState initial,
               ServiceOptions options);
  ~AuditService();
  AuditService(const AuditService&) = delete;
  AuditService& operator=(const AuditService&) = delete;

  // Binds the listener and starts the accept and audit threads.
  Status Start();
  // Stops accepting, disconnects every live client, waits for the audit thread to finish
  // the epoch it is on, and joins all threads. Idempotent.
  void Stop();

  // The address actually bound (resolves "tcp:...:0" to the real ephemeral port).
  const std::string& address() const { return address_; }
  // The stats endpoint actually bound; empty when ServiceOptions::stats_address was unset.
  const std::string& stats_address() const { return stats_address_; }

  // Blocks until `epoch` has a verdict (all its shards sealed and the continuous audit
  // reached it), a shard of it was quarantined (an error Result naming the shard), or the
  // service stopped (an error Result). Verdicts are retained, so this can be re-asked.
  Result<AuditResult> WaitEpochVerdict(uint64_t epoch);

  ServiceStats stats() const;

 private:
  struct ShardStream;
  struct EpochState;

  void AcceptLoop();
  void HandleConnection(std::unique_ptr<Connection> conn);
  void AuditLoop();
  // The body of HandleConnection once the stream is attached; returns the error to log
  // (empty = clean). Detaching/notifying happens in HandleConnection.
  Status ServeStream(Connection* conn, net::FrameReader* reader, net::FrameWriter* writer,
                     const net::HelloFrame& hello, EpochState* epoch, ShardStream* stream);
  // Appends one raw record frame to the shard's spool, or skips it as resume overlap.
  Status SpoolRecord(ShardStream* stream, bool is_trace, const net::RecordFrame& rec);
  // Seals both spool files (end record + fsync + rename); on success marks the shard
  // sealed and, when the epoch is complete, hands it to the audit thread.
  Status SealShard(EpochState* epoch, ShardStream* stream, const net::EndEpochFrame& end);

  // Renders the /epochs and /shards endpoint bodies from the service state under mu_.
  std::string EpochsJson() const;
  std::string ShardsJson() const;

  const Application* app_;
  AuditOptions audit_options_;
  ServiceOptions options_;
  std::string address_;
  std::string stats_address_;
  std::unique_ptr<obs::StatsServer> stats_server_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread audit_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;           // Epoch/stream state changes (attach, seal, verdict).
  bool started_ = false;
  bool stopping_ = false;
  std::unique_ptr<AuditSession> session_;  // Touched only by the audit thread after Start.
  std::map<uint64_t, std::unique_ptr<EpochState>> epochs_;
  std::vector<uint64_t> sealed_ready_;     // Complete epochs awaiting the audit thread.
  std::map<uint64_t, Result<AuditResult>> verdicts_;
  std::vector<std::thread> handlers_;
  std::set<Connection*> live_connections_;
  ServiceStats stats_;
};

}  // namespace orochi

#endif  // SRC_SERVICE_AUDIT_SERVICE_H_
