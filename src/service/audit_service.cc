#include "src/service/audit_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/common/strings.h"
#include "src/objects/wire_format.h"
#include "src/objects/wire_primitives.h"
#include "src/obs/metrics.h"

namespace orochi {

namespace {

// Ingest-side instruments, mirroring every ServiceStats bump into the process registry so
// the /metrics exposition and the mutex-guarded stats() snapshot can never disagree about
// what happened (they may transiently disagree about when).
struct ServiceMetrics {
  obs::Counter* connections;
  obs::Counter* frames;
  obs::Counter* records_spooled;
  obs::Counter* records_deduped;
  obs::Counter* bytes_spooled;
  obs::Counter* corrupt_frames;
  obs::Counter* shard_reattaches;
  obs::Counter* shards_sealed;
  obs::Counter* shards_quarantined;
  obs::Counter* epochs_audited;
  obs::Counter* epochs_accepted;

  static ServiceMetrics* Get() {
    static ServiceMetrics* const m = [] {
      auto* r = obs::MetricsRegistry::Default();
      auto* out = new ServiceMetrics();
      out->connections = r->GetCounter("orochi_service_connections_total",
                                       "collector connections accepted");
      out->frames = r->GetCounter("orochi_service_frames_total",
                                  "protocol frames read from attached shard streams");
      out->records_spooled = r->GetCounter("orochi_service_records_spooled_total",
                                           "records appended to epoch spool files");
      out->records_deduped = r->GetCounter(
          "orochi_service_records_deduped_total",
          "resume-overlap records skipped exactly (already spooled before a reconnect)");
      out->bytes_spooled = r->GetCounter("orochi_service_bytes_spooled_total",
                                         "bytes appended to epoch spool files");
      out->corrupt_frames = r->GetCounter("orochi_service_corrupt_frames_total",
                                          "frames that failed their CRC (never spooled)");
      out->shard_reattaches = r->GetCounter(
          "orochi_service_shard_reattaches_total",
          "shard streams re-attached by a reconnecting collector (attach count - 1)");
      out->shards_sealed =
          r->GetCounter("orochi_service_shards_sealed_total", "shard spool pairs sealed");
      out->shards_quarantined = r->GetCounter(
          "orochi_service_shards_quarantined_total",
          "shards quarantined for end-epoch totals disagreeing with the spool");
      out->epochs_audited = r->GetCounter("orochi_service_epochs_audited_total",
                                          "epochs the continuous audit reached a verdict for");
      out->epochs_accepted =
          r->GetCounter("orochi_service_epochs_accepted_total", "epochs accepted");
      return out;
    }();
    return m;
  }
};

// One env knob: overrides *out when set, hard "config: ..." error when malformed.
Status ApplyUint64Knob(const char* name, const char* what, uint64_t* out) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return Status::Ok();
  }
  Result<uint64_t> v = ParseUint64(env);
  if (!v.ok()) {
    return Status::Error("config: " + std::string(name) + "='" + env + "' is not a valid " +
                         what + " (" + v.error() + ")");
  }
  *out = v.value();
  return Status::Ok();
}

bool ValidTraceRecordType(uint8_t type) {
  return type == wire::kTraceRecRequest || type == wire::kTraceRecResponse;
}

bool ValidReportsRecordType(uint8_t type) {
  return type >= wire::kReportsRecObject && type <= wire::kReportsRecOpLogSegment;
}

}  // namespace

Result<ServiceOptions> ResolveServiceOptions(ServiceOptions base) {
  if (const char* env = std::getenv("OROCHI_LISTEN_ADDRESS")) {
    if (*env == '\0') {
      return Result<ServiceOptions>::Error(
          "config: OROCHI_LISTEN_ADDRESS is set but empty");
    }
    base.listen_address = env;
  }
  if (const char* env = std::getenv("OROCHI_STATS_ADDRESS")) {
    // Unlike the listen address, empty here is a deliberate "off" — the knob doubles as
    // the enable switch — but a set-and-garbage value must still fail loudly, which the
    // stats Listen() does at Start().
    base.stats_address = env;
  }
  if (Status st = ApplyUint64Knob("OROCHI_MAX_INFLIGHT_BYTES", "byte bound",
                                  &base.max_in_flight_bytes);
      !st.ok()) {
    return Result<ServiceOptions>::Error(st.error());
  }
  if (Status st = ApplyUint64Knob("OROCHI_ACK_INTERVAL", "record count",
                                  &base.ack_interval_records);
      !st.ok()) {
    return Result<ServiceOptions>::Error(st.error());
  }
  uint64_t shards = base.shards_per_epoch;
  if (Status st = ApplyUint64Knob("OROCHI_SHARDS_PER_EPOCH", "shard count", &shards);
      !st.ok()) {
    return Result<ServiceOptions>::Error(st.error());
  }
  if (shards == 0 || shards > UINT32_MAX) {
    return Result<ServiceOptions>::Error(
        "config: OROCHI_SHARDS_PER_EPOCH must be a positive shard count, got " +
        std::to_string(shards));
  }
  base.shards_per_epoch = static_cast<uint32_t>(shards);
  if (base.ack_interval_records == 0) {
    // A client bounded by max_in_flight_bytes waits on acks; never acking would wedge it.
    return Result<ServiceOptions>::Error(
        "config: OROCHI_ACK_INTERVAL must be positive (a bounded sender waits on acks)");
  }
  return base;
}

// One collector shard's in-progress stream for one epoch. Spool members are touched only
// by the handler currently attached (attachment is exclusive under AuditService::mu_).
struct AuditService::ShardStream {
  uint32_t shard_id = 0;
  bool attached = false;
  bool sealed = false;
  bool quarantined = false;
  std::string quarantine_reason;
  uint64_t attaches = 0;  // Guarded by mu_; attaches - 1 = reconnects of this stream.

  bool opened = false;
  std::string trace_path;
  std::string reports_path;
  AtomicFileWriter trace_atomic;
  AtomicFileWriter reports_atomic;
  // Counts are written by the one attached handler but read by the /shards endpoint at
  // any time, hence atomics (plain loads/stores; attachment already orders the writes).
  std::atomic<uint64_t> trace_received{0};    // Records spooled — the client's resume point.
  std::atomic<uint64_t> reports_received{0};
  std::atomic<uint64_t> trace_bytes{0};   // Bytes written so far (header included), for the footer.
  std::atomic<uint64_t> reports_bytes{0};
  std::atomic<uint64_t> unacked_bytes{0};  // In-flight bytes since the last ack sent.
};

struct AuditService::EpochState {
  uint64_t epoch = 0;
  std::map<uint32_t, std::unique_ptr<ShardStream>> shards;
  uint32_t sealed_count = 0;
  bool enqueued = false;  // Complete and handed to the audit thread.
};

AuditService::AuditService(const Application* app, AuditOptions audit_options,
                           InitialState initial, ServiceOptions options)
    : app_(app), audit_options_(std::move(audit_options)), options_(std::move(options)) {
  session_ = std::make_unique<AuditSession>(
      AuditSession::Open(app_, audit_options_, std::move(initial)));
}

AuditService::~AuditService() { Stop(); }

Status AuditService::Start() {
  Result<std::unique_ptr<Listener>> listener =
      ResolveTransport(options_.transport)->Listen(options_.listen_address);
  if (!listener.ok()) {
    return Status::Error(listener.error());
  }
  listener_ = std::move(listener.value());
  address_ = listener_->address();
  if (!options_.stats_address.empty()) {
    stats_server_ = std::make_unique<obs::StatsServer>();
    stats_server_->Handle("/metrics", "text/plain; version=0.0.4", [] {
      return obs::MetricsRegistry::Default()->TextExposition();
    });
    stats_server_->Handle("/metrics.json", "application/json", [] {
      return obs::MetricsRegistry::Default()->JsonExposition();
    });
    stats_server_->Handle("/epochs", "application/json", [this] { return EpochsJson(); });
    stats_server_->Handle("/shards", "application/json", [this] { return ShardsJson(); });
    // The stats endpoint always rides the production transport: the main listener may sit
    // behind a FaultInjectingTransport in tests, and a scraper must not eat its faults.
    if (Status st = stats_server_->Start(options_.stats_address); !st.ok()) {
      stats_server_.reset();
      listener_->Close();
      listener_.reset();
      return st;
    }
    stats_address_ = stats_server_->address();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  audit_thread_ = std::thread([this] { AuditLoop(); });
  return Status::Ok();
}

void AuditService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return;
    }
    stopping_ = true;
    // Shut the live connections down under the lock: a pointer still in the set is
    // owned by a handler that cannot deregister (and free it) until we release mu_.
    for (Connection* conn : live_connections_) {
      conn->Shutdown();  // Unblocks handlers waiting in ReadSome.
    }
  }
  cv_.notify_all();
  listener_->Close();
  accept_thread_.join();
  {
    // Handlers run detached; wait for each to deregister on its way out.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return live_connections_.empty(); });
  }
  audit_thread_.join();
  if (stats_server_ != nullptr) {
    // Last so an operator can scrape the final counters right up to the join above.
    stats_server_->Stop();
  }
}

ServiceStats AuditService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AuditService::AcceptLoop() {
  while (true) {
    Result<std::unique_ptr<Connection>> conn = listener_->Accept();
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    if (!conn.ok()) {
      // A transient accept failure must not spin the loop hot.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    stats_.connections_accepted++;
    ServiceMetrics::Get()->connections->Inc();
    Connection* raw = conn.value().get();
    live_connections_.insert(raw);
    lock.unlock();
    std::thread([this, owned = std::move(conn).value()]() mutable {
      HandleConnection(std::move(owned));
    }).detach();
  }
}

Status AuditService::SpoolRecord(ShardStream* stream, bool is_trace,
                                 const net::RecordFrame& rec) {
  std::string frame;
  wire::AppendRecordFrame(&frame, rec.record_type, rec.payload);
  AtomicFileWriter& atomic = is_trace ? stream->trace_atomic : stream->reports_atomic;
  if (Status st = atomic.file()->Append(frame); !st.ok()) {
    return st;
  }
  if (is_trace) {
    stream->trace_received++;
    stream->trace_bytes += frame.size();
  } else {
    stream->reports_received++;
    stream->reports_bytes += frame.size();
  }
  ServiceMetrics::Get()->records_spooled->Inc();
  ServiceMetrics::Get()->bytes_spooled->Inc(frame.size());
  std::lock_guard<std::mutex> lock(mu_);
  stats_.records_spooled++;
  stats_.bytes_spooled += frame.size();
  return Status::Ok();
}

Status AuditService::SealShard(EpochState* epoch, ShardStream* stream,
                               const net::EndEpochFrame& end) {
  if (end.trace_records != stream->trace_received ||
      end.reports_records != stream->reports_received) {
    // The client claims totals the spool does not have: either direction means records
    // were lost or invented between collector and verifier, so the shard is quarantined —
    // the epoch never seals and the verdict wait reports it, never a silent accept.
    std::string reason =
        "net: shard " + std::to_string(stream->shard_id) + " of epoch " +
        std::to_string(epoch->epoch) + " quarantined: end-epoch totals " +
        std::to_string(end.trace_records) + "/" + std::to_string(end.reports_records) +
        " do not match spooled " + std::to_string(stream->trace_received) + "/" +
        std::to_string(stream->reports_received);
    ServiceMetrics::Get()->shards_quarantined->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    stream->quarantined = true;
    stream->quarantine_reason = reason;
    stats_.shards_quarantined++;
    cv_.notify_all();
    return Status::Error(reason);
  }
  // Footer counts mirror TraceWriter/ReportsWriter exactly: the trace section carries one
  // extra non-end record (the shard-info header written at open).
  std::string tail;
  wire::AppendEndRecordFrame(&tail, stream->trace_received + 1, stream->trace_bytes);
  if (Status st = stream->trace_atomic.file()->Append(tail); !st.ok()) {
    return st;
  }
  if (Status st = stream->trace_atomic.Commit(); !st.ok()) {
    return st;
  }
  tail.clear();
  wire::AppendEndRecordFrame(&tail, stream->reports_received, stream->reports_bytes);
  if (Status st = stream->reports_atomic.file()->Append(tail); !st.ok()) {
    return st;
  }
  if (Status st = stream->reports_atomic.Commit(); !st.ok()) {
    return st;
  }
  ServiceMetrics::Get()->shards_sealed->Inc();
  std::lock_guard<std::mutex> lock(mu_);
  stream->sealed = true;
  stats_.shards_sealed++;
  epoch->sealed_count++;
  if (!epoch->enqueued && epoch->sealed_count >= options_.shards_per_epoch) {
    epoch->enqueued = true;
    sealed_ready_.push_back(epoch->epoch);
    cv_.notify_all();
  }
  return Status::Ok();
}

Status AuditService::ServeStream(Connection* conn, net::FrameReader* reader,
                                 net::FrameWriter* writer, const net::HelloFrame& hello,
                                 EpochState* epoch, ShardStream* stream) {
  (void)conn;
  if (!stream->opened) {
    std::string base = options_.spool_dir + "/epoch_" + std::to_string(hello.epoch) +
                       "_shard_" + std::to_string(hello.shard_id);
    stream->trace_path = base + ".trace";
    stream->reports_path = base + ".reports";
    if (Status st = stream->trace_atomic.Open(options_.env, stream->trace_path); !st.ok()) {
      return st;
    }
    if (Status st = stream->reports_atomic.Open(options_.env, stream->reports_path);
        !st.ok()) {
      return st;
    }
    // The service writes both in-file headers itself from the handshake, so what a client
    // streams are pure data records and a sealed spool is byte-identical to a local
    // Collector::Flush / WriteReportsFile of the same traffic.
    std::string head = wire::EnvelopeHeader(wire::Section::kTrace);
    std::string shard_info;
    wire_primitives::PutU32(&shard_info, hello.shard_id);
    wire::AppendRecordFrame(&head, wire::kTraceRecShardInfo, shard_info);
    if (Status st = stream->trace_atomic.file()->Append(head); !st.ok()) {
      return st;
    }
    stream->trace_bytes = head.size();
    head = wire::EnvelopeHeader(wire::Section::kReports);
    if (Status st = stream->reports_atomic.file()->Append(head); !st.ok()) {
      return st;
    }
    stream->reports_bytes = head.size();
    stream->opened = true;
  }

  net::HelloAckFrame ack;
  ack.trace_received = stream->trace_received;
  ack.reports_received = stream->reports_received;
  ack.sealed = stream->sealed ? 1 : 0;
  ack.max_in_flight_bytes = options_.max_in_flight_bytes;
  ack.ack_interval_records = options_.ack_interval_records;
  if (Status st = writer->Send(net::kFrameHelloAck, net::EncodeHelloAck(ack)); !st.ok()) {
    return st;
  }

  uint64_t since_ack = 0;
  uint64_t bytes_since_ack = 0;
  auto send_ack = [&]() {
    since_ack = 0;
    bytes_since_ack = 0;
    stream->unacked_bytes.store(0, std::memory_order_relaxed);
    net::AckFrame a;
    a.trace_received = stream->trace_received;
    a.reports_received = stream->reports_received;
    return writer->Send(net::kFrameAck, net::EncodeAck(a));
  };
  auto send_error = [&](net::ErrorCode code, const std::string& message) {
    net::ErrorFrame e;
    e.code = code;
    e.message = message;
    (void)writer->Send(net::kFrameError, net::EncodeError(e));
  };

  while (true) {
    uint8_t type = 0;
    std::string payload;
    Result<bool> next = reader->Next(&type, &payload);
    if (!next.ok()) {
      if (!IsTransientIoError(next.error())) {
        // A frame that failed its CRC: tell the client, drop the connection, keep the
        // received counts — the record was never spooled and the resume re-sends it.
        ServiceMetrics::Get()->corrupt_frames->Inc();
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.corrupt_frames++;
        }
        send_error(net::ErrorCode::kCorruption, next.error());
      }
      return Status::Error(next.error());
    }
    if (!next.value()) {
      return Status::Ok();  // Clean close at a frame boundary.
    }
    ServiceMetrics::Get()->frames->Inc();
    switch (type) {
      case net::kFrameTraceRecord:
      case net::kFrameReportsRecord: {
        bool is_trace = (type == net::kFrameTraceRecord);
        Result<net::RecordFrame> rec = net::DecodeRecord(payload);
        if (!rec.ok()) {
          send_error(net::ErrorCode::kProtocol, rec.error());
          return Status::Error(rec.error());
        }
        bool type_ok = is_trace ? ValidTraceRecordType(rec.value().record_type)
                                : ValidReportsRecordType(rec.value().record_type);
        if (!type_ok) {
          std::string msg = "net: illegal record type " +
                            std::to_string(rec.value().record_type) + " in a " +
                            (is_trace ? std::string("trace") : std::string("reports")) +
                            " stream";
          send_error(net::ErrorCode::kProtocol, msg);
          return Status::Error(msg);
        }
        uint64_t expected = is_trace ? stream->trace_received : stream->reports_received;
        if (rec.value().index > expected) {
          std::string msg = "net: record index " + std::to_string(rec.value().index) +
                            " skips ahead of " + std::to_string(expected) +
                            " (gap in the stream)";
          send_error(net::ErrorCode::kProtocol, msg);
          return Status::Error(msg);
        }
        if (rec.value().index < expected) {
          // Resume overlap from a reconnected client: already spooled, skip exactly.
          ServiceMetrics::Get()->records_deduped->Inc();
          std::lock_guard<std::mutex> lock(mu_);
          stats_.records_deduped++;
        } else if (Status st = SpoolRecord(stream, is_trace, rec.value()); !st.ok()) {
          send_error(net::ErrorCode::kRetryable, st.error());
          return st;
        }
        since_ack++;
        bytes_since_ack += wire::kRecordFrameBytesV2 + payload.size();
        stream->unacked_bytes.store(bytes_since_ack, std::memory_order_relaxed);
        // Acks pace the client's flow control, so they must fire on bytes too: a few
        // huge records can hit the in-flight byte bound long before the record interval.
        bool byte_due = options_.max_in_flight_bytes > 0 &&
                        bytes_since_ack >= options_.max_in_flight_bytes / 2;
        if (since_ack >= options_.ack_interval_records || byte_due) {
          if (Status st = send_ack(); !st.ok()) {
            return st;
          }
        }
        break;
      }
      case net::kFrameEndEpoch: {
        Result<net::EndEpochFrame> end = net::DecodeEndEpoch(payload);
        if (!end.ok()) {
          send_error(net::ErrorCode::kProtocol, end.error());
          return Status::Error(end.error());
        }
        if (!stream->sealed) {
          if (Status st = SealShard(epoch, stream, end.value()); !st.ok()) {
            send_error(stream->quarantined ? net::ErrorCode::kProtocol
                                           : net::ErrorCode::kRetryable,
                       st.error());
            return st;
          }
        }
        if (Status st = send_ack(); !st.ok()) {
          return st;
        }
        net::EpochSealedFrame sealed;
        sealed.epoch = hello.epoch;
        if (Status st = writer->Send(net::kFrameEpochSealed, net::EncodeEpochSealed(sealed));
            !st.ok()) {
          return st;
        }
        break;  // The client closes once it has seen the seal.
      }
      default: {
        std::string msg = "net: unexpected frame type " + std::to_string(type) +
                          " from an attached shard stream";
        send_error(net::ErrorCode::kProtocol, msg);
        return Status::Error(msg);
      }
    }
  }
}

void AuditService::HandleConnection(std::unique_ptr<Connection> conn) {
  net::FrameReader reader(conn.get());
  net::FrameWriter writer(conn.get());
  auto send_error = [&](net::ErrorCode code, const std::string& message) {
    net::ErrorFrame e;
    e.code = code;
    e.message = message;
    (void)writer.Send(net::kFrameError, net::EncodeError(e));
  };
  auto deregister = [&]() {
    std::lock_guard<std::mutex> lock(mu_);
    live_connections_.erase(conn.get());
    cv_.notify_all();
  };

  uint8_t type = 0;
  std::string payload;
  Result<bool> first = reader.Next(&type, &payload);
  if (!first.ok() || !first.value() || type != net::kFrameHello) {
    if (first.ok() && first.value()) {
      send_error(net::ErrorCode::kProtocol, "net: expected a hello frame first");
    }
    deregister();
    return;
  }
  Result<net::HelloFrame> hello = net::DecodeHello(payload);
  if (!hello.ok()) {
    send_error(net::ErrorCode::kProtocol, hello.error());
    deregister();
    return;
  }
  if (hello.value().format_version != wire::kFormatVersion) {
    send_error(net::ErrorCode::kProtocol,
               "net: peer speaks wire format v" +
                   std::to_string(hello.value().format_version) + ", this service spools v" +
                   std::to_string(wire::kFormatVersion));
    deregister();
    return;
  }
  if (hello.value().shard_id == 0) {
    send_error(net::ErrorCode::kProtocol, "net: shard id 0 is reserved (unsharded spill)");
    deregister();
    return;
  }

  EpochState* epoch = nullptr;
  ShardStream* stream = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      lock.unlock();
      send_error(net::ErrorCode::kRetryable, "net: audit service stopping");
      deregister();
      return;
    }
    std::unique_ptr<EpochState>& slot = epochs_[hello.value().epoch];
    if (slot == nullptr) {
      slot = std::make_unique<EpochState>();
      slot->epoch = hello.value().epoch;
    }
    epoch = slot.get();
    std::unique_ptr<ShardStream>& sslot = epoch->shards[hello.value().shard_id];
    if (sslot == nullptr) {
      if (epoch->enqueued) {
        lock.unlock();
        send_error(net::ErrorCode::kProtocol,
                   "net: epoch " + std::to_string(hello.value().epoch) +
                       " is already complete; a new shard cannot join it");
        deregister();
        return;
      }
      sslot = std::make_unique<ShardStream>();
      sslot->shard_id = hello.value().shard_id;
    }
    stream = sslot.get();
    if (stream->quarantined) {
      std::string reason = stream->quarantine_reason;
      lock.unlock();
      send_error(net::ErrorCode::kProtocol, reason);
      deregister();
      return;
    }
    if (stream->attached) {
      // A reconnecting client can race the teardown of its dead predecessor, whose
      // handler is still draining; give the detach a moment before bouncing the client.
      cv_.wait_for(lock, std::chrono::seconds(2),
                   [&] { return !stream->attached || stopping_; });
    }
    if (stream->attached || stopping_) {
      lock.unlock();
      send_error(net::ErrorCode::kRetryable, "net: shard stream busy; reconnect");
      deregister();
      return;
    }
    stream->attached = true;
    stream->attaches++;
    if (stream->attaches > 1) {
      ServiceMetrics::Get()->shard_reattaches->Inc();
    }
  }

  (void)ServeStream(conn.get(), &reader, &writer, hello.value(), epoch, stream);

  {
    // Notify while still holding mu_: the moment the erase is visible to a Stop()
    // waiting for live_connections_ to drain, the service may be destroyed — a notify
    // outside the lock could touch a dead condition variable.
    std::lock_guard<std::mutex> lock(mu_);
    stream->attached = false;
    live_connections_.erase(conn.get());
    cv_.notify_all();
  }
}

void AuditService::AuditLoop() {
  while (true) {
    uint64_t epoch_id = 0;
    std::vector<ShardEpochFiles> files;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !sealed_ready_.empty(); });
      if (sealed_ready_.empty()) {
        return;  // Stopping with nothing left to audit.
      }
      // Epochs audit in ascending order of completion: each accepted final state seeds
      // the next epoch, the paper's steady state between audit periods.
      auto it = std::min_element(sealed_ready_.begin(), sealed_ready_.end());
      epoch_id = *it;
      sealed_ready_.erase(it);
      EpochState* epoch = epochs_.at(epoch_id).get();
      for (const auto& [shard_id, stream] : epoch->shards) {
        if (stream->sealed) {
          files.push_back(ShardEpochFiles{stream->trace_path, stream->reports_path});
        }
      }
    }
    // The audit runs outside the lock: ingestion of later epochs proceeds concurrently.
    Result<AuditResult> verdict = session_->FeedShardedEpoch(files);
    ServiceMetrics::Get()->epochs_audited->Inc();
    if (verdict.ok() && verdict.value().accepted) {
      ServiceMetrics::Get()->epochs_accepted->Inc();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.epochs_audited++;
      if (verdict.ok() && verdict.value().accepted) {
        stats_.epochs_accepted++;
      }
      verdicts_.emplace(epoch_id, std::move(verdict));
    }
    cv_.notify_all();
  }
}

std::string AuditService::EpochsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"epochs\": [";
  bool first = true;
  for (const auto& [epoch_id, epoch] : epochs_) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{\"epoch\": " + std::to_string(epoch_id);
    out += ", \"shards_sealed\": " + std::to_string(epoch->sealed_count);
    out += ", \"shards_expected\": " + std::to_string(options_.shards_per_epoch);
    std::string state = epoch->enqueued ? "auditing" : "ingesting";
    for (const auto& [shard_id, stream] : epoch->shards) {
      if (stream->quarantined) {
        state = "quarantined";
      }
    }
    auto vit = verdicts_.find(epoch_id);
    if (vit != verdicts_.end()) {
      if (!vit->second.ok()) {
        state = "error";
        out += ", \"error\": \"" + obs::JsonEscape(vit->second.error()) + "\"";
      } else {
        const AuditResult& v = vit->second.value();
        state = v.accepted ? "accepted" : "rejected";
        if (!v.accepted) {
          out += ", \"reason\": \"" + obs::JsonEscape(v.reason) + "\"";
        }
        out += ", \"phases\": " + v.phases.Json();
        out += ", \"audit\": {\"num_groups\": " + std::to_string(v.stats.num_groups) +
               ", \"ops_checked\": " + std::to_string(v.stats.ops_checked) +
               ", \"db_selects_issued\": " + std::to_string(v.stats.db_selects_issued) +
               ", \"db_selects_deduped\": " + std::to_string(v.stats.db_selects_deduped) +
               ", \"checkpoint_chunks_reused\": " +
               std::to_string(v.stats.checkpoint_chunks_reused) + "}";
      }
    }
    out += ", \"state\": \"" + state + "\"}";
  }
  out += "]}";
  return out;
}

std::string AuditService::ShardsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"shards\": [";
  bool first = true;
  for (const auto& [epoch_id, epoch] : epochs_) {
    for (const auto& [shard_id, stream] : epoch->shards) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "{\"epoch\": " + std::to_string(epoch_id);
      out += ", \"shard\": " + std::to_string(shard_id);
      out += std::string(", \"attached\": ") + (stream->attached ? "true" : "false");
      out += std::string(", \"sealed\": ") + (stream->sealed ? "true" : "false");
      out += ", \"attaches\": " + std::to_string(stream->attaches);
      out += ", \"trace_records\": " +
             std::to_string(stream->trace_received.load(std::memory_order_relaxed));
      out += ", \"reports_records\": " +
             std::to_string(stream->reports_received.load(std::memory_order_relaxed));
      out += ", \"trace_bytes\": " +
             std::to_string(stream->trace_bytes.load(std::memory_order_relaxed));
      out += ", \"reports_bytes\": " +
             std::to_string(stream->reports_bytes.load(std::memory_order_relaxed));
      out += ", \"unacked_bytes\": " +
             std::to_string(stream->unacked_bytes.load(std::memory_order_relaxed));
      out += std::string(", \"quarantined\": ") + (stream->quarantined ? "true" : "false");
      if (stream->quarantined) {
        out += ", \"quarantine_reason\": \"" + obs::JsonEscape(stream->quarantine_reason) +
               "\"";
      }
      out += "}";
    }
  }
  out += "]}";
  return out;
}

Result<AuditResult> AuditService::WaitEpochVerdict(uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = verdicts_.find(epoch);
    if (it != verdicts_.end()) {
      return it->second;
    }
    auto eit = epochs_.find(epoch);
    if (eit != epochs_.end()) {
      for (const auto& [shard_id, stream] : eit->second->shards) {
        if (stream->quarantined) {
          return Result<AuditResult>::Error(stream->quarantine_reason);
        }
      }
    }
    if (stopping_) {
      return Result<AuditResult>::Error("net: audit service stopped before epoch " +
                                        std::to_string(epoch) + " had a verdict");
    }
    cv_.wait(lock);
  }
}

}  // namespace orochi
