// AST for the SQL subset understood by the database substrate:
//   CREATE TABLE t (c TYPE, ...)
//   INSERT INTO t (c, ...) VALUES (e, ...), ...
//   SELECT */cols/aggregates FROM t [WHERE e] [ORDER BY c [ASC|DESC], ...] [LIMIT n]
//   UPDATE t SET c = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
// Expressions: literals, column refs, arithmetic, comparisons, AND/OR/NOT, parentheses.
#ifndef SRC_SQL_SQL_AST_H_
#define SRC_SQL_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sql/sql_value.h"

namespace orochi {

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind : uint8_t {
  kLiteral,
  kColumn,
  kBinary,  // arithmetic or comparison
  kAnd,
  kOr,
  kNot,
};

enum class SqlBinOp : uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct SqlExpr {
  SqlExprKind kind;
  SqlValue literal;      // kLiteral.
  std::string column;    // kColumn.
  SqlBinOp op = SqlBinOp::kEq;
  SqlExprPtr a;
  SqlExprPtr b;
};

enum class SqlAgg : uint8_t { kNone, kCountStar, kCount, kSum, kMax, kMin };

// One item in a SELECT list: a bare column, '*', or an aggregate over a column, with an
// optional `AS alias`.
struct SelectItem {
  SqlAgg agg = SqlAgg::kNone;
  bool star = false;     // SELECT * (agg == kNone) or COUNT(*) (agg == kCountStar).
  std::string column;
  std::string alias;     // Result column name override.
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

enum class SqlStmtKind : uint8_t { kCreateTable, kInsert, kSelect, kUpdate, kDelete };

struct ColumnDef {
  std::string name;
  SqlType type;
};

struct SqlStatement {
  SqlStmtKind kind;
  std::string table;

  std::vector<ColumnDef> columns;            // CREATE TABLE.
  std::vector<std::string> insert_columns;   // INSERT.
  std::vector<std::vector<SqlExprPtr>> insert_rows;

  std::vector<SelectItem> select_items;      // SELECT.
  std::vector<OrderBy> order_by;
  int64_t limit = -1;                        // -1 = no limit.

  std::vector<std::pair<std::string, SqlExprPtr>> set_items;  // UPDATE.

  SqlExprPtr where;                          // SELECT/UPDATE/DELETE (may be null).
};

}  // namespace orochi

#endif  // SRC_SQL_SQL_AST_H_
