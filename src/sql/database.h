// Plain (unversioned) in-memory SQL database: the substrate the online server executes
// against. One global lock in the server layer makes transactions strictly serializable
// (paper §4.4's first DB restriction, met by construction here).
#ifndef SRC_SQL_DATABASE_H_
#define SRC_SQL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/sql_ast.h"
#include "src/sql/sql_value.h"

namespace orochi {

class Database {
 public:
  struct TxnResult {
    bool committed = false;
    std::vector<StmtResult> results;
    std::string error;  // Set when aborted.
  };

  Result<StmtResult> Execute(const SqlStatement& stmt);
  Result<StmtResult> ExecuteText(const std::string& sql);

  // Executes all statements atomically: an error aborts and rolls back every effect.
  // (Paper §4.4: multi-statement transactions may not nest other object operations; that
  // restriction lives in the application layer.)
  TxnResult ExecuteTransaction(const std::vector<std::string>& stmts);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  std::vector<std::string> TableNames() const;
  size_t RowCount(const std::string& table) const;
  const std::vector<ColumnDef>* Schema(const std::string& table) const;
  // Raw row access (the verifier loads the initial snapshot into versioned storage).
  const std::vector<SqlRow>* Rows(const std::string& table) const;

  // Installs a table wholesale (schema + rows), preserving row order exactly — the
  // wire-format state loader uses this so a reloaded snapshot is bit-identical to the
  // saved one. Rows must match the schema width; the table must not already exist.
  Status LoadTable(const std::string& name, std::vector<ColumnDef> schema,
                   std::vector<SqlRow> rows);

  // Approximate resident bytes (benchmark reporting: Figure 8 "DB overhead" columns).
  size_t ApproximateBytes() const;

 private:
  struct Table {
    std::vector<ColumnDef> schema;
    std::vector<SqlRow> rows;
  };

  std::map<std::string, Table> tables_;
};

}  // namespace orochi

#endif  // SRC_SQL_DATABASE_H_
