#include "src/sql/sql_value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace orochi {

double SqlValue::ToFloat() const {
  if (is_int()) {
    return static_cast<double>(as_int());
  }
  if (is_float()) {
    return as_float();
  }
  if (is_text()) {
    char* end = nullptr;
    double v = std::strtod(as_text().c_str(), &end);
    return end == as_text().c_str() ? 0.0 : v;
  }
  return 0.0;
}

int64_t SqlValue::ToInt() const {
  if (is_int()) {
    return as_int();
  }
  if (is_float()) {
    return static_cast<int64_t>(as_float());
  }
  if (is_text()) {
    char* end = nullptr;
    long long v = std::strtoll(as_text().c_str(), &end, 10);
    return end == as_text().c_str() ? 0 : v;
  }
  return 0;
}

std::string SqlValue::ToText() const {
  if (is_text()) {
    return as_text();
  }
  if (is_int()) {
    return std::to_string(as_int());
  }
  if (is_float()) {
    double d = as_float();
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.14g", d);
    return buf;
  }
  return "";
}

int CompareSqlValues(const SqlValue& a, const SqlValue& b) {
  // NULL sorts first and equals only NULL.
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) {
      return 0;
    }
    return a.is_null() ? -1 : 1;
  }
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.ToFloat();
    double y = b.ToFloat();
    return x < y ? -1 : x > y ? 1 : 0;
  }
  if (a.is_text() && b.is_text()) {
    int c = a.as_text().compare(b.as_text());
    return c < 0 ? -1 : c > 0 ? 1 : 0;
  }
  // Mixed numeric/text: numbers sort before text (deterministic rule).
  return a.is_numeric() ? -1 : 1;
}

}  // namespace orochi
