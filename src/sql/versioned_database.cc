#include "src/sql/versioned_database.h"

#include <algorithm>

#include "src/sql/sql_eval.h"
#include "src/sql/sql_parser.h"

namespace orochi {

namespace {
constexpr uint64_t kOpenEnd = UINT64_MAX;
}

void VersionedDatabase::NoteModification(VTable* t, uint64_t ts) {
  if (t->mod_timestamps.empty() || t->mod_timestamps.back() != ts) {
    t->mod_timestamps.push_back(ts);
  }
}

Result<StmtResult> VersionedDatabase::ApplyWriteText(const std::string& sql, uint64_t ts) {
  Result<SqlStatement> stmt = ParseSql(sql);
  if (!stmt.ok()) {
    return Result<StmtResult>::Error(stmt.error());
  }
  return ApplyWrite(stmt.value(), ts);
}

Result<StmtResult> VersionedDatabase::ApplyWrite(const SqlStatement& stmt, uint64_t ts,
                                                 bool commit) {
  if (frozen_) {
    return Result<StmtResult>::Error("ApplyWrite: versioned database is frozen");
  }
  switch (stmt.kind) {
    case SqlStmtKind::kCreateTable: {
      if (tables_.count(stmt.table) > 0) {
        return Result<StmtResult>::Error("table '" + stmt.table + "' already exists");
      }
      if (commit) {
        VTable t;
        t.schema = stmt.columns;
        NoteModification(&t, ts);
        tables_.emplace(stmt.table, std::move(t));
      }
      StmtResult r;
      r.is_rows = false;
      return r;
    }
    case SqlStmtKind::kInsert: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      VTable& t = it->second;
      std::vector<int> targets;
      for (const std::string& col : stmt.insert_columns) {
        int idx = ColumnIndex(t.schema, col);
        if (idx < 0) {
          return Result<StmtResult>::Error("unknown column '" + col + "'");
        }
        targets.push_back(idx);
      }
      static const SqlRow kEmptyRow;
      int64_t inserted = 0;
      for (const auto& exprs : stmt.insert_rows) {
        SqlRow row(t.schema.size(), SqlValue::Null());
        for (size_t i = 0; i < exprs.size(); i++) {
          Result<SqlValue> v = EvalSqlExpr(*exprs[i], t.schema, kEmptyRow);
          if (!v.ok()) {
            return Result<StmtResult>::Error(v.error());
          }
          size_t idx = static_cast<size_t>(targets[i]);
          row[idx] = CoerceToColumnType(v.value(), t.schema[idx].type);
        }
        if (commit) {
          t.rows.push_back({ts, kOpenEnd, std::move(row)});
        }
        inserted++;
      }
      if (commit && inserted > 0) {
        NoteModification(&t, ts);
      }
      StmtResult r;
      r.is_rows = false;
      r.affected = inserted;
      return r;
    }
    case SqlStmtKind::kUpdate: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      VTable& t = it->second;
      std::vector<std::pair<int, const SqlExpr*>> sets;
      for (const auto& [col, expr] : stmt.set_items) {
        int idx = ColumnIndex(t.schema, col);
        if (idx < 0) {
          return Result<StmtResult>::Error("unknown column '" + col + "'");
        }
        sets.emplace_back(idx, expr.get());
      }
      // Stage: find visible matching rows, compute successors, then commit.
      std::vector<std::pair<size_t, SqlRow>> staged;
      for (size_t ri = 0; ri < t.rows.size(); ri++) {
        VRow& vrow = t.rows[ri];
        if (!(vrow.start_ts <= ts && ts < vrow.end_ts)) {
          continue;
        }
        Result<bool> match = EvalWhere(stmt.where.get(), t.schema, vrow.values);
        if (!match.ok()) {
          return Result<StmtResult>::Error(match.error());
        }
        if (!match.value()) {
          continue;
        }
        SqlRow updated = vrow.values;
        for (const auto& [idx, expr] : sets) {
          Result<SqlValue> v = EvalSqlExpr(*expr, t.schema, vrow.values);
          if (!v.ok()) {
            return Result<StmtResult>::Error(v.error());
          }
          size_t i = static_cast<size_t>(idx);
          updated[i] = CoerceToColumnType(v.value(), t.schema[i].type);
        }
        staged.emplace_back(ri, std::move(updated));
      }
      if (commit) {
        for (auto& [ri, updated] : staged) {
          t.rows[ri].end_ts = ts;
          t.rows.push_back({ts, kOpenEnd, std::move(updated)});
        }
        if (!staged.empty()) {
          NoteModification(&t, ts);
        }
      }
      StmtResult r;
      r.is_rows = false;
      r.affected = static_cast<int64_t>(staged.size());
      return r;
    }
    case SqlStmtKind::kDelete: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      VTable& t = it->second;
      std::vector<size_t> doomed;
      for (size_t ri = 0; ri < t.rows.size(); ri++) {
        const VRow& vrow = t.rows[ri];
        if (!(vrow.start_ts <= ts && ts < vrow.end_ts)) {
          continue;
        }
        Result<bool> match = EvalWhere(stmt.where.get(), t.schema, vrow.values);
        if (!match.ok()) {
          return Result<StmtResult>::Error(match.error());
        }
        if (match.value()) {
          doomed.push_back(ri);
        }
      }
      if (commit) {
        for (size_t ri : doomed) {
          t.rows[ri].end_ts = ts;
        }
        if (!doomed.empty()) {
          NoteModification(&t, ts);
        }
      }
      StmtResult r;
      r.is_rows = false;
      r.affected = static_cast<int64_t>(doomed.size());
      return r;
    }
    case SqlStmtKind::kSelect:
      return Result<StmtResult>::Error("ApplyWrite: SELECT is not a write");
  }
  return Result<StmtResult>::Error("internal: bad statement kind");
}

Result<StmtResult> VersionedDatabase::SelectText(const std::string& sql, uint64_t ts) const {
  Result<SqlStatement> stmt = ParseSql(sql);
  if (!stmt.ok()) {
    return Result<StmtResult>::Error(stmt.error());
  }
  return Select(stmt.value(), ts);
}

Result<StmtResult> VersionedDatabase::Select(const SqlStatement& stmt, uint64_t ts) const {
  if (stmt.kind != SqlStmtKind::kSelect) {
    return Result<StmtResult>::Error("Select: not a SELECT statement");
  }
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
  }
  const VTable& t = it->second;
  std::vector<const SqlRow*> filtered;
  for (const VRow& vrow : t.rows) {
    if (!(vrow.start_ts <= ts && ts < vrow.end_ts)) {
      continue;
    }
    Result<bool> keep = EvalWhere(stmt.where.get(), t.schema, vrow.values);
    if (!keep.ok()) {
      return Result<StmtResult>::Error(keep.error());
    }
    if (keep.value()) {
      filtered.push_back(&vrow.values);
    }
  }
  return RunSelectPipeline(stmt, t.schema, std::move(filtered));
}

bool VersionedDatabase::TableModifiedBetween(const std::string& table, uint64_t from_ts,
                                             uint64_t to_ts) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    // Unknown tables are conservatively "modified" so dedup never fabricates results.
    return true;
  }
  const std::vector<uint64_t>& mods = it->second.mod_timestamps;
  // First modification timestamp strictly greater than from_ts.
  auto lo = std::upper_bound(mods.begin(), mods.end(), from_ts);
  return lo != mods.end() && *lo <= to_ts;
}

Database VersionedDatabase::LatestState() const {
  Database db;
  for (const auto& [name, t] : tables_) {
    SqlStatement create;
    create.kind = SqlStmtKind::kCreateTable;
    create.table = name;
    create.columns = t.schema;
    Result<StmtResult> r = db.Execute(create);
    (void)r;
    // Bulk-insert current rows (the "migration" of §4.5, collapsed to a single pass since
    // both stores are in-memory here).
    SqlStatement insert;
    insert.kind = SqlStmtKind::kInsert;
    insert.table = name;
    for (const ColumnDef& c : t.schema) {
      insert.insert_columns.push_back(c.name);
    }
    for (const VRow& vrow : t.rows) {
      if (vrow.end_ts != kOpenEnd) {
        continue;
      }
      std::vector<SqlExprPtr> exprs;
      for (const SqlValue& v : vrow.values) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kLiteral;
        e->literal = v;
        exprs.push_back(std::move(e));
      }
      insert.insert_rows.push_back(std::move(exprs));
    }
    if (!insert.insert_rows.empty()) {
      Result<StmtResult> ri = db.Execute(insert);
      (void)ri;
    }
  }
  return db;
}

size_t VersionedDatabase::ApproximateBytes() const {
  size_t bytes = 0;
  for (const auto& [name, t] : tables_) {
    bytes += name.size() + 64;
    for (const VRow& vrow : t.rows) {
      bytes += 16 + 16 * vrow.values.size();
      for (const SqlValue& v : vrow.values) {
        if (v.is_text()) {
          bytes += v.as_text().size();
        }
      }
    }
  }
  return bytes;
}

size_t VersionedDatabase::VersionedRowCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.rows.size();
}

}  // namespace orochi
