// Audit-time versioned database (paper §4.5, §A.7).
//
// Rows carry [start_ts, end_ts) validity intervals (the Warp schema). During the redo pass
// the verifier replays every logged transaction, stamping query q of transaction s with
// ts = s * kMaxQueriesPerTxn + q; a re-executed SELECT at timestamp ts then sees exactly the
// state the online execution saw. Per-table modification timestamps support read-query
// deduplication: two lexically identical SELECTs at versions v1 < v2 can share a result when
// no touched table was modified in (v1, v2].
#ifndef SRC_SQL_VERSIONED_DATABASE_H_
#define SRC_SQL_VERSIONED_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/database.h"
#include "src/sql/sql_ast.h"
#include "src/sql/sql_value.h"

namespace orochi {

class VersionedDatabase {
 public:
  // MAXQ from the paper's implementation (§A.7): query q of transaction s gets
  // ts = s * kMaxQueriesPerTxn + q. q is 1-based; s is the 1-based log sequence number.
  static constexpr uint64_t kMaxQueriesPerTxn = 10000;

  static uint64_t MakeTimestamp(uint64_t seqnum, uint64_t query_index) {
    return seqnum * kMaxQueriesPerTxn + query_index;
  }

  // Applies one write statement (CREATE/INSERT/UPDATE/DELETE) at timestamp ts. Timestamps
  // must be applied in non-decreasing order (the redo pass walks the log in order). With
  // commit = false the statement is fully evaluated (staging included) but nothing
  // mutates — used to validate the executor's claimed-failure ops (§4.6).
  Result<StmtResult> ApplyWrite(const SqlStatement& stmt, uint64_t ts, bool commit = true);
  Result<StmtResult> ApplyWriteText(const std::string& sql, uint64_t ts);

  // Marks the end of the redo pass: any later ApplyWrite fails. A frozen database is
  // immutable, so Select / TableModifiedBetween are lock-free thread-safe snapshot reads
  // — the property the parallel audit relies on.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  // Runs a SELECT as of timestamp ts (rows with start_ts <= ts < end_ts are visible).
  Result<StmtResult> Select(const SqlStatement& stmt, uint64_t ts) const;
  Result<StmtResult> SelectText(const std::string& sql, uint64_t ts) const;

  // True when `table` was modified at any version in (from_ts, to_ts].
  bool TableModifiedBetween(const std::string& table, uint64_t from_ts, uint64_t to_ts) const;

  // Materializes the latest state (as of +infinity) into a plain database — the
  // "permanent" copy the verifier keeps after the audit (§5.1), discarding versions.
  Database LatestState() const;

  // Approximate resident bytes including all versions (Figure 8 "temp DB overhead").
  size_t ApproximateBytes() const;

  size_t VersionedRowCount(const std::string& table) const;

 private:
  struct VRow {
    uint64_t start_ts;
    uint64_t end_ts;  // UINT64_MAX while current.
    SqlRow values;
  };

  struct VTable {
    std::vector<ColumnDef> schema;
    std::vector<VRow> rows;
    std::vector<uint64_t> mod_timestamps;  // Sorted (appends are monotone).
  };

  void NoteModification(VTable* t, uint64_t ts);

  std::map<std::string, VTable> tables_;
  bool frozen_ = false;
};

}  // namespace orochi

#endif  // SRC_SQL_VERSIONED_DATABASE_H_
