#include "src/sql/sql_eval.h"

#include <algorithm>

namespace orochi {

int ColumnIndex(const std::vector<ColumnDef>& schema, const std::string& name) {
  for (size_t i = 0; i < schema.size(); i++) {
    if (schema[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

SqlValue CoerceToColumnType(const SqlValue& v, SqlType type) {
  if (v.is_null()) {
    return v;
  }
  switch (type) {
    case SqlType::kInt:
      return SqlValue::Int(v.ToInt());
    case SqlType::kFloat:
      return SqlValue::Float(v.ToFloat());
    case SqlType::kText:
      return SqlValue::Text(v.ToText());
  }
  return v;
}

Result<SqlValue> EvalSqlExpr(const SqlExpr& e, const std::vector<ColumnDef>& schema,
                             const SqlRow& row) {
  switch (e.kind) {
    case SqlExprKind::kLiteral:
      return e.literal;
    case SqlExprKind::kColumn: {
      int idx = ColumnIndex(schema, e.column);
      if (idx < 0) {
        return Result<SqlValue>::Error("unknown column '" + e.column + "'");
      }
      return row[static_cast<size_t>(idx)];
    }
    case SqlExprKind::kAnd: {
      Result<SqlValue> a = EvalSqlExpr(*e.a, schema, row);
      if (!a.ok()) {
        return a;
      }
      if (a.value().ToInt() == 0) {
        return SqlValue::Int(0);
      }
      Result<SqlValue> b = EvalSqlExpr(*e.b, schema, row);
      if (!b.ok()) {
        return b;
      }
      return SqlValue::Int(b.value().ToInt() != 0 ? 1 : 0);
    }
    case SqlExprKind::kOr: {
      Result<SqlValue> a = EvalSqlExpr(*e.a, schema, row);
      if (!a.ok()) {
        return a;
      }
      if (a.value().ToInt() != 0) {
        return SqlValue::Int(1);
      }
      Result<SqlValue> b = EvalSqlExpr(*e.b, schema, row);
      if (!b.ok()) {
        return b;
      }
      return SqlValue::Int(b.value().ToInt() != 0 ? 1 : 0);
    }
    case SqlExprKind::kNot: {
      Result<SqlValue> a = EvalSqlExpr(*e.a, schema, row);
      if (!a.ok()) {
        return a;
      }
      return SqlValue::Int(a.value().ToInt() == 0 ? 1 : 0);
    }
    case SqlExprKind::kBinary: {
      Result<SqlValue> ra = EvalSqlExpr(*e.a, schema, row);
      if (!ra.ok()) {
        return ra;
      }
      Result<SqlValue> rb = EvalSqlExpr(*e.b, schema, row);
      if (!rb.ok()) {
        return rb;
      }
      const SqlValue& a = ra.value();
      const SqlValue& b = rb.value();
      switch (e.op) {
        case SqlBinOp::kAdd:
        case SqlBinOp::kSub:
        case SqlBinOp::kMul:
        case SqlBinOp::kDiv: {
          if (a.is_int() && b.is_int() && e.op != SqlBinOp::kDiv) {
            int64_t x = a.as_int();
            int64_t y = b.as_int();
            switch (e.op) {
              case SqlBinOp::kAdd: return SqlValue::Int(x + y);
              case SqlBinOp::kSub: return SqlValue::Int(x - y);
              default: return SqlValue::Int(x * y);
            }
          }
          double x = a.ToFloat();
          double y = b.ToFloat();
          switch (e.op) {
            case SqlBinOp::kAdd: return SqlValue::Float(x + y);
            case SqlBinOp::kSub: return SqlValue::Float(x - y);
            case SqlBinOp::kMul: return SqlValue::Float(x * y);
            default:
              if (y == 0.0) {
                return Result<SqlValue>::Error("division by zero");
              }
              return SqlValue::Float(x / y);
          }
        }
        case SqlBinOp::kEq: case SqlBinOp::kNe: case SqlBinOp::kLt:
        case SqlBinOp::kLe: case SqlBinOp::kGt: case SqlBinOp::kGe: {
          // Text/number comparisons coerce text numerically when compared with a number.
          int cmp;
          if (a.is_text() && b.is_numeric()) {
            double x = a.ToFloat();
            double y = b.ToFloat();
            cmp = x < y ? -1 : x > y ? 1 : 0;
          } else if (a.is_numeric() && b.is_text()) {
            double x = a.ToFloat();
            double y = b.ToFloat();
            cmp = x < y ? -1 : x > y ? 1 : 0;
          } else {
            cmp = CompareSqlValues(a, b);
          }
          bool res;
          switch (e.op) {
            case SqlBinOp::kEq: res = cmp == 0; break;
            case SqlBinOp::kNe: res = cmp != 0; break;
            case SqlBinOp::kLt: res = cmp < 0; break;
            case SqlBinOp::kLe: res = cmp <= 0; break;
            case SqlBinOp::kGt: res = cmp > 0; break;
            default: res = cmp >= 0; break;
          }
          return SqlValue::Int(res ? 1 : 0);
        }
      }
      return Result<SqlValue>::Error("internal: bad sql binop");
    }
  }
  return Result<SqlValue>::Error("internal: bad sql expr");
}

Result<bool> EvalWhere(const SqlExpr* where, const std::vector<ColumnDef>& schema,
                       const SqlRow& row) {
  if (where == nullptr) {
    return true;
  }
  Result<SqlValue> v = EvalSqlExpr(*where, schema, row);
  if (!v.ok()) {
    return Result<bool>::Error(v.error());
  }
  return v.value().ToInt() != 0;
}

Result<StmtResult> RunSelectPipeline(const SqlStatement& stmt,
                                     const std::vector<ColumnDef>& schema,
                                     std::vector<const SqlRow*> rows) {
  // ORDER BY applies before projection (columns may not be projected).
  if (!stmt.order_by.empty()) {
    std::vector<int> order_idx;
    for (const OrderBy& ob : stmt.order_by) {
      int idx = ColumnIndex(schema, ob.column);
      if (idx < 0) {
        return Result<StmtResult>::Error("unknown ORDER BY column '" + ob.column + "'");
      }
      order_idx.push_back(idx);
    }
    std::stable_sort(rows.begin(), rows.end(), [&](const SqlRow* a, const SqlRow* b) {
      for (size_t i = 0; i < order_idx.size(); i++) {
        size_t idx = static_cast<size_t>(order_idx[i]);
        int cmp = CompareSqlValues((*a)[idx], (*b)[idx]);
        if (cmp != 0) {
          return stmt.order_by[i].descending ? cmp > 0 : cmp < 0;
        }
      }
      return false;
    });
  }

  bool has_agg = false;
  bool has_plain = false;
  for (const SelectItem& item : stmt.select_items) {
    if (item.agg != SqlAgg::kNone) {
      has_agg = true;
    } else {
      has_plain = true;
    }
  }
  if (has_agg && has_plain) {
    return Result<StmtResult>::Error("cannot mix aggregates and plain columns");
  }

  StmtResult out;
  out.is_rows = true;

  if (has_agg) {
    SqlRow agg_row;
    for (const SelectItem& item : stmt.select_items) {
      std::string name;
      SqlValue v;
      if (item.agg == SqlAgg::kCountStar) {
        name = "count(*)";
        v = SqlValue::Int(static_cast<int64_t>(rows.size()));
      } else {
        int idx = ColumnIndex(schema, item.column);
        if (idx < 0) {
          return Result<StmtResult>::Error("unknown column '" + item.column + "'");
        }
        size_t col = static_cast<size_t>(idx);
        switch (item.agg) {
          case SqlAgg::kCount: {
            int64_t n = 0;
            for (const SqlRow* r : rows) {
              if (!(*r)[col].is_null()) {
                n++;
              }
            }
            name = "count(" + item.column + ")";
            v = SqlValue::Int(n);
            break;
          }
          case SqlAgg::kSum: {
            bool any_float = false;
            int64_t isum = 0;
            double fsum = 0.0;
            bool any = false;
            for (const SqlRow* r : rows) {
              const SqlValue& cell = (*r)[col];
              if (cell.is_null()) {
                continue;
              }
              any = true;
              if (cell.is_float()) {
                any_float = true;
              }
              isum += cell.ToInt();
              fsum += cell.ToFloat();
            }
            name = "sum(" + item.column + ")";
            v = !any ? SqlValue::Null()
                     : (any_float ? SqlValue::Float(fsum) : SqlValue::Int(isum));
            break;
          }
          case SqlAgg::kMax:
          case SqlAgg::kMin: {
            const SqlValue* best = nullptr;
            for (const SqlRow* r : rows) {
              const SqlValue& cell = (*r)[col];
              if (cell.is_null()) {
                continue;
              }
              if (best == nullptr ||
                  (item.agg == SqlAgg::kMax ? CompareSqlValues(cell, *best) > 0
                                            : CompareSqlValues(cell, *best) < 0)) {
                best = &cell;
              }
            }
            name = (item.agg == SqlAgg::kMax ? "max(" : "min(") + item.column + ")";
            v = best == nullptr ? SqlValue::Null() : *best;
            break;
          }
          default:
            return Result<StmtResult>::Error("internal: bad aggregate");
        }
      }
      out.rows.columns.push_back(item.alias.empty() ? name : item.alias);
      agg_row.push_back(std::move(v));
    }
    out.rows.rows.push_back(std::move(agg_row));
    // LIMIT on an aggregate row set still applies (LIMIT 0 yields nothing).
    if (stmt.limit >= 0 && static_cast<int64_t>(out.rows.rows.size()) > stmt.limit) {
      out.rows.rows.resize(static_cast<size_t>(stmt.limit));
    }
    return out;
  }

  // Plain projection.
  std::vector<int> proj;
  for (const SelectItem& item : stmt.select_items) {
    if (item.star) {
      for (size_t i = 0; i < schema.size(); i++) {
        proj.push_back(static_cast<int>(i));
        out.rows.columns.push_back(schema[i].name);
      }
    } else {
      int idx = ColumnIndex(schema, item.column);
      if (idx < 0) {
        return Result<StmtResult>::Error("unknown column '" + item.column + "'");
      }
      proj.push_back(idx);
      out.rows.columns.push_back(item.alias.empty() ? item.column : item.alias);
    }
  }

  size_t max_rows = stmt.limit >= 0 ? static_cast<size_t>(stmt.limit) : rows.size();
  for (const SqlRow* r : rows) {
    if (out.rows.rows.size() >= max_rows) {
      break;
    }
    SqlRow projected;
    projected.reserve(proj.size());
    for (int idx : proj) {
      projected.push_back((*r)[static_cast<size_t>(idx)]);
    }
    out.rows.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace orochi
