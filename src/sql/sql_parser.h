// SQL lexer + recursive-descent parser for the supported subset (see sql_ast.h).
#ifndef SRC_SQL_SQL_PARSER_H_
#define SRC_SQL_SQL_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/sql/sql_ast.h"

namespace orochi {

// Parses a single SQL statement (a trailing ';' is tolerated). Untrusted inputs (the audit
// replays SQL text from reports) must never crash the parser.
Result<SqlStatement> ParseSql(const std::string& sql);

}  // namespace orochi

#endif  // SRC_SQL_SQL_PARSER_H_
