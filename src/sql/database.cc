#include "src/sql/database.h"

#include <algorithm>

#include "src/sql/sql_eval.h"
#include "src/sql/sql_parser.h"

namespace orochi {

Result<StmtResult> Database::ExecuteText(const std::string& sql) {
  Result<SqlStatement> stmt = ParseSql(sql);
  if (!stmt.ok()) {
    return Result<StmtResult>::Error(stmt.error());
  }
  return Execute(stmt.value());
}

Result<StmtResult> Database::Execute(const SqlStatement& stmt) {
  switch (stmt.kind) {
    case SqlStmtKind::kCreateTable: {
      if (tables_.count(stmt.table) > 0) {
        return Result<StmtResult>::Error("table '" + stmt.table + "' already exists");
      }
      Table t;
      t.schema = stmt.columns;
      tables_.emplace(stmt.table, std::move(t));
      StmtResult r;
      r.is_rows = false;
      r.affected = 0;
      return r;
    }
    case SqlStmtKind::kInsert: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      Table& t = it->second;
      // Resolve the insert column list once.
      std::vector<int> targets;
      for (const std::string& col : stmt.insert_columns) {
        int idx = ColumnIndex(t.schema, col);
        if (idx < 0) {
          return Result<StmtResult>::Error("unknown column '" + col + "'");
        }
        targets.push_back(idx);
      }
      static const SqlRow kEmptyRow;
      int64_t inserted = 0;
      for (const auto& exprs : stmt.insert_rows) {
        SqlRow row(t.schema.size(), SqlValue::Null());
        for (size_t i = 0; i < exprs.size(); i++) {
          Result<SqlValue> v = EvalSqlExpr(*exprs[i], t.schema, kEmptyRow);
          if (!v.ok()) {
            return Result<StmtResult>::Error(v.error());
          }
          size_t idx = static_cast<size_t>(targets[i]);
          row[idx] = CoerceToColumnType(v.value(), t.schema[idx].type);
        }
        t.rows.push_back(std::move(row));
        inserted++;
      }
      StmtResult r;
      r.is_rows = false;
      r.affected = inserted;
      return r;
    }
    case SqlStmtKind::kSelect: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      const Table& t = it->second;
      std::vector<const SqlRow*> filtered;
      for (const SqlRow& row : t.rows) {
        Result<bool> keep = EvalWhere(stmt.where.get(), t.schema, row);
        if (!keep.ok()) {
          return Result<StmtResult>::Error(keep.error());
        }
        if (keep.value()) {
          filtered.push_back(&row);
        }
      }
      return RunSelectPipeline(stmt, t.schema, std::move(filtered));
    }
    case SqlStmtKind::kUpdate: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      Table& t = it->second;
      std::vector<std::pair<int, const SqlExpr*>> sets;
      for (const auto& [col, expr] : stmt.set_items) {
        int idx = ColumnIndex(t.schema, col);
        if (idx < 0) {
          return Result<StmtResult>::Error("unknown column '" + col + "'");
        }
        sets.emplace_back(idx, expr.get());
      }
      // Stage all updates before committing any, so an evaluation error leaves the table
      // untouched (statement atomicity). SET expressions see the pre-update row.
      std::vector<std::pair<size_t, SqlRow>> staged;
      for (size_t ri = 0; ri < t.rows.size(); ri++) {
        const SqlRow& row = t.rows[ri];
        Result<bool> match = EvalWhere(stmt.where.get(), t.schema, row);
        if (!match.ok()) {
          return Result<StmtResult>::Error(match.error());
        }
        if (!match.value()) {
          continue;
        }
        SqlRow updated = row;
        for (const auto& [idx, expr] : sets) {
          Result<SqlValue> v = EvalSqlExpr(*expr, t.schema, row);
          if (!v.ok()) {
            return Result<StmtResult>::Error(v.error());
          }
          size_t i = static_cast<size_t>(idx);
          updated[i] = CoerceToColumnType(v.value(), t.schema[i].type);
        }
        staged.emplace_back(ri, std::move(updated));
      }
      int64_t affected = static_cast<int64_t>(staged.size());
      for (auto& [ri, updated] : staged) {
        t.rows[ri] = std::move(updated);
      }
      StmtResult r;
      r.is_rows = false;
      r.affected = affected;
      return r;
    }
    case SqlStmtKind::kDelete: {
      auto it = tables_.find(stmt.table);
      if (it == tables_.end()) {
        return Result<StmtResult>::Error("no such table '" + stmt.table + "'");
      }
      Table& t = it->second;
      // Evaluate all matches before mutating so an evaluation error leaves the table
      // untouched (statement atomicity).
      std::vector<bool> doomed(t.rows.size());
      int64_t affected = 0;
      for (size_t i = 0; i < t.rows.size(); i++) {
        Result<bool> match = EvalWhere(stmt.where.get(), t.schema, t.rows[i]);
        if (!match.ok()) {
          return Result<StmtResult>::Error(match.error());
        }
        doomed[i] = match.value();
        if (doomed[i]) {
          affected++;
        }
      }
      size_t w = 0;
      for (size_t i = 0; i < t.rows.size(); i++) {
        if (!doomed[i]) {
          if (w != i) {
            t.rows[w] = std::move(t.rows[i]);
          }
          w++;
        }
      }
      t.rows.resize(w);
      StmtResult r;
      r.is_rows = false;
      r.affected = affected;
      return r;
    }
  }
  return Result<StmtResult>::Error("internal: bad statement kind");
}

Database::TxnResult Database::ExecuteTransaction(const std::vector<std::string>& stmts) {
  TxnResult out;
  // Parse everything first; collect touched tables for the undo snapshot.
  std::vector<SqlStatement> parsed;
  for (const std::string& sql : stmts) {
    Result<SqlStatement> stmt = ParseSql(sql);
    if (!stmt.ok()) {
      out.error = stmt.error();
      return out;
    }
    parsed.push_back(std::move(stmt).value());
  }
  std::map<std::string, Table> snapshot;
  std::vector<std::string> created;
  for (const SqlStatement& stmt : parsed) {
    if (stmt.kind == SqlStmtKind::kSelect) {
      continue;
    }
    if (stmt.kind == SqlStmtKind::kCreateTable) {
      created.push_back(stmt.table);
      continue;
    }
    auto it = tables_.find(stmt.table);
    if (it != tables_.end() && snapshot.count(stmt.table) == 0) {
      snapshot.emplace(stmt.table, it->second);
    }
  }

  for (const SqlStatement& stmt : parsed) {
    Result<StmtResult> r = Execute(stmt);
    if (!r.ok()) {
      // Roll back: restore snapshots, drop tables created inside the transaction.
      for (auto& [name, table] : snapshot) {
        tables_[name] = std::move(table);
      }
      for (const std::string& name : created) {
        tables_.erase(name);
      }
      out.committed = false;
      out.results.clear();
      out.error = r.error();
      return out;
    }
    out.results.push_back(std::move(r).value());
  }
  out.committed = true;
  return out;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, t] : tables_) {
    (void)t;
    names.push_back(name);
  }
  return names;
}

size_t Database::RowCount(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.rows.size();
}

const std::vector<ColumnDef>* Database::Schema(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second.schema;
}

const std::vector<SqlRow>* Database::Rows(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second.rows;
}

Status Database::LoadTable(const std::string& name, std::vector<ColumnDef> schema,
                           std::vector<SqlRow> rows) {
  if (tables_.count(name) > 0) {
    return Status::Error("table '" + name + "' already exists");
  }
  for (const SqlRow& row : rows) {
    if (row.size() != schema.size()) {
      return Status::Error("table '" + name + "': row width " + std::to_string(row.size()) +
                           " does not match schema width " + std::to_string(schema.size()));
    }
  }
  Table t;
  t.schema = std::move(schema);
  t.rows = std::move(rows);
  tables_.emplace(name, std::move(t));
  return Status::Ok();
}

size_t Database::ApproximateBytes() const {
  size_t bytes = 0;
  for (const auto& [name, t] : tables_) {
    bytes += name.size() + 64;
    for (const SqlRow& row : t.rows) {
      bytes += 16 * row.size();
      for (const SqlValue& v : row) {
        if (v.is_text()) {
          bytes += v.as_text().size();
        }
      }
    }
  }
  return bytes;
}

}  // namespace orochi
