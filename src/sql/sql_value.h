// SQL cell values and result sets for the in-memory database substrate.
#ifndef SRC_SQL_SQL_VALUE_H_
#define SRC_SQL_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace orochi {

enum class SqlType : uint8_t { kInt, kFloat, kText };

// A cell: NULL, 64-bit integer, double, or text.
class SqlValue {
 public:
  SqlValue() : rep_(std::monostate{}) {}
  static SqlValue Null() { return SqlValue(); }
  static SqlValue Int(int64_t v) { return SqlValue(Rep(v)); }
  static SqlValue Float(double v) { return SqlValue(Rep(v)); }
  static SqlValue Text(std::string v) { return SqlValue(Rep(std::move(v))); }

  bool is_null() const { return rep_.index() == 0; }
  bool is_int() const { return rep_.index() == 1; }
  bool is_float() const { return rep_.index() == 2; }
  bool is_text() const { return rep_.index() == 3; }
  bool is_numeric() const { return is_int() || is_float(); }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_float() const { return std::get<double>(rep_); }
  const std::string& as_text() const { return std::get<std::string>(rep_); }

  double ToFloat() const;
  int64_t ToInt() const;
  std::string ToText() const;

  bool operator==(const SqlValue& o) const { return rep_ == o.rep_; }

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit SqlValue(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

// SQL three-valued-ish comparison flattened to deterministic two-valued semantics:
// NULL sorts before everything and equals only NULL (documented deviation; our substrate
// does not model SQL's UNKNOWN).
int CompareSqlValues(const SqlValue& a, const SqlValue& b);

using SqlRow = std::vector<SqlValue>;

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<SqlRow> rows;
};

// The outcome of one SQL statement.
struct StmtResult {
  bool is_rows = false;
  ResultSet rows;        // SELECT.
  int64_t affected = 0;  // INSERT/UPDATE/DELETE (rows touched); CREATE TABLE = 0.
};

}  // namespace orochi

#endif  // SRC_SQL_SQL_VALUE_H_
