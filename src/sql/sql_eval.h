// Expression evaluation and SELECT execution shared by the plain and versioned engines.
#ifndef SRC_SQL_SQL_EVAL_H_
#define SRC_SQL_SQL_EVAL_H_

#include <vector>

#include "src/common/result.h"
#include "src/sql/sql_ast.h"
#include "src/sql/sql_value.h"

namespace orochi {

// Resolves a column name in a schema; -1 when absent.
int ColumnIndex(const std::vector<ColumnDef>& schema, const std::string& name);

// Evaluates an expression against one row.
Result<SqlValue> EvalSqlExpr(const SqlExpr& e, const std::vector<ColumnDef>& schema,
                             const SqlRow& row);

// Evaluates a WHERE clause (null clause = true).
Result<bool> EvalWhere(const SqlExpr* where, const std::vector<ColumnDef>& schema,
                       const SqlRow& row);

// Runs the projection / aggregation / ORDER BY / LIMIT pipeline of a SELECT over an
// already-filtered row set.
Result<StmtResult> RunSelectPipeline(const SqlStatement& stmt,
                                     const std::vector<ColumnDef>& schema,
                                     std::vector<const SqlRow*> rows);

// Coerces a value to a column type (numeric columns parse text; text renders numbers).
SqlValue CoerceToColumnType(const SqlValue& v, SqlType type);

}  // namespace orochi

#endif  // SRC_SQL_SQL_EVAL_H_
