#include "src/sql/sql_parser.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace orochi {

namespace {

enum class TokKind : uint8_t {
  kEnd, kWord, kInt, kFloat, kString,
  kLParen, kRParen, kComma, kStar, kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kSlash, kDot,
};

struct Tok {
  TokKind kind;
  std::string word;   // Lower-cased for kWord.
  std::string raw;    // Original spelling (identifiers keep case; we lower anyway).
  int64_t int_val = 0;
  double float_val = 0.0;
};

class SqlLexer {
 public:
  explicit SqlLexer(const std::string& s) : s_(s) {}

  Result<std::vector<Tok>> Run() {
    std::vector<Tok> out;
    while (true) {
      while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
      if (pos_ >= s_.size()) {
        out.push_back({TokKind::kEnd, "", "", 0, 0.0});
        return out;
      }
      char c = s_[pos_];
      if (c == '(') { pos_++; out.push_back({TokKind::kLParen, "", "", 0, 0}); continue; }
      if (c == ')') { pos_++; out.push_back({TokKind::kRParen, "", "", 0, 0}); continue; }
      if (c == ',') { pos_++; out.push_back({TokKind::kComma, "", "", 0, 0}); continue; }
      if (c == '*') { pos_++; out.push_back({TokKind::kStar, "", "", 0, 0}); continue; }
      if (c == '+') { pos_++; out.push_back({TokKind::kPlus, "", "", 0, 0}); continue; }
      if (c == '-') { pos_++; out.push_back({TokKind::kMinus, "", "", 0, 0}); continue; }
      if (c == '/') { pos_++; out.push_back({TokKind::kSlash, "", "", 0, 0}); continue; }
      if (c == ';') { pos_++; continue; }  // Tolerated trailing separator.
      if (c == '=') { pos_++; out.push_back({TokKind::kEq, "", "", 0, 0}); continue; }
      if (c == '!') {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
          pos_ += 2;
          out.push_back({TokKind::kNe, "", "", 0, 0});
          continue;
        }
        return Result<std::vector<Tok>>::Error("sql lex: expected '!='");
      }
      if (c == '<') {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
          pos_ += 2;
          out.push_back({TokKind::kLe, "", "", 0, 0});
        } else if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '>') {
          pos_ += 2;
          out.push_back({TokKind::kNe, "", "", 0, 0});
        } else {
          pos_++;
          out.push_back({TokKind::kLt, "", "", 0, 0});
        }
        continue;
      }
      if (c == '>') {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
          pos_ += 2;
          out.push_back({TokKind::kGe, "", "", 0, 0});
        } else {
          pos_++;
          out.push_back({TokKind::kGt, "", "", 0, 0});
        }
        continue;
      }
      if (c == '\'') {
        pos_++;
        std::string body;
        while (true) {
          if (pos_ >= s_.size()) {
            return Result<std::vector<Tok>>::Error("sql lex: unterminated string");
          }
          if (s_[pos_] == '\'') {
            if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '\'') {
              body += '\'';
              pos_ += 2;
              continue;
            }
            pos_++;
            break;
          }
          body += s_[pos_++];
        }
        Tok t{TokKind::kString, "", "", 0, 0};
        t.raw = std::move(body);
        out.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string digits;
        bool is_float = false;
        while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
          digits += s_[pos_++];
        }
        if (pos_ + 1 < s_.size() && s_[pos_] == '.' &&
            std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
          is_float = true;
          digits += s_[pos_++];
          while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            digits += s_[pos_++];
          }
        }
        Tok t{is_float ? TokKind::kFloat : TokKind::kInt, "", "", 0, 0};
        if (is_float) {
          t.float_val = std::strtod(digits.c_str(), nullptr);
        } else {
          errno = 0;
          t.int_val = std::strtoll(digits.c_str(), nullptr, 10);
          if (errno != 0) {
            return Result<std::vector<Tok>>::Error("sql lex: integer out of range");
          }
        }
        out.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                                    s_[pos_] == '_')) {
          word += s_[pos_++];
        }
        Tok t{TokKind::kWord, AsciiLower(word), std::move(word), 0, 0};
        out.push_back(std::move(t));
        continue;
      }
      return Result<std::vector<Tok>>::Error(std::string("sql lex: unexpected character '") +
                                             c + "'");
    }
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

class SqlParser {
 public:
  explicit SqlParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<SqlStatement> Run() {
    Result<SqlStatement> r = ParseStatement();
    if (!r.ok()) {
      return r;
    }
    if (!Check(TokKind::kEnd)) {
      return Err("trailing tokens after statement");
    }
    return r;
  }

 private:
  Result<SqlStatement> Err(const std::string& m) {
    return Result<SqlStatement>::Error("sql parse: " + m);
  }

  const Tok& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokKind k) const { return Peek().kind == k; }
  bool CheckWord(const char* w) const {
    return Peek().kind == TokKind::kWord && Peek().word == w;
  }
  bool MatchWord(const char* w) {
    if (CheckWord(w)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokKind k) {
    if (Check(k)) {
      Advance();
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (!Check(TokKind::kWord)) {
      return Result<std::string>::Error(std::string("sql parse: expected ") + what);
    }
    return Advance().word;
  }

  Result<SqlStatement> ParseStatement() {
    if (MatchWord("create")) {
      return ParseCreate();
    }
    if (MatchWord("insert")) {
      return ParseInsert();
    }
    if (MatchWord("select")) {
      return ParseSelect();
    }
    if (MatchWord("update")) {
      return ParseUpdate();
    }
    if (MatchWord("delete")) {
      return ParseDelete();
    }
    return Err("expected CREATE, INSERT, SELECT, UPDATE, or DELETE");
  }

  Result<SqlStatement> ParseCreate() {
    if (!MatchWord("table")) {
      return Err("expected TABLE after CREATE");
    }
    SqlStatement st;
    st.kind = SqlStmtKind::kCreateTable;
    Result<std::string> name = ExpectIdent("table name");
    if (!name.ok()) {
      return Err(name.error());
    }
    st.table = name.value();
    if (!Match(TokKind::kLParen)) {
      return Err("expected '(' in CREATE TABLE");
    }
    while (true) {
      Result<std::string> col = ExpectIdent("column name");
      if (!col.ok()) {
        return Err(col.error());
      }
      SqlType type;
      if (MatchWord("int") || MatchWord("integer") || MatchWord("bigint")) {
        type = SqlType::kInt;
      } else if (MatchWord("float") || MatchWord("double") || MatchWord("real")) {
        type = SqlType::kFloat;
      } else if (MatchWord("text") || MatchWord("varchar")) {
        // Optional length, e.g. VARCHAR(255).
        if (Match(TokKind::kLParen)) {
          if (!Check(TokKind::kInt)) {
            return Err("expected length in VARCHAR(n)");
          }
          Advance();
          if (!Match(TokKind::kRParen)) {
            return Err("expected ')' after VARCHAR length");
          }
        }
        type = SqlType::kText;
      } else {
        return Err("unknown column type");
      }
      st.columns.push_back({col.value(), type});
      if (Match(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (!Match(TokKind::kRParen)) {
      return Err("expected ')' at end of CREATE TABLE");
    }
    return st;
  }

  Result<SqlStatement> ParseInsert() {
    if (!MatchWord("into")) {
      return Err("expected INTO after INSERT");
    }
    SqlStatement st;
    st.kind = SqlStmtKind::kInsert;
    Result<std::string> name = ExpectIdent("table name");
    if (!name.ok()) {
      return Err(name.error());
    }
    st.table = name.value();
    if (!Match(TokKind::kLParen)) {
      return Err("expected '(' with column list in INSERT");
    }
    while (true) {
      Result<std::string> col = ExpectIdent("column name");
      if (!col.ok()) {
        return Err(col.error());
      }
      st.insert_columns.push_back(col.value());
      if (Match(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (!Match(TokKind::kRParen)) {
      return Err("expected ')' after column list");
    }
    if (!MatchWord("values")) {
      return Err("expected VALUES");
    }
    while (true) {
      if (!Match(TokKind::kLParen)) {
        return Err("expected '(' in VALUES");
      }
      std::vector<SqlExprPtr> row;
      while (true) {
        Result<SqlExprPtr> e = ParseExpr();
        if (!e.ok()) {
          return Err(e.error());
        }
        row.push_back(std::move(e).value());
        if (Match(TokKind::kComma)) {
          continue;
        }
        break;
      }
      if (!Match(TokKind::kRParen)) {
        return Err("expected ')' in VALUES");
      }
      if (row.size() != st.insert_columns.size()) {
        return Err("VALUES arity does not match column list");
      }
      st.insert_rows.push_back(std::move(row));
      if (Match(TokKind::kComma)) {
        continue;
      }
      break;
    }
    return st;
  }

  Result<SqlStatement> ParseSelect() {
    SqlStatement st;
    st.kind = SqlStmtKind::kSelect;
    while (true) {
      SelectItem item;
      if (Match(TokKind::kStar)) {
        item.star = true;
      } else if (CheckWord("count") || CheckWord("sum") || CheckWord("max") ||
                 CheckWord("min")) {
        std::string fn = Advance().word;
        if (!Match(TokKind::kLParen)) {
          return Err("expected '(' after aggregate");
        }
        if (fn == "count" && Match(TokKind::kStar)) {
          item.agg = SqlAgg::kCountStar;
        } else {
          Result<std::string> col = ExpectIdent("aggregate column");
          if (!col.ok()) {
            return Err(col.error());
          }
          item.column = col.value();
          item.agg = fn == "count" ? SqlAgg::kCount
                     : fn == "sum" ? SqlAgg::kSum
                     : fn == "max" ? SqlAgg::kMax
                                   : SqlAgg::kMin;
        }
        if (!Match(TokKind::kRParen)) {
          return Err("expected ')' after aggregate");
        }
      } else {
        Result<std::string> col = ExpectIdent("column name");
        if (!col.ok()) {
          return Err(col.error());
        }
        item.column = col.value();
      }
      if (MatchWord("as")) {
        Result<std::string> alias = ExpectIdent("alias");
        if (!alias.ok()) {
          return Err(alias.error());
        }
        item.alias = alias.value();
      }
      st.select_items.push_back(std::move(item));
      if (Match(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (!MatchWord("from")) {
      return Err("expected FROM");
    }
    Result<std::string> name = ExpectIdent("table name");
    if (!name.ok()) {
      return Err(name.error());
    }
    st.table = name.value();
    if (MatchWord("where")) {
      Result<SqlExprPtr> e = ParseExpr();
      if (!e.ok()) {
        return Err(e.error());
      }
      st.where = std::move(e).value();
    }
    if (MatchWord("order")) {
      if (!MatchWord("by")) {
        return Err("expected BY after ORDER");
      }
      while (true) {
        Result<std::string> col = ExpectIdent("ORDER BY column");
        if (!col.ok()) {
          return Err(col.error());
        }
        OrderBy ob;
        ob.column = col.value();
        if (MatchWord("desc")) {
          ob.descending = true;
        } else {
          MatchWord("asc");
        }
        st.order_by.push_back(std::move(ob));
        if (Match(TokKind::kComma)) {
          continue;
        }
        break;
      }
    }
    if (MatchWord("limit")) {
      if (!Check(TokKind::kInt)) {
        return Err("expected integer after LIMIT");
      }
      st.limit = Advance().int_val;
    }
    return st;
  }

  Result<SqlStatement> ParseUpdate() {
    SqlStatement st;
    st.kind = SqlStmtKind::kUpdate;
    Result<std::string> name = ExpectIdent("table name");
    if (!name.ok()) {
      return Err(name.error());
    }
    st.table = name.value();
    if (!MatchWord("set")) {
      return Err("expected SET");
    }
    while (true) {
      Result<std::string> col = ExpectIdent("column name");
      if (!col.ok()) {
        return Err(col.error());
      }
      if (!Match(TokKind::kEq)) {
        return Err("expected '=' in SET");
      }
      Result<SqlExprPtr> e = ParseExpr();
      if (!e.ok()) {
        return Err(e.error());
      }
      st.set_items.emplace_back(col.value(), std::move(e).value());
      if (Match(TokKind::kComma)) {
        continue;
      }
      break;
    }
    if (MatchWord("where")) {
      Result<SqlExprPtr> e = ParseExpr();
      if (!e.ok()) {
        return Err(e.error());
      }
      st.where = std::move(e).value();
    }
    return st;
  }

  Result<SqlStatement> ParseDelete() {
    if (!MatchWord("from")) {
      return Err("expected FROM after DELETE");
    }
    SqlStatement st;
    st.kind = SqlStmtKind::kDelete;
    Result<std::string> name = ExpectIdent("table name");
    if (!name.ok()) {
      return Err(name.error());
    }
    st.table = name.value();
    if (MatchWord("where")) {
      Result<SqlExprPtr> e = ParseExpr();
      if (!e.ok()) {
        return Err(e.error());
      }
      st.where = std::move(e).value();
    }
    return st;
  }

  // ---- Expressions ----

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    Result<SqlExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    while (MatchWord("or")) {
      Result<SqlExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kOr;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<SqlExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseAnd() {
    Result<SqlExprPtr> lhs = ParseNot();
    if (!lhs.ok()) {
      return lhs;
    }
    while (MatchWord("and")) {
      Result<SqlExprPtr> rhs = ParseNot();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kAnd;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<SqlExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseNot() {
    if (MatchWord("not")) {
      Result<SqlExprPtr> inner = ParseNot();
      if (!inner.ok()) {
        return inner;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kNot;
      e->a = std::move(inner).value();
      return Result<SqlExprPtr>(std::move(e));
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    Result<SqlExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) {
      return lhs;
    }
    SqlBinOp op;
    switch (Peek().kind) {
      case TokKind::kEq: op = SqlBinOp::kEq; break;
      case TokKind::kNe: op = SqlBinOp::kNe; break;
      case TokKind::kLt: op = SqlBinOp::kLt; break;
      case TokKind::kLe: op = SqlBinOp::kLe; break;
      case TokKind::kGt: op = SqlBinOp::kGt; break;
      case TokKind::kGe: op = SqlBinOp::kGe; break;
      default:
        return lhs;
    }
    Advance();
    Result<SqlExprPtr> rhs = ParseAdditive();
    if (!rhs.ok()) {
      return rhs;
    }
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kBinary;
    e->op = op;
    e->a = std::move(lhs).value();
    e->b = std::move(rhs).value();
    return Result<SqlExprPtr>(std::move(e));
  }

  Result<SqlExprPtr> ParseAdditive() {
    Result<SqlExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokKind::kPlus) || Check(TokKind::kMinus)) {
      SqlBinOp op = Peek().kind == TokKind::kPlus ? SqlBinOp::kAdd : SqlBinOp::kSub;
      Advance();
      Result<SqlExprPtr> rhs = ParseMultiplicative();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kBinary;
      e->op = op;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<SqlExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    Result<SqlExprPtr> lhs = ParsePrimary();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokKind::kStar) || Check(TokKind::kSlash)) {
      SqlBinOp op = Peek().kind == TokKind::kStar ? SqlBinOp::kMul : SqlBinOp::kDiv;
      Advance();
      Result<SqlExprPtr> rhs = ParsePrimary();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kBinary;
      e->op = op;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<SqlExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<SqlExprPtr> ParsePrimary() {
    auto lit = [](SqlValue v) {
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kLiteral;
      e->literal = std::move(v);
      return e;
    };
    if (Check(TokKind::kInt)) {
      return Result<SqlExprPtr>(lit(SqlValue::Int(Advance().int_val)));
    }
    if (Check(TokKind::kFloat)) {
      return Result<SqlExprPtr>(lit(SqlValue::Float(Advance().float_val)));
    }
    if (Check(TokKind::kString)) {
      return Result<SqlExprPtr>(lit(SqlValue::Text(Advance().raw)));
    }
    if (Check(TokKind::kMinus)) {
      Advance();
      if (Check(TokKind::kInt)) {
        return Result<SqlExprPtr>(lit(SqlValue::Int(-Advance().int_val)));
      }
      if (Check(TokKind::kFloat)) {
        return Result<SqlExprPtr>(lit(SqlValue::Float(-Advance().float_val)));
      }
      return Result<SqlExprPtr>::Error("sql parse: expected number after '-'");
    }
    if (Match(TokKind::kLParen)) {
      Result<SqlExprPtr> inner = ParseExpr();
      if (!inner.ok()) {
        return inner;
      }
      if (!Match(TokKind::kRParen)) {
        return Result<SqlExprPtr>::Error("sql parse: expected ')'");
      }
      return inner;
    }
    if (Check(TokKind::kWord)) {
      if (Peek().word == "null") {
        Advance();
        return Result<SqlExprPtr>(lit(SqlValue::Null()));
      }
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kColumn;
      e->column = Advance().word;
      return Result<SqlExprPtr>(std::move(e));
    }
    return Result<SqlExprPtr>::Error("sql parse: unexpected token in expression");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  SqlLexer lexer(sql);
  Result<std::vector<Tok>> toks = lexer.Run();
  if (!toks.ok()) {
    return Result<SqlStatement>::Error(toks.error());
  }
  return SqlParser(std::move(toks).value()).Run();
}

}  // namespace orochi
