#include "src/lang/parser.h"

#include <utility>

#include "src/lang/lexer.h"

namespace orochi {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ScriptAst> Run() {
    ScriptAst script;
    while (!AtEnd()) {
      if (CheckIdent("function")) {
        Result<FunctionDecl> fn = ParseFunction();
        if (!fn.ok()) {
          return Err(fn.error());
        }
        script.functions.push_back(std::move(fn).value());
      } else {
        Result<StmtPtr> st = ParseStatement();
        if (!st.ok()) {
          return Err(st.error());
        }
        script.top_level.push_back(std::move(st).value());
      }
    }
    return script;
  }

 private:
  Result<ScriptAst> Err(const std::string& msg) { return Result<ScriptAst>::Error(msg); }

  template <typename T>
  Result<T> Error(const std::string& msg) {
    return Result<T>::Error("parse error at line " + std::to_string(Peek().line) + ": " + msg);
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool CheckIdent(const char* name) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == name;
  }
  bool Match(TokenKind k) {
    if (Check(k)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchIdent(const char* name) {
    if (CheckIdent(name)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind k, const char* what) {
    if (!Match(k)) {
      return Status::Error("parse error at line " + std::to_string(Peek().line) + ": expected " +
                           std::string(what) + ", got '" + TokenKindName(Peek().kind) + "'");
    }
    return Status::Ok();
  }

  static ExprPtr NewExpr(ExprKind kind, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line;
    return e;
  }
  static StmtPtr NewStmt(StmtKind kind, int line) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = line;
    return s;
  }

  Result<FunctionDecl> ParseFunction() {
    Advance();  // 'function'
    if (!Check(TokenKind::kIdentifier)) {
      return Error<FunctionDecl>("expected function name");
    }
    FunctionDecl fn;
    fn.line = Peek().line;
    fn.name = Advance().text;
    if (Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) {
      return Result<FunctionDecl>::Error(s.error());
    }
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        if (!Check(TokenKind::kVariable)) {
          return Error<FunctionDecl>("expected parameter variable");
        }
        fn.params.push_back(Advance().text);
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
    if (Status s = Expect(TokenKind::kRParen, "')'"); !s.ok()) {
      return Result<FunctionDecl>::Error(s.error());
    }
    if (Status s = Expect(TokenKind::kLBrace, "'{'"); !s.ok()) {
      return Result<FunctionDecl>::Error(s.error());
    }
    while (!Check(TokenKind::kRBrace)) {
      if (AtEnd()) {
        return Error<FunctionDecl>("unterminated function body");
      }
      Result<StmtPtr> st = ParseStatement();
      if (!st.ok()) {
        return Result<FunctionDecl>::Error(st.error());
      }
      fn.body.push_back(std::move(st).value());
    }
    Advance();  // '}'
    return fn;
  }

  Result<StmtPtr> ParseStatement() {
    int line = Peek().line;
    if (Match(TokenKind::kSemicolon)) {
      auto s = NewStmt(StmtKind::kBlock, line);  // Empty statement.
      return Result<StmtPtr>(std::move(s));
    }
    if (Check(TokenKind::kLBrace)) {
      return ParseBlock();
    }
    if (CheckIdent("if")) {
      return ParseIf();
    }
    if (CheckIdent("while")) {
      return ParseWhile();
    }
    if (CheckIdent("for")) {
      return ParseFor();
    }
    if (CheckIdent("foreach")) {
      return ParseForeach();
    }
    if (CheckIdent("echo")) {
      return ParseEcho();
    }
    if (CheckIdent("return")) {
      Advance();
      auto s = NewStmt(StmtKind::kReturn, line);
      if (!Check(TokenKind::kSemicolon)) {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) {
          return Result<StmtPtr>::Error(e.error());
        }
        s->expr = std::move(e).value();
      }
      if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
        return Result<StmtPtr>::Error(st.error());
      }
      return Result<StmtPtr>(std::move(s));
    }
    if (CheckIdent("break")) {
      Advance();
      if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
        return Result<StmtPtr>::Error(st.error());
      }
      return Result<StmtPtr>(NewStmt(StmtKind::kBreak, line));
    }
    if (CheckIdent("continue")) {
      Advance();
      if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
        return Result<StmtPtr>::Error(st.error());
      }
      return Result<StmtPtr>(NewStmt(StmtKind::kContinue, line));
    }
    // Expression statement.
    Result<ExprPtr> e = ParseExpr();
    if (!e.ok()) {
      return Result<StmtPtr>::Error(e.error());
    }
    if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    auto s = NewStmt(StmtKind::kExpr, line);
    s->expr = std::move(e).value();
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseBlock() {
    int line = Peek().line;
    Advance();  // '{'
    auto s = NewStmt(StmtKind::kBlock, line);
    while (!Check(TokenKind::kRBrace)) {
      if (AtEnd()) {
        return Error<StmtPtr>("unterminated block");
      }
      Result<StmtPtr> st = ParseStatement();
      if (!st.ok()) {
        return st;
      }
      s->block.push_back(std::move(st).value());
    }
    Advance();
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseIf() {
    int line = Peek().line;
    Advance();  // 'if'
    if (Status st = Expect(TokenKind::kLParen, "'('"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return Result<StmtPtr>::Error(cond.error());
    }
    if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<StmtPtr> body = ParseStatement();
    if (!body.ok()) {
      return body;
    }
    auto s = NewStmt(StmtKind::kIf, line);
    s->expr = std::move(cond).value();
    s->body = std::move(body).value();
    if (CheckIdent("elseif")) {
      // Treat "elseif (...)" as "else if".
      Result<StmtPtr> rest = ParseIf();  // ParseIf consumes the 'elseif' as its 'if'.
      if (!rest.ok()) {
        return rest;
      }
      s->else_body = std::move(rest).value();
    } else if (MatchIdent("else")) {
      Result<StmtPtr> rest = ParseStatement();
      if (!rest.ok()) {
        return rest;
      }
      s->else_body = std::move(rest).value();
    }
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseWhile() {
    int line = Peek().line;
    Advance();
    if (Status st = Expect(TokenKind::kLParen, "'('"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return Result<StmtPtr>::Error(cond.error());
    }
    if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<StmtPtr> body = ParseStatement();
    if (!body.ok()) {
      return body;
    }
    auto s = NewStmt(StmtKind::kWhile, line);
    s->expr = std::move(cond).value();
    s->body = std::move(body).value();
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseFor() {
    int line = Peek().line;
    Advance();
    if (Status st = Expect(TokenKind::kLParen, "'('"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    auto s = NewStmt(StmtKind::kFor, line);
    if (!Check(TokenKind::kSemicolon)) {
      Result<ExprPtr> init = ParseExpr();
      if (!init.ok()) {
        return Result<StmtPtr>::Error(init.error());
      }
      s->init = std::move(init).value();
    }
    if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    if (!Check(TokenKind::kSemicolon)) {
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return Result<StmtPtr>::Error(cond.error());
      }
      s->expr = std::move(cond).value();
    }
    if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    if (!Check(TokenKind::kRParen)) {
      Result<ExprPtr> step = ParseExpr();
      if (!step.ok()) {
        return Result<StmtPtr>::Error(step.error());
      }
      s->step = std::move(step).value();
    }
    if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<StmtPtr> body = ParseStatement();
    if (!body.ok()) {
      return body;
    }
    s->body = std::move(body).value();
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseForeach() {
    int line = Peek().line;
    Advance();
    if (Status st = Expect(TokenKind::kLParen, "'('"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<ExprPtr> subject = ParseExpr();
    if (!subject.ok()) {
      return Result<StmtPtr>::Error(subject.error());
    }
    if (!MatchIdent("as")) {
      return Error<StmtPtr>("expected 'as' in foreach");
    }
    if (!Check(TokenKind::kVariable)) {
      return Error<StmtPtr>("expected variable in foreach");
    }
    std::string first = Advance().text;
    auto s = NewStmt(StmtKind::kForeach, line);
    s->expr = std::move(subject).value();
    if (Match(TokenKind::kArrow)) {
      if (!Check(TokenKind::kVariable)) {
        return Error<StmtPtr>("expected value variable in foreach");
      }
      s->key_var = first;
      s->value_var = Advance().text;
    } else {
      s->value_var = first;
    }
    if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    Result<StmtPtr> body = ParseStatement();
    if (!body.ok()) {
      return body;
    }
    s->body = std::move(body).value();
    return Result<StmtPtr>(std::move(s));
  }

  Result<StmtPtr> ParseEcho() {
    int line = Peek().line;
    Advance();
    auto s = NewStmt(StmtKind::kEcho, line);
    while (true) {
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) {
        return Result<StmtPtr>::Error(e.error());
      }
      s->echoes.push_back(std::move(e).value());
      if (!Match(TokenKind::kComma)) {
        break;
      }
    }
    if (Status st = Expect(TokenKind::kSemicolon, "';'"); !st.ok()) {
      return Result<StmtPtr>::Error(st.error());
    }
    return Result<StmtPtr>(std::move(s));
  }

  // ---- Expressions ----

  Result<ExprPtr> ParseExpr() { return ParseAssignment(); }

  // assignment := $var index* ('='|'+='|'-='|'.=') assignment | ternary
  Result<ExprPtr> ParseAssignment() {
    // Lookahead: a variable followed by an index path and an assignment operator.
    if (Check(TokenKind::kVariable)) {
      size_t save = pos_;
      int line = Peek().line;
      std::string var = Advance().text;
      std::vector<ExprPtr> path;
      bool path_ok = true;
      while (Check(TokenKind::kLBracket)) {
        Advance();
        if (Match(TokenKind::kRBracket)) {
          path.push_back(nullptr);  // Append form: $a[] = v.
          continue;
        }
        Result<ExprPtr> idx = ParseExpr();
        if (!idx.ok()) {
          path_ok = false;
          break;
        }
        path.push_back(std::move(idx).value());
        if (!Match(TokenKind::kRBracket)) {
          path_ok = false;
          break;
        }
      }
      if (path_ok &&
          (Check(TokenKind::kAssign) || Check(TokenKind::kPlusAssign) ||
           Check(TokenKind::kMinusAssign) || Check(TokenKind::kConcatAssign))) {
        TokenKind op = Advance().kind;
        Result<ExprPtr> rhs = ParseAssignment();
        if (!rhs.ok()) {
          return rhs;
        }
        auto e = NewExpr(ExprKind::kAssign, line);
        e->str_val = std::move(var);
        e->list = std::move(path);
        e->b = std::move(rhs).value();
        switch (op) {
          case TokenKind::kAssign: e->assign_op = AssignOp::kPlain; break;
          case TokenKind::kPlusAssign: e->assign_op = AssignOp::kAddAssign; break;
          case TokenKind::kMinusAssign: e->assign_op = AssignOp::kSubAssign; break;
          default: e->assign_op = AssignOp::kConcatAssign; break;
        }
        return Result<ExprPtr>(std::move(e));
      }
      pos_ = save;  // Not an assignment; re-parse as an ordinary expression.
    }
    return ParseTernary();
  }

  Result<ExprPtr> ParseTernary() {
    Result<ExprPtr> cond = ParseOr();
    if (!cond.ok()) {
      return cond;
    }
    if (!Match(TokenKind::kQuestion)) {
      return cond;
    }
    int line = Peek().line;
    Result<ExprPtr> then_e = ParseExpr();
    if (!then_e.ok()) {
      return then_e;
    }
    if (Status st = Expect(TokenKind::kColon, "':'"); !st.ok()) {
      return Result<ExprPtr>::Error(st.error());
    }
    Result<ExprPtr> else_e = ParseExpr();
    if (!else_e.ok()) {
      return else_e;
    }
    auto e = NewExpr(ExprKind::kTernary, line);
    e->a = std::move(cond).value();
    e->b = std::move(then_e).value();
    e->c = std::move(else_e).value();
    return Result<ExprPtr>(std::move(e));
  }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokenKind::kOrOr)) {
      int line = Peek().line;
      Advance();
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = NewExpr(ExprKind::kLogicalOr, line);
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<ExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseComparison();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokenKind::kAndAnd)) {
      int line = Peek().line;
      Advance();
      Result<ExprPtr> rhs = ParseComparison();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = NewExpr(ExprKind::kLogicalAnd, line);
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<ExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) {
      return lhs;
    }
    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinOp::kEq; break;
      case TokenKind::kNe: op = BinOp::kNe; break;
      case TokenKind::kLt: op = BinOp::kLt; break;
      case TokenKind::kLe: op = BinOp::kLe; break;
      case TokenKind::kGt: op = BinOp::kGt; break;
      case TokenKind::kGe: op = BinOp::kGe; break;
      default:
        return lhs;
    }
    int line = Peek().line;
    Advance();
    Result<ExprPtr> rhs = ParseAdditive();
    if (!rhs.ok()) {
      return rhs;
    }
    auto e = NewExpr(ExprKind::kBinary, line);
    e->bin_op = op;
    e->a = std::move(lhs).value();
    e->b = std::move(rhs).value();
    return Result<ExprPtr>(std::move(e));
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus) || Check(TokenKind::kDot)) {
      BinOp op = Peek().kind == TokenKind::kPlus  ? BinOp::kAdd
                 : Peek().kind == TokenKind::kMinus ? BinOp::kSub
                                                    : BinOp::kConcat;
      int line = Peek().line;
      Advance();
      Result<ExprPtr> rhs = ParseMultiplicative();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = NewExpr(ExprKind::kBinary, line);
      e->bin_op = op;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<ExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) || Check(TokenKind::kPercent)) {
      BinOp op = Peek().kind == TokenKind::kStar    ? BinOp::kMul
                 : Peek().kind == TokenKind::kSlash ? BinOp::kDiv
                                                    : BinOp::kMod;
      int line = Peek().line;
      Advance();
      Result<ExprPtr> rhs = ParseUnary();
      if (!rhs.ok()) {
        return rhs;
      }
      auto e = NewExpr(ExprKind::kBinary, line);
      e->bin_op = op;
      e->a = std::move(lhs).value();
      e->b = std::move(rhs).value();
      lhs = Result<ExprPtr>(std::move(e));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    int line = Peek().line;
    if (Match(TokenKind::kBang)) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      auto e = NewExpr(ExprKind::kUnary, line);
      e->un_op = UnOp::kNot;
      e->a = std::move(operand).value();
      return Result<ExprPtr>(std::move(e));
    }
    if (Match(TokenKind::kMinus)) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      auto e = NewExpr(ExprKind::kUnary, line);
      e->un_op = UnOp::kNeg;
      e->a = std::move(operand).value();
      return Result<ExprPtr>(std::move(e));
    }
    if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
      bool inc = Advance().kind == TokenKind::kPlusPlus;
      if (!Check(TokenKind::kVariable)) {
        return Error<ExprPtr>("expected variable after prefix ++/--");
      }
      auto e = NewExpr(ExprKind::kIncDec, line);
      e->str_val = Advance().text;
      e->is_prefix = true;
      e->is_increment = inc;
      return Result<ExprPtr>(std::move(e));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    Result<ExprPtr> base = ParsePrimary();
    if (!base.ok()) {
      return base;
    }
    while (true) {
      if (Check(TokenKind::kLBracket)) {
        int line = Peek().line;
        Advance();
        Result<ExprPtr> idx = ParseExpr();
        if (!idx.ok()) {
          return idx;
        }
        if (Status st = Expect(TokenKind::kRBracket, "']'"); !st.ok()) {
          return Result<ExprPtr>::Error(st.error());
        }
        auto e = NewExpr(ExprKind::kIndex, line);
        e->a = std::move(base).value();
        e->b = std::move(idx).value();
        base = Result<ExprPtr>(std::move(e));
      } else if ((Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) &&
                 base.value()->kind == ExprKind::kVar) {
        int line = Peek().line;
        bool inc = Advance().kind == TokenKind::kPlusPlus;
        auto e = NewExpr(ExprKind::kIncDec, line);
        e->str_val = base.value()->str_val;
        e->is_prefix = false;
        e->is_increment = inc;
        base = Result<ExprPtr>(std::move(e));
      } else {
        return base;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    int line = Peek().line;
    if (Check(TokenKind::kInt)) {
      auto e = NewExpr(ExprKind::kIntLit, line);
      e->int_val = Advance().int_val;
      return Result<ExprPtr>(std::move(e));
    }
    if (Check(TokenKind::kFloat)) {
      auto e = NewExpr(ExprKind::kFloatLit, line);
      e->float_val = Advance().float_val;
      return Result<ExprPtr>(std::move(e));
    }
    if (Check(TokenKind::kString)) {
      auto e = NewExpr(ExprKind::kStringLit, line);
      e->str_val = Advance().text;
      return Result<ExprPtr>(std::move(e));
    }
    if (Check(TokenKind::kVariable)) {
      auto e = NewExpr(ExprKind::kVar, line);
      e->str_val = Advance().text;
      return Result<ExprPtr>(std::move(e));
    }
    if (Match(TokenKind::kLParen)) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) {
        return inner;
      }
      if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
        return Result<ExprPtr>::Error(st.error());
      }
      return inner;
    }
    if (Check(TokenKind::kLBracket)) {
      return ParseArrayLiteral(TokenKind::kRBracket);
    }
    if (Check(TokenKind::kIdentifier)) {
      const std::string& name = Peek().text;
      if (name == "true") {
        Advance();
        auto e = NewExpr(ExprKind::kBoolLit, line);
        e->bool_val = true;
        return Result<ExprPtr>(std::move(e));
      }
      if (name == "false") {
        Advance();
        auto e = NewExpr(ExprKind::kBoolLit, line);
        e->bool_val = false;
        return Result<ExprPtr>(std::move(e));
      }
      if (name == "null") {
        Advance();
        return Result<ExprPtr>(NewExpr(ExprKind::kNullLit, line));
      }
      if (name == "array" && Peek(1).kind == TokenKind::kLParen) {
        Advance();
        Advance();
        return ParseArrayLiteral(TokenKind::kRParen);
      }
      // Function / builtin call.
      if (Peek(1).kind == TokenKind::kLParen) {
        std::string fname = Advance().text;
        Advance();  // '('
        auto e = NewExpr(ExprKind::kCall, line);
        e->str_val = std::move(fname);
        if (!Check(TokenKind::kRParen)) {
          while (true) {
            Result<ExprPtr> arg = ParseExpr();
            if (!arg.ok()) {
              return arg;
            }
            e->list.push_back(std::move(arg).value());
            if (!Match(TokenKind::kComma)) {
              break;
            }
          }
        }
        if (Status st = Expect(TokenKind::kRParen, "')'"); !st.ok()) {
          return Result<ExprPtr>::Error(st.error());
        }
        return Result<ExprPtr>(std::move(e));
      }
      return Error<ExprPtr>("unexpected identifier '" + name + "'");
    }
    return Error<ExprPtr>(std::string("unexpected token '") + TokenKindName(Peek().kind) + "'");
  }

  // Parses elements of `[...]` or `array(...)`; the opener is already consumed (for `[`,
  // the caller consumed nothing yet — handle both by matching the opener here if present).
  Result<ExprPtr> ParseArrayLiteral(TokenKind closer) {
    int line = Peek().line;
    if (closer == TokenKind::kRBracket) {
      Advance();  // '['
    }
    auto e = NewExpr(ExprKind::kArrayLit, line);
    if (!Check(closer)) {
      while (true) {
        Result<ExprPtr> first = ParseExpr();
        if (!first.ok()) {
          return first;
        }
        if (Match(TokenKind::kArrow)) {
          Result<ExprPtr> val = ParseExpr();
          if (!val.ok()) {
            return val;
          }
          e->keys.push_back(std::move(first).value());
          e->list.push_back(std::move(val).value());
        } else {
          e->keys.push_back(nullptr);
          e->list.push_back(std::move(first).value());
        }
        if (!Match(TokenKind::kComma)) {
          break;
        }
        if (Check(closer)) {
          break;  // Trailing comma.
        }
      }
    }
    if (Status st = Expect(closer, closer == TokenKind::kRBracket ? "']'" : "')'"); !st.ok()) {
      return Result<ExprPtr>::Error(st.error());
    }
    return Result<ExprPtr>(std::move(e));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ScriptAst> ParseScript(const std::string& source) {
  Result<std::vector<Token>> toks = Tokenize(source);
  if (!toks.ok()) {
    return Result<ScriptAst>::Error(toks.error());
  }
  return Parser(std::move(toks).value()).Run();
}

}  // namespace orochi
