// Dynamically-typed values for the wscript language (the PHP analog in this reproduction).
//
// Values are: null, bool, int64, float64, string, array (PHP-like ordered hash with value
// semantics via copy-on-write), and multivalue. A multivalue holds one component per request
// in a control-flow group and is the representation behind SIMD-on-demand re-execution
// (paper §3.1, §4.3): instructions over identical components collapse back to scalars.
//
// Values serialize to a canonical byte string (Serialize/DeserializeValue). Operation-log
// report entries store operands in this form, so reports are plain untrusted data that the
// verifier parses defensively.
#ifndef SRC_LANG_VALUE_H_
#define SRC_LANG_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/result.h"

namespace orochi {

class Value;

// Array keys are either canonical integers or strings, mirroring PHP semantics where
// "5" and 5 address the same slot (we canonicalize integer-like strings at insertion).
class ArrayKey {
 public:
  ArrayKey() : int_key_(0), is_int_(true) {}
  explicit ArrayKey(int64_t k) : int_key_(k), is_int_(true) {}
  explicit ArrayKey(std::string k);

  bool is_int() const { return is_int_; }
  int64_t int_key() const { return int_key_; }
  const std::string& str_key() const { return str_key_; }

  bool operator==(const ArrayKey& o) const {
    if (is_int_ != o.is_int_) {
      return false;
    }
    return is_int_ ? int_key_ == o.int_key_ : str_key_ == o.str_key_;
  }

  size_t Hash() const;
  // Rendering used by ToString of keys and by canonical serialization.
  std::string ToString() const;

 private:
  int64_t int_key_;
  std::string str_key_;
  bool is_int_;
};

struct ArrayKeyHash {
  size_t operator()(const ArrayKey& k) const { return k.Hash(); }
};

// Ordered hash: preserves insertion order for iteration (like PHP arrays) and supports
// O(1) lookup. Deletion preserves order of the remaining entries.
class ArrayObject {
 public:
  ArrayObject() = default;

  size_t size() const { return entries_.size(); }
  bool Has(const ArrayKey& k) const { return index_.count(k) > 0; }
  const Value* Find(const ArrayKey& k) const;
  void Set(const ArrayKey& k, Value v);
  void Append(Value v);
  void Erase(const ArrayKey& k);

  const std::vector<std::pair<ArrayKey, Value>>& entries() const { return entries_; }
  std::vector<std::pair<ArrayKey, Value>>& mutable_entries() { return entries_; }

  int64_t next_index() const { return next_index_; }

 private:
  void Reindex();

  std::vector<std::pair<ArrayKey, Value>> entries_;
  std::unordered_map<ArrayKey, size_t, ArrayKeyHash> index_;
  int64_t next_index_ = 0;
};

// One component per request in a control-flow group. Components are never themselves
// multivalues; arrays inside components may not contain multivalues either (projection
// flattens them). Arrays *outside* (a univalue array whose cells are multivalues) are legal.
struct MultiValue {
  std::vector<Value> items;
};

enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kFloat,
  kString,
  kArray,
  kMulti,
};

class Value {
 public:
  using StringPtr = std::shared_ptr<const std::string>;
  using ArrayPtr = std::shared_ptr<ArrayObject>;
  using MultiPtr = std::shared_ptr<MultiValue>;

  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Float(double d) { return Value(Rep(d)); }
  static Value Str(std::string s) {
    return Value(Rep(std::make_shared<const std::string>(std::move(s))));
  }
  static Value Str(StringPtr s) { return Value(Rep(std::move(s))); }
  static Value Array() { return Value(Rep(std::make_shared<ArrayObject>())); }
  static Value Array(ArrayPtr a) { return Value(Rep(std::move(a))); }
  static Value Multi(std::vector<Value> items) {
    auto m = std::make_shared<MultiValue>();
    m->items = std::move(items);
    return Value(Rep(std::move(m)));
  }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_float() const { return type() == ValueType::kFloat; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_array() const { return type() == ValueType::kArray; }
  bool is_multi() const { return type() == ValueType::kMulti; }
  bool is_numeric() const { return is_int() || is_float(); }

  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_float() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return *std::get<StringPtr>(rep_); }
  StringPtr string_ptr() const { return std::get<StringPtr>(rep_); }

  const ArrayObject& array() const { return *std::get<ArrayPtr>(rep_); }
  ArrayPtr array_ptr() const { return std::get<ArrayPtr>(rep_); }
  // Copy-on-write: returns a uniquely-owned ArrayObject for in-place mutation.
  ArrayObject& MutableArray();

  const MultiValue& multi() const { return *std::get<MultiPtr>(rep_); }
  MultiPtr multi_ptr() const { return std::get<MultiPtr>(rep_); }

  // PHP-style truthiness: null/false/0/0.0/""/"0"/empty-array are false.
  bool Truthy() const;

  // Rendering for echo / string concatenation. Arrays render as "Array" plus a canonical
  // dump of entries so that responses depend on array contents (unlike PHP's bare "Array",
  // which would hide differences that matter for auditing tests).
  std::string ToString() const;

  // Numeric coercions; non-coercible inputs yield 0 like PHP's (int)/(float) casts on
  // non-numeric strings.
  int64_t ToInt() const;
  double ToFloat() const;

  // Deep structural equality (used for multivalue collapse and the == operator).
  static bool DeepEquals(const Value& a, const Value& b);

  // Canonical byte-string form used in operation-log reports.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, StringPtr, ArrayPtr, MultiPtr>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// Parses a canonical serialization. Reports are untrusted, so this never aborts on
// malformed input; it returns an error Result instead.
Result<Value> DeserializeValue(std::string_view bytes);

// True if the value is a multivalue or an array (transitively) containing one.
bool ContainsMulti(const Value& v);

// Projects component j out of a (possibly multi) value: multivalues pick items[j]; arrays
// are walked recursively (sharing is preserved when nothing changes). Scalars pass through.
Value ProjectComponent(const Value& v, size_t j);

// Builds a multivalue from per-request components, collapsing to a scalar when all
// components are deeply equal (the "on-demand" part of SIMD-on-demand, §4.3).
Value MakeMultiCollapsed(std::vector<Value> items);

}  // namespace orochi

#endif  // SRC_LANG_VALUE_H_
