#include "src/lang/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/hash.h"

namespace orochi {

namespace {

// True if s is a canonical decimal integer ("0", "42", "-7"; no leading zeros or plus).
bool IsCanonicalInt(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  size_t i = 0;
  if (s[0] == '-') {
    if (s.size() == 1) {
      return false;
    }
    i = 1;
  }
  if (s[i] == '0' && s.size() > i + 1) {
    return false;  // Leading zero: not canonical.
  }
  for (size_t k = i; k < s.size(); k++) {
    if (!std::isdigit(static_cast<unsigned char>(s[k]))) {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  std::string tmp(s);
  long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) {
    return false;
  }
  *out = v;
  return true;
}

std::string FloatToString(double d) {
  if (std::isnan(d)) {
    return "NAN";
  }
  if (std::isinf(d)) {
    return d > 0 ? "INF" : "-INF";
  }
  // PHP prints integral floats without a decimal point.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.14g", d);
  return buf;
}

}  // namespace

ArrayKey::ArrayKey(std::string k) {
  int64_t v = 0;
  if (IsCanonicalInt(k, &v)) {
    is_int_ = true;
    int_key_ = v;
  } else {
    is_int_ = false;
    int_key_ = 0;
    str_key_ = std::move(k);
  }
}

size_t ArrayKey::Hash() const {
  if (is_int_) {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(int_key_)));
  }
  return static_cast<size_t>(FnvHash(str_key_));
}

std::string ArrayKey::ToString() const {
  if (is_int_) {
    return std::to_string(int_key_);
  }
  return str_key_;
}

const Value* ArrayObject::Find(const ArrayKey& k) const {
  auto it = index_.find(k);
  if (it == index_.end()) {
    return nullptr;
  }
  return &entries_[it->second].second;
}

void ArrayObject::Set(const ArrayKey& k, Value v) {
  auto it = index_.find(k);
  if (it != index_.end()) {
    entries_[it->second].second = std::move(v);
    return;
  }
  index_.emplace(k, entries_.size());
  entries_.emplace_back(k, std::move(v));
  if (k.is_int() && k.int_key() >= next_index_) {
    next_index_ = k.int_key() + 1;
  }
}

void ArrayObject::Append(Value v) { Set(ArrayKey(next_index_), std::move(v)); }

void ArrayObject::Erase(const ArrayKey& k) {
  auto it = index_.find(k);
  if (it == index_.end()) {
    return;
  }
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(it->second));
  Reindex();
}

void ArrayObject::Reindex() {
  index_.clear();
  for (size_t i = 0; i < entries_.size(); i++) {
    index_.emplace(entries_[i].first, i);
  }
}

ArrayObject& Value::MutableArray() {
  auto& ptr = std::get<ArrayPtr>(rep_);
  if (ptr.use_count() > 1) {
    ptr = std::make_shared<ArrayObject>(*ptr);
  }
  return *ptr;
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return as_bool();
    case ValueType::kInt:
      return as_int() != 0;
    case ValueType::kFloat:
      return as_float() != 0.0;
    case ValueType::kString: {
      const std::string& s = as_string();
      return !s.empty() && s != "0";
    }
    case ValueType::kArray:
      return array().size() > 0;
    case ValueType::kMulti:
      // Callers must project multivalues before asking for a single truthiness.
      return false;
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kBool:
      return as_bool() ? "1" : "";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kFloat:
      return FloatToString(as_float());
    case ValueType::kString:
      return as_string();
    case ValueType::kArray: {
      std::string out = "Array(";
      bool first = true;
      for (const auto& [k, v] : array().entries()) {
        if (!first) {
          out += ",";
        }
        first = false;
        out += k.ToString();
        out += "=>";
        out += v.ToString();
      }
      out += ")";
      return out;
    }
    case ValueType::kMulti:
      return "<multi>";
  }
  return "";
}

int64_t Value::ToInt() const {
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return as_bool() ? 1 : 0;
    case ValueType::kInt:
      return as_int();
    case ValueType::kFloat:
      return static_cast<int64_t>(as_float());
    case ValueType::kString: {
      errno = 0;
      const char* p = as_string().c_str();
      char* end = nullptr;
      long long v = std::strtoll(p, &end, 10);
      if (end == p || errno != 0) {
        return 0;
      }
      return v;
    }
    case ValueType::kArray:
      return array().size() > 0 ? 1 : 0;
    case ValueType::kMulti:
      return 0;
  }
  return 0;
}

double Value::ToFloat() const {
  switch (type()) {
    case ValueType::kNull:
      return 0.0;
    case ValueType::kBool:
      return as_bool() ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kFloat:
      return as_float();
    case ValueType::kString: {
      const char* p = as_string().c_str();
      char* end = nullptr;
      double v = std::strtod(p, &end);
      if (end == p) {
        return 0.0;
      }
      return v;
    }
    case ValueType::kArray:
      return array().size() > 0 ? 1.0 : 0.0;
    case ValueType::kMulti:
      return 0.0;
  }
  return 0.0;
}

bool Value::DeepEquals(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    // int/float cross-type numeric equality (PHP ==) is intentionally NOT applied here:
    // collapse must be representation-exact so re-execution stays deterministic.
    return false;
  }
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.as_bool() == b.as_bool();
    case ValueType::kInt:
      return a.as_int() == b.as_int();
    case ValueType::kFloat:
      return a.as_float() == b.as_float();
    case ValueType::kString:
      return a.string_ptr() == b.string_ptr() || a.as_string() == b.as_string();
    case ValueType::kArray: {
      if (a.array_ptr() == b.array_ptr()) {
        return true;
      }
      const ArrayObject& x = a.array();
      const ArrayObject& y = b.array();
      if (x.size() != y.size()) {
        return false;
      }
      for (size_t i = 0; i < x.size(); i++) {
        const auto& [kx, vx] = x.entries()[i];
        const auto& [ky, vy] = y.entries()[i];
        if (!(kx == ky) || !DeepEquals(vx, vy)) {
          return false;
        }
      }
      return true;
    }
    case ValueType::kMulti: {
      const auto& x = a.multi().items;
      const auto& y = b.multi().items;
      if (x.size() != y.size()) {
        return false;
      }
      for (size_t i = 0; i < x.size(); i++) {
        if (!DeepEquals(x[i], y[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

void Value::SerializeTo(std::string* out) const {
  switch (type()) {
    case ValueType::kNull:
      out->append("N;");
      return;
    case ValueType::kBool:
      out->append(as_bool() ? "B:1;" : "B:0;");
      return;
    case ValueType::kInt:
      out->append("I:");
      out->append(std::to_string(as_int()));
      out->append(";");
      return;
    case ValueType::kFloat: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "F:%.17g;", as_float());
      out->append(buf);
      return;
    }
    case ValueType::kString: {
      const std::string& s = as_string();
      out->append("S:");
      out->append(std::to_string(s.size()));
      out->append(":");
      out->append(s);
      out->append(";");
      return;
    }
    case ValueType::kArray: {
      const ArrayObject& a = array();
      out->append("A:");
      out->append(std::to_string(a.size()));
      out->append(":{");
      for (const auto& [k, v] : a.entries()) {
        if (k.is_int()) {
          out->append("I:");
          out->append(std::to_string(k.int_key()));
          out->append(";");
        } else {
          out->append("S:");
          out->append(std::to_string(k.str_key().size()));
          out->append(":");
          out->append(k.str_key());
          out->append(";");
        }
        v.SerializeTo(out);
      }
      out->append("}");
      return;
    }
    case ValueType::kMulti:
      // Multivalues are per-group artifacts of the verifier; operands in reports are
      // always per-request projections.
      out->append("M!;");
      return;
  }
}

std::string Value::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

// Recursive-descent parser over the canonical serialization. `pos` advances past the
// consumed bytes. Depth-limited: reports are untrusted.
constexpr int kMaxDeserializeDepth = 64;

bool ParseValue(std::string_view s, size_t* pos, int depth, Value* out, std::string* err);

bool ParseIntUntil(std::string_view s, size_t* pos, char stop, int64_t* out) {
  size_t p = *pos;
  size_t start = p;
  while (p < s.size() && s[p] != stop) {
    p++;
  }
  if (p >= s.size() || p == start || p - start > 20) {
    return false;
  }
  std::string digits(s.substr(start, p - start));
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size()) {
    return false;
  }
  *out = v;
  *pos = p + 1;  // Consume the stop character.
  return true;
}

bool ParseValue(std::string_view s, size_t* pos, int depth, Value* out, std::string* err) {
  if (depth > kMaxDeserializeDepth) {
    *err = "nesting too deep";
    return false;
  }
  if (*pos >= s.size()) {
    *err = "truncated";
    return false;
  }
  char tag = s[*pos];
  (*pos)++;
  switch (tag) {
    case 'N':
      if (*pos >= s.size() || s[*pos] != ';') {
        *err = "bad null";
        return false;
      }
      (*pos)++;
      *out = Value::Null();
      return true;
    case 'B': {
      if (*pos + 2 >= s.size() + 1 || s[*pos] != ':') {
        *err = "bad bool";
        return false;
      }
      (*pos)++;
      if (*pos + 1 >= s.size() || (s[*pos] != '0' && s[*pos] != '1') || s[*pos + 1] != ';') {
        *err = "bad bool";
        return false;
      }
      *out = Value::Bool(s[*pos] == '1');
      *pos += 2;
      return true;
    }
    case 'I': {
      if (*pos >= s.size() || s[*pos] != ':') {
        *err = "bad int";
        return false;
      }
      (*pos)++;
      int64_t v = 0;
      if (!ParseIntUntil(s, pos, ';', &v)) {
        *err = "bad int";
        return false;
      }
      *out = Value::Int(v);
      return true;
    }
    case 'F': {
      if (*pos >= s.size() || s[*pos] != ':') {
        *err = "bad float";
        return false;
      }
      (*pos)++;
      size_t start = *pos;
      while (*pos < s.size() && s[*pos] != ';') {
        (*pos)++;
      }
      if (*pos >= s.size() || *pos == start) {
        *err = "bad float";
        return false;
      }
      std::string digits(s.substr(start, *pos - start));
      char* end = nullptr;
      double v = std::strtod(digits.c_str(), &end);
      if (end != digits.c_str() + digits.size()) {
        *err = "bad float";
        return false;
      }
      (*pos)++;
      *out = Value::Float(v);
      return true;
    }
    case 'S': {
      if (*pos >= s.size() || s[*pos] != ':') {
        *err = "bad string";
        return false;
      }
      (*pos)++;
      int64_t len = 0;
      if (!ParseIntUntil(s, pos, ':', &len) || len < 0 ||
          static_cast<size_t>(len) > s.size() - *pos) {
        *err = "bad string length";
        return false;
      }
      std::string body(s.substr(*pos, static_cast<size_t>(len)));
      *pos += static_cast<size_t>(len);
      if (*pos >= s.size() || s[*pos] != ';') {
        *err = "bad string terminator";
        return false;
      }
      (*pos)++;
      *out = Value::Str(std::move(body));
      return true;
    }
    case 'A': {
      if (*pos >= s.size() || s[*pos] != ':') {
        *err = "bad array";
        return false;
      }
      (*pos)++;
      int64_t count = 0;
      if (!ParseIntUntil(s, pos, ':', &count) || count < 0) {
        *err = "bad array count";
        return false;
      }
      if (*pos >= s.size() || s[*pos] != '{') {
        *err = "bad array open";
        return false;
      }
      (*pos)++;
      Value arr = Value::Array();
      ArrayObject& obj = arr.MutableArray();
      for (int64_t i = 0; i < count; i++) {
        Value key;
        if (!ParseValue(s, pos, depth + 1, &key, err)) {
          return false;
        }
        ArrayKey ak;
        if (key.is_int()) {
          ak = ArrayKey(key.as_int());
        } else if (key.is_string()) {
          ak = ArrayKey(key.as_string());
        } else {
          *err = "bad array key type";
          return false;
        }
        Value val;
        if (!ParseValue(s, pos, depth + 1, &val, err)) {
          return false;
        }
        obj.Set(ak, std::move(val));
      }
      if (*pos >= s.size() || s[*pos] != '}') {
        *err = "bad array close";
        return false;
      }
      (*pos)++;
      *out = std::move(arr);
      return true;
    }
    default:
      *err = "unknown tag";
      return false;
  }
}

}  // namespace

Result<Value> DeserializeValue(std::string_view bytes) {
  size_t pos = 0;
  Value v;
  std::string err;
  if (!ParseValue(bytes, &pos, 0, &v, &err)) {
    return Result<Value>::Error("deserialize: " + err);
  }
  if (pos != bytes.size()) {
    return Result<Value>::Error("deserialize: trailing bytes");
  }
  return v;
}

bool ContainsMulti(const Value& v) {
  if (v.is_multi()) {
    return true;
  }
  if (v.is_array()) {
    for (const auto& [k, cell] : v.array().entries()) {
      (void)k;
      if (ContainsMulti(cell)) {
        return true;
      }
    }
  }
  return false;
}

Value ProjectComponent(const Value& v, size_t j) {
  if (v.is_multi()) {
    const auto& items = v.multi().items;
    return j < items.size() ? items[j] : Value::Null();
  }
  if (v.is_array()) {
    if (!ContainsMulti(v)) {
      return v;  // Sharing preserved: no multivalue inside.
    }
    Value out = Value::Array();
    ArrayObject& obj = out.MutableArray();
    for (const auto& [k, cell] : v.array().entries()) {
      obj.Set(k, ProjectComponent(cell, j));
    }
    return out;
  }
  return v;
}

Value MakeMultiCollapsed(std::vector<Value> items) {
  if (items.empty()) {
    return Value::Null();
  }
  bool all_equal = true;
  for (size_t i = 1; i < items.size(); i++) {
    if (!Value::DeepEquals(items[0], items[i])) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    return items[0];
  }
  return Value::Multi(std::move(items));
}

}  // namespace orochi
