#include "src/lang/bytecode.h"

namespace orochi {

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoadConst: return "LoadConst";
    case Op::kLoadNull: return "LoadNull";
    case Op::kLoadTrue: return "LoadTrue";
    case Op::kLoadFalse: return "LoadFalse";
    case Op::kLoadVar: return "LoadVar";
    case Op::kStoreVar: return "StoreVar";
    case Op::kDup: return "Dup";
    case Op::kPop: return "Pop";
    case Op::kAdd: return "Add";
    case Op::kSub: return "Sub";
    case Op::kMul: return "Mul";
    case Op::kDiv: return "Div";
    case Op::kMod: return "Mod";
    case Op::kConcat: return "Concat";
    case Op::kEq: return "Eq";
    case Op::kNe: return "Ne";
    case Op::kLt: return "Lt";
    case Op::kLe: return "Le";
    case Op::kGt: return "Gt";
    case Op::kGe: return "Ge";
    case Op::kNot: return "Not";
    case Op::kNeg: return "Neg";
    case Op::kJump: return "Jump";
    case Op::kJumpIfFalse: return "JumpIfFalse";
    case Op::kJumpIfTrue: return "JumpIfTrue";
    case Op::kCall: return "Call";
    case Op::kCallBuiltin: return "CallBuiltin";
    case Op::kReturn: return "Return";
    case Op::kNewArray: return "NewArray";
    case Op::kArrayAppend: return "ArrayAppend";
    case Op::kArrayInsert: return "ArrayInsert";
    case Op::kIndexGet: return "IndexGet";
    case Op::kIndexSetPath: return "IndexSetPath";
    case Op::kIterNew: return "IterNew";
    case Op::kIterNext: return "IterNext";
    case Op::kIterDispose: return "IterDispose";
    case Op::kEcho: return "Echo";
  }
  return "?";
}

std::string Disassemble(const Program& program) {
  std::string out;
  for (const Chunk& chunk : program.chunks) {
    out += "== " + chunk.name + " (params=" + std::to_string(chunk.num_params) +
           ", slots=" + std::to_string(chunk.num_slots) + ") ==\n";
    for (size_t pc = 0; pc < chunk.code.size(); pc++) {
      const Instr& in = chunk.code[pc];
      out += std::to_string(pc) + "\t" + OpName(in.op);
      out += " " + std::to_string(in.a) + " " + std::to_string(in.b) + " " +
             std::to_string(in.c);
      if (in.op == Op::kLoadConst && static_cast<size_t>(in.a) < chunk.consts.size()) {
        out += "\t; " + chunk.consts[static_cast<size_t>(in.a)].ToString();
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace orochi
