// Lexer for the wscript language (the PHP-like scripting substrate; see LANGUAGE.md).
#ifndef SRC_LANG_LEXER_H_
#define SRC_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace orochi {

enum class TokenKind : uint8_t {
  kEnd,
  kInt,
  kFloat,
  kString,
  kVariable,    // $name
  kIdentifier,  // bare name: function names, keywords resolved by parser
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kAssign,        // =
  kPlusAssign,    // +=
  kMinusAssign,   // -=
  kConcatAssign,  // .=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kDot,
  kEq,  // ==
  kNe,  // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
  kQuestion,
  kColon,
  kArrow,  // =>
  kPlusPlus,
  kMinusMinus,
};

struct Token {
  TokenKind kind;
  std::string text;   // Identifier / variable name / string contents.
  int64_t int_val;    // kInt.
  double float_val;   // kFloat.
  int line;
};

const char* TokenKindName(TokenKind k);

// Tokenizes the whole source; returns an error with a line number on bad input.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace orochi

#endif  // SRC_LANG_LEXER_H_
