// Builtin function registry for wscript.
//
// Builtins come in four kinds:
//  - kPure: deterministic functions of their arguments (string/array/math library).
//  - kInput: read request parameters (resolved from the interpreter's request context).
//  - kStateOp: shared-object operations; the interpreter yields a StateOpRequest.
//  - kNondet: non-deterministic builtins; the interpreter yields a NondetRequest and the
//    server records the returned value as a report (paper §4.6).
#ifndef SRC_LANG_BUILTINS_H_
#define SRC_LANG_BUILTINS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lang/value.h"

namespace orochi {

enum class BuiltinKind : uint8_t { kPure, kInput, kStateOp, kNondet };

using PureFn = Result<Value> (*)(std::vector<Value>& args);

struct BuiltinInfo {
  const char* name;
  BuiltinKind kind;
  int min_args;
  int max_args;  // -1 = unbounded.
  PureFn fn;     // kPure only.
};

// Stable ids (indices into the builtin table) referenced by compiled bytecode.
int BuiltinIdByName(const std::string& name);  // -1 when unknown.
const BuiltinInfo& BuiltinById(int id);
int BuiltinCount();

// Well-known builtin ids used by the interpreters to special-case behaviour.
struct BuiltinIds {
  int input;
  int reg_read;
  int reg_write;
  int kv_get;
  int kv_set;
  int db_query;
  int db_txn;
  int time;
  int microtime;
  int rand;
};
const BuiltinIds& WellKnownBuiltins();

}  // namespace orochi

#endif  // SRC_LANG_BUILTINS_H_
