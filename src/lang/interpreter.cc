#include "src/lang/interpreter.h"

#include <cassert>

#include "src/common/hash.h"
#include "src/lang/ops.h"

namespace orochi {

Interpreter::Interpreter(const Program* program, const RequestParams* params,
                         InterpreterOptions options)
    : program_(program), params_(params), options_(options),
      digest_(FnvHash(program->script_name)) {
  Frame frame;
  frame.chunk = &program_->chunks[0];
  frame.pc = 0;
  frame.slots.resize(static_cast<size_t>(frame.chunk->num_slots));
  frame.stack_base = 0;
  frame.iter_base = 0;
  frames_.push_back(std::move(frame));
}

void Interpreter::ProvideValue(Value v) {
  assert(pending_value_);
  stack_.push_back(std::move(v));
  pending_value_ = false;
}

StepResult Interpreter::Trap(const std::string& message) {
  dead_ = true;
  StepResult r;
  r.kind = StepResult::Kind::kError;
  r.error = message;
  return r;
}

StepResult Interpreter::Run() {
  assert(!pending_value_);
  if (finished_ || dead_) {
    return Trap("interpreter cannot resume");
  }
  return Execute();
}

StepResult Interpreter::Execute() {
  while (true) {
    Frame& frame = frames_.back();
    const Chunk& chunk = *frame.chunk;
    if (frame.pc >= chunk.code.size()) {
      return Trap("pc out of range");
    }
    const Instr& in = chunk.code[frame.pc];
    frame.pc++;
    instructions_++;
    if (instructions_ > options_.max_instructions) {
      return Trap("instruction limit exceeded");
    }

    switch (in.op) {
      case Op::kLoadConst:
        stack_.push_back(chunk.consts[static_cast<size_t>(in.a)]);
        break;
      case Op::kLoadNull:
        stack_.push_back(Value::Null());
        break;
      case Op::kLoadTrue:
        stack_.push_back(Value::Bool(true));
        break;
      case Op::kLoadFalse:
        stack_.push_back(Value::Bool(false));
        break;
      case Op::kLoadVar:
        stack_.push_back(frame.slots[static_cast<size_t>(in.a)]);
        break;
      case Op::kStoreVar:
        frame.slots[static_cast<size_t>(in.a)] = std::move(stack_.back());
        stack_.pop_back();
        break;
      case Op::kDup:
        stack_.push_back(stack_.back());
        break;
      case Op::kPop:
        stack_.pop_back();
        break;
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod:
      case Op::kConcat: case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe:
      case Op::kGt: case Op::kGe: {
        Value b = std::move(stack_.back());
        stack_.pop_back();
        Value a = std::move(stack_.back());
        stack_.pop_back();
        Result<Value> r = ScalarBinary(in.op, a, b);
        if (!r.ok()) {
          return Trap(r.error());
        }
        stack_.push_back(std::move(r).value());
        break;
      }
      case Op::kNot: case Op::kNeg: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        Result<Value> r = ScalarUnary(in.op, v);
        if (!r.ok()) {
          return Trap(r.error());
        }
        stack_.push_back(std::move(r).value());
        break;
      }
      case Op::kJump:
        frame.pc = static_cast<size_t>(in.a);
        break;
      case Op::kJumpIfFalse: {
        bool truthy = stack_.back().Truthy();
        stack_.pop_back();
        if (options_.record_digest) {
          digest_ = HashCombine(digest_, (static_cast<uint64_t>(frame.pc) << 1) |
                                             (truthy ? 1u : 0u));
        }
        if (!truthy) {
          frame.pc = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kJumpIfTrue: {
        bool truthy = stack_.back().Truthy();
        stack_.pop_back();
        if (options_.record_digest) {
          digest_ = HashCombine(digest_, (static_cast<uint64_t>(frame.pc) << 1) |
                                             (truthy ? 1u : 0u));
        }
        if (truthy) {
          frame.pc = static_cast<size_t>(in.a);
        }
        break;
      }
      case Op::kCall: {
        const Chunk& target = program_->chunks[static_cast<size_t>(in.a)];
        int argc = in.b;
        if (argc != target.num_params) {
          return Trap("wrong number of arguments to " + target.name);
        }
        if (frames_.size() >= 256) {
          return Trap("call stack overflow");
        }
        Frame callee;
        callee.chunk = &target;
        callee.pc = 0;
        callee.slots.resize(static_cast<size_t>(target.num_slots));
        callee.stack_base = stack_.size() - static_cast<size_t>(argc);
        callee.iter_base = iters_.size();
        for (int i = argc - 1; i >= 0; i--) {
          callee.slots[static_cast<size_t>(i)] = std::move(stack_.back());
          stack_.pop_back();
        }
        frames_.push_back(std::move(callee));
        break;
      }
      case Op::kCallBuiltin: {
        const BuiltinInfo& info = BuiltinById(in.a);
        int argc = in.b;
        std::vector<Value> args(static_cast<size_t>(argc));
        for (int i = argc - 1; i >= 0; i--) {
          args[static_cast<size_t>(i)] = std::move(stack_.back());
          stack_.pop_back();
        }
        switch (info.kind) {
          case BuiltinKind::kPure: {
            Result<Value> r = info.fn(args);
            if (!r.ok()) {
              return Trap(r.error());
            }
            stack_.push_back(std::move(r).value());
            break;
          }
          case BuiltinKind::kInput: {
            std::string name = args[0].ToString();
            auto it = params_->find(name);
            stack_.push_back(it == params_->end() ? Value::Null() : Value::Str(it->second));
            break;
          }
          case BuiltinKind::kStateOp: {
            const BuiltinIds& ids = WellKnownBuiltins();
            StepResult r;
            r.kind = StepResult::Kind::kStateOp;
            StateOpRequest& op = r.op;
            if (in.a == ids.reg_read) {
              op.type = StateOpType::kRegisterRead;
              op.target = args[0].ToString();
            } else if (in.a == ids.reg_write) {
              op.type = StateOpType::kRegisterWrite;
              op.target = args[0].ToString();
              op.value = args[1];
            } else if (in.a == ids.kv_get) {
              op.type = StateOpType::kKvGet;
              op.key = args[0].ToString();
            } else if (in.a == ids.kv_set) {
              op.type = StateOpType::kKvSet;
              op.key = args[0].ToString();
              op.value = args[1];
            } else if (in.a == ids.db_query) {
              op.type = StateOpType::kDbOp;
              op.db_is_txn = false;
              op.sql.push_back(args[0].ToString());
            } else {  // db_txn
              op.type = StateOpType::kDbOp;
              op.db_is_txn = true;
              if (!args[0].is_array() || args[0].array().size() == 0) {
                return Trap("db_txn: argument must be a non-empty array of statements");
              }
              for (const auto& [k, v] : args[0].array().entries()) {
                (void)k;
                op.sql.push_back(v.ToString());
              }
            }
            pending_value_ = true;
            return r;
          }
          case BuiltinKind::kNondet: {
            StepResult r;
            r.kind = StepResult::Kind::kNondet;
            r.nondet.name = info.name;
            r.nondet.args = std::move(args);
            pending_value_ = true;
            return r;
          }
        }
        break;
      }
      case Op::kReturn: {
        Value ret = std::move(stack_.back());
        stack_.pop_back();
        Frame done = std::move(frames_.back());
        frames_.pop_back();
        stack_.resize(done.stack_base);
        iters_.resize(done.iter_base);
        if (frames_.empty()) {
          finished_ = true;
          StepResult r;
          r.kind = StepResult::Kind::kFinished;
          return r;
        }
        stack_.push_back(std::move(ret));
        break;
      }
      case Op::kNewArray:
        stack_.push_back(Value::Array());
        break;
      case Op::kArrayAppend: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        stack_.back().MutableArray().Append(std::move(v));
        break;
      }
      case Op::kArrayInsert: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        Value key = std::move(stack_.back());
        stack_.pop_back();
        Result<ArrayKey> k = ToArrayKey(key);
        if (!k.ok()) {
          return Trap(k.error());
        }
        stack_.back().MutableArray().Set(k.value(), std::move(v));
        break;
      }
      case Op::kIndexGet: {
        Value key = std::move(stack_.back());
        stack_.pop_back();
        Value container = std::move(stack_.back());
        stack_.pop_back();
        Result<Value> r = ScalarIndexGet(container, key);
        if (!r.ok()) {
          return Trap(r.error());
        }
        stack_.push_back(std::move(r).value());
        break;
      }
      case Op::kIndexSetPath: {
        int num_keys = in.b;
        bool append = in.c != 0;
        Value value = std::move(stack_.back());
        stack_.pop_back();
        std::vector<ArrayKey> keys(static_cast<size_t>(num_keys));
        for (int i = num_keys - 1; i >= 0; i--) {
          Result<ArrayKey> k = ToArrayKey(stack_.back());
          stack_.pop_back();
          if (!k.ok()) {
            return Trap(k.error());
          }
          keys[static_cast<size_t>(i)] = std::move(k).value();
        }
        Status st = ScalarIndexSetPath(&frame.slots[static_cast<size_t>(in.a)], keys, append,
                                       value);
        if (!st.ok()) {
          return Trap(st.error());
        }
        stack_.push_back(std::move(value));
        break;
      }
      case Op::kIterNew: {
        Value subject = std::move(stack_.back());
        stack_.pop_back();
        if (!subject.is_array()) {
          return Trap("foreach over a non-array value");
        }
        iters_.push_back({subject.array_ptr(), 0});
        break;
      }
      case Op::kIterNext: {
        Iter& iter = iters_.back();
        bool has_more = iter.pos < iter.array->entries().size();
        if (options_.record_digest) {
          digest_ = HashCombine(digest_, (static_cast<uint64_t>(frame.pc) << 1) |
                                             (has_more ? 1u : 0u));
        }
        if (!has_more) {
          iters_.pop_back();
          frame.pc = static_cast<size_t>(in.a);
          break;
        }
        const auto& [k, v] = iter.array->entries()[iter.pos];
        iter.pos++;
        if (in.b >= 0) {
          frame.slots[static_cast<size_t>(in.b)] =
              k.is_int() ? Value::Int(k.int_key()) : Value::Str(k.str_key());
        }
        frame.slots[static_cast<size_t>(in.c)] = v;
        break;
      }
      case Op::kIterDispose:
        iters_.pop_back();
        break;
      case Op::kEcho: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        output_ += v.ToString();
        break;
      }
    }
  }
}

}  // namespace orochi
