// Scalar operator semantics shared by the server-side interpreter and the audit-time
// acc interpreter (which applies them componentwise to multivalues).
#ifndef SRC_LANG_OPS_H_
#define SRC_LANG_OPS_H_

#include "src/common/result.h"
#include "src/lang/bytecode.h"
#include "src/lang/value.h"

namespace orochi {

// Arithmetic/comparison/concat for two scalar operands. `op` must be one of the binary
// opcodes. Numeric strings, bools and null coerce to numbers in arithmetic (PHP-style);
// non-numeric strings trap deterministically.
Result<Value> ScalarBinary(Op op, const Value& a, const Value& b);

// kNot / kNeg.
Result<Value> ScalarUnary(Op op, const Value& v);

// container[key]: arrays look up (null when missing); strings index bytes; null yields
// null. Other container types trap.
Result<Value> ScalarIndexGet(const Value& container, const Value& key);

// Converts a scalar value to an array key with PHP-like canonicalization.
Result<ArrayKey> ToArrayKey(const Value& v);

// Loose equality used by == (type-aware; numeric cross-type comparison; deep arrays).
bool LooseEquals(const Value& a, const Value& b);

// Assigns `value` through an index path rooted at *root: root[k0][k1]...[kN] = value, with
// PHP-style auto-vivification of nulls. When `append` is set the final step appends.
// Intermediate non-array nodes produce an error.
Status ScalarIndexSetPath(Value* root, const std::vector<ArrayKey>& keys, bool append,
                          const Value& value);

}  // namespace orochi

#endif  // SRC_LANG_OPS_H_
