// Recursive-descent parser for wscript. Grammar summary is in LANGUAGE.md.
#ifndef SRC_LANG_PARSER_H_
#define SRC_LANG_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/lang/ast.h"

namespace orochi {

// Parses a full script (top-level statements + function declarations).
Result<ScriptAst> ParseScript(const std::string& source);

}  // namespace orochi

#endif  // SRC_LANG_PARSER_H_
