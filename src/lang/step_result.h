// The yield interface between a running wscript interpreter and its driver.
//
// Interpreters are resumable: Run() executes until the program finishes, traps, or reaches
// an instruction whose result must come from outside the execution context — a shared-object
// operation (paper §3.2) or a non-deterministic builtin (§4.6). The driver (the online
// server, the audit-time re-executor, or a manually scheduled executor) performs or
// simulates the operation and resumes the interpreter with the result value.
#ifndef SRC_LANG_STEP_RESULT_H_
#define SRC_LANG_STEP_RESULT_H_

#include <string>
#include <vector>

#include "src/lang/value.h"

namespace orochi {

// Shared-object operation types (paper Figure 12's optype).
enum class StateOpType : uint8_t {
  kRegisterRead,
  kRegisterWrite,
  kKvGet,
  kKvSet,
  kDbOp,
};

const char* StateOpTypeName(StateOpType t);

// A state operation as produced by program logic. `target` identifies the object within its
// kind: the register name for register ops; empty for the (single) KV store and database.
struct StateOpRequest {
  StateOpType type;
  std::string target;            // Register name.
  std::string key;               // KV key.
  Value value;                   // Register/KV write payload.
  std::vector<std::string> sql;  // DbOp statements.
  bool db_is_txn = false;        // True when issued via db_txn (affects the result shape).
};

// A non-deterministic builtin invocation (time, microtime, rand).
struct NondetRequest {
  std::string name;
  std::vector<Value> args;
};

struct StepResult {
  enum class Kind : uint8_t {
    kFinished,  // Program completed; output available.
    kStateOp,   // Waiting on a shared-object operation result.
    kNondet,    // Waiting on a non-deterministic builtin result.
    kError,     // Runtime trap (deterministic given the same inputs and op results).
  };

  Kind kind;
  StateOpRequest op;    // kStateOp.
  NondetRequest nondet; // kNondet.
  std::string error;    // kError.
};

}  // namespace orochi

#endif  // SRC_LANG_STEP_RESULT_H_
