#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace orochi {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kInt: return "int";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlusAssign: return "+=";
    case TokenKind::kMinusAssign: return "-=";
    case TokenKind::kConcatAssign: return ".=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kDot: return ".";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kAndAnd: return "&&";
    case TokenKind::kOrOr: return "||";
    case TokenKind::kBang: return "!";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kColon: return ":";
    case TokenKind::kArrow: return "=>";
    case TokenKind::kPlusPlus: return "++";
    case TokenKind::kMinusMinus: return "--";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= src_.size()) {
        out.push_back({TokenKind::kEnd, "", 0, 0.0, line_});
        return out;
      }
      Result<Token> tok = Next();
      if (!tok.ok()) {
        return Result<std::vector<Token>>::Error(tok.error());
      }
      out.push_back(std::move(tok).value());
    }
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      line_++;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  Result<Token> Error(const std::string& msg) {
    return Result<Token>::Error("lex error at line " + std::to_string(line_) + ": " + msg);
  }

  void SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '#') {
        while (pos_ < src_.size() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ < src_.size()) {
          Advance();
          Advance();
        }
      } else {
        return;
      }
    }
  }

  Token Simple(TokenKind k) { return {k, "", 0, 0.0, line_}; }

  Result<Token> Next() {
    int start_line = line_;
    char c = Advance();
    switch (c) {
      case '(': return Simple(TokenKind::kLParen);
      case ')': return Simple(TokenKind::kRParen);
      case '{': return Simple(TokenKind::kLBrace);
      case '}': return Simple(TokenKind::kRBrace);
      case '[': return Simple(TokenKind::kLBracket);
      case ']': return Simple(TokenKind::kRBracket);
      case ',': return Simple(TokenKind::kComma);
      case ';': return Simple(TokenKind::kSemicolon);
      case '?': return Simple(TokenKind::kQuestion);
      case ':': return Simple(TokenKind::kColon);
      case '%': return Simple(TokenKind::kPercent);
      case '*': return Simple(TokenKind::kStar);
      case '/': return Simple(TokenKind::kSlash);
      case '+':
        if (Match('+')) return Simple(TokenKind::kPlusPlus);
        if (Match('=')) return Simple(TokenKind::kPlusAssign);
        return Simple(TokenKind::kPlus);
      case '-':
        if (Match('-')) return Simple(TokenKind::kMinusMinus);
        if (Match('=')) return Simple(TokenKind::kMinusAssign);
        return Simple(TokenKind::kMinus);
      case '.':
        if (Match('=')) return Simple(TokenKind::kConcatAssign);
        return Simple(TokenKind::kDot);
      case '=':
        if (Match('=')) return Simple(TokenKind::kEq);
        if (Match('>')) return Simple(TokenKind::kArrow);
        return Simple(TokenKind::kAssign);
      case '!':
        if (Match('=')) return Simple(TokenKind::kNe);
        return Simple(TokenKind::kBang);
      case '<':
        if (Match('=')) return Simple(TokenKind::kLe);
        return Simple(TokenKind::kLt);
      case '>':
        if (Match('=')) return Simple(TokenKind::kGe);
        return Simple(TokenKind::kGt);
      case '&':
        if (Match('&')) return Simple(TokenKind::kAndAnd);
        return Error("expected '&&'");
      case '|':
        if (Match('|')) return Simple(TokenKind::kOrOr);
        return Error("expected '||'");
      case '$': {
        std::string name;
        while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
          name += Advance();
        }
        if (name.empty()) {
          return Error("expected variable name after '$'");
        }
        return Token{TokenKind::kVariable, std::move(name), 0, 0.0, start_line};
      }
      case '"':
      case '\'': {
        char quote = c;
        std::string body;
        while (true) {
          if (pos_ >= src_.size()) {
            return Error("unterminated string");
          }
          char d = Advance();
          if (d == quote) {
            break;
          }
          if (d == '\\' && quote == '"') {
            char e = Advance();
            switch (e) {
              case 'n': body += '\n'; break;
              case 't': body += '\t'; break;
              case 'r': body += '\r'; break;
              case '\\': body += '\\'; break;
              case '"': body += '"'; break;
              case '$': body += '$'; break;
              case '0': body += '\0'; break;
              default:
                body += '\\';
                body += e;
                break;
            }
          } else if (d == '\\' && quote == '\'') {
            char e = Advance();
            if (e == '\'' || e == '\\') {
              body += e;
            } else {
              body += '\\';
              body += e;
            }
          } else {
            body += d;
          }
        }
        return Token{TokenKind::kString, std::move(body), 0, 0.0, start_line};
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits(1, c);
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_float = true;
        digits += Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits += Advance();
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        size_t save = pos_;
        std::string expo(1, Advance());
        if (Peek() == '+' || Peek() == '-') {
          expo += Advance();
        }
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          is_float = true;
          while (std::isdigit(static_cast<unsigned char>(Peek()))) {
            expo += Advance();
          }
          digits += expo;
        } else {
          pos_ = save;  // Not an exponent; back off.
        }
      }
      if (is_float) {
        return Token{TokenKind::kFloat, "", 0, std::strtod(digits.c_str(), nullptr), start_line};
      }
      errno = 0;
      long long v = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno != 0) {
        return Error("integer literal out of range");
      }
      return Token{TokenKind::kInt, "", v, 0.0, start_line};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name(1, c);
      while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
        name += Advance();
      }
      return Token{TokenKind::kIdentifier, std::move(name), 0, 0.0, start_line};
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) { return Lexer(source).Run(); }

}  // namespace orochi
