#include "src/lang/compiler.h"

#include <unordered_map>
#include <utility>

#include "src/lang/builtins.h"
#include "src/lang/parser.h"

namespace orochi {

namespace {

constexpr int kNoSlot = -1;

// Per-chunk compilation state: slot allocation, loop patch lists.
class ChunkCompiler {
 public:
  ChunkCompiler(Chunk* chunk, const std::unordered_map<std::string, int>* functions)
      : chunk_(chunk), functions_(functions) {}

  Status CompileBody(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) {
      if (Status st = CompileStmt(*s); !st.ok()) {
        return st;
      }
    }
    // Implicit `return null` at the end of every chunk.
    Emit(Op::kLoadNull);
    Emit(Op::kReturn);
    chunk_->num_slots = static_cast<int>(slots_.size());
    return Status::Ok();
  }

  int SlotFor(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) {
      return it->second;
    }
    int slot = static_cast<int>(slots_.size());
    slots_.emplace(name, slot);
    return slot;
  }

 private:
  struct LoopCtx {
    bool is_foreach;
    int continue_target;                  // pc to jump to on continue; -1 = not known yet.
    std::vector<size_t> break_patches;    // kJump instructions to patch to loop end.
    std::vector<size_t> continue_patches; // kJump instructions pending a continue target.
  };

  Status Error(int line, const std::string& msg) {
    return Status::Error("compile error at line " + std::to_string(line) + ": " + msg);
  }

  size_t Emit(Op op, int32_t a = 0, int32_t b = 0, int32_t c = 0) {
    chunk_->code.push_back({op, a, b, c});
    return chunk_->code.size() - 1;
  }

  int AddConst(Value v) {
    chunk_->consts.push_back(std::move(v));
    return static_cast<int>(chunk_->consts.size() - 1);
  }

  void PatchTarget(size_t instr, size_t target) {
    chunk_->code[instr].a = static_cast<int32_t>(target);
  }

  size_t Here() const { return chunk_->code.size(); }

  Status CompileStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr: {
        if (Status st = CompileExpr(*s.expr); !st.ok()) {
          return st;
        }
        Emit(Op::kPop);
        return Status::Ok();
      }
      case StmtKind::kEcho: {
        for (const ExprPtr& e : s.echoes) {
          if (Status st = CompileExpr(*e); !st.ok()) {
            return st;
          }
          Emit(Op::kEcho);
        }
        return Status::Ok();
      }
      case StmtKind::kBlock: {
        for (const StmtPtr& child : s.block) {
          if (Status st = CompileStmt(*child); !st.ok()) {
            return st;
          }
        }
        return Status::Ok();
      }
      case StmtKind::kIf: {
        if (Status st = CompileExpr(*s.expr); !st.ok()) {
          return st;
        }
        size_t jf = Emit(Op::kJumpIfFalse);
        if (Status st = CompileStmt(*s.body); !st.ok()) {
          return st;
        }
        if (s.else_body) {
          size_t jend = Emit(Op::kJump);
          PatchTarget(jf, Here());
          if (Status st = CompileStmt(*s.else_body); !st.ok()) {
            return st;
          }
          PatchTarget(jend, Here());
        } else {
          PatchTarget(jf, Here());
        }
        return Status::Ok();
      }
      case StmtKind::kWhile: {
        size_t start = Here();
        if (Status st = CompileExpr(*s.expr); !st.ok()) {
          return st;
        }
        size_t jf = Emit(Op::kJumpIfFalse);
        loops_.push_back({false, static_cast<int>(start), {}, {}});
        if (Status st = CompileStmt(*s.body); !st.ok()) {
          return st;
        }
        Emit(Op::kJump, static_cast<int32_t>(start));
        PatchTarget(jf, Here());
        FinishLoop();
        return Status::Ok();
      }
      case StmtKind::kFor: {
        if (s.init) {
          if (Status st = CompileExpr(*s.init); !st.ok()) {
            return st;
          }
          Emit(Op::kPop);
        }
        size_t cond_pc = Here();
        size_t jf = SIZE_MAX;
        if (s.expr) {
          if (Status st = CompileExpr(*s.expr); !st.ok()) {
            return st;
          }
          jf = Emit(Op::kJumpIfFalse);
        }
        // `continue` must jump to the step code, whose pc is unknown until after the body;
        // such jumps are collected in the loop context and patched below.
        loops_.push_back({false, /*continue_target=*/-1, {}, {}});
        size_t loop_index = loops_.size() - 1;
        if (Status st = CompileStmt(*s.body); !st.ok()) {
          return st;
        }
        size_t step_pc = Here();
        for (size_t instr : loops_[loop_index].continue_patches) {
          PatchTarget(instr, step_pc);
        }
        if (s.step) {
          if (Status st = CompileExpr(*s.step); !st.ok()) {
            return st;
          }
          Emit(Op::kPop);
        }
        Emit(Op::kJump, static_cast<int32_t>(cond_pc));
        if (jf != SIZE_MAX) {
          PatchTarget(jf, Here());
        }
        FinishLoop();
        return Status::Ok();
      }
      case StmtKind::kForeach: {
        if (Status st = CompileExpr(*s.expr); !st.ok()) {
          return st;
        }
        Emit(Op::kIterNew);
        size_t next_pc = Here();
        int key_slot = s.key_var.empty() ? kNoSlot : SlotFor(s.key_var);
        int val_slot = SlotFor(s.value_var);
        size_t iter_next = Emit(Op::kIterNext, 0, key_slot, val_slot);
        loops_.push_back({true, static_cast<int>(next_pc), {}, {}});
        if (Status st = CompileStmt(*s.body); !st.ok()) {
          return st;
        }
        Emit(Op::kJump, static_cast<int32_t>(next_pc));
        PatchTarget(iter_next, Here());
        FinishLoop();
        return Status::Ok();
      }
      case StmtKind::kReturn: {
        if (s.expr) {
          if (Status st = CompileExpr(*s.expr); !st.ok()) {
            return st;
          }
        } else {
          Emit(Op::kLoadNull);
        }
        // Returning from inside foreach loops leaves iterators on the iterator stack; the
        // interpreter unwinds them with the frame.
        Emit(Op::kReturn);
        return Status::Ok();
      }
      case StmtKind::kBreak: {
        if (loops_.empty()) {
          return Error(s.line, "break outside loop");
        }
        if (loops_.back().is_foreach) {
          Emit(Op::kIterDispose);
        }
        loops_.back().break_patches.push_back(Emit(Op::kJump));
        return Status::Ok();
      }
      case StmtKind::kContinue: {
        if (loops_.empty()) {
          return Error(s.line, "continue outside loop");
        }
        if (loops_.back().continue_target < 0) {
          loops_.back().continue_patches.push_back(Emit(Op::kJump));
        } else {
          Emit(Op::kJump, loops_.back().continue_target);
        }
        return Status::Ok();
      }
    }
    return Status::Error("internal: unknown statement kind");
  }

  void FinishLoop() {
    for (size_t instr : loops_.back().break_patches) {
      PatchTarget(instr, Here());
    }
    loops_.pop_back();
  }

  Status CompileExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNullLit:
        Emit(Op::kLoadNull);
        return Status::Ok();
      case ExprKind::kBoolLit:
        Emit(e.bool_val ? Op::kLoadTrue : Op::kLoadFalse);
        return Status::Ok();
      case ExprKind::kIntLit:
        Emit(Op::kLoadConst, AddConst(Value::Int(e.int_val)));
        return Status::Ok();
      case ExprKind::kFloatLit:
        Emit(Op::kLoadConst, AddConst(Value::Float(e.float_val)));
        return Status::Ok();
      case ExprKind::kStringLit:
        Emit(Op::kLoadConst, AddConst(Value::Str(e.str_val)));
        return Status::Ok();
      case ExprKind::kVar:
        Emit(Op::kLoadVar, SlotFor(e.str_val));
        return Status::Ok();
      case ExprKind::kBinary: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        switch (e.bin_op) {
          case BinOp::kAdd: Emit(Op::kAdd); break;
          case BinOp::kSub: Emit(Op::kSub); break;
          case BinOp::kMul: Emit(Op::kMul); break;
          case BinOp::kDiv: Emit(Op::kDiv); break;
          case BinOp::kMod: Emit(Op::kMod); break;
          case BinOp::kConcat: Emit(Op::kConcat); break;
          case BinOp::kEq: Emit(Op::kEq); break;
          case BinOp::kNe: Emit(Op::kNe); break;
          case BinOp::kLt: Emit(Op::kLt); break;
          case BinOp::kLe: Emit(Op::kLe); break;
          case BinOp::kGt: Emit(Op::kGt); break;
          case BinOp::kGe: Emit(Op::kGe); break;
        }
        return Status::Ok();
      }
      case ExprKind::kUnary: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        Emit(e.un_op == UnOp::kNot ? Op::kNot : Op::kNeg);
        return Status::Ok();
      }
      case ExprKind::kLogicalAnd: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        size_t jf1 = Emit(Op::kJumpIfFalse);
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        size_t jf2 = Emit(Op::kJumpIfFalse);
        Emit(Op::kLoadTrue);
        size_t jend = Emit(Op::kJump);
        PatchTarget(jf1, Here());
        PatchTarget(jf2, Here());
        Emit(Op::kLoadFalse);
        PatchTarget(jend, Here());
        return Status::Ok();
      }
      case ExprKind::kLogicalOr: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        size_t jt1 = Emit(Op::kJumpIfTrue);
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        size_t jt2 = Emit(Op::kJumpIfTrue);
        Emit(Op::kLoadFalse);
        size_t jend = Emit(Op::kJump);
        PatchTarget(jt1, Here());
        PatchTarget(jt2, Here());
        Emit(Op::kLoadTrue);
        PatchTarget(jend, Here());
        return Status::Ok();
      }
      case ExprKind::kTernary: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        size_t jf = Emit(Op::kJumpIfFalse);
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        size_t jend = Emit(Op::kJump);
        PatchTarget(jf, Here());
        if (Status st = CompileExpr(*e.c); !st.ok()) {
          return st;
        }
        PatchTarget(jend, Here());
        return Status::Ok();
      }
      case ExprKind::kAssign: {
        int slot = SlotFor(e.str_val);
        if (e.list.empty()) {
          // Plain variable assignment, possibly compound.
          if (e.assign_op != AssignOp::kPlain) {
            Emit(Op::kLoadVar, slot);
          }
          if (Status st = CompileExpr(*e.b); !st.ok()) {
            return st;
          }
          switch (e.assign_op) {
            case AssignOp::kPlain: break;
            case AssignOp::kAddAssign: Emit(Op::kAdd); break;
            case AssignOp::kSubAssign: Emit(Op::kSub); break;
            case AssignOp::kConcatAssign: Emit(Op::kConcat); break;
          }
          Emit(Op::kDup);
          Emit(Op::kStoreVar, slot);
          return Status::Ok();
        }
        if (e.assign_op != AssignOp::kPlain) {
          return Error(e.line, "compound assignment to array elements is not supported; "
                               "use `$a[k] = $a[k] + v`");
        }
        // Append `[]` is only supported as the final path element.
        int num_keys = 0;
        bool append = false;
        for (size_t i = 0; i < e.list.size(); i++) {
          if (e.list[i] == nullptr) {
            if (i + 1 != e.list.size()) {
              return Error(e.line, "append [] must be the last index");
            }
            append = true;
          } else {
            if (Status st = CompileExpr(*e.list[i]); !st.ok()) {
              return st;
            }
            num_keys++;
          }
        }
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        Emit(Op::kIndexSetPath, slot, num_keys, append ? 1 : 0);
        return Status::Ok();
      }
      case ExprKind::kIncDec: {
        int slot = SlotFor(e.str_val);
        Emit(Op::kLoadVar, slot);
        if (!e.is_prefix) {
          Emit(Op::kDup);  // Old value stays as the expression result.
        }
        Emit(Op::kLoadConst, AddConst(Value::Int(1)));
        Emit(e.is_increment ? Op::kAdd : Op::kSub);
        if (e.is_prefix) {
          Emit(Op::kDup);  // New value is the expression result.
        }
        Emit(Op::kStoreVar, slot);
        return Status::Ok();
      }
      case ExprKind::kCall: {
        // User functions shadow builtins of the same name.
        auto it = functions_->find(e.str_val);
        if (it != functions_->end()) {
          for (const ExprPtr& arg : e.list) {
            if (Status st = CompileExpr(*arg); !st.ok()) {
              return st;
            }
          }
          Emit(Op::kCall, it->second, static_cast<int32_t>(e.list.size()));
          return Status::Ok();
        }
        int builtin = BuiltinIdByName(e.str_val);
        if (builtin < 0) {
          return Error(e.line, "unknown function '" + e.str_val + "'");
        }
        const BuiltinInfo& info = BuiltinById(builtin);
        int argc = static_cast<int>(e.list.size());
        if (argc < info.min_args || (info.max_args >= 0 && argc > info.max_args)) {
          return Error(e.line, "wrong number of arguments to '" + e.str_val + "'");
        }
        for (const ExprPtr& arg : e.list) {
          if (Status st = CompileExpr(*arg); !st.ok()) {
            return st;
          }
        }
        Emit(Op::kCallBuiltin, builtin, argc);
        return Status::Ok();
      }
      case ExprKind::kArrayLit: {
        Emit(Op::kNewArray);
        for (size_t i = 0; i < e.list.size(); i++) {
          if (e.keys[i]) {
            if (Status st = CompileExpr(*e.keys[i]); !st.ok()) {
              return st;
            }
            if (Status st = CompileExpr(*e.list[i]); !st.ok()) {
              return st;
            }
            Emit(Op::kArrayInsert);
          } else {
            if (Status st = CompileExpr(*e.list[i]); !st.ok()) {
              return st;
            }
            Emit(Op::kArrayAppend);
          }
        }
        return Status::Ok();
      }
      case ExprKind::kIndex: {
        if (Status st = CompileExpr(*e.a); !st.ok()) {
          return st;
        }
        if (Status st = CompileExpr(*e.b); !st.ok()) {
          return st;
        }
        Emit(Op::kIndexGet);
        return Status::Ok();
      }
    }
    return Status::Error("internal: unknown expression kind");
  }

  Chunk* chunk_;
  const std::unordered_map<std::string, int>* functions_;
  std::unordered_map<std::string, int> slots_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Result<Program> CompileScript(const ScriptAst& ast, const std::string& script_name) {
  Program prog;
  prog.script_name = script_name;

  // Chunk 0 = top level; then one chunk per function, indexed up front so calls can be
  // resolved regardless of declaration order.
  prog.chunks.emplace_back();
  prog.chunks[0].name = "<main>";
  for (const FunctionDecl& fn : ast.functions) {
    if (prog.function_index.count(fn.name) > 0) {
      return Result<Program>::Error("compile error: duplicate function '" + fn.name + "'");
    }
    prog.function_index[fn.name] = static_cast<int>(prog.chunks.size());
    prog.chunks.emplace_back();
    prog.chunks.back().name = fn.name;
    prog.chunks.back().num_params = static_cast<int>(fn.params.size());
  }

  {
    ChunkCompiler cc(&prog.chunks[0], &prog.function_index);
    if (Status st = cc.CompileBody(ast.top_level); !st.ok()) {
      return Result<Program>::Error(st.error());
    }
  }
  for (const FunctionDecl& fn : ast.functions) {
    Chunk* chunk = &prog.chunks[static_cast<size_t>(prog.function_index[fn.name])];
    ChunkCompiler cc(chunk, &prog.function_index);
    // Parameters occupy the first slots, in order.
    for (const std::string& p : fn.params) {
      cc.SlotFor(p);
    }
    if (Status st = cc.CompileBody(fn.body); !st.ok()) {
      return Result<Program>::Error(st.error());
    }
  }
  return prog;
}

Result<Program> CompileSource(const std::string& source, const std::string& script_name) {
  Result<ScriptAst> ast = ParseScript(source);
  if (!ast.ok()) {
    return Result<Program>::Error(ast.error());
  }
  return CompileScript(ast.value(), script_name);
}

}  // namespace orochi
