#include "src/lang/acc_interpreter.h"

#include <cassert>

#include "src/lang/ops.h"

namespace orochi {

AccInterpreter::AccInterpreter(const Program* program, std::vector<const RequestParams*> params,
                               InterpreterOptions options)
    : program_(program), params_(std::move(params)), options_(options) {
  outputs_.resize(params_.size());
  // These grow inside the re-execution loop; pre-reserving keeps early iterations from
  // reallocating (group re-execution constructs one interpreter per chunk).
  stack_.reserve(64);
  frames_.reserve(8);
  iters_.reserve(8);
  Frame frame;
  frame.chunk = &program_->chunks[0];
  frame.pc = 0;
  frame.slots.resize(static_cast<size_t>(frame.chunk->num_slots));
  frame.stack_base = 0;
  frame.iter_base = 0;
  frames_.push_back(std::move(frame));
}

void AccInterpreter::ProvideValues(std::vector<Value> per_request) {
  assert(pending_value_);
  assert(per_request.size() == params_.size());
  stack_.push_back(MakeMultiCollapsed(std::move(per_request)));
  pending_value_ = false;
}

void AccInterpreter::ProvideUniform(Value v) {
  assert(pending_value_);
  stack_.push_back(std::move(v));
  pending_value_ = false;
}

AccStepResult AccInterpreter::Trap(const std::string& message) {
  dead_ = true;
  AccStepResult r;
  r.kind = AccStepResult::Kind::kError;
  r.error = message;
  return r;
}

AccStepResult AccInterpreter::Diverge(const std::string& message) {
  dead_ = true;
  AccStepResult r;
  r.kind = AccStepResult::Kind::kDiverged;
  r.error = message;
  return r;
}

AccStepResult AccInterpreter::Fallback(const std::string& message) {
  dead_ = true;
  AccStepResult r;
  r.kind = AccStepResult::Kind::kFallback;
  r.error = message;
  return r;
}

AccStepResult AccInterpreter::Run() {
  assert(!pending_value_);
  if (finished_ || dead_) {
    return Trap("acc interpreter cannot resume");
  }
  return Execute();
}

bool AccInterpreter::SplitPureCall(const BuiltinInfo& info, std::vector<Value>& args,
                                   Value* out, std::string* failure) {
  size_t n = params_.size();
  std::vector<Value> results;
  results.reserve(n);
  std::vector<Value> component_args(args.size());
  for (size_t j = 0; j < n; j++) {
    for (size_t k = 0; k < args.size(); k++) {
      component_args[k] = ProjectComponent(args[k], j);
    }
    Result<Value> r = info.fn(component_args);
    if (!r.ok()) {
      *failure = r.error();
      return false;
    }
    results.push_back(std::move(r).value());
  }
  *out = MakeMultiCollapsed(std::move(results));
  return true;
}

AccStepResult AccInterpreter::Execute() {
  const size_t n = params_.size();
  while (true) {
    Frame& frame = frames_.back();
    const Chunk& chunk = *frame.chunk;
    if (frame.pc >= chunk.code.size()) {
      return Trap("pc out of range");
    }
    const Instr& in = chunk.code[frame.pc];
    frame.pc++;
    instructions_++;
    if (instructions_ > options_.max_instructions) {
      return Trap("instruction limit exceeded");
    }

    switch (in.op) {
      case Op::kLoadConst:
        stack_.push_back(chunk.consts[static_cast<size_t>(in.a)]);
        break;
      case Op::kLoadNull:
        stack_.push_back(Value::Null());
        break;
      case Op::kLoadTrue:
        stack_.push_back(Value::Bool(true));
        break;
      case Op::kLoadFalse:
        stack_.push_back(Value::Bool(false));
        break;
      case Op::kLoadVar:
        stack_.push_back(frame.slots[static_cast<size_t>(in.a)]);
        break;
      case Op::kStoreVar:
        frame.slots[static_cast<size_t>(in.a)] = std::move(stack_.back());
        stack_.pop_back();
        break;
      case Op::kDup:
        stack_.push_back(stack_.back());
        break;
      case Op::kPop:
        stack_.pop_back();
        break;

      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod:
      case Op::kConcat: case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe:
      case Op::kGt: case Op::kGe: {
        Value b = std::move(stack_.back());
        stack_.pop_back();
        Value a = std::move(stack_.back());
        stack_.pop_back();
        if (!ContainsMulti(a) && !ContainsMulti(b)) {
          Result<Value> r = ScalarBinary(in.op, a, b);
          if (!r.ok()) {
            return Trap(r.error());
          }
          stack_.push_back(std::move(r).value());
          break;
        }
        multivalent_++;
        std::vector<Value> results;
        results.reserve(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> r = ScalarBinary(in.op, ProjectComponent(a, j), ProjectComponent(b, j));
          if (!r.ok()) {
            return Fallback("component trap in binary op: " + r.error());
          }
          results.push_back(std::move(r).value());
        }
        stack_.push_back(MakeMultiCollapsed(std::move(results)));
        break;
      }

      case Op::kNot: case Op::kNeg: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        if (!v.is_multi()) {
          Result<Value> r = ScalarUnary(in.op, v);
          if (!r.ok()) {
            return Trap(r.error());
          }
          stack_.push_back(std::move(r).value());
          break;
        }
        multivalent_++;
        std::vector<Value> results;
        results.reserve(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> r = ScalarUnary(in.op, ProjectComponent(v, j));
          if (!r.ok()) {
            return Fallback("component trap in unary op: " + r.error());
          }
          results.push_back(std::move(r).value());
        }
        stack_.push_back(MakeMultiCollapsed(std::move(results)));
        break;
      }

      case Op::kJump:
        frame.pc = static_cast<size_t>(in.a);
        break;

      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue: {
        Value cond = std::move(stack_.back());
        stack_.pop_back();
        bool truthy;
        if (cond.is_multi()) {
          multivalent_++;
          const auto& items = cond.multi().items;
          truthy = items[0].Truthy();
          for (size_t j = 1; j < items.size(); j++) {
            if (items[j].Truthy() != truthy) {
              return Diverge("branch condition differs within control-flow group");
            }
          }
        } else {
          truthy = cond.Truthy();
        }
        if ((in.op == Op::kJumpIfFalse && !truthy) || (in.op == Op::kJumpIfTrue && truthy)) {
          frame.pc = static_cast<size_t>(in.a);
        }
        break;
      }

      case Op::kCall: {
        const Chunk& target = program_->chunks[static_cast<size_t>(in.a)];
        int argc = in.b;
        if (argc != target.num_params) {
          return Trap("wrong number of arguments to " + target.name);
        }
        if (frames_.size() >= 256) {
          return Trap("call stack overflow");
        }
        Frame callee;
        callee.chunk = &target;
        callee.pc = 0;
        callee.slots.resize(static_cast<size_t>(target.num_slots));
        callee.stack_base = stack_.size() - static_cast<size_t>(argc);
        callee.iter_base = iters_.size();
        for (int i = argc - 1; i >= 0; i--) {
          callee.slots[static_cast<size_t>(i)] = std::move(stack_.back());
          stack_.pop_back();
        }
        frames_.push_back(std::move(callee));
        break;
      }

      case Op::kCallBuiltin: {
        const BuiltinInfo& info = BuiltinById(in.a);
        int argc = in.b;
        std::vector<Value> args(static_cast<size_t>(argc));
        for (int i = argc - 1; i >= 0; i--) {
          args[static_cast<size_t>(i)] = std::move(stack_.back());
          stack_.pop_back();
        }
        switch (info.kind) {
          case BuiltinKind::kPure: {
            bool any_multi = false;
            for (const Value& a : args) {
              if (ContainsMulti(a)) {
                any_multi = true;
                break;
              }
            }
            if (!any_multi) {
              Result<Value> r = info.fn(args);
              if (!r.ok()) {
                return Trap(r.error());
              }
              stack_.push_back(std::move(r).value());
              break;
            }
            multivalent_++;
            Value out;
            std::string failure;
            if (!SplitPureCall(info, args, &out, &failure)) {
              return Fallback("component trap in builtin " + std::string(info.name) + ": " +
                              failure);
            }
            stack_.push_back(std::move(out));
            break;
          }
          case BuiltinKind::kInput: {
            // Reads the per-request inputs; collapses when all requests agree.
            bool name_multi = args[0].is_multi();
            if (name_multi) {
              multivalent_++;
            }
            std::vector<Value> results;
            results.reserve(n);
            for (size_t j = 0; j < n; j++) {
              std::string name = ProjectComponent(args[0], j).ToString();
              auto it = params_[j]->find(name);
              results.push_back(it == params_[j]->end() ? Value::Null()
                                                        : Value::Str(it->second));
            }
            stack_.push_back(MakeMultiCollapsed(std::move(results)));
            break;
          }
          case BuiltinKind::kStateOp: {
            const BuiltinIds& ids = WellKnownBuiltins();
            AccStepResult r;
            r.kind = AccStepResult::Kind::kStateOp;
            r.ops.resize(n);
            for (size_t j = 0; j < n; j++) {
              StateOpRequest& op = r.ops[j];
              if (in.a == ids.reg_read) {
                op.type = StateOpType::kRegisterRead;
                op.target = ProjectComponent(args[0], j).ToString();
              } else if (in.a == ids.reg_write) {
                op.type = StateOpType::kRegisterWrite;
                op.target = ProjectComponent(args[0], j).ToString();
                op.value = ProjectComponent(args[1], j);
              } else if (in.a == ids.kv_get) {
                op.type = StateOpType::kKvGet;
                op.key = ProjectComponent(args[0], j).ToString();
              } else if (in.a == ids.kv_set) {
                op.type = StateOpType::kKvSet;
                op.key = ProjectComponent(args[0], j).ToString();
                op.value = ProjectComponent(args[1], j);
              } else if (in.a == ids.db_query) {
                op.type = StateOpType::kDbOp;
                op.db_is_txn = false;
                op.sql.push_back(ProjectComponent(args[0], j).ToString());
              } else {  // db_txn
                op.type = StateOpType::kDbOp;
                op.db_is_txn = true;
                Value stmts = ProjectComponent(args[0], j);
                if (!stmts.is_array() || stmts.array().size() == 0) {
                  return Fallback("db_txn argument is not a non-empty array");
                }
                for (const auto& [k, v] : stmts.array().entries()) {
                  (void)k;
                  op.sql.push_back(v.ToString());
                }
              }
            }
            pending_value_ = true;
            return r;
          }
          case BuiltinKind::kNondet: {
            AccStepResult r;
            r.kind = AccStepResult::Kind::kNondet;
            r.nondets.resize(n);
            for (size_t j = 0; j < n; j++) {
              r.nondets[j].name = info.name;
              for (const Value& a : args) {
                r.nondets[j].args.push_back(ProjectComponent(a, j));
              }
            }
            pending_value_ = true;
            return r;
          }
        }
        break;
      }

      case Op::kReturn: {
        Value ret = std::move(stack_.back());
        stack_.pop_back();
        Frame done = std::move(frames_.back());
        frames_.pop_back();
        stack_.resize(done.stack_base);
        iters_.resize(done.iter_base);
        if (frames_.empty()) {
          finished_ = true;
          AccStepResult r;
          r.kind = AccStepResult::Kind::kFinished;
          return r;
        }
        stack_.push_back(std::move(ret));
        break;
      }

      case Op::kNewArray:
        stack_.push_back(Value::Array());
        break;

      case Op::kArrayAppend: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        Value& target = stack_.back();
        if (target.is_multi()) {
          multivalent_++;
          std::vector<Value> results;
          results.reserve(n);
          for (size_t j = 0; j < n; j++) {
            Value component = ProjectComponent(target, j);
            if (!component.is_array()) {
              return Fallback("append to non-array component");
            }
            component.MutableArray().Append(ProjectComponent(v, j));
            results.push_back(std::move(component));
          }
          target = MakeMultiCollapsed(std::move(results));
        } else {
          // Univalue array: a multivalue cell is stored as-is (the dedup-friendly case).
          target.MutableArray().Append(std::move(v));
        }
        break;
      }

      case Op::kArrayInsert: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        Value key = std::move(stack_.back());
        stack_.pop_back();
        Value& target = stack_.back();
        if (target.is_multi() || key.is_multi()) {
          multivalent_++;
          std::vector<Value> results;
          results.reserve(n);
          for (size_t j = 0; j < n; j++) {
            Value component = ProjectComponent(target, j);
            if (!component.is_array()) {
              return Fallback("insert into non-array component");
            }
            Result<ArrayKey> k = ToArrayKey(ProjectComponent(key, j));
            if (!k.ok()) {
              return Fallback(k.error());
            }
            component.MutableArray().Set(k.value(), ProjectComponent(v, j));
            results.push_back(std::move(component));
          }
          target = MakeMultiCollapsed(std::move(results));
        } else {
          Result<ArrayKey> k = ToArrayKey(key);
          if (!k.ok()) {
            return Trap(k.error());
          }
          target.MutableArray().Set(k.value(), std::move(v));
        }
        break;
      }

      case Op::kIndexGet: {
        Value key = std::move(stack_.back());
        stack_.pop_back();
        Value container = std::move(stack_.back());
        stack_.pop_back();
        if (!container.is_multi() && !key.is_multi()) {
          // A univalue array with multivalue cells returns the cell (possibly a multivalue)
          // directly — executed once.
          Result<Value> r = ScalarIndexGet(container, key);
          if (!r.ok()) {
            return Trap(r.error());
          }
          stack_.push_back(std::move(r).value());
          break;
        }
        multivalent_++;
        std::vector<Value> results;
        results.reserve(n);
        for (size_t j = 0; j < n; j++) {
          Result<Value> r =
              ScalarIndexGet(ProjectComponent(container, j), ProjectComponent(key, j));
          if (!r.ok()) {
            return Fallback("component trap in index get: " + r.error());
          }
          results.push_back(std::move(r).value());
        }
        stack_.push_back(MakeMultiCollapsed(std::move(results)));
        break;
      }

      case Op::kIndexSetPath: {
        int num_keys = in.b;
        bool append = in.c != 0;
        Value value = std::move(stack_.back());
        stack_.pop_back();
        std::vector<Value> key_values(static_cast<size_t>(num_keys));
        for (int i = num_keys - 1; i >= 0; i--) {
          key_values[static_cast<size_t>(i)] = std::move(stack_.back());
          stack_.pop_back();
        }
        Value& slot = frame.slots[static_cast<size_t>(in.a)];

        bool needs_split = slot.is_multi();
        for (const Value& kv : key_values) {
          if (kv.is_multi()) {
            needs_split = true;
          }
        }
        if (!needs_split) {
          // Direct path unless an intermediate node on the walk is a multivalue.
          std::vector<ArrayKey> keys;
          keys.reserve(key_values.size());
          bool ok = true;
          for (const Value& kv : key_values) {
            Result<ArrayKey> k = ToArrayKey(kv);
            if (!k.ok()) {
              return Trap(k.error());
            }
            keys.push_back(std::move(k).value());
          }
          // Dry walk to detect multivalue intermediates (§4.3: expansion required when the
          // per-request containers are no longer equivalent).
          const Value* node = &slot;
          size_t steps = append ? keys.size() : (keys.empty() ? 0 : keys.size() - 1);
          for (size_t i = 0; i < steps && ok; i++) {
            if (node->is_multi()) {
              needs_split = true;
              break;
            }
            if (!node->is_array()) {
              break;  // Vivification will create arrays; no multis on this path.
            }
            const Value* next = node->array().Find(keys[i]);
            if (next == nullptr) {
              break;
            }
            node = next;
          }
          if (node != nullptr && node->is_multi() && steps > 0) {
            needs_split = true;
          }
          if (!needs_split) {
            Status st = ScalarIndexSetPath(&slot, keys, append, value);
            if (!st.ok()) {
              return Trap(st.error());
            }
            stack_.push_back(std::move(value));
            break;
          }
        }
        // Split path: expand the variable into per-request components and assign
        // componentwise (scalar expansion per §4.3).
        multivalent_++;
        std::vector<Value> components;
        components.reserve(n);
        for (size_t j = 0; j < n; j++) {
          Value component = ProjectComponent(slot, j);
          std::vector<ArrayKey> keys;
          keys.reserve(key_values.size());
          for (const Value& kv : key_values) {
            Result<ArrayKey> k = ToArrayKey(ProjectComponent(kv, j));
            if (!k.ok()) {
              return Fallback(k.error());
            }
            keys.push_back(std::move(k).value());
          }
          Status st = ScalarIndexSetPath(&component, keys, append, ProjectComponent(value, j));
          if (!st.ok()) {
            return Fallback(st.error());
          }
          components.push_back(std::move(component));
        }
        slot = MakeMultiCollapsed(std::move(components));
        stack_.push_back(std::move(value));
        break;
      }

      case Op::kIterNew: {
        Value subject = std::move(stack_.back());
        stack_.pop_back();
        if (subject.is_multi()) {
          multivalent_++;
          Iter iter;
          iter.is_multi = true;
          iter.pos = 0;
          size_t entry_count = 0;
          for (size_t j = 0; j < n; j++) {
            Value component = ProjectComponent(subject, j);
            if (!component.is_array()) {
              return Diverge("foreach subject is not an array for every request");
            }
            if (j == 0) {
              entry_count = component.array().size();
            } else if (component.array().size() != entry_count) {
              // Different iteration counts would have produced different control-flow
              // digests; the grouping report is spurious.
              return Diverge("foreach lengths differ within control-flow group");
            }
            iter.arrays.push_back(component.array_ptr());
          }
          iters_.push_back(std::move(iter));
          break;
        }
        if (!subject.is_array()) {
          return Trap("foreach over a non-array value");
        }
        iters_.push_back({false, subject.array_ptr(), {}, 0});
        break;
      }

      case Op::kIterNext: {
        Iter& iter = iters_.back();
        size_t size =
            iter.is_multi ? iter.arrays[0]->entries().size() : iter.array->entries().size();
        if (iter.pos >= size) {
          iters_.pop_back();
          frame.pc = static_cast<size_t>(in.a);
          break;
        }
        if (iter.is_multi) {
          multivalent_++;
          std::vector<Value> keys;
          std::vector<Value> values;
          keys.reserve(n);
          values.reserve(n);
          for (size_t j = 0; j < n; j++) {
            const auto& [k, v] = iter.arrays[j]->entries()[iter.pos];
            keys.push_back(k.is_int() ? Value::Int(k.int_key()) : Value::Str(k.str_key()));
            values.push_back(v);
          }
          if (in.b >= 0) {
            frame.slots[static_cast<size_t>(in.b)] = MakeMultiCollapsed(std::move(keys));
          }
          frame.slots[static_cast<size_t>(in.c)] = MakeMultiCollapsed(std::move(values));
        } else {
          const auto& [k, v] = iter.array->entries()[iter.pos];
          if (in.b >= 0) {
            frame.slots[static_cast<size_t>(in.b)] =
                k.is_int() ? Value::Int(k.int_key()) : Value::Str(k.str_key());
          }
          frame.slots[static_cast<size_t>(in.c)] = v;
        }
        iter.pos++;
        break;
      }

      case Op::kIterDispose:
        iters_.pop_back();
        break;

      case Op::kEcho: {
        Value v = std::move(stack_.back());
        stack_.pop_back();
        if (!ContainsMulti(v)) {
          std::string s = v.ToString();
          for (std::string& out : outputs_) {
            out += s;
          }
          break;
        }
        multivalent_++;
        for (size_t j = 0; j < n; j++) {
          outputs_[j] += ProjectComponent(v, j).ToString();
        }
        break;
      }
    }
  }
}

}  // namespace orochi
