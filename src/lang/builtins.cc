#include "src/lang/builtins.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace orochi {

namespace {

Result<Value> Err(const std::string& m) { return Result<Value>::Error(m); }

Result<Value> BStrlen(std::vector<Value>& args) {
  return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
}

Result<Value> BSubstr(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  int64_t start = args[1].ToInt();
  int64_t n = static_cast<int64_t>(s.size());
  if (start < 0) {
    start = std::max<int64_t>(0, n + start);
  }
  if (start >= n) {
    return Value::Str("");
  }
  int64_t len = n - start;
  if (args.size() >= 3 && !args[2].is_null()) {
    len = args[2].ToInt();
    if (len < 0) {
      len = std::max<int64_t>(0, n - start + len);
    }
  }
  len = std::min(len, n - start);
  return Value::Str(s.substr(static_cast<size_t>(start), static_cast<size_t>(len)));
}

Result<Value> BStrpos(std::vector<Value>& args) {
  std::string hay = args[0].ToString();
  std::string needle = args[1].ToString();
  size_t pos = hay.find(needle);
  if (pos == std::string::npos) {
    return Value::Int(-1);  // Deviation from PHP's `false`: documented in LANGUAGE.md.
  }
  return Value::Int(static_cast<int64_t>(pos));
}

Result<Value> BStrReplace(std::vector<Value>& args) {
  std::string search = args[0].ToString();
  std::string replace = args[1].ToString();
  std::string subject = args[2].ToString();
  if (search.empty()) {
    return Value::Str(std::move(subject));
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = subject.find(search, start);
    if (pos == std::string::npos) {
      out.append(subject, start, std::string::npos);
      return Value::Str(std::move(out));
    }
    out.append(subject, start, pos - start);
    out.append(replace);
    start = pos + search.size();
  }
}

Result<Value> BStrtolower(std::vector<Value>& args) {
  return Value::Str(AsciiLower(args[0].ToString()));
}

Result<Value> BStrtoupper(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return Value::Str(std::move(s));
}

Result<Value> BTrim(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  size_t b = s.find_first_not_of(" \t\n\r\0\x0B", 0, 6);
  if (b == std::string::npos) {
    return Value::Str("");
  }
  size_t e = s.find_last_not_of(" \t\n\r\0\x0B", std::string::npos, 6);
  return Value::Str(s.substr(b, e - b + 1));
}

Result<Value> BStrRepeat(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  int64_t n = args[1].ToInt();
  if (n < 0) {
    return Err("str_repeat: negative count");
  }
  if (static_cast<uint64_t>(n) * s.size() > (64u << 20)) {
    return Err("str_repeat: result too large");
  }
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n));
  for (int64_t i = 0; i < n; i++) {
    out += s;
  }
  return Value::Str(std::move(out));
}

Result<Value> BHtmlspecialchars(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return Value::Str(std::move(out));
}

Result<Value> BImplode(std::vector<Value>& args) {
  if (!args[1].is_array()) {
    return Err("implode: second argument must be an array");
  }
  std::string sep = args[0].ToString();
  std::string out;
  bool first = true;
  for (const auto& [k, v] : args[1].array().entries()) {
    (void)k;
    if (!first) {
      out += sep;
    }
    first = false;
    out += v.ToString();
  }
  return Value::Str(std::move(out));
}

Result<Value> BExplode(std::vector<Value>& args) {
  std::string sep = args[0].ToString();
  std::string s = args[1].ToString();
  if (sep.empty()) {
    return Err("explode: empty separator");
  }
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      arr.Append(Value::Str(s.substr(start)));
      return out;
    }
    arr.Append(Value::Str(s.substr(start, pos - start)));
    start = pos + sep.size();
  }
}

Result<Value> BCount(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("count: argument must be an array");
  }
  return Value::Int(static_cast<int64_t>(args[0].array().size()));
}

Result<Value> BIsset(std::vector<Value>& args) { return Value::Bool(!args[0].is_null()); }

Result<Value> BInArray(std::vector<Value>& args) {
  if (!args[1].is_array()) {
    return Err("in_array: second argument must be an array");
  }
  for (const auto& [k, v] : args[1].array().entries()) {
    (void)k;
    if (Value::DeepEquals(args[0], v)) {
      return Value::Bool(true);
    }
  }
  return Value::Bool(false);
}

Result<Value> BArrayKeys(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("array_keys: argument must be an array");
  }
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (const auto& [k, v] : args[0].array().entries()) {
    (void)v;
    arr.Append(k.is_int() ? Value::Int(k.int_key()) : Value::Str(k.str_key()));
  }
  return out;
}

Result<Value> BArrayValues(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("array_values: argument must be an array");
  }
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (const auto& [k, v] : args[0].array().entries()) {
    (void)k;
    arr.Append(v);
  }
  return out;
}

Result<Value> BArrayKeyExists(std::vector<Value>& args) {
  if (!args[1].is_array()) {
    return Err("array_key_exists: second argument must be an array");
  }
  ArrayKey key = args[0].is_int() ? ArrayKey(args[0].as_int()) : ArrayKey(args[0].ToString());
  return Value::Bool(args[1].array().Has(key));
}

Result<Value> BArrayMerge(std::vector<Value>& args) {
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (Value& a : args) {
    if (!a.is_array()) {
      return Err("array_merge: arguments must be arrays");
    }
    for (const auto& [k, v] : a.array().entries()) {
      if (k.is_int()) {
        arr.Append(v);  // Integer keys are renumbered, as in PHP.
      } else {
        arr.Set(k, v);
      }
    }
  }
  return out;
}

Result<Value> BArraySlice(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("array_slice: first argument must be an array");
  }
  const auto& entries = args[0].array().entries();
  int64_t n = static_cast<int64_t>(entries.size());
  int64_t offset = args[1].ToInt();
  if (offset < 0) {
    offset = std::max<int64_t>(0, n + offset);
  }
  int64_t len = n - offset;
  if (args.size() >= 3 && !args[2].is_null()) {
    len = args[2].ToInt();
    if (len < 0) {
      len = std::max<int64_t>(0, n - offset + len);
    }
  }
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (int64_t i = offset; i < std::min(n, offset + len); i++) {
    const auto& [k, v] = entries[static_cast<size_t>(i)];
    if (k.is_int()) {
      arr.Append(v);
    } else {
      arr.Set(k, v);
    }
  }
  return out;
}

Result<Value> BArrayReverse(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("array_reverse: argument must be an array");
  }
  const auto& entries = args[0].array().entries();
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->first.is_int()) {
      arr.Append(it->second);
    } else {
      arr.Set(it->first, it->second);
    }
  }
  return out;
}

// Deterministic cross-type ordering for sort(): by type rank, then by value.
int CompareForSort(const Value& a, const Value& b) {
  auto rank = [](const Value& v) -> int {
    switch (v.type()) {
      case ValueType::kNull: return 0;
      case ValueType::kBool: return 1;
      case ValueType::kInt:
      case ValueType::kFloat: return 2;
      case ValueType::kString: return 3;
      case ValueType::kArray: return 4;
      case ValueType::kMulti: return 5;
    }
    return 6;
  };
  int ra = rank(a);
  int rb = rank(b);
  if (ra != rb) {
    return ra < rb ? -1 : 1;
  }
  if (ra == 2) {
    double x = a.ToFloat();
    double y = b.ToFloat();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (ra == 3) {
    return a.as_string().compare(b.as_string()) < 0   ? -1
           : a.as_string().compare(b.as_string()) > 0 ? 1
                                                      : 0;
  }
  if (ra == 1) {
    return (a.as_bool() ? 1 : 0) - (b.as_bool() ? 1 : 0);
  }
  if (ra == 4) {
    std::string sa = a.Serialize();
    std::string sb = b.Serialize();
    return sa.compare(sb) < 0 ? -1 : sa.compare(sb) > 0 ? 1 : 0;
  }
  return 0;
}

// Deviation from PHP: sort/ksort return a sorted copy (no by-reference parameters in
// wscript); documented in LANGUAGE.md.
Result<Value> BSort(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("sort: argument must be an array");
  }
  std::vector<Value> vals;
  for (const auto& [k, v] : args[0].array().entries()) {
    (void)k;
    vals.push_back(v);
  }
  std::stable_sort(vals.begin(), vals.end(),
                   [](const Value& a, const Value& b) { return CompareForSort(a, b) < 0; });
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (Value& v : vals) {
    arr.Append(std::move(v));
  }
  return out;
}

Result<Value> BKsort(std::vector<Value>& args) {
  if (!args[0].is_array()) {
    return Err("ksort: argument must be an array");
  }
  auto entries = args[0].array().entries();
  std::stable_sort(entries.begin(), entries.end(), [](const auto& x, const auto& y) {
    const ArrayKey& a = x.first;
    const ArrayKey& b = y.first;
    if (a.is_int() != b.is_int()) {
      return a.is_int();  // Integer keys before string keys (deterministic rule).
    }
    if (a.is_int()) {
      return a.int_key() < b.int_key();
    }
    return a.str_key() < b.str_key();
  });
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  for (auto& [k, v] : entries) {
    arr.Set(k, std::move(v));
  }
  return out;
}

Result<Value> BRange(std::vector<Value>& args) {
  int64_t lo = args[0].ToInt();
  int64_t hi = args[1].ToInt();
  if (hi - lo > (1 << 22) || lo - hi > (1 << 22)) {
    return Err("range: too large");
  }
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  if (lo <= hi) {
    for (int64_t i = lo; i <= hi; i++) {
      arr.Append(Value::Int(i));
    }
  } else {
    for (int64_t i = lo; i >= hi; i--) {
      arr.Append(Value::Int(i));
    }
  }
  return out;
}

Result<Value> BMax(std::vector<Value>& args) {
  const Value* best = nullptr;
  auto consider = [&best](const Value& v) {
    if (best == nullptr || CompareForSort(*best, v) < 0) {
      best = &v;
    }
  };
  if (args.size() == 1 && args[0].is_array()) {
    if (args[0].array().size() == 0) {
      return Err("max: empty array");
    }
    for (const auto& [k, v] : args[0].array().entries()) {
      (void)k;
      consider(v);
    }
  } else {
    for (const Value& v : args) {
      consider(v);
    }
  }
  return *best;
}

Result<Value> BMin(std::vector<Value>& args) {
  const Value* best = nullptr;
  auto consider = [&best](const Value& v) {
    if (best == nullptr || CompareForSort(*best, v) > 0) {
      best = &v;
    }
  };
  if (args.size() == 1 && args[0].is_array()) {
    if (args[0].array().size() == 0) {
      return Err("min: empty array");
    }
    for (const auto& [k, v] : args[0].array().entries()) {
      (void)k;
      consider(v);
    }
  } else {
    for (const Value& v : args) {
      consider(v);
    }
  }
  return *best;
}

Result<Value> BAbs(std::vector<Value>& args) {
  if (args[0].is_float()) {
    return Value::Float(std::fabs(args[0].as_float()));
  }
  int64_t v = args[0].ToInt();
  return Value::Int(v < 0 ? -v : v);
}

Result<Value> BFloor(std::vector<Value>& args) { return Value::Float(std::floor(args[0].ToFloat())); }
Result<Value> BCeil(std::vector<Value>& args) { return Value::Float(std::ceil(args[0].ToFloat())); }
Result<Value> BSqrt(std::vector<Value>& args) { return Value::Float(std::sqrt(args[0].ToFloat())); }

Result<Value> BPow(std::vector<Value>& args) {
  if (args[0].is_int() && args[1].is_int() && args[1].as_int() >= 0 && args[1].as_int() < 63) {
    int64_t base = args[0].as_int();
    int64_t result = 1;
    for (int64_t i = 0; i < args[1].as_int(); i++) {
      result *= base;
    }
    return Value::Int(result);
  }
  return Value::Float(std::pow(args[0].ToFloat(), args[1].ToFloat()));
}

Result<Value> BIntdiv(std::vector<Value>& args) {
  int64_t d = args[1].ToInt();
  if (d == 0) {
    return Err("intdiv: division by zero");
  }
  return Value::Int(args[0].ToInt() / d);
}

Result<Value> BIntval(std::vector<Value>& args) { return Value::Int(args[0].ToInt()); }
Result<Value> BFloatval(std::vector<Value>& args) { return Value::Float(args[0].ToFloat()); }
Result<Value> BStrval(std::vector<Value>& args) { return Value::Str(args[0].ToString()); }
Result<Value> BBoolval(std::vector<Value>& args) { return Value::Bool(args[0].Truthy()); }
Result<Value> BIsArray(std::vector<Value>& args) { return Value::Bool(args[0].is_array()); }
Result<Value> BIsString(std::vector<Value>& args) { return Value::Bool(args[0].is_string()); }

Result<Value> BIsNumeric(std::vector<Value>& args) {
  if (args[0].is_numeric()) {
    return Value::Bool(true);
  }
  if (!args[0].is_string()) {
    return Value::Bool(false);
  }
  const std::string& s = args[0].as_string();
  if (s.empty()) {
    return Value::Bool(false);
  }
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return Value::Bool(end == s.c_str() + s.size());
}

Result<Value> BNumberFormat(std::vector<Value>& args) {
  double v = args[0].ToFloat();
  int decimals = args.size() >= 2 ? static_cast<int>(args[1].ToInt()) : 0;
  if (decimals < 0 || decimals > 18) {
    return Err("number_format: bad decimals");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  // Insert thousands separators into the integer part.
  std::string s = buf;
  size_t dot = s.find('.');
  size_t int_end = dot == std::string::npos ? s.size() : dot;
  size_t start = (!s.empty() && s[0] == '-') ? 1 : 0;
  std::string out = s.substr(0, start);
  size_t digits = int_end - start;
  for (size_t i = 0; i < digits; i++) {
    if (i > 0 && (digits - i) % 3 == 0) {
      out += ',';
    }
    out += s[start + i];
  }
  out += s.substr(int_end);
  return Value::Str(std::move(out));
}

// SQL string-literal escaping for the engine's '' convention (the addslashes analog).
Result<Value> BSqlEscape(std::vector<Value>& args) {
  std::string s = args[0].ToString();
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') {
      out += "''";
    } else {
      out += c;
    }
  }
  return Value::Str(std::move(out));
}

Result<Value> BHash64(std::vector<Value>& args) {
  uint64_t h = FnvHash(args[0].ToString());
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return Value::Str(buf);
}

Result<Value> BUnreachablePure(std::vector<Value>&) {
  return Err("internal: non-pure builtin dispatched as pure");
}

// The table order defines stable builtin ids referenced by compiled bytecode.
const BuiltinInfo kBuiltins[] = {
    // Request input.
    {"input", BuiltinKind::kInput, 1, 1, BUnreachablePure},
    // Shared-object operations.
    {"reg_read", BuiltinKind::kStateOp, 1, 1, BUnreachablePure},
    {"reg_write", BuiltinKind::kStateOp, 2, 2, BUnreachablePure},
    {"kv_get", BuiltinKind::kStateOp, 1, 1, BUnreachablePure},
    {"kv_set", BuiltinKind::kStateOp, 2, 2, BUnreachablePure},
    {"db_query", BuiltinKind::kStateOp, 1, 1, BUnreachablePure},
    {"db_txn", BuiltinKind::kStateOp, 1, 1, BUnreachablePure},
    // Non-determinism (recorded as reports, paper §4.6).
    {"time", BuiltinKind::kNondet, 0, 0, BUnreachablePure},
    {"microtime", BuiltinKind::kNondet, 0, 0, BUnreachablePure},
    {"rand", BuiltinKind::kNondet, 2, 2, BUnreachablePure},
    // Pure library.
    {"strlen", BuiltinKind::kPure, 1, 1, BStrlen},
    {"substr", BuiltinKind::kPure, 2, 3, BSubstr},
    {"strpos", BuiltinKind::kPure, 2, 2, BStrpos},
    {"str_replace", BuiltinKind::kPure, 3, 3, BStrReplace},
    {"strtolower", BuiltinKind::kPure, 1, 1, BStrtolower},
    {"strtoupper", BuiltinKind::kPure, 1, 1, BStrtoupper},
    {"trim", BuiltinKind::kPure, 1, 1, BTrim},
    {"str_repeat", BuiltinKind::kPure, 2, 2, BStrRepeat},
    {"htmlspecialchars", BuiltinKind::kPure, 1, 1, BHtmlspecialchars},
    {"implode", BuiltinKind::kPure, 2, 2, BImplode},
    {"explode", BuiltinKind::kPure, 2, 2, BExplode},
    {"count", BuiltinKind::kPure, 1, 1, BCount},
    {"isset", BuiltinKind::kPure, 1, 1, BIsset},
    {"in_array", BuiltinKind::kPure, 2, 2, BInArray},
    {"array_keys", BuiltinKind::kPure, 1, 1, BArrayKeys},
    {"array_values", BuiltinKind::kPure, 1, 1, BArrayValues},
    {"array_key_exists", BuiltinKind::kPure, 2, 2, BArrayKeyExists},
    {"array_merge", BuiltinKind::kPure, 1, -1, BArrayMerge},
    {"array_slice", BuiltinKind::kPure, 2, 3, BArraySlice},
    {"array_reverse", BuiltinKind::kPure, 1, 1, BArrayReverse},
    {"sort", BuiltinKind::kPure, 1, 1, BSort},
    {"ksort", BuiltinKind::kPure, 1, 1, BKsort},
    {"range", BuiltinKind::kPure, 2, 2, BRange},
    {"max", BuiltinKind::kPure, 1, -1, BMax},
    {"min", BuiltinKind::kPure, 1, -1, BMin},
    {"abs", BuiltinKind::kPure, 1, 1, BAbs},
    {"floor", BuiltinKind::kPure, 1, 1, BFloor},
    {"ceil", BuiltinKind::kPure, 1, 1, BCeil},
    {"sqrt", BuiltinKind::kPure, 1, 1, BSqrt},
    {"pow", BuiltinKind::kPure, 2, 2, BPow},
    {"intdiv", BuiltinKind::kPure, 2, 2, BIntdiv},
    {"intval", BuiltinKind::kPure, 1, 1, BIntval},
    {"floatval", BuiltinKind::kPure, 1, 1, BFloatval},
    {"strval", BuiltinKind::kPure, 1, 1, BStrval},
    {"boolval", BuiltinKind::kPure, 1, 1, BBoolval},
    {"is_array", BuiltinKind::kPure, 1, 1, BIsArray},
    {"is_string", BuiltinKind::kPure, 1, 1, BIsString},
    {"is_numeric", BuiltinKind::kPure, 1, 1, BIsNumeric},
    {"number_format", BuiltinKind::kPure, 1, 2, BNumberFormat},
    {"hash64", BuiltinKind::kPure, 1, 1, BHash64},
    {"sql_escape", BuiltinKind::kPure, 1, 1, BSqlEscape},
};

constexpr int kNumBuiltins = static_cast<int>(sizeof(kBuiltins) / sizeof(kBuiltins[0]));

const std::unordered_map<std::string, int>& NameIndex() {
  static const auto* index = [] {
    auto* m = new std::unordered_map<std::string, int>();
    for (int i = 0; i < kNumBuiltins; i++) {
      (*m)[kBuiltins[i].name] = i;
    }
    return m;
  }();
  return *index;
}

}  // namespace

int BuiltinIdByName(const std::string& name) {
  auto it = NameIndex().find(name);
  return it == NameIndex().end() ? -1 : it->second;
}

const BuiltinInfo& BuiltinById(int id) { return kBuiltins[id]; }

int BuiltinCount() { return kNumBuiltins; }

const BuiltinIds& WellKnownBuiltins() {
  static const BuiltinIds ids = {
      BuiltinIdByName("input"),    BuiltinIdByName("reg_read"), BuiltinIdByName("reg_write"),
      BuiltinIdByName("kv_get"),   BuiltinIdByName("kv_set"),   BuiltinIdByName("db_query"),
      BuiltinIdByName("db_txn"),   BuiltinIdByName("time"),     BuiltinIdByName("microtime"),
      BuiltinIdByName("rand"),
  };
  return ids;
}

}  // namespace orochi
