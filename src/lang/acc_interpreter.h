// SIMD-on-demand group re-execution (the acc-PHP analog, paper §3.1 and §4.3).
//
// One AccInterpreter logically executes every request of a control-flow group at once.
// Program state is held in (possibly) multivalues; an instruction whose operands are
// univalues executes once ("univalently"), an instruction touching a multivalue executes
// componentwise ("multivalently") and the result collapses back to a univalue whenever all
// components re-converge. Branch decisions must agree across the group — a disagreement
// means the untrusted control-flow grouping report was wrong and the audit must reject.
//
// Like the scalar interpreter, execution yields at shared-object operations and
// non-deterministic builtins; the driver supplies per-request results (simulate-and-check
// during an audit).
//
// Some multivalue situations are legal for a well-behaved executor but are not representable
// in lockstep (e.g. a pure builtin that traps for a subset of the group). Those surface as
// kFallback: the audit re-executes the group's requests individually (the same escape hatch
// acc-PHP uses, §4.7).
#ifndef SRC_LANG_ACC_INTERPRETER_H_
#define SRC_LANG_ACC_INTERPRETER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/builtins.h"
#include "src/lang/bytecode.h"
#include "src/lang/interpreter.h"
#include "src/lang/step_result.h"
#include "src/lang/value.h"

namespace orochi {

struct AccStepResult {
  enum class Kind : uint8_t {
    kFinished,  // All requests in the group completed.
    kStateOp,   // Per-request state operations awaiting results.
    kNondet,    // Per-request nondet builtin awaiting results.
    kError,     // Uniform deterministic trap (all components trap identically).
    kDiverged,  // Control flow disagreed within the group: audit must REJECT.
    kFallback,  // Not representable in lockstep: re-execute requests individually.
  };

  Kind kind;
  std::vector<StateOpRequest> ops;       // kStateOp: one per request, group order.
  std::vector<NondetRequest> nondets;    // kNondet: one per request, group order.
  std::string error;                     // kError / kDiverged / kFallback reason.
};

class AccInterpreter {
 public:
  // `params[j]` are the inputs of the j-th request in the group. Pointers must outlive
  // the interpreter.
  AccInterpreter(const Program* program, std::vector<const RequestParams*> params,
                 InterpreterOptions options = {});

  AccStepResult Run();

  // Supplies per-request results for the pending state op / nondet (group order). The
  // vector is collapsed into a univalue when all results agree.
  void ProvideValues(std::vector<Value> per_request);
  // Convenience for a uniform result.
  void ProvideUniform(Value v);

  size_t group_size() const { return params_.size(); }
  const std::vector<std::string>& outputs() const { return outputs_; }

  // Statistics backing Figures 10/11: instruction executions and how many of them were
  // multivalent (took the componentwise path).
  uint64_t total_instructions() const { return instructions_; }
  uint64_t multivalent_instructions() const { return multivalent_; }

 private:
  struct Frame {
    const Chunk* chunk;
    size_t pc;
    std::vector<Value> slots;
    size_t stack_base;
    size_t iter_base;
  };

  // Iterator over either a univalue array or per-component arrays (all the same length).
  struct Iter {
    bool is_multi;
    Value::ArrayPtr array;                  // Univalue form.
    std::vector<Value::ArrayPtr> arrays;    // Multi form (one per request).
    size_t pos;
  };

  AccStepResult Trap(const std::string& message);
  AccStepResult Diverge(const std::string& message);
  AccStepResult Fallback(const std::string& message);
  AccStepResult Execute();

  // Splits a pure builtin call componentwise. Returns false (setting *failure) when a
  // component traps (=> fallback).
  bool SplitPureCall(const BuiltinInfo& info, std::vector<Value>& args, Value* out,
                     std::string* failure);

  const Program* program_;
  std::vector<const RequestParams*> params_;
  InterpreterOptions options_;

  std::vector<Frame> frames_;
  std::vector<Value> stack_;
  std::vector<Iter> iters_;
  std::vector<std::string> outputs_;

  uint64_t instructions_ = 0;
  uint64_t multivalent_ = 0;
  bool pending_value_ = false;
  bool finished_ = false;
  bool dead_ = false;
};

}  // namespace orochi

#endif  // SRC_LANG_ACC_INTERPRETER_H_
