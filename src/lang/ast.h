// Abstract syntax tree for wscript. Produced by the parser, consumed by the compiler.
#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace orochi {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

enum class UnOp : uint8_t { kNeg, kNot };

enum class ExprKind : uint8_t {
  kNullLit, kBoolLit, kIntLit, kFloatLit, kStringLit,
  kVar,
  kBinary,
  kUnary,
  kLogicalAnd, kLogicalOr,
  kTernary,
  kAssign,     // target var + index path; op may be plain, +=, -=, .=
  kIncDec,     // ++/-- on a plain variable
  kCall,       // function or builtin call by name
  kArrayLit,
  kIndex,      // base[index]
};

enum class AssignOp : uint8_t { kPlain, kAddAssign, kSubAssign, kConcatAssign };

struct Expr {
  ExprKind kind;
  int line = 0;

  // Literals.
  bool bool_val = false;
  int64_t int_val = 0;
  double float_val = 0.0;
  std::string str_val;  // String literal / variable name / call target name.

  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  AssignOp assign_op = AssignOp::kPlain;
  bool is_prefix = false;     // kIncDec.
  bool is_increment = true;   // kIncDec.

  ExprPtr a;  // lhs / operand / condition / call base.
  ExprPtr b;  // rhs / then.
  ExprPtr c;  // else.

  // kCall arguments; kArrayLit entries (pairs of key|nullptr and value);
  // kAssign index path (nullptr element = "append" []).
  std::vector<ExprPtr> list;
  std::vector<ExprPtr> keys;  // kArrayLit keys, parallel to list (nullptr = auto index).
};

enum class StmtKind : uint8_t {
  kExpr,
  kEcho,
  kIf,
  kWhile,
  kFor,
  kForeach,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;   // kExpr / kEcho(first) / condition / kReturn value.
  ExprPtr init;   // kFor init (may be null).
  ExprPtr step;   // kFor step (may be null).
  StmtPtr body;   // Loop/if body.
  StmtPtr else_body;
  std::vector<StmtPtr> block;   // kBlock statements.
  std::vector<ExprPtr> echoes;  // kEcho: all expressions.

  // kForeach: iterate expr as $key_var => $value_var.
  std::string key_var;    // Empty when no key binding.
  std::string value_var;
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

// A parsed script: top-level statements plus function declarations.
struct ScriptAst {
  std::vector<StmtPtr> top_level;
  std::vector<FunctionDecl> functions;
};

}  // namespace orochi

#endif  // SRC_LANG_AST_H_
