#include "src/lang/ops.h"

#include <cmath>
#include <cstdlib>
#include <optional>

namespace orochi {

namespace {

Result<Value> Err(const std::string& m) { return Result<Value>::Error(m); }

// Numeric coercion for arithmetic: ints and floats pass through; bools and null coerce;
// fully-numeric strings parse (integral form to int, otherwise float). Anything else fails.
std::optional<Value> CoerceNumeric(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
    case ValueType::kFloat:
      return v;
    case ValueType::kBool:
      return Value::Int(v.as_bool() ? 1 : 0);
    case ValueType::kNull:
      return Value::Int(0);
    case ValueType::kString: {
      const std::string& s = v.as_string();
      if (s.empty()) {
        return std::nullopt;
      }
      char* end = nullptr;
      errno = 0;
      long long iv = std::strtoll(s.c_str(), &end, 10);
      if (errno == 0 && end == s.c_str() + s.size()) {
        return Value::Int(iv);
      }
      end = nullptr;
      double dv = std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size()) {
        return Value::Float(dv);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

bool BothInts(const Value& a, const Value& b) { return a.is_int() && b.is_int(); }

}  // namespace

bool LooseEquals(const Value& a, const Value& b) {
  if (a.type() == b.type()) {
    if (a.is_float()) {
      return a.as_float() == b.as_float();
    }
    return Value::DeepEquals(a, b);
  }
  // Cross-type numeric equality (int vs float vs numeric string vs bool/null); pairs that
  // do not both coerce to numbers are unequal. Deterministic, documented in LANGUAGE.md.
  std::optional<Value> na = CoerceNumeric(a);
  std::optional<Value> nb = CoerceNumeric(b);
  if (na && nb) {
    return na->ToFloat() == nb->ToFloat();
  }
  return false;
}

Result<Value> ScalarBinary(Op op, const Value& a, const Value& b) {
  switch (op) {
    case Op::kConcat:
      return Value::Str(a.ToString() + b.ToString());
    case Op::kEq:
      return Value::Bool(LooseEquals(a, b));
    case Op::kNe:
      return Value::Bool(!LooseEquals(a, b));
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod: {
      std::optional<Value> na = CoerceNumeric(a);
      std::optional<Value> nb = CoerceNumeric(b);
      if (!na || !nb) {
        return Err("arithmetic on non-numeric value");
      }
      if (op == Op::kMod) {
        int64_t x = na->ToInt();
        int64_t y = nb->ToInt();
        if (y == 0) {
          return Err("modulo by zero");
        }
        return Value::Int(x % y);
      }
      if (op == Op::kDiv) {
        if (BothInts(*na, *nb)) {
          int64_t y = nb->as_int();
          if (y == 0) {
            return Err("division by zero");
          }
          int64_t x = na->as_int();
          if (x % y == 0) {
            return Value::Int(x / y);
          }
          return Value::Float(static_cast<double>(x) / static_cast<double>(y));
        }
        double y = nb->ToFloat();
        if (y == 0.0) {
          return Err("division by zero");
        }
        return Value::Float(na->ToFloat() / y);
      }
      if (BothInts(*na, *nb)) {
        int64_t x = na->as_int();
        int64_t y = nb->as_int();
        switch (op) {
          case Op::kAdd: return Value::Int(static_cast<int64_t>(
              static_cast<uint64_t>(x) + static_cast<uint64_t>(y)));
          case Op::kSub: return Value::Int(static_cast<int64_t>(
              static_cast<uint64_t>(x) - static_cast<uint64_t>(y)));
          default: return Value::Int(static_cast<int64_t>(
              static_cast<uint64_t>(x) * static_cast<uint64_t>(y)));
        }
      }
      double x = na->ToFloat();
      double y = nb->ToFloat();
      switch (op) {
        case Op::kAdd: return Value::Float(x + y);
        case Op::kSub: return Value::Float(x - y);
        default: return Value::Float(x * y);
      }
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      int cmp = 0;
      if (a.is_string() && b.is_string()) {
        // Two strings compare numerically when both are numeric, else byte-wise (PHP 8).
        std::optional<Value> na = CoerceNumeric(a);
        std::optional<Value> nb = CoerceNumeric(b);
        if (na && nb) {
          double x = na->ToFloat();
          double y = nb->ToFloat();
          cmp = x < y ? -1 : x > y ? 1 : 0;
        } else {
          int c = a.as_string().compare(b.as_string());
          cmp = c < 0 ? -1 : c > 0 ? 1 : 0;
        }
      } else {
        std::optional<Value> na = CoerceNumeric(a);
        std::optional<Value> nb = CoerceNumeric(b);
        if (!na || !nb) {
          return Err("relational comparison on non-numeric value");
        }
        double x = na->ToFloat();
        double y = nb->ToFloat();
        cmp = x < y ? -1 : x > y ? 1 : 0;
      }
      switch (op) {
        case Op::kLt: return Value::Bool(cmp < 0);
        case Op::kLe: return Value::Bool(cmp <= 0);
        case Op::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    default:
      return Err("internal: not a binary opcode");
  }
}

Result<Value> ScalarUnary(Op op, const Value& v) {
  if (op == Op::kNot) {
    return Value::Bool(!v.Truthy());
  }
  // kNeg.
  std::optional<Value> n = CoerceNumeric(v);
  if (!n) {
    return Err("negation of non-numeric value");
  }
  if (n->is_int()) {
    return Value::Int(-n->as_int());
  }
  return Value::Float(-n->as_float());
}

Result<ArrayKey> ToArrayKey(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return ArrayKey(v.as_int());
    case ValueType::kString:
      return ArrayKey(v.as_string());
    case ValueType::kBool:
      return ArrayKey(static_cast<int64_t>(v.as_bool() ? 1 : 0));
    case ValueType::kFloat:
      return ArrayKey(static_cast<int64_t>(v.as_float()));
    case ValueType::kNull:
      return ArrayKey(std::string());
    default:
      return Result<ArrayKey>::Error("invalid array key type");
  }
}

Status ScalarIndexSetPath(Value* root, const std::vector<ArrayKey>& keys, bool append,
                          const Value& value) {
  Value* node = root;
  for (size_t i = 0; i < keys.size(); i++) {
    if (node->is_null()) {
      *node = Value::Array();
    }
    if (!node->is_array()) {
      return Status::Error("cannot index-assign into a non-array value");
    }
    ArrayObject& obj = node->MutableArray();
    bool is_last = (i == keys.size() - 1) && !append;
    if (is_last) {
      obj.Set(keys[i], value);
      return Status::Ok();
    }
    if (obj.Find(keys[i]) == nullptr) {
      obj.Set(keys[i], Value::Null());
    }
    node = const_cast<Value*>(obj.Find(keys[i]));
  }
  if (append) {
    if (node->is_null()) {
      *node = Value::Array();
    }
    if (!node->is_array()) {
      return Status::Error("cannot append to a non-array value");
    }
    node->MutableArray().Append(value);
    return Status::Ok();
  }
  *node = value;
  return Status::Ok();
}

Result<Value> ScalarIndexGet(const Value& container, const Value& key) {
  if (container.is_array()) {
    Result<ArrayKey> k = ToArrayKey(key);
    if (!k.ok()) {
      return Err(k.error());
    }
    const Value* found = container.array().Find(k.value());
    return found ? *found : Value::Null();
  }
  if (container.is_string()) {
    int64_t i = key.ToInt();
    const std::string& s = container.as_string();
    if (i < 0 || static_cast<size_t>(i) >= s.size()) {
      return Value::Null();
    }
    return Value::Str(std::string(1, s[static_cast<size_t>(i)]));
  }
  if (container.is_null()) {
    return Value::Null();
  }
  return Err("cannot index a non-array value");
}

}  // namespace orochi
