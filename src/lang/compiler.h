// Compiles a parsed wscript AST into bytecode.
#ifndef SRC_LANG_COMPILER_H_
#define SRC_LANG_COMPILER_H_

#include <string>

#include "src/common/result.h"
#include "src/lang/ast.h"
#include "src/lang/bytecode.h"

namespace orochi {

// Compiles an already-parsed script.
Result<Program> CompileScript(const ScriptAst& ast, const std::string& script_name);

// Convenience: parse + compile.
Result<Program> CompileSource(const std::string& source, const std::string& script_name);

}  // namespace orochi

#endif  // SRC_LANG_COMPILER_H_
