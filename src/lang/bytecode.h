// Bytecode representation for compiled wscript programs.
//
// A Program is the unit of deployment: one script (endpoint) compiles to a Program whose
// chunk 0 is the top-level body and whose remaining chunks are user-defined functions.
#ifndef SRC_LANG_BYTECODE_H_
#define SRC_LANG_BYTECODE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/value.h"

namespace orochi {

enum class Op : uint8_t {
  kLoadConst,     // a = constant index
  kLoadNull,
  kLoadTrue,
  kLoadFalse,
  kLoadVar,       // a = slot
  kStoreVar,      // a = slot (pops)
  kDup,
  kPop,
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNot, kNeg,
  kJump,          // a = target pc
  kJumpIfFalse,   // a = target pc (pops condition; branch direction feeds the digest)
  kJumpIfTrue,    // a = target pc
  kCall,          // a = chunk index, b = argc
  kCallBuiltin,   // a = builtin id, b = argc
  kReturn,        // pops return value
  kNewArray,
  kArrayAppend,   // pops value; array below it stays on the stack
  kArrayInsert,   // pops value, key; array below them stays
  kIndexGet,      // pops key, container; pushes element (null when absent)
  kIndexSetPath,  // a = var slot, b = # keys on stack, c = 1 when the path ends in append []
                  // stack: [k1..kb, value]; pushes the assigned value back
  kIterNew,       // pops array, pushes an iterator on the iterator stack
  kIterNext,      // a = loop-exit target, b = key slot (-1 none), c = value slot
  kIterDispose,   // pops the iterator stack (emitted by `break` inside foreach)
  kEcho,          // pops; appends ToString to the request output
};

struct Instr {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
};

struct Chunk {
  std::string name;  // "<main>" or the function name.
  int num_params = 0;
  int num_slots = 0;
  std::vector<Instr> code;
  std::vector<Value> consts;
};

struct Program {
  std::string script_name;  // Endpoint name, e.g. "/wiki/view".
  std::vector<Chunk> chunks;  // chunks[0] is the top-level body.
  std::unordered_map<std::string, int> function_index;

  size_t TotalInstructions() const {
    size_t n = 0;
    for (const Chunk& c : chunks) {
      n += c.code.size();
    }
    return n;
  }
};

const char* OpName(Op op);

// Human-readable disassembly (debugging aid, exercised by tests).
std::string Disassemble(const Program& program);

}  // namespace orochi

#endif  // SRC_LANG_BYTECODE_H_
