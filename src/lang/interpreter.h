// The resumable scalar interpreter: one execution context per request (paper §3.2).
//
// Run() executes bytecode until the request finishes, traps, or needs an external result
// (shared-object operation or non-deterministic builtin). The driver then performs the
// operation — against live objects online, or via simulate-and-check at audit time — and
// resumes with ProvideValue().
//
// When `record_digest` is set (the online server), every conditional-branch decision and
// loop-iteration step folds into an incremental control-flow digest; the final digest is the
// opaque control-flow tag reported for grouping (paper §4.3).
#ifndef SRC_LANG_INTERPRETER_H_
#define SRC_LANG_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/lang/builtins.h"
#include "src/lang/bytecode.h"
#include "src/lang/step_result.h"
#include "src/lang/value.h"

namespace orochi {

// Request inputs: ordered name -> value map (the $_GET analog read by input()).
using RequestParams = std::map<std::string, std::string>;

struct InterpreterOptions {
  bool record_digest = false;
  // Deterministic trap once a request executes this many instructions (guards against
  // buggy scripts wedging the server or the verifier).
  uint64_t max_instructions = 200'000'000;
};

class Interpreter {
 public:
  Interpreter(const Program* program, const RequestParams* params,
              InterpreterOptions options = {});

  // Executes until finish / state op / nondet / error. Must not be called while a yield
  // is pending (call ProvideValue first).
  StepResult Run();

  // Supplies the result of the pending state op or nondet builtin.
  void ProvideValue(Value v);

  bool finished() const { return finished_; }
  const std::string& output() const { return output_; }
  uint64_t digest() const { return digest_; }
  uint64_t instructions_executed() const { return instructions_; }

 private:
  struct Frame {
    const Chunk* chunk;
    size_t pc;
    std::vector<Value> slots;
    size_t stack_base;
    size_t iter_base;
  };

  struct Iter {
    Value::ArrayPtr array;  // Snapshot (copy-on-write keeps it stable under mutation).
    size_t pos;
  };

  StepResult Trap(const std::string& message);
  StepResult Execute();

  const Program* program_;
  const RequestParams* params_;
  InterpreterOptions options_;

  std::vector<Frame> frames_;
  std::vector<Value> stack_;
  std::vector<Iter> iters_;

  std::string output_;
  uint64_t digest_;
  uint64_t instructions_ = 0;
  bool pending_value_ = false;  // Yielded; awaiting ProvideValue.
  bool finished_ = false;
  bool dead_ = false;  // Trapped; cannot resume.
};

}  // namespace orochi

#endif  // SRC_LANG_INTERPRETER_H_
